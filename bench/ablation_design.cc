/**
 * @file
 * Ablation of the design choices DESIGN.md §5 documents as deviations
 * from the paper's literal Algorithm 1: cross-batch e_ij selection,
 * usable-RPS capping, and the fragmentation floor. Each variant plans
 * fleets for a range of residual rates; the metric is weighted resource
 * cost per unit of *usable* (demand-capped) capacity — lower is better.
 */

#include <iostream>

#include "cluster/cluster.hh"
#include "common/harness.hh"
#include "core/oracle_scheduler.hh"
#include "core/scheduler.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"

namespace {

using namespace infless;
using metrics::fmt;
using metrics::printHeading;
using metrics::TextTable;
using sim::msToTicks;

struct Variant
{
    const char *name;
    core::SchedulerConfig config;
};

double
costPerUsableRps(const core::SchedulerConfig &config, double demand)
{
    models::ExecModel exec;
    profiler::OpProfileDb db(exec);
    profiler::CopPredictor cop(db);
    core::GreedyScheduler sched(cop, config);
    cluster::Cluster cluster(50);
    const auto &model = models::ModelZoo::shared().get("ResNet-50");
    auto plans =
        sched.schedule(model, demand, msToTicks(200), 32, cluster);
    double cost = 0.0;
    double up = 0.0;
    for (const auto &plan : plans) {
        cost += plan.config.resources.weighted(cluster::kDefaultBeta);
        up += plan.bounds.up;
    }
    double usable = std::min(up, demand);
    return usable > 0 ? cost / usable : -1.0;
}

} // namespace

int
main()
{
    std::vector<Variant> variants;
    variants.push_back({"this repo (all amendments)", {}});
    {
        core::SchedulerConfig cfg;
        cfg.largestBatchFirst = true;
        variants.push_back({"largest-batch-first (paper-literal)", cfg});
    }
    {
        core::SchedulerConfig cfg;
        cfg.uncappedEfficiency = true;
        variants.push_back({"uncapped e_ij numerator", cfg});
    }
    {
        core::SchedulerConfig cfg;
        cfg.noFragmentFloor = true;
        variants.push_back({"no fragmentation floor", cfg});
    }
    {
        core::SchedulerConfig cfg;
        cfg.largestBatchFirst = true;
        cfg.uncappedEfficiency = true;
        cfg.noFragmentFloor = true;
        variants.push_back({"literal Algorithm 1 (all three)", cfg});
    }

    printHeading(std::cout,
                 "Design ablation: weighted resource cost per usable RPS "
                 "when planning ResNet-50 fleets (lower is better)");
    TextTable table({"variant", "@50 RPS", "@100 RPS", "@400 RPS",
                     "@2000 RPS"});
    for (const auto &variant : variants) {
        std::vector<std::string> row = {variant.name};
        for (double demand : {50.0, 100.0, 400.0, 2000.0}) {
            double cost = costPerUsableRps(variant.config, demand);
            row.push_back(cost >= 0 ? fmt(cost * 1000.0, 3) : "-");
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "  (units: milli-weighted-resources per RPS; the "
                 "amendments matter most at moderate rates, where the "
                 "literal rule over-commits to large batches)\n";

    // Optimality gap against the exhaustive (placement-free) oracle.
    printHeading(std::cout,
                 "Optimality gap vs the branch-and-bound oracle "
                 "(greedy cost / optimal cost)");
    TextTable gaps({"variant", "@50 RPS", "@100 RPS", "@400 RPS"});
    models::ExecModel exec;
    profiler::OpProfileDb db(exec);
    profiler::CopPredictor cop(db);
    core::OracleScheduler oracle(cop);
    const auto &resnet = models::ModelZoo::shared().get("ResNet-50");
    for (const auto &variant : variants) {
        std::vector<std::string> row = {variant.name};
        for (double demand : {50.0, 100.0, 400.0}) {
            auto opt = oracle.solve(resnet, demand, msToTicks(200), 32);
            double greedy = costPerUsableRps(variant.config, demand);
            double opt_rate =
                opt.feasible() ? opt.cost / std::min(opt.capacity, demand)
                               : -1.0;
            row.push_back(greedy > 0 && opt_rate > 0
                              ? fmt(greedy / opt_rate, 2) + "x"
                              : "-");
        }
        gaps.addRow(std::move(row));
    }
    gaps.print(std::cout);
    std::cout << "  (the amended greedy stays close to optimal; the "
                 "paper-literal rule pays several-fold at moderate "
                 "rates)\n";
    return 0;
}
