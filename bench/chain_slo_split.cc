/**
 * @file
 * Function-chain extension (§7 future work): compare SLO splitting
 * strategies for the OSVT pipeline deployed as a 3-stage chain, across
 * end-to-end SLO budgets. Proportional splitting gives slow stages room
 * to batch; equal splitting starves them.
 */

#include <iostream>

#include "common/harness.hh"
#include "core/platform.hh"
#include "metrics/report.hh"
#include "workload/generators.hh"

namespace {

using namespace infless;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;
using sim::kTicksPerMin;
using sim::kTicksPerSec;
using sim::msToTicks;

struct ChainResult
{
    double violations;
    double p99Ms;
    double tpr;
    std::int64_t completions;
};

ChainResult
runChain(sim::Tick slo, core::SloSplit split, double rps)
{
    core::Platform platform(8);
    core::ChainSpec spec;
    spec.name = "osvt";
    spec.models = {"SSD", "MobileNet", "ResNet-50"};
    spec.sloTicks = slo;
    spec.split = split;
    auto chain = platform.deployChain(spec);
    platform.injectChainRateSeries(
        chain, workload::constantRate(rps, 5 * kTicksPerMin));
    platform.run(5 * kTicksPerMin + 15 * kTicksPerSec);
    const auto &cm = platform.chainMetrics(chain);
    return ChainResult{
        cm.sloViolationRate(),
        sim::ticksToMs(cm.latency().percentile(99)),
        platform.totalMetrics().throughputPerResource(
            platform.endTime(), cluster::kDefaultBeta),
        cm.completions()};
}

} // namespace

int
main()
{
    printHeading(std::cout,
                 "Chain extension: OSVT as a 3-stage chain @ 80 RPS - "
                 "proportional vs equal SLO splitting");
    TextTable table({"e2e SLO (ms)", "split", "violations", "p99 (ms)",
                     "throughput/resource"});
    for (int slo_ms : {300, 400, 600}) {
        for (auto split :
             {core::SloSplit::Proportional, core::SloSplit::Equal}) {
            auto result = runChain(msToTicks(slo_ms), split, 80.0);
            table.addRow(
                {std::to_string(slo_ms),
                 split == core::SloSplit::Proportional ? "proportional"
                                                       : "equal",
                 fmtPercent(result.violations), fmt(result.p99Ms, 0),
                 fmt(result.tpr, 1)});
        }
    }
    table.print(std::cout);
    std::cout << "  Proportional splitting hands the heavy stages (SSD, "
                 "ResNet-50) most of the budget, letting them batch "
                 "deeper: higher throughput per resource at tight "
                 "end-to-end SLOs. Equal splitting trades that for "
                 "slightly tighter tail control of the light stages. The "
                 "p99 tail reflects the cold-start ramp (all stages start "
                 "cold).\n";
    return 0;
}
