/**
 * @file
 * Chaos/availability bench: the fig11 OSVT workload under injected
 * server crashes, sweeping failure rate x retry policy for INFless and
 * the baselines.
 *
 * Not a paper figure: the paper's testbed never loses nodes mid-run, but
 * any production deployment does. The sweep quantifies (a) how much
 * goodput each system gives back when servers crash, and (b) how much of
 * it the failover retry policy recovers. Each row also self-checks the
 * request conservation law (completions + drops == arrivals): a crash
 * must never make a request vanish from the accounting.
 *
 * Emits BENCH_chaos.json plus a per-second drop/retry timeline
 * (chaos_timeline.csv) for one crashy INFless run. `--smoke` shrinks the
 * sweep for CI. `--trace` additionally records the full request
 * lifecycle of that run and writes a Perfetto/chrome-tracing-loadable
 * trace.json.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/harness.hh"
#include "common/parallel_sweep.hh"
#include "metrics/report.hh"
#include "metrics/timeline.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;

struct SweepPoint
{
    SystemKind kind = SystemKind::Infless;
    double mtbfSec = 0.0; ///< 0 = no faults
    bool retriesOn = false;
    ScenarioResult result;
    bool consistent = false;
    /** Burn-rate alert firing edges (the monitor runs observationally). */
    std::int64_t sloAlerts = 0;

    double sloAttainment() const
    {
        return 1.0 - result.sloViolationRate;
    }
};

struct SweepConfig
{
    std::size_t servers = 8;
    double rpsPerFn = 150.0;
    // 30 simulated minutes: at MTBF 1h x 8 servers the expected crash
    // count is 4, so even the mildest failure rate exercises failover.
    sim::Tick duration = 30 * 60 * sim::kTicksPerSec;
    sim::Tick grace = 30 * sim::kTicksPerSec;
    double mttrSec = 300.0;
    std::vector<double> mtbfs = {0.0, 3600.0, 600.0};
    std::vector<SystemKind> systems = {
        SystemKind::OpenFaas, SystemKind::Batch, SystemKind::Infless};
};

core::PlatformOptions
optionsFor(const SweepConfig &cfg, double mtbf_sec, bool retries)
{
    core::PlatformOptions opts;
    opts.faults.serverMtbfSec = mtbf_sec;
    opts.faults.serverMttrSec = cfg.mttrSec;
    // Stop new crashes at trace end so every retry chain can finish
    // inside the drain grace and the conservation check stays exact.
    opts.faults.crashHorizon = cfg.duration;
    opts.retry = retries ? faults::RetryPolicy{}
                         : faults::RetryPolicy::none();
    // Observational SLO health: burn-rate windows over every row (the
    // monitor schedules no events, so results are unchanged; crash storms
    // that bleed the budget surface as alert counts per row).
    opts.obs.slo.enabled = true;
    return opts;
}

SweepPoint
runPoint(const SweepConfig &cfg, SystemKind kind, double mtbf_sec,
         bool retries, bool with_timeline, bool with_trace)
{
    SweepPoint point;
    point.kind = kind;
    point.mtbfSec = mtbf_sec;
    point.retriesOn = retries;

    core::PlatformOptions opts = optionsFor(cfg, mtbf_sec, retries);
    if (with_trace) {
        // Full-rate tracing of the demo run; the ring keeps the last
        // 128Ki spans, plenty for the smoke config.
        opts.obs.trace.sampleRate = 1.0;
        opts.obs.trace.capacity = std::size_t{1} << 17;
    }
    auto platform = makeSystem(kind, cfg.servers, std::move(opts));
    auto workloads = osvtWorkload(cfg.rpsPerFn, cfg.duration);

    std::unique_ptr<metrics::TimelineSampler> sampler;
    if (with_timeline) {
        sampler = std::make_unique<metrics::TimelineSampler>(
            platform->simulation(), sim::kTicksPerSec);
        const auto &m = platform->totalMetrics();
        // Counter series: per-second deltas, so crash-induced drop and
        // retry bursts show up as spikes instead of a monotone ramp.
        sampler->trackCounter("drops", [&m] {
            return static_cast<double>(m.drops());
        });
        sampler->trackCounter("retries", [&m] {
            return static_cast<double>(m.retries());
        });
        sampler->track("down_servers", [&p = *platform] {
            return static_cast<double>(p.cluster().downServers());
        });
    }

    point.result = runScenario(*platform, workloads, cfg.grace);
    point.consistent = point.result.completions + point.result.drops ==
                       point.result.arrivals;
    point.sloAlerts = platform->sloMonitor().alertsFired();

    if (sampler) {
        sampler->stop();
        std::ofstream csv("chaos_timeline.csv");
        sampler->writeCsv(csv);
    }
    if (with_trace) {
        std::ofstream ofs("trace.json");
        platform->tracer().writeChromeTrace(ofs);
    }
    return point;
}

std::string
mtbfLabel(double mtbf_sec)
{
    if (mtbf_sec <= 0.0)
        return "none";
    std::ostringstream os;
    os << fmt(mtbf_sec, 0) << "s";
    return os.str();
}

void
writeBenchJson(const SweepConfig &cfg,
               const std::vector<SweepPoint> &points,
               double retry_gain, const std::string &path)
{
    std::ofstream out(path);
    out << "{\n"
        << "  \"benchmark\": \"chaos_availability\",\n"
        << "  \"workload\": \"OSVT\",\n"
        << "  \"servers\": " << cfg.servers << ",\n"
        << "  \"offered_rps_per_fn\": " << cfg.rpsPerFn << ",\n"
        << "  \"duration_sec\": " << sim::ticksToSec(cfg.duration) << ",\n"
        << "  \"mttr_sec\": " << cfg.mttrSec << ",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        const ScenarioResult &r = p.result;
        out << "    {\"system\": \"" << systemName(p.kind) << "\""
            << ", \"mtbf_sec\": " << p.mtbfSec
            << ", \"retries\": " << (p.retriesOn ? "true" : "false")
            << ", \"availability\": " << r.availability
            << ", \"slo_attainment\": " << p.sloAttainment()
            << ", \"completed_rps\": " << r.completedRps
            << ", \"arrivals\": " << r.arrivals
            << ", \"completions\": " << r.completions
            << ", \"drops\": " << r.drops
            << ", \"crashes\": " << r.crashes
            << ", \"retry_count\": " << r.retries
            << ", \"failovers\": " << r.failovers
            << ", \"lost_batch_requests\": " << r.lostBatchRequests
            << ", \"mean_restore_sec\": " << r.meanRestoreSec
            << ", \"slo_alerts\": " << p.sloAlerts
            << ", \"truncated\": " << (r.truncated ? "true" : "false")
            << ", \"consistent\": " << (p.consistent ? "true" : "false")
            << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"infless_retry_slo_gain\": " << retry_gain << "\n"
        << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool trace = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        if (std::strcmp(argv[i], "--trace") == 0)
            trace = true;
    }

    SweepConfig cfg;
    if (smoke) {
        // CI-sized: one system, short run, aggressive failure rate so
        // the crash/recovery/retry paths all execute in seconds.
        cfg.duration = 30 * sim::kTicksPerSec;
        cfg.grace = 10 * sim::kTicksPerSec;
        cfg.mttrSec = 10.0;
        cfg.mtbfs = {0.0, 60.0};
        cfg.systems = {SystemKind::Infless};
    }

    printHeading(std::cout,
                 "Chaos sweep: OSVT on " + std::to_string(cfg.servers) +
                     " servers, " + fmt(3 * cfg.rpsPerFn, 0) +
                     " RPS offered, MTTR " + fmt(cfg.mttrSec, 0) +
                     "s; failure rate x retry policy");

    // Enumerate the grid cells in the historical serial order, then fan
    // them out: every cell runs an independent platform, and results come
    // back indexed by cell, so table and JSON rows are byte-identical to
    // the old nested loop at any thread count.
    struct Cell
    {
        SystemKind kind = SystemKind::Infless;
        double mtbf = 0.0;
        bool retries = false;
        bool withTimeline = false;
        bool withTrace = false;
    };
    std::vector<Cell> cells;
    for (double mtbf : cfg.mtbfs) {
        // Without faults the retry policy is dead code: one row suffices.
        std::vector<bool> retry_choices =
            mtbf > 0.0 ? std::vector<bool>{false, true}
                       : std::vector<bool>{true};
        for (bool retries : retry_choices) {
            for (SystemKind kind : cfg.systems) {
                // Timeline demo: the crashiest INFless run with retries.
                bool with_timeline = kind == SystemKind::Infless &&
                                     retries && mtbf > 0.0 &&
                                     mtbf == cfg.mtbfs.back();
                cells.push_back({kind, mtbf, retries, with_timeline,
                                 with_timeline && trace});
            }
        }
    }

    std::vector<SweepPoint> points =
        ParallelSweep::map(cells, [&cfg](const Cell &cell) {
            return runPoint(cfg, cell.kind, cell.mtbf, cell.retries,
                            cell.withTimeline, cell.withTrace);
        });

    TextTable table({"system", "MTBF", "retries", "availability",
                     "SLO attainment", "crashes", "retry", "failover",
                     "lost-batch", "drops", "consistent"});
    bool all_consistent = true;
    for (const SweepPoint &p : points) {
        all_consistent = all_consistent && p.consistent;
        table.addRow({systemName(p.kind), mtbfLabel(p.mtbfSec),
                      p.retriesOn ? "on" : "off",
                      fmtPercent(p.result.availability),
                      fmtPercent(p.sloAttainment()),
                      std::to_string(p.result.crashes),
                      std::to_string(p.result.retries),
                      std::to_string(p.result.failovers),
                      std::to_string(p.result.lostBatchRequests),
                      std::to_string(p.result.drops),
                      p.consistent ? "yes" : "NO"});
    }
    table.print(std::cout);

    // Retry-policy payoff: INFless SLO attainment with vs. without
    // failover at the mildest non-zero failure rate (the acceptance
    // scenario: MTBF 1h, MTTR 5min).
    double retry_gain = 0.0;
    for (const auto &on : points) {
        if (on.kind != SystemKind::Infless || !on.retriesOn ||
            on.mtbfSec <= 0.0)
            continue;
        for (const auto &off : points) {
            if (off.kind == SystemKind::Infless && !off.retriesOn &&
                off.mtbfSec == on.mtbfSec) {
                double gain = on.sloAttainment() - off.sloAttainment();
                if (retry_gain == 0.0 || on.mtbfSec > 0.0)
                    retry_gain = gain;
            }
        }
        break; // first non-zero-MTBF INFless row = mildest rate
    }

    writeBenchJson(cfg, points, retry_gain, "BENCH_chaos.json");
    std::cout << "  (rows written to BENCH_chaos.json; drop/retry "
                 "timeline of the crashiest INFless run in "
                 "chaos_timeline.csv)\n";
    std::cout << "  INFless retry-policy SLO-attainment gain at MTBF "
              << mtbfLabel(cfg.mtbfs.back() > 0 ? cfg.mtbfs[1] : 0.0)
              << ": " << fmt(100.0 * retry_gain, 4) << " pp\n";

    if (!all_consistent) {
        std::cerr << "ERROR: request conservation violated "
                     "(completions + drops != arrivals)\n";
        return 1;
    }
    return 0;
}
