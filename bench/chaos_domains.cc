/**
 * @file
 * Chaos-domains bench: correlated zone outages plus persistent gray
 * failures against the placement/health defenses of this PR.
 *
 * Not a paper figure: the paper's testbed never loses a whole rack, but
 * real zones do fail together and real machines do degrade silently.
 * The sweep crosses a scripted single-zone outage with a gray-failure
 * fraction and runs every cell in three modes:
 *
 *  - baseline      topology assigned, no spread scoring, no health
 *  - spread        + soft anti-affinity spread scoring (spreadWeight)
 *  - spread+eject  + health scoring with outlier ejection
 *
 * The acceptance gate requires spread+ejection >= baseline on both
 * availability and SLO-goodput (completed RPS x SLO attainment) in the
 * hardest cell: one zone down plus 5% gray servers. Availability is
 * expected to tie exactly — the crash schedule is identical across
 * modes and quarantine is not downtime — so the goodput margin is the
 * discriminating number.
 *
 * Emits BENCH_chaos_domains.json plus a per-second timeline
 * (chaos_domains_timeline.csv: drops / down / quarantined) of the
 * hardest spread+eject run. `--smoke` shrinks the sweep for CI.
 * `--trace` records the request lifecycle of that run to trace.json.
 */

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/harness.hh"
#include "common/parallel_sweep.hh"
#include "metrics/report.hh"
#include "metrics/timeline.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;

enum class Mode
{
    Baseline,
    Spread,
    SpreadEject
};

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Baseline:
        return "baseline";
      case Mode::Spread:
        return "spread";
      case Mode::SpreadEject:
        return "spread+eject";
    }
    return "?";
}

struct SweepPoint
{
    Mode mode = Mode::Baseline;
    bool outage = false;
    double grayFraction = 0.0;
    ScenarioResult result;
    bool consistent = false;
    bool guardOk = true; ///< quarantine never exceeded the fleet cap
    std::int64_t sloAlerts = 0;
    std::int64_t ejections = 0;
    std::int64_t readmissions = 0;
    std::int64_t grayDetections = 0;
    std::int64_t domainOutages = 0;
    std::size_t grayServers = 0;
    std::size_t quarantinedEnd = 0;

    double sloAttainment() const
    {
        return 1.0 - result.sloViolationRate;
    }

    /** The gated metric: useful work delivered inside the SLO. */
    double sloGoodput() const
    {
        return result.completedRps * sloAttainment();
    }
};

struct SweepConfig
{
    // 6 testbed servers in 3 zones x 1 rack x 2 servers: one zone
    // outage takes a third of the fleet, and the fleet is small enough
    // that the offered load keeps most machines hosting instances — a
    // sampled gray server then actually serves traffic instead of
    // sitting idle behind the greedy packer.
    std::size_t servers = 6;
    std::size_t zones = 3;
    std::size_t racksPerZone = 1;
    std::size_t rackSize = 2;
    /** Run seed, chosen so the 5% gray draw lands on server 2: a busy
     *  server under default packing, outside the outage zone, so the
     *  gray row exercises detection + ejection rather than an idle
     *  machine nobody ever schedules onto. */
    std::uint64_t seed = 7;
    double rpsPerFn = 450.0;
    sim::Tick duration = 300 * sim::kTicksPerSec;
    sim::Tick grace = 30 * sim::kTicksPerSec;
    /** Scripted outage: zone 0 dies mid-run, repairs before the end so
     *  recovery (and health probation) is exercised too. */
    sim::Tick outageAt = 100 * sim::kTicksPerSec;
    double outageMttrSec = 60.0;
    double grayFactor = 4.0;
    double spreadWeight = 0.5;
    /** 0.25 samples TWO gray servers at this seed, while the ejection
     *  guard caps the quarantine census at floor(0.2 x 6) = 1: the
     *  heavy row shows the guard binding, not unlimited ejection. */
    std::vector<double> grayFractions = {0.0, 0.05, 0.25};
    /** Which outage settings to sweep: [0] = calm, [1] = zone outage. */
    bool outageChoices[2] = {true, true};
};

core::PlatformOptions
optionsFor(const SweepConfig &cfg, Mode mode, bool outage,
           double gray_fraction)
{
    core::PlatformOptions opts;
    opts.seed = cfg.seed;
    opts.topology.zones = cfg.zones;
    opts.topology.racksPerZone = cfg.racksPerZone;
    opts.topology.rackSize = cfg.rackSize;
    if (outage) {
        opts.faults.domainOutageAt = cfg.outageAt;
        opts.faults.domainOutageTarget = 0;
        opts.faults.domainOutageMttrSec = cfg.outageMttrSec;
        // No surprise crashes after trace end: every retry chain can
        // settle inside the drain grace, keeping conservation exact.
        opts.faults.crashHorizon = cfg.duration;
    }
    opts.faults.grayFraction = gray_fraction;
    opts.faults.grayFactor = cfg.grayFactor;
    // Observational SLO health: burn-rate alerts per row, no events.
    opts.obs.slo.enabled = true;
    if (mode != Mode::Baseline)
        opts.scheduler.spreadWeight = cfg.spreadWeight;
    if (mode == Mode::SpreadEject)
        opts.health.enabled = true;
    return opts;
}

SweepPoint
runPoint(const SweepConfig &cfg, Mode mode, bool outage,
         double gray_fraction, bool with_timeline, bool with_trace)
{
    SweepPoint point;
    point.mode = mode;
    point.outage = outage;
    point.grayFraction = gray_fraction;

    core::PlatformOptions opts =
        optionsFor(cfg, mode, outage, gray_fraction);
    double eject_cap =
        std::floor(opts.health.maxEjectFraction *
                   static_cast<double>(cfg.servers));
    if (with_trace) {
        opts.obs.trace.sampleRate = 1.0;
        opts.obs.trace.capacity = std::size_t{1} << 17;
    }
    auto platform = makeSystem(SystemKind::Infless, cfg.servers,
                               std::move(opts));
    auto workloads = osvtWorkload(cfg.rpsPerFn, cfg.duration);

    std::unique_ptr<metrics::TimelineSampler> sampler;
    double max_quarantined = 0.0;
    if (with_timeline) {
        sampler = std::make_unique<metrics::TimelineSampler>(
            platform->simulation(), sim::kTicksPerSec);
        const auto &m = platform->totalMetrics();
        sampler->trackCounter("drops", [&m] {
            return static_cast<double>(m.drops());
        });
        sampler->track("down_servers", [&p = *platform] {
            return static_cast<double>(p.cluster().downServers());
        });
        sampler->track("quarantined", [&p = *platform] {
            return static_cast<double>(p.quarantinedServers());
        });
    }
    // Sample the ejection-guard invariant alongside whatever timeline
    // cadence the row uses: the quarantine census must never exceed
    // floor(maxEjectFraction x fleet) at any probe.
    auto guard_probe = platform->simulation().every(
        sim::kTicksPerSec, [&p = *platform, &max_quarantined] {
            max_quarantined =
                std::max(max_quarantined,
                         static_cast<double>(p.quarantinedServers()));
        });

    point.result = runScenario(*platform, workloads, cfg.grace);
    guard_probe->stop();
    point.consistent = point.result.completions + point.result.drops ==
                       point.result.arrivals;
    point.sloAlerts = platform->sloMonitor().alertsFired();
    const auto &m = platform->totalMetrics();
    point.ejections = m.healthEjections();
    point.readmissions = m.healthReadmissions();
    point.grayDetections = m.grayDetections();
    point.domainOutages = m.domainOutages();
    point.quarantinedEnd = platform->quarantinedServers();
    max_quarantined = std::max(
        max_quarantined,
        static_cast<double>(platform->quarantinedServers()));
    point.guardOk = max_quarantined <= eject_cap;
    for (std::size_t s = 0; s < cfg.servers; ++s)
        if (platform->grayMultiplier(static_cast<cluster::ServerId>(s)) >
            1.0)
            ++point.grayServers;

    if (sampler) {
        sampler->stop();
        std::ofstream csv("chaos_domains_timeline.csv");
        sampler->writeCsv(csv);
    }
    if (with_trace) {
        std::ofstream ofs("trace.json");
        platform->tracer().writeChromeTrace(ofs);
    }
    return point;
}

void
writeBenchJson(const SweepConfig &cfg,
               const std::vector<SweepPoint> &points,
               const SweepPoint *gate_base, const SweepPoint *gate_se,
               bool gate_availability, bool gate_goodput,
               const std::string &path)
{
    std::ofstream out(path);
    out << "{\n"
        << "  \"schema_version\": 1,\n"
        << "  \"benchmark\": \"chaos_domains\",\n"
        << "  \"workload\": \"OSVT\",\n"
        << "  \"servers\": " << cfg.servers << ",\n"
        << "  \"zones\": " << cfg.zones << ",\n"
        << "  \"racks_per_zone\": " << cfg.racksPerZone << ",\n"
        << "  \"rack_size\": " << cfg.rackSize << ",\n"
        << "  \"offered_rps_per_fn\": " << cfg.rpsPerFn << ",\n"
        << "  \"duration_sec\": " << sim::ticksToSec(cfg.duration)
        << ",\n"
        << "  \"outage_at_sec\": " << sim::ticksToSec(cfg.outageAt)
        << ",\n"
        << "  \"outage_mttr_sec\": " << cfg.outageMttrSec << ",\n"
        << "  \"gray_factor\": " << cfg.grayFactor << ",\n"
        << "  \"spread_weight\": " << cfg.spreadWeight << ",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        const ScenarioResult &r = p.result;
        out << "    {\"mode\": \"" << modeName(p.mode) << "\""
            << ", \"outage\": " << (p.outage ? "true" : "false")
            << ", \"gray_fraction\": " << p.grayFraction
            << ", \"gray_servers\": " << p.grayServers
            << ", \"availability\": " << r.availability
            << ", \"slo_attainment\": " << p.sloAttainment()
            << ", \"completed_rps\": " << r.completedRps
            << ", \"slo_goodput\": " << p.sloGoodput()
            << ", \"arrivals\": " << r.arrivals
            << ", \"completions\": " << r.completions
            << ", \"drops\": " << r.drops
            << ", \"crashes\": " << r.crashes
            << ", \"domain_outages\": " << p.domainOutages
            << ", \"ejections\": " << p.ejections
            << ", \"readmissions\": " << p.readmissions
            << ", \"gray_detections\": " << p.grayDetections
            << ", \"quarantined_end\": " << p.quarantinedEnd
            << ", \"slo_alerts\": " << p.sloAlerts
            << ", \"guard_ok\": " << (p.guardOk ? "true" : "false")
            << ", \"truncated\": " << (r.truncated ? "true" : "false")
            << ", \"consistent\": " << (p.consistent ? "true" : "false")
            << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"gate\": {\n"
        << "    \"scenario\": \"one zone out + 5% gray\",\n"
        << "    \"baseline_availability\": "
        << (gate_base ? gate_base->result.availability : 0.0) << ",\n"
        << "    \"spread_eject_availability\": "
        << (gate_se ? gate_se->result.availability : 0.0) << ",\n"
        << "    \"baseline_slo_goodput\": "
        << (gate_base ? gate_base->sloGoodput() : 0.0) << ",\n"
        << "    \"spread_eject_slo_goodput\": "
        << (gate_se ? gate_se->sloGoodput() : 0.0) << ",\n"
        << "    \"availability_ok\": "
        << (gate_availability ? "true" : "false") << ",\n"
        << "    \"slo_goodput_ok\": " << (gate_goodput ? "true" : "false")
        << ",\n"
        << "    \"pass\": "
        << (gate_availability && gate_goodput ? "true" : "false") << "\n"
        << "  }\n"
        << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool trace = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        if (std::strcmp(argv[i], "--trace") == 0)
            trace = true;
    }

    SweepConfig cfg;
    if (smoke) {
        // CI-sized: the gate scenario plus its clean control, short run.
        // The outage still fits inside the horizon and the health engine
        // has time to eject and (after probation) readmit.
        cfg.duration = 90 * sim::kTicksPerSec;
        cfg.grace = 10 * sim::kTicksPerSec;
        cfg.outageAt = 30 * sim::kTicksPerSec;
        cfg.outageMttrSec = 20.0;
        cfg.grayFractions = {0.0, 0.05};
        cfg.outageChoices[0] = false; // outage rows only
    }

    printHeading(std::cout,
                 "Chaos domains: OSVT on " +
                     std::to_string(cfg.servers) + " servers (" +
                     std::to_string(cfg.zones) + " zones), zone outage x "
                     "gray fraction x placement/health mode");

    struct Cell
    {
        Mode mode = Mode::Baseline;
        bool outage = false;
        double gray = 0.0;
        bool withTimeline = false;
        bool withTrace = false;
    };
    const Mode kModes[] = {Mode::Baseline, Mode::Spread,
                           Mode::SpreadEject};
    std::vector<Cell> cells;
    for (bool outage : {false, true}) {
        if (outage ? !cfg.outageChoices[1] : !cfg.outageChoices[0])
            continue;
        for (double gray : cfg.grayFractions) {
            for (Mode mode : kModes) {
                // Timeline/trace demo: the gate cell under full defense.
                bool demo = mode == Mode::SpreadEject && outage &&
                            gray == 0.05;
                cells.push_back({mode, outage, gray, demo, demo && trace});
            }
        }
    }

    std::vector<SweepPoint> points =
        ParallelSweep::map(cells, [&cfg](const Cell &cell) {
            return runPoint(cfg, cell.mode, cell.outage, cell.gray,
                            cell.withTimeline, cell.withTrace);
        });

    TextTable table({"mode", "outage", "gray", "gray-srv", "avail",
                     "SLO att", "goodput", "eject", "readmit", "gray-det",
                     "drops", "guard", "consistent"});
    bool all_consistent = true;
    bool all_guarded = true;
    for (const SweepPoint &p : points) {
        all_consistent = all_consistent && p.consistent;
        all_guarded = all_guarded && p.guardOk;
        table.addRow({modeName(p.mode), p.outage ? "zone0" : "none",
                      fmtPercent(p.grayFraction),
                      std::to_string(p.grayServers),
                      fmtPercent(p.result.availability),
                      fmtPercent(p.sloAttainment()),
                      fmt(p.sloGoodput(), 1),
                      std::to_string(p.ejections),
                      std::to_string(p.readmissions),
                      std::to_string(p.grayDetections),
                      std::to_string(p.result.drops),
                      p.guardOk ? "ok" : "EXCEEDED",
                      p.consistent ? "yes" : "NO"});
    }
    table.print(std::cout);

    // Acceptance gate: in the hardest cell (zone outage + 5% gray) the
    // full defense must not lose to the undefended baseline on either
    // availability or SLO-goodput.
    const SweepPoint *gate_base = nullptr;
    const SweepPoint *gate_se = nullptr;
    for (const SweepPoint &p : points) {
        if (!p.outage || p.grayFraction != 0.05)
            continue;
        if (p.mode == Mode::Baseline)
            gate_base = &p;
        if (p.mode == Mode::SpreadEject)
            gate_se = &p;
    }
    bool gate_availability = false;
    bool gate_goodput = false;
    if (gate_base != nullptr && gate_se != nullptr) {
        gate_availability = gate_se->result.availability >=
                            gate_base->result.availability - 1e-9;
        gate_goodput =
            gate_se->sloGoodput() >= gate_base->sloGoodput() - 1e-9;
        std::cout << "  gate (zone outage + 5% gray): availability "
                  << fmtPercent(gate_base->result.availability) << " -> "
                  << fmtPercent(gate_se->result.availability)
                  << ", SLO-goodput " << fmt(gate_base->sloGoodput(), 1)
                  << " -> " << fmt(gate_se->sloGoodput(), 1) << " rps ["
                  << (gate_availability && gate_goodput ? "PASS" : "FAIL")
                  << "]\n";
    }

    writeBenchJson(cfg, points, gate_base, gate_se, gate_availability,
                   gate_goodput, "BENCH_chaos_domains.json");
    std::cout << "  (rows written to BENCH_chaos_domains.json; "
                 "drop/down/quarantine timeline of the defended gate "
                 "run in chaos_domains_timeline.csv)\n";

    if (!all_consistent) {
        std::cerr << "ERROR: request conservation violated "
                     "(completions + drops != arrivals)\n";
        return 1;
    }
    if (!all_guarded) {
        std::cerr << "ERROR: ejection guard exceeded "
                     "(quarantined > maxEjectFraction x fleet)\n";
        return 1;
    }
    if (gate_base == nullptr || gate_se == nullptr ||
        !(gate_availability && gate_goodput)) {
        std::cerr << "ERROR: chaos-domains gate failed (spread+eject "
                     "must match baseline availability and SLO-goodput "
                     "under one-zone outage + 5% gray)\n";
        return 1;
    }
    return 0;
}
