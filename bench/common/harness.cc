#include "common/harness.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/parallel_sweep.hh"

#include "baselines/batch_otp.hh"
#include "baselines/batch_rs.hh"
#include "baselines/openfaas_plus.hh"
#include "cluster/resources.hh"
#include "models/model_zoo.hh"
#include "workload/generators.hh"

namespace infless::bench {

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Infless:
        return "INFless";
      case SystemKind::OpenFaas:
        return "OpenFaaS+";
      case SystemKind::Batch:
        return "BATCH";
      case SystemKind::BatchRs:
        return "BATCH+RS";
    }
    return "?";
}

std::unique_ptr<core::Platform>
makeSystem(SystemKind kind, std::size_t servers, core::PlatformOptions opts)
{
    if (flightRecorderEnabled())
        opts.obs.flight.enabled = true;
    switch (kind) {
      case SystemKind::Infless:
        return std::make_unique<core::Platform>(servers, std::move(opts));
      case SystemKind::OpenFaas:
        return std::make_unique<baselines::OpenFaasPlus>(servers,
                                                         std::move(opts));
      case SystemKind::Batch:
        return std::make_unique<baselines::BatchOtp>(servers,
                                                     std::move(opts));
      case SystemKind::BatchRs:
        return std::make_unique<baselines::BatchRs>(servers,
                                                    std::move(opts));
    }
    return nullptr;
}

namespace {

std::vector<WorkloadSpec>
constantBundle(const std::vector<std::string> &models, double rps_per_fn,
               sim::Tick duration, sim::Tick slo)
{
    std::vector<WorkloadSpec> specs;
    for (const auto &model : models) {
        WorkloadSpec spec;
        spec.model = model;
        spec.slo = slo;
        spec.series = workload::constantRate(rps_per_fn, duration);
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace

std::vector<WorkloadSpec>
osvtWorkload(double rps_per_fn, sim::Tick duration, sim::Tick slo)
{
    return constantBundle(models::ModelZoo::osvtModels(), rps_per_fn,
                          duration, slo);
}

std::vector<WorkloadSpec>
qaWorkload(double rps_per_fn, sim::Tick duration)
{
    return constantBundle(models::ModelZoo::qaRobotModels(), rps_per_fn,
                          duration, 50 * sim::kTicksPerMs);
}

std::vector<WorkloadSpec>
patternWorkload(const std::vector<std::string> &models,
                workload::TracePattern pattern, double mean_rps_per_fn,
                sim::Tick duration, sim::Tick slo, std::uint64_t seed)
{
    std::vector<WorkloadSpec> specs;
    std::uint64_t fn_seed = seed;
    for (const auto &model : models) {
        WorkloadSpec spec;
        spec.model = model;
        spec.slo = slo;
        // Truncating a day-long trace can land on an idle stretch
        // (sporadic traces especially); retry seeds until the window has
        // activity, then rescale it to the requested mean so patterns
        // compare at equal offered load.
        for (int attempt = 0; attempt < 16; ++attempt) {
            auto series =
                workload::synthesizeTrace(pattern, mean_rps_per_fn, 1.0,
                                          fn_seed++)
                    .truncated(duration);
            double mean = series.meanRps();
            if (mean > 0.05 * mean_rps_per_fn) {
                spec.series = series.scaled(mean_rps_per_fn / mean);
                break;
            }
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

ScenarioResult
runScenario(core::Platform &platform,
            const std::vector<WorkloadSpec> &workloads, sim::Tick grace)
{
    sim::Tick horizon = 0;
    double offered = 0.0;
    for (const auto &spec : workloads) {
        core::FunctionSpec fn_spec;
        fn_spec.name = spec.model + "-fn-" +
                       std::to_string(platform.functionCount());
        fn_spec.model = spec.model;
        fn_spec.sloTicks = spec.slo;
        fn_spec.maxBatch = spec.maxBatch;
        auto fn = platform.deploy(fn_spec);
        platform.injectRateSeries(fn, spec.series);
        horizon = std::max(horizon, spec.series.duration());
        offered += spec.series.meanRps();
    }
    platform.run(horizon + grace);

    const auto &m = platform.totalMetrics();
    ScenarioResult result;
    result.system = platform.name();
    result.offeredRps = offered;
    result.completedRps = m.throughputRps(horizon + grace);
    result.throughputPerResource = m.throughputPerResource(
        platform.endTime(), cluster::kDefaultBeta);
    result.sloViolationRate = m.sloViolationRate();
    result.coldLaunchRate = m.coldLaunchRate();
    result.meanBatchFill = m.meanBatchFill();
    result.meanFragmentRatio = platform.meanFragmentRatio();
    result.meanCpus = m.meanCpuCores(platform.endTime());
    result.meanGpus = m.meanGpuDevices(platform.endTime());
    result.completions = m.completions();
    result.drops = m.drops();
    result.launches = m.launches();
    result.arrivals = m.arrivals();
    result.crashes = m.serverCrashes();
    result.retries = m.retries();
    result.failovers = m.failovers();
    result.lostBatchRequests = m.lostBatchRequests();
    result.startupFailures = m.startupFailures();
    result.sheds = m.sheds();
    result.breakerSheds = m.breakerSheds();
    result.queueEvictions = m.queueEvictions();
    result.retryBudgetExhausted = m.retryBudgetExhausted();
    result.breakerOpens = m.breakerOpens();
    result.breakerCloses = m.breakerCloses();
    result.brownoutEntries = m.brownoutEntries();
    result.brownoutExits = m.brownoutExits();
    result.limiterSheds = m.limiterSheds();
    result.limiterBackoffs = m.limiterBackoffs();
    result.availability = platform.clusterAvailability();
    result.meanRestoreSec = sim::ticksToSec(m.meanRestoreTicks());
    result.truncated = platform.simulation().events().truncated();
    result.execCacheHits =
        static_cast<std::int64_t>(m.execCacheHits());
    result.execCacheMisses =
        static_cast<std::int64_t>(m.execCacheMisses());

    if (telemetryEnabled())
        writeTelemetryFiles(buildTelemetry(platform, platform.name()));
    if (platform.flightRecorder().triggered())
        writeFlightDump(platform.flightRecorder());
    return result;
}

bool
telemetryEnabled()
{
    const char *env = std::getenv("INFLESS_TELEMETRY");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

bool
flightRecorderEnabled()
{
    const char *env = std::getenv("INFLESS_FLIGHT_RECORDER");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

void
writeFlightDump(const obs::FlightRecorder &recorder,
                const std::string &path)
{
    if (!recorder.triggered())
        return;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    std::ofstream os(path);
    recorder.writeChromeTrace(os);
}

obs::TelemetryRegistry
buildTelemetry(const core::Platform &platform, const std::string &benchmark)
{
    obs::TelemetryRegistry telemetry;
    sim::Tick end = platform.endTime();
    telemetry.setRun(benchmark, platform.options().seed,
                     sim::ticksToSec(end));
    telemetry.setTruncated(platform.simulation().events().truncated());
    telemetry.addRunMetrics(platform.totalMetrics());
    telemetry.addOverheads(platform.overheads());
    telemetry.gauge("cluster_availability", platform.clusterAvailability(),
                    "Fraction of aggregate server-uptime over the run");
    telemetry.gauge("mean_fragment_ratio", platform.meanFragmentRatio(),
                    "Time-weighted mean resource fragmentation");
    // Event-engine churn: how much scheduling work was cancelled timers
    // (keep-alive pushouts, batch re-arms) rather than useful events.
    const sim::EventQueue &events = platform.simulation().events();
    telemetry.counter("event_queue_cancellations_total",
                      static_cast<double>(events.cancellations()),
                      "Timer events cancelled over the run");
    telemetry.counter("event_queue_compactions_total",
                      static_cast<double>(events.compactions()),
                      "Bulk dead-entry compactions run by the event heap");
    telemetry.gauge("event_queue_dead_entry_ratio",
                    events.deadEntryRatio(),
                    "Fraction of the event heap occupied by cancelled "
                    "entries at run end");
    // SLO health: always exported so scrapers can rely on the keys; all
    // zero when the monitor is disabled.
    const obs::SloMonitor &slo = platform.sloMonitor();
    telemetry.counter("slo_alerts_total",
                      static_cast<double>(slo.alertsFired()),
                      "Burn-rate alert firing edges over the run");
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    for (std::int32_t fn : slo.functions()) {
        fast_burn = std::max(fast_burn,
                             slo.burnRate(fn, obs::AlertKind::FastBurn));
        slow_burn = std::max(slow_burn,
                             slo.burnRate(fn, obs::AlertKind::SlowBurn));
    }
    telemetry.gauge("slo_burn_rate_fast", fast_burn,
                    "Worst per-function fast-window burn rate at run end");
    telemetry.gauge("slo_burn_rate_slow", slow_burn,
                    "Worst per-function slow-window burn rate at run end");
    return telemetry;
}

void
writeTelemetryFiles(const obs::TelemetryRegistry &telemetry,
                    const std::string &json_path,
                    const std::string &prom_path)
{
    // ParallelSweep runs scenarios concurrently; last writer wins, but
    // each file stays internally consistent.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    std::ofstream json(json_path);
    telemetry.writeJson(json);
    std::ofstream prom(prom_path);
    telemetry.writePrometheus(prom);
}

double
measureMaxRps(core::Platform &platform,
              const std::vector<std::string> &models, sim::Tick slo,
              double offered_per_fn, sim::Tick duration, int max_batch)
{
    for (const auto &model : models) {
        core::FunctionSpec spec;
        spec.name = model + "-stress";
        spec.model = model;
        spec.sloTicks = slo;
        spec.maxBatch = max_batch;
        auto fn = platform.deploy(spec);
        platform.injectRateSeries(
            fn, workload::constantRate(offered_per_fn, duration));
    }
    platform.run(duration);
    // Goodput: the paper's stress tests measure RPS achieved while
    // meeting the latency goal, so violating completions do not count.
    const auto &m = platform.totalMetrics();
    double all = m.throughputRps(duration);
    return all * (1.0 - m.sloViolationRate());
}

std::vector<double>
stressLoadLadder(double max_offered_per_fn)
{
    std::vector<double> levels;
    for (double offered = 250.0; offered <= max_offered_per_fn;
         offered *= 2.0)
        levels.push_back(offered);
    return levels;
}

double
kneeFromGoodputs(const std::vector<double> &goodputs)
{
    // The knee: past it a system's violations climb and goodput falls,
    // so two consecutive non-improving levels end the search. Replays
    // the historical serial loop exactly, including its early break, so
    // levels past the stop point never influence the result.
    double best = 0.0;
    int declines = 0;
    for (double goodput : goodputs) {
        if (goodput > best) {
            best = goodput;
            declines = 0;
        } else if (++declines >= 2) {
            break;
        }
    }
    return best;
}

double
measureMaxRps(const SystemFactory &factory,
              const std::vector<std::string> &models, sim::Tick slo,
              double max_offered_per_fn, sim::Tick duration, int max_batch)
{
    // Every ladder level probes an independent fresh platform, so the
    // levels fan out across workers; the knee search then replays the
    // serial best/two-declines logic over the in-order results. The
    // parallel version may evaluate levels the serial loop would have
    // skipped past the knee, but kneeFromGoodputs ignores them.
    auto goodputs = ParallelSweep::map(
        stressLoadLadder(max_offered_per_fn), [&](double offered) {
            auto platform = factory();
            return measureMaxRps(*platform, models, slo, offered,
                                 duration, max_batch);
        });
    return kneeFromGoodputs(goodputs);
}

double
measureMaxRps(SystemKind kind, const std::vector<std::string> &models,
              sim::Tick slo, std::size_t servers,
              core::PlatformOptions opts, double max_offered_per_fn,
              sim::Tick duration)
{
    return measureMaxRps(
        [&]() { return makeSystem(kind, servers, opts); }, models, slo,
        max_offered_per_fn, duration, 32);
}

} // namespace infless::bench
