/**
 * @file
 * Shared experiment harness for the per-figure bench binaries.
 *
 * Provides system construction, the OSVT / Q&A application bundles of
 * §5.1, scenario runners returning the metrics the paper reports, and a
 * stress-test helper measuring maximum sustainable throughput.
 */

#ifndef INFLESS_BENCH_COMMON_HARNESS_HH
#define INFLESS_BENCH_COMMON_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "obs/telemetry.hh"
#include "workload/azure_synth.hh"
#include "workload/trace.hh"

namespace infless::bench {

/** The comparison systems of Table 3 (plus BATCH+RS from Fig. 17b). */
enum class SystemKind
{
    Infless,
    OpenFaas,
    Batch,
    BatchRs
};

/** Display name. */
const char *systemName(SystemKind kind);

/** The three head-to-head systems. */
inline constexpr SystemKind kMainSystems[] = {
    SystemKind::OpenFaas, SystemKind::Batch, SystemKind::Infless};

/** Construct a platform of the given kind. */
std::unique_ptr<core::Platform> makeSystem(SystemKind kind,
                                           std::size_t servers,
                                           core::PlatformOptions opts = {});

/** One deployed function plus its request trace. */
struct WorkloadSpec
{
    std::string model;
    sim::Tick slo = 200 * sim::kTicksPerMs;
    workload::RateSeries series;
    int maxBatch = 32;
};

/** The OSVT application (SSD + MobileNet + ResNet-50, SLO 200 ms). */
std::vector<WorkloadSpec> osvtWorkload(double rps_per_fn,
                                       sim::Tick duration,
                                       sim::Tick slo = 200 *
                                                       sim::kTicksPerMs);

/** The Q&A robot (TextCNN-69 + LSTM-2365 + DSSM, SLO 50 ms). */
std::vector<WorkloadSpec> qaWorkload(double rps_per_fn,
                                     sim::Tick duration);

/** A bundle driven by one of the Fig. 10 production patterns. */
std::vector<WorkloadSpec>
patternWorkload(const std::vector<std::string> &models,
                workload::TracePattern pattern, double mean_rps_per_fn,
                sim::Tick duration, sim::Tick slo, std::uint64_t seed);

/** Aggregate results of one scenario run. */
struct ScenarioResult
{
    std::string system;
    double offeredRps = 0.0;
    double completedRps = 0.0;
    double throughputPerResource = 0.0;
    double sloViolationRate = 0.0;
    double coldLaunchRate = 0.0;
    double meanBatchFill = 0.0;
    double meanFragmentRatio = 0.0;
    double meanCpus = 0.0;
    double meanGpus = 0.0;
    std::int64_t completions = 0;
    std::int64_t drops = 0;
    std::int64_t launches = 0;

    // Failure accounting (all zero when no fault profile is active) -------
    std::int64_t arrivals = 0;
    std::int64_t crashes = 0;
    std::int64_t retries = 0;
    std::int64_t failovers = 0;
    std::int64_t lostBatchRequests = 0;
    std::int64_t startupFailures = 0;
    /** Fraction of aggregate server-uptime over the run. */
    double availability = 1.0;
    /** Mean crash-to-recovery time, seconds (0 if no recovery). */
    double meanRestoreSec = 0.0;

    // Overload control (all zero when the defenses are disabled) ----------
    std::int64_t sheds = 0;
    std::int64_t breakerSheds = 0;
    std::int64_t queueEvictions = 0;
    std::int64_t retryBudgetExhausted = 0;
    std::int64_t breakerOpens = 0;
    std::int64_t breakerCloses = 0;
    std::int64_t brownoutEntries = 0;
    std::int64_t brownoutExits = 0;
    std::int64_t limiterSheds = 0;
    std::int64_t limiterBackoffs = 0;

    // Run health -----------------------------------------------------------
    /** Whether the event engine hit its safety cap (results suspect). */
    bool truncated = false;
    /** Latency-memo effectiveness of the batch-pricing hot path. */
    std::int64_t execCacheHits = 0;
    std::int64_t execCacheMisses = 0;
};

/**
 * Deploy @p workloads on @p platform, run to the longest trace end plus
 * @p grace, and summarize.
 *
 * When telemetry export is active (INFLESS_TELEMETRY=1 in the
 * environment), a full telemetry snapshot of the platform is also
 * written to telemetry.json + metrics.prom in the working directory.
 */
ScenarioResult runScenario(core::Platform &platform,
                           const std::vector<WorkloadSpec> &workloads,
                           sim::Tick grace = 10 * sim::kTicksPerSec);

// Telemetry export ----------------------------------------------------------

/** Whether INFLESS_TELEMETRY=1 (or any non-"0" value) is set. */
bool telemetryEnabled();

/** Whether INFLESS_FLIGHT_RECORDER=1 (or any non-"0" value) is set;
 *  makeSystem then arms the always-on flight-recorder span ring. */
bool flightRecorderEnabled();

/**
 * Write a triggered flight recorder's frozen dump as Perfetto-loadable
 * chrome-trace JSON. Serialized across threads like writeTelemetryFiles.
 * No-op (and no file) when the recorder never triggered.
 */
void writeFlightDump(const obs::FlightRecorder &recorder,
                     const std::string &path = "flight_trace.json");

/**
 * Snapshot a finished platform run into a TelemetryRegistry: run
 * metadata, the RunMetrics counter/gauge/histogram set, controller
 * overhead histograms, and platform-level gauges (availability,
 * fragmentation).
 */
obs::TelemetryRegistry buildTelemetry(const core::Platform &platform,
                                      const std::string &benchmark);

/**
 * Write @p telemetry to @p json_path (schema-versioned JSON) and
 * @p prom_path (Prometheus text exposition). Serialized across threads
 * so concurrent ParallelSweep scenarios do not interleave writes.
 */
void writeTelemetryFiles(const obs::TelemetryRegistry &telemetry,
                         const std::string &json_path = "telemetry.json",
                         const std::string &prom_path = "metrics.prom");

/** Factory producing a fresh platform per stress probe. */
using SystemFactory = std::function<std::unique_ptr<core::Platform>()>;

/**
 * The geometric offered-load ladder of the stress sweep: 250, 500, ...
 * up to @p max_offered_per_fn inclusive.
 */
std::vector<double> stressLoadLadder(double max_offered_per_fn);

/**
 * Replay the serial knee search over per-level goodputs: track the best
 * value and stop after two consecutive non-improving levels. Kept
 * separate from the sweep so the levels can be evaluated in parallel
 * while the reported knee stays bit-identical to the serial loop.
 */
double kneeFromGoodputs(const std::vector<double> &goodputs);

/**
 * Stress test (Fig. 11): sweep offered load levels up to
 * @p max_offered_per_fn and report the peak in-SLO goodput (the knee of
 * the goodput curve).
 */
double measureMaxRps(SystemKind kind,
                     const std::vector<std::string> &models, sim::Tick slo,
                     std::size_t servers, core::PlatformOptions opts = {},
                     double max_offered_per_fn = 32'000.0,
                     sim::Tick duration = 30 * sim::kTicksPerSec);

/**
 * Knee-finding sweep with a custom platform factory (ablations). Ladder
 * levels run concurrently via ParallelSweep, so @p factory must be safe
 * to call from multiple threads (constructing independent platforms is).
 */
double measureMaxRps(const SystemFactory &factory,
                     const std::vector<std::string> &models, sim::Tick slo,
                     double max_offered_per_fn = 32'000.0,
                     sim::Tick duration = 30 * sim::kTicksPerSec,
                     int max_batch = 32);

/** Single-level probe on an explicit platform (goodput at one load). */
double measureMaxRps(core::Platform &platform,
                     const std::vector<std::string> &models, sim::Tick slo,
                     double offered_per_fn,
                     sim::Tick duration = 30 * sim::kTicksPerSec,
                     int max_batch = 32);

} // namespace infless::bench

#endif // INFLESS_BENCH_COMMON_HARNESS_HH
