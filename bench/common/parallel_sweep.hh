/**
 * @file
 * Deterministic fan-out of independent sweep points across threads.
 *
 * The bench sweeps (load ladders, MTBF grids, system line-ups) evaluate
 * many mutually independent grid points, each of which constructs its own
 * Platform and runs a fully seeded simulation. ParallelSweep::map runs
 * those points on a pool of workers and stores every result at the index
 * of its input item, so the output vector is byte-identical to a serial
 * loop regardless of thread count or scheduling order.
 *
 * Requirements on the mapped function: it must be safe to call
 * concurrently (each grid point builds its own platform; the simulator
 * core keeps no mutable globals) and its result type must be
 * default-constructible (results are materialized in place by index).
 */

#ifndef INFLESS_BENCH_COMMON_PARALLEL_SWEEP_HH
#define INFLESS_BENCH_COMMON_PARALLEL_SWEEP_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace infless::bench {

class ParallelSweep
{
  public:
    /**
     * Worker count used when map() is called with threads == 0: the
     * INFLESS_SWEEP_THREADS environment variable clamped to
     * hardware_concurrency, otherwise hardware_concurrency itself (at
     * least 1 either way). An env value that fails to parse as a
     * positive integer — "0", "-3", "abc", "8x" — falls back to 1
     * rather than silently oversubscribing or crashing.
     */
    static std::size_t defaultThreads()
    {
        unsigned hw_raw = std::thread::hardware_concurrency();
        std::size_t hw = hw_raw == 0 ? 1 : hw_raw;
        if (const char *env = std::getenv("INFLESS_SWEEP_THREADS")) {
            char *end = nullptr;
            long n = std::strtol(env, &end, 10);
            if (end == env || *end != '\0' || n <= 0)
                return 1;
            return std::min(static_cast<std::size_t>(n), hw);
        }
        return hw;
    }

    /**
     * Apply @p fn to every element of @p items, possibly concurrently,
     * and return the results in input order.
     *
     * @p threads of 0 picks defaultThreads(); 1 runs serially on the
     * calling thread. The first exception thrown by any invocation is
     * rethrown on the caller after all workers join.
     */
    template <typename Item, typename Fn>
    static auto map(const std::vector<Item> &items, Fn &&fn,
                    std::size_t threads = 0)
        -> std::vector<std::decay_t<decltype(fn(items.front()))>>
    {
        using Result = std::decay_t<decltype(fn(items.front()))>;
        std::vector<Result> results(items.size());
        if (items.empty())
            return results;

        if (threads == 0)
            threads = defaultThreads();
        threads = std::min(threads, items.size());

        if (threads <= 1) {
            for (std::size_t i = 0; i < items.size(); ++i)
                results[i] = fn(items[i]);
            return results;
        }

        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex error_mutex;

        auto worker = [&] {
            while (!failed.load(std::memory_order_relaxed)) {
                std::size_t i = next.fetch_add(1);
                if (i >= items.size())
                    return;
                try {
                    results[i] = fn(items[i]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
        if (error)
            std::rethrow_exception(error);
        return results;
    }
};

} // namespace infless::bench

#endif // INFLESS_BENCH_COMMON_PARALLEL_SWEEP_HH
