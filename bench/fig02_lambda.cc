/**
 * @file
 * Figure 2 — inference on a commercial (Lambda-style) serverless
 * platform: latency heat-maps without batching (a) and with OTP batching
 * (b), and the memory over-provisioning required to meet a 200 ms SLO
 * (c). Reproduces Observations 1-3 of §2.2.
 */

#include <iostream>
#include <string>
#include <vector>

#include "baselines/lambda_model.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "sim/time.hh"

namespace {

using infless::baselines::LambdaModel;
using infless::metrics::fmt;
using infless::metrics::fmtPercent;
using infless::metrics::printHeading;
using infless::metrics::TextTable;
using infless::models::ModelZoo;
using infless::sim::kTickNever;
using infless::sim::msToTicks;
using infless::sim::ticksToMs;

const std::vector<std::int64_t> kMemorySweep = {512,  1024, 1536,
                                                2048, 2560, 3008};

std::string
cell(const LambdaModel &lambda, const infless::models::ModelInfo &model,
     std::int64_t mem, int batch)
{
    auto t = lambda.invokeTicks(model, mem, batch);
    if (t == kTickNever)
        return "x";
    return fmt(ticksToMs(t), 0);
}

void
heatmap(const LambdaModel &lambda, int batch)
{
    std::vector<std::string> headers = {"model"};
    for (auto mem : kMemorySweep)
        headers.push_back(std::to_string(mem) + "MB");
    TextTable table(std::move(headers));
    for (const auto &model : ModelZoo::shared().all()) {
        std::vector<std::string> row = {model.name};
        for (auto mem : kMemorySweep)
            row.push_back(cell(lambda, model, mem, batch));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    LambdaModel lambda;

    printHeading(std::cout,
                 "Figure 2(a): invocation latency (ms) on a proportional "
                 "CPU-memory platform, no batching ('x' = cannot load)");
    heatmap(lambda, 1);

    printHeading(std::cout,
                 "Figure 2(b): invocation latency (ms) with OTP batching, "
                 "batchsize 4");
    heatmap(lambda, 4);

    printHeading(std::cout,
                 "Figure 2(b'): invocation latency (ms) with OTP batching, "
                 "batchsize 8");
    heatmap(lambda, 8);

    printHeading(std::cout,
                 "Figure 2(c): memory over-provisioning to meet a 200 ms "
                 "SLO (no batching)");
    TextTable over({"model", "min memory for SLO", "actual consumption",
                    "over-provisioned"});
    for (const auto &model : ModelZoo::shared().all()) {
        auto mem = lambda.minMemoryForSlo(model, msToTicks(200));
        if (mem < 0) {
            over.addRow({model.name, "unreachable",
                         fmt(LambdaModel::actualConsumptionMb(model), 0) +
                             "MB",
                         "-"});
            continue;
        }
        double ratio = lambda.overProvisionRatio(model, msToTicks(200));
        over.addRow({model.name, std::to_string(mem) + "MB",
                     fmt(LambdaModel::actualConsumptionMb(model), 0) + "MB",
                     fmtPercent(ratio)});
    }
    over.print(std::cout);

    std::cout << "\nObservation 1: large models (Bert-v1, ResNet-50, "
                 "VGGNet) miss 200 ms at every memory size.\n"
                 "Observation 2: batching multiplies CPU latency ~linearly,"
                 " pushing small models past their SLOs too.\n"
                 "Observation 3: models that do meet the SLO only do so "
                 "with heavily over-provisioned memory.\n";
    return 0;
}
