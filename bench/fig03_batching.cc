/**
 * @file
 * Figure 3 — (a) excessive instances created by the "one-to-one mapping"
 * policy versus OTP batching (ResNet-20 under a bursty production
 * trace); (b) throughput of the no-batching commercial model, the OTP
 * batching layer, and INFless's native design.
 */

#include <iostream>

#include "common/harness.hh"
#include "metrics/report.hh"
#include "sim/time.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::printHeading;
using metrics::TextTable;
using sim::kTicksPerMin;
using sim::msToTicks;

struct UsageResult
{
    std::int64_t invocations; ///< batches executed (function invocations)
    std::int64_t instances;   ///< instances launched
    double memoryGbS;
};

UsageResult
runUsage(SystemKind kind)
{
    auto platform = makeSystem(kind, 8);
    auto specs = patternWorkload({"ResNet-20"},
                                 workload::TracePattern::Bursty, 60.0,
                                 20 * kTicksPerMin, msToTicks(200), 11);
    runScenario(*platform, specs);
    const auto &m = platform->totalMetrics();
    return UsageResult{m.batches(), m.launches(),
                       m.memoryGbSeconds(platform->endTime())};
}

} // namespace

int
main()
{
    printHeading(std::cout,
                 "Figure 3(a): instance usage for ResNet-20 under a bursty "
                 "trace - one-to-one mapping vs OTP batching");
    TextTable usage({"policy", "function invocations", "launched instances",
                     "memory GB*s"});
    UsageResult one_to_one = runUsage(SystemKind::OpenFaas);
    UsageResult batching = runUsage(SystemKind::Batch);
    usage.addRow({"one-to-one", std::to_string(one_to_one.invocations),
                  std::to_string(one_to_one.instances),
                  fmt(one_to_one.memoryGbS, 0)});
    usage.addRow({"OTP batching", std::to_string(batching.invocations),
                  std::to_string(batching.instances),
                  fmt(batching.memoryGbS, 0)});
    usage.print(std::cout);
    double invocation_drop =
        1.0 - static_cast<double>(batching.invocations) /
                  static_cast<double>(std::max<std::int64_t>(
                      1, one_to_one.invocations));
    std::cout << "  batching reduces invocations by "
              << fmt(invocation_drop * 100.0, 0)
              << "% (paper: 72%), instances by "
              << fmt((1.0 - static_cast<double>(batching.instances) /
                                static_cast<double>(std::max<std::int64_t>(
                                    1, one_to_one.instances))) *
                         100.0,
                     0)
              << "% (paper: 35%)\n";

    printHeading(std::cout,
                 "Figure 3(b): maximum throughput (RPS), ResNet-20 at "
                 "200 ms SLO (2-node cluster, stress load)");
    TextTable thp({"system", "max RPS", "vs one-to-one"});
    double base = 0.0;
    for (SystemKind kind : kMainSystems) {
        double rps = measureMaxRps(kind, {"ResNet-20"}, msToTicks(200), 2,
                                   {}, 20'000.0);
        if (kind == SystemKind::OpenFaas)
            base = rps;
        thp.addRow({systemName(kind), fmt(rps, 0),
                    base > 0 ? fmt(rps / base, 2) + "x" : "-"});
    }
    thp.print(std::cout);
    std::cout << "  (paper: OTP batching +30% over the commercial "
                 "platform; INFless ~3x over OTP batching)\n";
    return 0;
}
