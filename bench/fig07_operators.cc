/**
 * @file
 * Figure 7 — operator call frequency and execution-time share for
 * LSTM-2365 (a) and ResNet-50 (b): a handful of operators dominate,
 * which is what makes combined operator profiling cheap (§3.3,
 * Observation 6).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "metrics/report.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "models/operator.hh"

namespace {

using namespace infless;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;

void
operatorProfile(const models::ModelInfo &model)
{
    const models::ExecModel exec;
    cluster::Resources res{2000, 10, 0};
    auto counts = model.dag.opCounts();
    auto time_by_kind = model.dag.workByKind([&](const models::OpNode &op) {
        return exec.opMicros(op, 1, res);
    });
    double total_time = 0.0;
    for (const auto &[kind, micros] : time_by_kind)
        total_time += micros;

    std::vector<std::pair<models::OpKind, double>> ranked(
        time_by_kind.begin(), time_by_kind.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });

    TextTable table({"operator", "calls", "time share"});
    for (const auto &[kind, micros] : ranked) {
        table.addRow({models::opName(kind),
                      std::to_string(counts[kind]),
                      fmtPercent(micros / total_time)});
    }
    table.print(std::cout);
    std::cout << "  total operator calls: "
              << static_cast<int>(model.dag.size())
              << ", distinct operators: " << model.dag.distinctOps()
              << "\n";
}

} // namespace

int
main()
{
    const auto &zoo = models::ModelZoo::shared();

    printHeading(std::cout,
                 "Figure 7(a): LSTM-2365 operator mix (paper: MatMul "
                 "called 81x; (Fused)MatMul ~76% of time)");
    operatorProfile(zoo.get("LSTM-2365"));

    printHeading(std::cout,
                 "Figure 7(b): ResNet-50 operator mix (paper: Conv2D "
                 ">95% of time across 8 distinct operators)");
    operatorProfile(zoo.get("ResNet-50"));

    // Observation 6 across the zoo: shared operator vocabulary.
    printHeading(std::cout, "Observation 6: shared operator set");
    std::int64_t total_calls = 0;
    std::vector<bool> seen(models::kNumOpKinds, false);
    for (const auto &model : zoo.all()) {
        total_calls += static_cast<std::int64_t>(model.dag.size());
        for (const auto &node : model.dag.nodes())
            seen[static_cast<std::size_t>(node.kind)] = true;
    }
    int distinct = static_cast<int>(
        std::count(seen.begin(), seen.end(), true));
    std::cout << "  " << total_calls
              << " operator calls across the 11 models, but only "
              << distinct << " distinct operator kinds\n";
    return 0;
}
