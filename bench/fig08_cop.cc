/**
 * @file
 * Figure 8 — COP prediction accuracy: relative error of the operator
 * combination model against ground truth, across batch and resource
 * configurations, for ResNet-50, MobileNet and LSTM-2365.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "cluster/resources.hh"
#include "metrics/report.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"

namespace {

using namespace infless;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;

} // namespace

int
main()
{
    models::ExecModel exec;
    profiler::OpProfileDb db(exec);
    profiler::CopPredictor cop(db);
    const auto &zoo = models::ModelZoo::shared();

    const std::vector<int> batches = {1, 2, 4, 8, 16, 32};
    const std::vector<std::int64_t> cpus = {500, 1000, 2000, 4000};
    const std::vector<std::int64_t> gpus = {0, 5, 10, 20, 30, 50};

    printHeading(std::cout,
                 "Figure 8: COP prediction error |pred - actual| / actual "
                 "across batch/resource configurations");
    TextTable table({"model", "mean error", "p90 error", "max error",
                     "configs"});
    for (const char *name : {"ResNet-50", "MobileNet", "LSTM-2365"}) {
        const auto &model = zoo.get(name);
        std::vector<double> errors;
        for (int b : batches) {
            for (auto c : cpus) {
                for (auto g : gpus) {
                    cluster::Resources res{c, g, 0};
                    errors.push_back(
                        cop.predictionError(exec, model, b, res));
                }
            }
        }
        std::sort(errors.begin(), errors.end());
        double mean = 0.0;
        for (double e : errors)
            mean += e;
        mean /= static_cast<double>(errors.size());
        double p90 = errors[errors.size() * 9 / 10];
        table.addRow({name, fmtPercent(mean), fmtPercent(p90),
                      fmtPercent(errors.back()),
                      std::to_string(errors.size())});
    }
    table.print(std::cout);
    std::cout << "  (paper: mean errors 8.6% / 7.8% / 9.74%; all under "
                 "10%, LSTM-2365 highest due to overlapping execution "
                 "paths)\n";

    printHeading(std::cout,
                 "Error by batchsize (ResNet-50): composition holds "
                 "across the batch dimension");
    TextTable by_batch({"batch", "mean error"});
    const auto &resnet = zoo.get("ResNet-50");
    for (int b : batches) {
        double mean = 0.0;
        int n = 0;
        for (auto c : cpus) {
            for (auto g : gpus) {
                mean += cop.predictionError(exec, resnet, b,
                                            cluster::Resources{c, g, 0});
                ++n;
            }
        }
        by_batch.addRow({std::to_string(b), fmtPercent(mean / n)});
    }
    by_batch.print(std::cout);

    std::cout << "  operator profiles collected: " << db.size() << "\n";
    return 0;
}
