/**
 * @file
 * Figure 11 — maximum throughput under stress for the OSVT and Q&A robot
 * scenarios, plus the component ablation: built-in batching (BB),
 * operator prediction accuracy (OP1.5 / OP2) and resource scheduling
 * (RS).
 */

#include <iostream>
#include <memory>

#include "common/harness.hh"
#include "metrics/report.hh"
#include "workload/generators.hh"
#include "models/model_zoo.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;
using sim::msToTicks;

struct Scenario
{
    const char *name;
    std::vector<std::string> models;
    sim::Tick slo;
    double offeredPerFn;
};

double
ablatedMaxRps(const Scenario &scenario, double safety_offset,
              bool throughput_only, int max_batch)
{
    core::PlatformOptions opts;
    opts.cop.safetyOffset = safety_offset;
    opts.scheduler.throughputOnly = throughput_only;
    return measureMaxRps(
        [&]() { return std::make_unique<core::Platform>(8, opts); },
        scenario.models, scenario.slo, scenario.offeredPerFn,
        30 * sim::kTicksPerSec, max_batch);
}

} // namespace

int
main()
{
    Scenario scenarios[] = {
        {"OSVT (SLO 200ms)", models::ModelZoo::osvtModels(),
         msToTicks(200), 10'000.0},
        {"Q&A robot (SLO 50ms)", models::ModelZoo::qaRobotModels(),
         msToTicks(50), 20'000.0},
    };

    for (const auto &scenario : scenarios) {
        printHeading(std::cout,
                     std::string("Figure 11: maximum RPS, ") +
                         scenario.name);
        TextTable table({"system", "max RPS", "vs OpenFaaS+"});
        double openfaas = 0.0;
        for (SystemKind kind : kMainSystems) {
            double rps =
                measureMaxRps(kind, scenario.models, scenario.slo, 8, {},
                              scenario.offeredPerFn);
            if (kind == SystemKind::OpenFaas)
                openfaas = rps;
            table.addRow({systemName(kind), fmt(rps, 0),
                          openfaas > 0 ? fmt(rps / openfaas, 2) + "x"
                                       : "-"});
        }
        table.print(std::cout);

        // Component ablation (paper: BB costs the most, then OP, then
        // RS; OSVT drops 45.6%/35.4%/21.9%, Q&A 60%/34.3%/7%).
        double full = ablatedMaxRps(scenario, 0.10, false, 32);
        double no_bb = ablatedMaxRps(scenario, 0.10, false, 1);
        double op15 = ablatedMaxRps(scenario, 0.50, false, 32);
        double op2 = ablatedMaxRps(scenario, 1.00, false, 32);
        double no_rs = ablatedMaxRps(scenario, 0.10, true, 32);

        printHeading(std::cout,
                     std::string("Figure 11 ablation, ") + scenario.name);
        TextTable ablation({"variant", "max RPS", "drop vs full"});
        auto drop = [&](double rps) {
            return full > 0 ? fmtPercent(1.0 - rps / full) : "-";
        };
        ablation.addRow({"INFless (full)", fmt(full, 0), "-"});
        ablation.addRow({"no built-in batching (BB)", fmt(no_bb, 0),
                         drop(no_bb)});
        ablation.addRow({"prediction offset 50% (OP1.5)", fmt(op15, 0),
                         drop(op15)});
        ablation.addRow({"prediction offset 100% (OP2)", fmt(op2, 0),
                         drop(op2)});
        ablation.addRow({"no resource scheduling (RS)", fmt(no_rs, 0),
                         drop(no_rs)});
        ablation.print(std::cout);
    }
    return 0;
}
