/**
 * @file
 * Figure 12 — normalized throughput (completions per weighted
 * resource-second) (a) under the three production trace patterns and
 * (b) across latency SLOs for the OSVT scenario.
 */

#include <iostream>

#include "common/harness.hh"
#include "metrics/report.hh"
#include "workload/generators.hh"
#include "models/model_zoo.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::printHeading;
using metrics::TextTable;
using sim::kTicksPerMin;
using sim::msToTicks;
using workload::TracePattern;
using workload::tracePatternName;

double
tracesTpr(SystemKind kind, TracePattern pattern)
{
    auto platform = makeSystem(kind, 8);
    auto specs =
        patternWorkload(models::ModelZoo::osvtModels(), pattern, 80.0,
                        20 * kTicksPerMin, msToTicks(200), 21);
    return runScenario(*platform, specs).throughputPerResource;
}

double
sloTpr(SystemKind kind, sim::Tick slo)
{
    auto platform = makeSystem(kind, 8);
    auto specs = osvtWorkload(100.0, 15 * kTicksPerMin, slo);
    return runScenario(*platform, specs).throughputPerResource;
}

} // namespace

int
main()
{
    printHeading(std::cout,
                 "Figure 12(a): normalized throughput under the three "
                 "production trace patterns (OSVT, SLO 200ms)");
    TextTable by_trace({"trace", "OpenFaaS+", "BATCH", "INFless",
                        "INFless/OpenFaaS+", "INFless/BATCH"});
    for (TracePattern pattern : workload::kAllPatterns) {
        double ofp = tracesTpr(SystemKind::OpenFaas, pattern);
        double batch = tracesTpr(SystemKind::Batch, pattern);
        double infl = tracesTpr(SystemKind::Infless, pattern);
        by_trace.addRow({tracePatternName(pattern), fmt(ofp, 1),
                         fmt(batch, 1), fmt(infl, 1),
                         ofp > 0 ? fmt(infl / ofp, 1) + "x" : "-",
                         batch > 0 ? fmt(infl / batch, 1) + "x" : "-"});
    }
    by_trace.print(std::cout);
    std::cout << "  (paper: INFless 3.4x-4.3x over OpenFaaS+, "
                 "1.8x-2.6x over BATCH)\n";

    printHeading(std::cout,
                 "Figure 12(b): normalized throughput across latency SLOs "
                 "(OSVT, constant load)");
    TextTable by_slo({"SLO (ms)", "BATCH", "INFless", "INFless/BATCH"});
    for (int slo_ms : {150, 200, 250, 300, 350}) {
        double batch = sloTpr(SystemKind::Batch, msToTicks(slo_ms));
        double infl = sloTpr(SystemKind::Infless, msToTicks(slo_ms));
        by_slo.addRow({std::to_string(slo_ms), fmt(batch, 1), fmt(infl, 1),
                       batch > 0 ? fmt(infl / batch, 1) + "x" : "-"});
    }
    by_slo.print(std::cout);
    std::cout << "  (paper: INFless 1.6x-3.5x over BATCH across SLOs)\n";
    return 0;
}
