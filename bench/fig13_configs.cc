/**
 * @file
 * Figure 13 — flexible configurations: (a/b) throughput contribution by
 * batchsize for INFless vs BATCH serving ResNet-50 across SLOs, and (c)
 * the instance (batch, cpu, gpu) configuration distribution.
 */

#include <iostream>
#include <map>

#include "common/harness.hh"
#include "metrics/report.hh"
#include "workload/generators.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;
using sim::kTicksPerMin;
using sim::msToTicks;

/** Serve ResNet-50 through several load levels and collect config usage. */
std::vector<core::ConfigUsage>
configUsage(SystemKind kind, sim::Tick slo)
{
    auto platform = makeSystem(kind, 8);
    core::FunctionSpec spec{"resnet", "ResNet-50", slo, 32};
    auto fn = platform->deploy(spec);
    // Ramp through low / medium / high rates so non-uniform scaling has
    // distinct regimes to adapt to.
    sim::Tick t = 0;
    for (double rps : {15.0, 60.0, 150.0, 300.0, 80.0}) {
        auto arrivals =
            workload::uniformArrivals(rps, 2 * kTicksPerMin).arrivals();
        for (auto &a : arrivals)
            a += t; // place this phase after the previous one
        platform->injectTrace(fn,
                              workload::ArrivalTrace(std::move(arrivals)));
        t += 2 * kTicksPerMin;
        platform->run(t);
    }
    platform->run(t + 10 * sim::kTicksPerSec);
    return platform->configUsage(fn);
}

void
report(SystemKind kind, sim::Tick slo)
{
    auto usage = configUsage(kind, slo);
    std::int64_t total_served = 0;
    std::map<int, std::int64_t> by_batch;
    for (const auto &u : usage) {
        total_served += u.requestsServed;
        by_batch[u.config.batchSize] += u.requestsServed;
    }

    printHeading(std::cout,
                 std::string(systemName(kind)) + ", SLO " +
                     std::to_string(slo / sim::kTicksPerMs) +
                     "ms: throughput share by batchsize");
    TextTable batch_table({"batchsize", "requests served", "share"});
    for (const auto &[b, served] : by_batch) {
        batch_table.addRow(
            {std::to_string(b), std::to_string(served),
             total_served > 0
                 ? fmtPercent(static_cast<double>(served) /
                              static_cast<double>(total_served))
                 : "-"});
    }
    batch_table.print(std::cout);

    TextTable cfg_table({"(b, cpu, gpu)", "launches", "served"});
    for (const auto &u : usage) {
        cfg_table.addRow({u.config.str(), std::to_string(u.launches),
                          std::to_string(u.requestsServed)});
    }
    cfg_table.print(std::cout);
    std::cout << "  distinct configurations: " << usage.size() << "\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 13: ResNet-50 served through load levels "
                 "{15, 60, 150, 300, 80} RPS\n";
    for (int slo_ms : {150, 350}) {
        report(SystemKind::Infless, msToTicks(slo_ms));
        report(SystemKind::Batch, msToTicks(slo_ms));
    }
    std::cout << "\n  (paper: INFless flexibly mixes batchsizes {1,2,4,8} "
                 "and many resource configs; BATCH mainly uses two "
                 "batchsizes and three configurations)\n";
    return 0;
}
