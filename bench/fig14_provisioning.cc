/**
 * @file
 * Figure 14 — resource provisioning over time for ResNet-50 under a
 * rising-then-falling load: BATCH holds resources through its fixed
 * keep-alive while INFless right-sizes and scales in quickly.
 */

#include <iostream>
#include <vector>

#include "common/harness.hh"
#include "metrics/report.hh"
#include "workload/generators.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::printHeading;
using metrics::TextTable;
using sim::kTicksPerMin;
using sim::kTicksPerSec;
using sim::msToTicks;

/** Triangular load profile: ramp 0->peak->0 over 20 minutes. */
workload::RateSeries
triangularLoad(double peak_rps)
{
    workload::RateSeries series;
    series.binWidth = kTicksPerMin;
    for (int minute = 0; minute < 20; ++minute) {
        double fraction = minute < 10
                              ? minute / 10.0
                              : (20 - minute) / 10.0;
        series.rps.push_back(peak_rps * fraction);
    }
    return series;
}

struct Timeline
{
    std::vector<double> offered;
    std::vector<double> weighted; ///< allocated beta-weighted resources
    double resourceSeconds = 0.0;
};

Timeline
runTimeline(SystemKind kind)
{
    auto platform = makeSystem(kind, 8);
    core::FunctionSpec spec{"resnet", "ResNet-50", msToTicks(200), 32};
    auto fn = platform->deploy(spec);
    auto series = triangularLoad(150.0);
    platform->injectRateSeries(fn, series);

    Timeline timeline;
    for (int minute = 1; minute <= 30; ++minute) {
        platform->run(static_cast<sim::Tick>(minute) * kTicksPerMin);
        timeline.offered.push_back(
            series.rpsAt((minute - 1) * kTicksPerMin));
        timeline.weighted.push_back(
            platform->cluster().totalAllocated().weighted(
                cluster::kDefaultBeta));
    }
    const auto &m = platform->totalMetrics();
    timeline.resourceSeconds =
        cluster::kDefaultBeta * m.cpuCoreSeconds(platform->endTime()) +
        m.gpuDeviceSeconds(platform->endTime());
    return timeline;
}

} // namespace

int
main()
{
    printHeading(std::cout,
                 "Figure 14: provisioned (beta-weighted) resources over a "
                 "20-minute triangular load, sampled per minute");
    Timeline batch = runTimeline(SystemKind::Batch);
    Timeline infless = runTimeline(SystemKind::Infless);

    TextTable table({"minute", "offered RPS", "BATCH alloc",
                     "INFless alloc"});
    for (std::size_t minute = 0; minute < batch.offered.size(); ++minute) {
        table.addRow({std::to_string(minute + 1),
                      fmt(batch.offered[minute], 0),
                      fmt(batch.weighted[minute], 3),
                      fmt(infless.weighted[minute], 3)});
    }
    table.print(std::cout);

    double reduction =
        batch.resourceSeconds > 0
            ? 1.0 - infless.resourceSeconds / batch.resourceSeconds
            : 0.0;
    std::cout << "  total weighted resource-seconds: BATCH="
              << fmt(batch.resourceSeconds, 1)
              << " INFless=" << fmt(infless.resourceSeconds, 1)
              << " -> INFless provisions " << fmt(reduction * 100.0, 0)
              << "% less (paper: ~60%)\n";
    return 0;
}
