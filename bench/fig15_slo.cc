/**
 * @file
 * Figure 15 — (a) SLO violation rates across the three production trace
 * patterns for the three systems; (b/c) INFless's latency breakdown
 * (cold start / batch queuing / execution) at 150 ms and 350 ms SLOs.
 */

#include <iostream>

#include "common/harness.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;
using sim::kTicksPerMin;
using sim::msToTicks;
using sim::ticksToMs;
using workload::TracePattern;
using workload::tracePatternName;

double
violationRate(SystemKind kind, TracePattern pattern)
{
    auto platform = makeSystem(kind, 8);
    auto specs =
        patternWorkload(models::ModelZoo::osvtModels(), pattern, 60.0,
                        20 * kTicksPerMin, msToTicks(200), 31);
    return runScenario(*platform, specs).sloViolationRate;
}

void
breakdown(sim::Tick slo)
{
    auto platform = makeSystem(SystemKind::Infless, 8);
    auto specs = osvtWorkload(100.0, 15 * kTicksPerMin, slo);
    runScenario(*platform, specs);
    const auto &m = platform->totalMetrics();
    double cold = m.coldTime().mean();
    double queue = m.queueTime().mean();
    double exec = m.execTime().mean();
    double total = cold + queue + exec;
    printHeading(std::cout,
                 "Figure 15 breakdown: INFless mean latency parts at SLO " +
                     std::to_string(slo / sim::kTicksPerMs) + "ms");
    TextTable table({"part", "mean (ms)", "share"});
    table.addRow({"cold start", fmt(cold / sim::kTicksPerMs, 1),
                  fmtPercent(total > 0 ? cold / total : 0)});
    table.addRow({"batch queuing", fmt(queue / sim::kTicksPerMs, 1),
                  fmtPercent(total > 0 ? queue / total : 0)});
    table.addRow({"execution", fmt(exec / sim::kTicksPerMs, 1),
                  fmtPercent(total > 0 ? exec / total : 0)});
    table.print(std::cout);
    std::cout << "  p50 latency " << fmt(ticksToMs(m.latency().percentile(50)), 1)
              << "ms, p99 " << fmt(ticksToMs(m.latency().percentile(99)), 1)
              << "ms\n";
}

} // namespace

int
main()
{
    printHeading(std::cout,
                 "Figure 15(a): SLO violation rate under the production "
                 "trace patterns (OSVT, SLO 200ms)");
    TextTable table({"trace", "OpenFaaS+", "BATCH", "INFless"});
    for (TracePattern pattern : workload::kAllPatterns) {
        table.addRow({tracePatternName(pattern),
                      fmtPercent(violationRate(SystemKind::OpenFaas,
                                               pattern)),
                      fmtPercent(violationRate(SystemKind::Batch,
                                               pattern)),
                      fmtPercent(violationRate(SystemKind::Infless,
                                               pattern))});
    }
    table.print(std::cout);
    std::cout << "  (paper: INFless <= 3.1% on average and always the "
                 "lowest; OpenFaaS+ up to 8% under sporadic load)\n";

    breakdown(msToTicks(150));
    breakdown(msToTicks(350));
    std::cout << "\n  (paper: INFless regulates queuing time roughly "
                 "equal to execution time)\n";
    return 0;
}
