/**
 * @file
 * Figure 16 — cold-start rate and idle resource waste of the keep-alive
 * policies: fixed, HHP, and LSTH with gamma in {0.3, 0.5, 0.7}, replayed
 * over per-function traces with the three production patterns (LTP
 * horizon 24 h, STB horizon 1 h).
 */

#include <iostream>
#include <memory>
#include <vector>

#include "coldstart/evaluator.hh"
#include "coldstart/fixed.hh"
#include "coldstart/hhp.hh"
#include "coldstart/lsth.hh"
#include "metrics/report.hh"
#include "sim/rng.hh"
#include "workload/azure_synth.hh"

namespace {

using namespace infless;
using coldstart::evaluatePolicy;
using coldstart::KeepAlivePolicy;
using coldstart::PolicyEvaluation;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;
using workload::TracePattern;
using workload::tracePatternName;

struct PolicySpec
{
    std::string label;
    std::function<std::unique_ptr<KeepAlivePolicy>()> make;
};

std::vector<PolicySpec>
policies()
{
    std::vector<PolicySpec> specs;
    specs.push_back({"fixed (300s)", coldstart::FixedKeepAlive::factory()});
    specs.push_back({"HHP (4h)", coldstart::HybridHistogramPolicy::factory()});
    for (double gamma : {0.3, 0.5, 0.7}) {
        coldstart::LsthParams params;
        params.gamma = gamma;
        specs.push_back({"LSTH gamma=" + fmt(gamma, 1),
                         coldstart::LsthPolicy::factory(params)});
    }
    return specs;
}

/** Average over seeds of one (policy, pattern) cell. */
PolicyEvaluation
evaluate(const PolicySpec &spec, TracePattern pattern)
{
    PolicyEvaluation sum;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        // Low per-function rates, as in the Azure trace: most functions
        // see sparse invocations where keep-alive policy matters.
        auto series = workload::synthesizeTrace(pattern, 0.01, 3.0, seed);
        sim::Rng rng(seed * 131 + 7);
        auto trace = workload::ArrivalTrace::fromRateSeries(series, rng);
        auto policy = spec.make();
        PolicyEvaluation eval = evaluatePolicy(*policy, trace);
        sum.invocations += eval.invocations;
        sum.coldStarts += eval.coldStarts;
        sum.wastedWarmTicks += eval.wastedWarmTicks;
        sum.traceTicks += eval.traceTicks;
    }
    return sum;
}

} // namespace

int
main()
{
    printHeading(std::cout,
                 "Figure 16: cold-start rate / idle waste by keep-alive "
                 "policy (3-day traces, 5 seeds per cell)");
    TextTable table({"policy", "sporadic cold", "periodic cold",
                     "bursty cold", "sporadic waste", "periodic waste",
                     "bursty waste"});
    double hhp_cold = 0.0, hhp_waste = 0.0;
    double lsth_cold = 0.0, lsth_waste = 0.0;
    for (const auto &spec : policies()) {
        std::vector<std::string> row = {spec.label};
        std::vector<std::string> waste_cells;
        double cold_sum = 0.0, waste_sum = 0.0;
        for (TracePattern pattern : workload::kAllPatterns) {
            auto eval = evaluate(spec, pattern);
            row.push_back(fmtPercent(eval.coldStartRate(), 2));
            waste_cells.push_back(fmtPercent(eval.wasteRatio()));
            cold_sum += eval.coldStartRate();
            waste_sum += eval.wasteRatio();
        }
        row.insert(row.end(), waste_cells.begin(), waste_cells.end());
        table.addRow(std::move(row));
        if (spec.label.rfind("HHP", 0) == 0) {
            hhp_cold = cold_sum;
            hhp_waste = waste_sum;
        }
        if (spec.label == "LSTH gamma=0.5") {
            lsth_cold = cold_sum;
            lsth_waste = waste_sum;
        }
    }
    table.print(std::cout);

    if (hhp_cold > 0) {
        std::cout << "  LSTH(0.5) vs HHP: cold starts "
                  << fmt((1.0 - lsth_cold / hhp_cold) * 100.0, 1)
                  << "% lower (paper: 21.9%), idle waste "
                  << fmt((1.0 - lsth_waste / hhp_waste) * 100.0, 1)
                  << "% lower (paper: 24.3%; see EXPERIMENTS.md for the "
                     "deviation discussion)\n";
    }
    return 0;
}
