/**
 * @file
 * Figure 17 — large-scale simulation: (a) scheduling overhead of
 * Algorithm 1 on a 2,000-server cluster (google-benchmark), and (b) the
 * resource fragment ratio of the four systems under dynamic load.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "baselines/batch_otp.hh"
#include "common/harness.hh"
#include "common/parallel_sweep.hh"
#include "core/rps_bounds.hh"
#include "sim/rng.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;
using sim::kTicksPerMin;
using sim::msToTicks;

// ---------------------------------------------------------------------------
// (a) Scheduling overhead
// ---------------------------------------------------------------------------

struct SchedulerRig
{
    models::ExecModel exec;
    profiler::OpProfileDb db{exec};
    profiler::CopPredictor cop{db};
    core::GreedyScheduler sched{cop};
    cluster::Cluster cluster{2000};

    SchedulerRig()
    {
        // Warm the COP memo over the whole (batch ladder x config grid)
        // so the benchmark measures the scheduling loop, not first-touch
        // profiling. The memo is shared across batches: one prewarm
        // keeps every batchsize hot.
        const auto &model = models::ModelZoo::shared().get("ResNet-50");
        sched.prewarm(model, 32);
    }
};

void
BM_Schedule(benchmark::State &state)
{
    static SchedulerRig rig;
    const auto &model = models::ModelZoo::shared().get("ResNet-50");
    double demand = static_cast<double>(state.range(0));
    std::size_t instances = 0;
    for (auto _ : state) {
        cluster::Cluster scratch = rig.cluster;
        auto plans =
            rig.sched.schedule(model, demand, msToTicks(200), 32, scratch);
        instances = plans.size();
        benchmark::DoNotOptimize(plans);
    }
    state.counters["instances"] = static_cast<double>(instances);
    state.counters["us_per_instance"] = benchmark::Counter(
        static_cast<double>(instances) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

BENCHMARK(BM_Schedule)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(5000)
    ->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// (a') Fast path vs. naive reference: decision-latency series
// ---------------------------------------------------------------------------
//
// schedule() answers the argmax over e_ij from the cluster's capacity
// index (one evaluation per availability class) with a candidate pool
// built once per call; scheduleNaive() is the pre-index reference that
// rebuilds the pool and scans all 2,000 servers for every placement.
// Both produce bit-identical plans (tests/core/scheduler_equivalence),
// so the series isolates pure scheduling overhead. Results also land in
// BENCH_sched.json for machine consumption / regression tracking.

struct SeriesPoint
{
    double demand = 0.0;
    std::size_t instances = 0;
    double naiveUsPerDecision = 0.0;
    double indexedUsPerDecision = 0.0;

    double
    speedup() const
    {
        return indexedUsPerDecision > 0.0
                   ? naiveUsPerDecision / indexedUsPerDecision
                   : 0.0;
    }
};

/** Mean time of one schedule() variant, microseconds per decision. */
template <typename ScheduleFn>
double
measureUsPerDecision(const cluster::Cluster &base, ScheduleFn &&schedule,
                     std::size_t *instances_out)
{
    using Clock = std::chrono::steady_clock;
    constexpr double kBudgetSec = 0.5;
    constexpr int kMaxReps = 200;

    double total_sec = 0.0;
    std::size_t decisions = 0;
    std::size_t instances = 0;
    for (int rep = 0; rep < kMaxReps && total_sec < kBudgetSec; ++rep) {
        cluster::Cluster scratch = base; // copied outside the timer
        auto start = Clock::now();
        auto plans = schedule(scratch);
        auto stop = Clock::now();
        total_sec += std::chrono::duration<double>(stop - start).count();
        instances = plans.size();
        decisions += plans.size();
        benchmark::DoNotOptimize(plans);
    }
    if (instances_out)
        *instances_out = instances;
    return decisions == 0 ? 0.0
                          : 1e6 * total_sec /
                                static_cast<double>(decisions);
}

std::vector<SeriesPoint>
decisionLatencySeries(SchedulerRig &rig)
{
    const auto &model = models::ModelZoo::shared().get("ResNet-50");
    std::vector<SeriesPoint> series;
    for (double demand : {1000.0, 2000.0, 5000.0, 10'000.0}) {
        SeriesPoint point;
        point.demand = demand;
        point.naiveUsPerDecision = measureUsPerDecision(
            rig.cluster,
            [&](cluster::Cluster &scratch) {
                return rig.sched.scheduleNaive(model, demand,
                                               msToTicks(200), 32,
                                               scratch);
            },
            &point.instances);
        point.indexedUsPerDecision = measureUsPerDecision(
            rig.cluster,
            [&](cluster::Cluster &scratch) {
                return rig.sched.schedule(model, demand, msToTicks(200),
                                          32, scratch);
            },
            nullptr);
        series.push_back(point);
    }
    return series;
}

void
writeBenchJson(const std::vector<SeriesPoint> &series,
               const std::string &path)
{
    std::ofstream out(path);
    out << "{\n"
        << "  \"benchmark\": \"fig17a_scheduler_fastpath\",\n"
        << "  \"model\": \"ResNet-50\",\n"
        << "  \"cluster_servers\": 2000,\n"
        << "  \"slo_ms\": 200,\n"
        << "  \"series\": [\n";
    for (std::size_t i = 0; i < series.size(); ++i) {
        const SeriesPoint &p = series[i];
        out << "    {\"demand_rps\": " << p.demand
            << ", \"instances\": " << p.instances
            << ", \"naive_us_per_decision\": " << p.naiveUsPerDecision
            << ", \"indexed_us_per_decision\": "
            << p.indexedUsPerDecision
            << ", \"speedup\": " << p.speedup() << "}"
            << (i + 1 < series.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"speedup_max_demand\": " << series.back().speedup()
        << "\n}\n";
}

// ---------------------------------------------------------------------------
// (b) Resource fragment ratio under placement churn
// ---------------------------------------------------------------------------
//
// Fragmentation at the paper's scale comes from allocation churn: fleets
// of differently sized instances arrive and depart, leaving holes that
// later placements may or may not fill. The experiment places fleets for
// a function population sized to ~75% cluster utilization, releases a
// random 40% of the instances (scale-in churn), places a second wave,
// and measures the fragment ratio over active servers. Every system is
// normalized to the same utilization so the metric isolates packing
// quality rather than allocation volume.

struct PlannerRig
{
    models::ExecModel exec;
    profiler::OpProfileDb db{exec};
    profiler::CopPredictor cop{db};
    core::GreedyScheduler sched{cop};
};

std::vector<core::LaunchPlan>
placeFunction(PlannerRig &rig, SystemKind kind,
              const models::ModelInfo &model, double demand, sim::Tick slo,
              cluster::Cluster &cluster)
{
    double beta = cluster::kDefaultBeta;
    switch (kind) {
      case SystemKind::Infless:
        return rig.sched.schedule(model, demand, slo, 32, cluster);
      case SystemKind::Batch:
      case SystemKind::BatchRs: {
          baselines::BatchOtpOptions defaults;
          core::CandidateConfig best;
          double best_value = -1.0;
          for (int b : defaults.batchChoices) {
              for (cluster::Resources res : defaults.configMenu) {
                  res.memoryMb = rig.sched.instanceMemoryMb(model);
                  sim::Tick t = rig.cop.predict(model, b, res);
                  if (!core::execFeasible(t, slo, b))
                      continue;
                  auto bounds = core::rpsBounds(t, slo, b);
                  double value = bounds.up / res.weighted(beta);
                  if (value > best_value) {
                      best_value = value;
                      best.config = cluster::InstanceConfig{b, res};
                      best.execPredicted = t;
                      best.bounds = bounds;
                  }
              }
          }
          if (best_value < 0)
              return {};
          return core::uniformSchedule(best, demand, cluster,
                                       kind == SystemKind::BatchRs, beta,
                                       best.config.resources.memoryMb);
      }
      case SystemKind::OpenFaas: {
          cluster::Resources res{2000, 10, 0};
          res.memoryMb = rig.sched.instanceMemoryMb(model);
          sim::Tick t = rig.cop.predict(model, 1, res);
          core::CandidateConfig config;
          config.config = cluster::InstanceConfig{1, res};
          config.execPredicted = t;
          config.bounds.up =
              1.0 / sim::ticksToSec(std::max<sim::Tick>(1, t));
          config.bounds.low = 0.0;
          return core::uniformSchedule(config, demand, cluster, false,
                                       beta, res.memoryMb);
      }
    }
    return {};
}

double
fragmentRatio(SystemKind kind)
{
    PlannerRig rig;
    cluster::Cluster cluster(200);
    const auto &zoo = models::ModelZoo::shared();
    std::vector<const models::ModelInfo *> pool = {
        &zoo.get("ResNet-50"), &zoo.get("SSD"),       &zoo.get("VGGNet"),
        &zoo.get("MobileNet"), &zoo.get("LSTM-2365"), &zoo.get("ResNet-20"),
        &zoo.get("TextCNN-69")};
    sim::Rng rng(77);

    double capacity =
        cluster.totalCapacity().weighted(cluster::kDefaultBeta);
    auto utilization = [&] {
        return cluster.totalAllocated().weighted(cluster::kDefaultBeta) /
               capacity;
    };

    struct Placed
    {
        cluster::ServerId server;
        cluster::Resources res;
    };
    std::vector<Placed> placed;

    // Fill with random functions until the target utilization so every
    // system compares at the same allocated volume.
    auto fill_to = [&](double target, int max_functions) {
        for (int i = 0; i < max_functions && utilization() < target; ++i) {
            const auto *model = pool[static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(pool.size()) - 1))];
            double demand = rng.uniform(200.0, 1200.0);
            sim::Tick slo =
                model->gflops > 1.0 ? msToTicks(200) : msToTicks(50);
            for (const auto &plan :
                 placeFunction(rig, kind, *model, demand, slo, cluster)) {
                placed.push_back(
                    Placed{plan.server, plan.config.resources});
            }
        }
    };

    fill_to(0.75, 600); // initial population
    // Scale-in churn: release a random 40%.
    for (std::size_t i = 0; i < placed.size();) {
        if (rng.uniform() < 0.4) {
            cluster.release(placed[i].server, placed[i].res);
            placed[i] = placed.back();
            placed.pop_back();
        } else {
            ++i;
        }
    }
    fill_to(0.75, 600); // second wave fills (or fails to fill) the holes

    return cluster.fragmentRatio();
}

} // namespace

int
main(int argc, char **argv)
{
    printHeading(std::cout,
                 "Figure 17(a): Schedule() overhead on a 2,000-server "
                 "cluster (paper: ~0.5ms per instance, <1s for 10,000 "
                 "concurrent requests)");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    printHeading(std::cout,
                 "Figure 17(a'): capacity-index fast path vs. naive "
                 "per-server scan (bit-identical plans)");
    {
        static SchedulerRig rig;
        auto series = decisionLatencySeries(rig);
        TextTable table({"demand (RPS)", "instances", "naive (us/decision)",
                         "indexed (us/decision)", "speedup"});
        for (const auto &p : series) {
            table.addRow({fmt(p.demand, 0),
                          std::to_string(p.instances),
                          fmt(p.naiveUsPerDecision, 1),
                          fmt(p.indexedUsPerDecision, 1),
                          fmt(p.speedup(), 1) + "x"});
        }
        table.print(std::cout);
        writeBenchJson(series, "BENCH_sched.json");
        std::cout << "  (series written to BENCH_sched.json; the "
                     "equivalence guarantee is pinned by "
                     "tests/core/scheduler_equivalence_test.cc)\n";
    }

    printHeading(std::cout,
                 "Figure 17(b): resource fragment ratio under placement "
                 "churn at ~75% utilization (200 servers)");
    // Each system's churn experiment owns its rig, cluster, and seeded
    // RNG, so the four runs fan out across workers; results come back in
    // line-up order.
    std::vector<SystemKind> lineup = {SystemKind::OpenFaas,
                                      SystemKind::Batch,
                                      SystemKind::BatchRs,
                                      SystemKind::Infless};
    std::vector<double> ratios = ParallelSweep::map(
        lineup, [](SystemKind kind) { return fragmentRatio(kind); });
    TextTable table({"system", "fragment ratio"});
    for (std::size_t i = 0; i < lineup.size(); ++i)
        table.addRow({systemName(lineup[i]), fmtPercent(ratios[i])});
    table.print(std::cout);
    std::cout << "  (paper: INFless ~15%, lowest of the four; BATCH+RS "
                 "below BATCH, isolating the placement algorithm)\n";

    printHeading(std::cout,
                 "Controller overhead profile: wall-clock cost of the "
                 "scheduler / COP / autoscaler / keep-alive decisions "
                 "over one profiled OSVT run");
    {
        core::PlatformOptions opts;
        opts.obs.profiling = true;
        core::Platform platform(8, std::move(opts));
        auto workloads = osvtWorkload(120.0, 20 * sim::kTicksPerSec);
        runScenario(platform, workloads);

        const obs::OverheadProfiler &prof = platform.overheads();
        TextTable overhead({"phase", "calls", "mean (us)", "p50 (us)",
                            "p99 (us)", "total (ms)"});
        for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
            auto phase = static_cast<obs::Phase>(i);
            obs::PhaseStats stats = prof.stats(phase);
            overhead.addRow({obs::phaseName(phase),
                             std::to_string(stats.count),
                             fmt(stats.meanUs, 1), fmt(stats.p50Us, 1),
                             fmt(stats.p99Us, 1),
                             fmt(stats.totalUs / 1000.0, 2)});
        }
        overhead.print(std::cout);

        writeTelemetryFiles(buildTelemetry(platform, "fig17_scale"));
        std::cout << "  (full snapshot in telemetry.json / "
                     "metrics.prom)\n";
    }
    return 0;
}
