/**
 * @file
 * Figure 18 — large-scale simulation of the controller algorithms: the
 * theoretical throughput per unit of provisioned resource, (a) as the
 * number of functions grows to 40 and (b) across latency SLOs with 20
 * functions. As in the paper's methodology (§5.1), the simulator runs
 * the real scheduling code against simulated machines and records only
 * the provisioning decisions.
 */

#include <iostream>
#include <vector>

#include "common/harness.hh"
#include "core/rps_bounds.hh"
#include "core/scheduler.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"
#include "sim/rng.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::printHeading;
using metrics::TextTable;
using sim::msToTicks;

/** One simulated function: model + demand. */
struct SimFunction
{
    const models::ModelInfo *model;
    double demandRps;
    sim::Tick slo;
};

std::vector<SimFunction>
makeFunctions(int count, sim::Tick slo, std::uint64_t seed)
{
    // Functions mix heavy vision models and light text models with
    // varying demands, echoing the production mix of 2.1.
    const auto &zoo = models::ModelZoo::shared();
    std::vector<const models::ModelInfo *> pool = {
        &zoo.get("ResNet-50"), &zoo.get("SSD"),        &zoo.get("VGGNet"),
        &zoo.get("MobileNet"), &zoo.get("LSTM-2365"),  &zoo.get("ResNet-20"),
        &zoo.get("TextCNN-69"), &zoo.get("DSSM-2365")};
    sim::Rng rng(seed);
    std::vector<SimFunction> functions;
    for (int i = 0; i < count; ++i) {
        SimFunction fn;
        fn.model = pool[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
        fn.demandRps = rng.uniform(50.0, 400.0);
        fn.slo = slo;
        functions.push_back(fn);
    }
    return functions;
}

struct ProvisionResult
{
    double servedRps = 0.0;
    double weightedCost = 0.0;

    double
    throughputPerResource() const
    {
        return weightedCost > 0.0 ? servedRps / weightedCost : 0.0;
    }
};

/** Provision all functions with one system's planner; no execution. */
ProvisionResult
provision(SystemKind kind, const std::vector<SimFunction> &functions)
{
    models::ExecModel exec;
    profiler::OpProfileDb db(exec);
    profiler::CopPredictor cop(db);
    core::GreedyScheduler sched(cop);
    cluster::Cluster cluster(2000);
    double beta = cluster::kDefaultBeta;

    ProvisionResult result;
    for (const auto &fn : functions) {
        double fleet_up = 0.0;
        double fleet_cost = 0.0;
        switch (kind) {
          case SystemKind::Infless: {
              auto plans = sched.schedule(*fn.model, fn.demandRps, fn.slo,
                                          32, cluster);
              for (const auto &plan : plans) {
                  fleet_up += plan.bounds.up;
                  fleet_cost +=
                      plan.config.resources.weighted(beta);
              }
              break;
          }
          case SystemKind::Batch:
          case SystemKind::BatchRs: {
              // BATCH's adaptive uniform choice over its config menu.
              std::vector<cluster::Resources> menu = {{1000, 10, 0},
                                                      {2000, 20, 0},
                                                      {4000, 30, 0}};
              core::CandidateConfig best;
              double best_value = -1.0;
              for (int b : {1, 2, 4, 8}) {
                  for (cluster::Resources res : menu) {
                      res.memoryMb = sched.instanceMemoryMb(*fn.model);
                      sim::Tick t = cop.predict(*fn.model, b, res);
                      if (!core::execFeasible(t, fn.slo, b))
                          continue;
                      auto bounds = core::rpsBounds(t, fn.slo, b);
                      double value = bounds.up / res.weighted(beta);
                      if (value > best_value) {
                          best_value = value;
                          best.config = cluster::InstanceConfig{b, res};
                          best.execPredicted = t;
                          best.bounds = bounds;
                      }
                  }
              }
              if (best_value < 0)
                  break;
              auto plans = core::uniformSchedule(
                  best, fn.demandRps, cluster,
                  kind == SystemKind::BatchRs, beta,
                  best.config.resources.memoryMb);
              for (const auto &plan : plans) {
                  fleet_up += plan.bounds.up;
                  fleet_cost += plan.config.resources.weighted(beta);
              }
              break;
          }
          case SystemKind::OpenFaas: {
              cluster::Resources res{2000, 10, 0};
              res.memoryMb = sched.instanceMemoryMb(*fn.model);
              sim::Tick t = cop.predict(*fn.model, 1, res);
              core::CandidateConfig config;
              config.config = cluster::InstanceConfig{1, res};
              config.execPredicted = t;
              config.bounds.up =
                  1.0 / sim::ticksToSec(std::max<sim::Tick>(1, t));
              config.bounds.low = 0.0;
              auto plans = core::uniformSchedule(
                  config, fn.demandRps, cluster, false, beta, res.memoryMb);
              for (const auto &plan : plans) {
                  fleet_up += plan.bounds.up;
                  fleet_cost += plan.config.resources.weighted(beta);
              }
              break;
          }
        }
        result.servedRps += std::min(fleet_up, fn.demandRps);
        result.weightedCost += fleet_cost;
    }
    return result;
}

} // namespace

int
main()
{
    printHeading(std::cout,
                 "Figure 18(a): throughput per unit resource vs number "
                 "of functions (2,000-server simulation, SLO 200ms)");
    TextTable by_count({"functions", "OpenFaaS+", "BATCH", "INFless",
                        "INFless/BATCH"});
    for (int count : {10, 20, 30, 40}) {
        auto functions = makeFunctions(count, msToTicks(200), 97);
        double ofp =
            provision(SystemKind::OpenFaas, functions).throughputPerResource();
        double batch =
            provision(SystemKind::Batch, functions).throughputPerResource();
        double infl =
            provision(SystemKind::Infless, functions).throughputPerResource();
        by_count.addRow({std::to_string(count), fmt(ofp, 1), fmt(batch, 1),
                         fmt(infl, 1),
                         batch > 0 ? fmt(infl / batch, 1) + "x" : "-"});
    }
    by_count.print(std::cout);
    std::cout << "  (paper: INFless sustains 2.6x BATCH and 4.2x "
                 "OpenFaaS+ at scale)\n";

    printHeading(std::cout,
                 "Figure 18(b): throughput per unit resource vs SLO "
                 "(20 functions)");
    TextTable by_slo({"SLO (ms)", "INFless tpr"});
    double tight = 0.0;
    for (int slo_ms : {150, 200, 250, 300}) {
        auto functions = makeFunctions(20, msToTicks(slo_ms), 97);
        double tpr =
            provision(SystemKind::Infless, functions).throughputPerResource();
        if (slo_ms == 150)
            tight = tpr;
        by_slo.addRow({std::to_string(slo_ms), fmt(tpr, 1)});
    }
    by_slo.print(std::cout);
    std::cout << "  relaxing the SLO from 150ms to 300ms should raise "
                 "throughput per resource (paper: 0.7 -> 1.0, i.e. about "
                 "1.4x; tight-SLO baseline here: "
              << fmt(tight, 1) << ")\n";
    return 0;
}
