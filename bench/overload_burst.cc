/**
 * @file
 * Overload-burst bench: goodput under a periodic burst train whose peaks
 * reach half to four times the calibrated capacity, with the overload
 * control plane off, admission-only, and fully engaged.
 *
 * Not a paper figure: the paper's stress test (Fig. 11) stops at the
 * throughput knee, but production gateways get pushed past it — and in
 * bursts, not at a steady rate. The workload alternates a modest base
 * load with short bursts at multiplier x capacity. Undefended, the
 * autoscaler scales in during every trough and each burst onset lands on
 * a cold fleet: a storm of cold-start SLO violations and over-submission
 * drops, repeated every cycle. The full stack sheds the unservable head
 * of each burst at ingress, and brownout pins the fleet (scale-in is
 * deferred while pressure persists), so later bursts land warm. Each row
 * self-checks request conservation.
 *
 * Emits BENCH_overload.json plus a per-second shed/drop/breaker-state
 * timeline (overload_timeline.csv) of one full-stack run at the highest
 * multiplier. `--smoke` shrinks the sweep for CI. `--trace` additionally
 * records that run's request lifecycle and breaker/brownout transition
 * markers into a Perfetto-loadable overload_trace.json.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/harness.hh"
#include "common/parallel_sweep.hh"
#include "metrics/report.hh"
#include "metrics/timeline.hh"
#include "workload/generators.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;

enum class Defense
{
    None,
    Admission,
    Full
};

const char *
defenseName(Defense d)
{
    switch (d) {
      case Defense::None:
        return "none";
      case Defense::Admission:
        return "admission";
      case Defense::Full:
        return "full";
    }
    return "?";
}

overload::OverloadConfig
defenseConfig(Defense d)
{
    switch (d) {
      case Defense::None:
        return {};
      case Defense::Admission: {
        overload::OverloadConfig cfg;
        cfg.admission.enabled = true;
        return cfg;
      }
      case Defense::Full:
        return overload::OverloadConfig::fullStack();
    }
    return {};
}

struct SweepConfig
{
    std::size_t servers = 8;
    std::string model = "ResNet-50";
    sim::Tick slo = 200 * sim::kTicksPerMs;
    sim::Tick duration = 60 * sim::kTicksPerSec;
    sim::Tick grace = 10 * sim::kTicksPerSec;
    /** Burst train: `burstSec` at multiplier x capacity at the head of
     *  every `periodSec`, base load in between. */
    sim::Tick burstLen = 3 * sim::kTicksPerSec;
    sim::Tick period = 10 * sim::kTicksPerSec;
    double baseFraction = 0.4;
    /** Calibration sweep bounds (the undefended capacity knee). */
    double calibMaxOffered = 16'000.0;
    sim::Tick calibDuration = 30 * sim::kTicksPerSec;
    std::vector<double> multipliers = {0.5, 1.0, 1.5, 2.0, 3.0, 4.0};
    std::vector<Defense> defenses = {Defense::None, Defense::Admission,
                                     Defense::Full};
};

/** Periodic burst train in 1s bins (the default bin is a whole minute,
 *  which would silently round short durations up and skew every rate). */
workload::RateSeries
burstTrain(const SweepConfig &cfg, double multiplier, double capacity_rps)
{
    workload::RateSeries series;
    series.binWidth = sim::kTicksPerSec;
    auto bins =
        static_cast<std::size_t>(cfg.duration / sim::kTicksPerSec);
    series.rps.reserve(bins);
    for (std::size_t b = 0; b < bins; ++b) {
        sim::Tick phase =
            (static_cast<sim::Tick>(b) * sim::kTicksPerSec) % cfg.period;
        series.rps.push_back(phase < cfg.burstLen
                                 ? multiplier * capacity_rps
                                 : cfg.baseFraction * capacity_rps);
    }
    return series;
}

struct SweepPoint
{
    Defense defense = Defense::None;
    double multiplier = 0.0;
    ScenarioResult result;
    /** Completions inside the nominal SLO, per second. */
    double goodputRps = 0.0;
    /** Completions inside the degraded (2x) SLO, per second. */
    double degradedGoodputRps = 0.0;
    double p99Ms = 0.0;
    bool consistent = false;
};

SweepPoint
runPoint(const SweepConfig &cfg, Defense defense, double multiplier,
         double capacity_rps)
{
    SweepPoint point;
    point.defense = defense;
    point.multiplier = multiplier;

    core::PlatformOptions opts;
    opts.overload = defenseConfig(defense);
    auto platform = makeSystem(SystemKind::Infless, cfg.servers,
                               std::move(opts));

    std::vector<WorkloadSpec> workloads(1);
    workloads[0].model = cfg.model;
    workloads[0].slo = cfg.slo;
    workloads[0].series = burstTrain(cfg, multiplier, capacity_rps);

    point.result = runScenario(*platform, workloads, cfg.grace);

    const metrics::RunMetrics &m = platform->totalMetrics();
    double run_sec = sim::ticksToSec(platform->simulation().now());
    point.goodputRps =
        static_cast<double>(m.completions() - m.sloViolations()) / run_sec;
    sim::Tick degraded_slo = static_cast<sim::Tick>(
        static_cast<double>(cfg.slo) *
        overload::BrownoutConfig{}.degradedSloMultiplier);
    point.degradedGoodputRps =
        static_cast<double>(m.completions()) *
        (1.0 - m.latency().fractionAbove(degraded_slo)) / run_sec;
    point.p99Ms = sim::ticksToSec(m.latency().percentile(99.0)) * 1e3;
    point.consistent = point.result.completions + point.result.drops ==
                       point.result.arrivals;
    return point;
}

/**
 * Demo run for the timeline/trace artifacts: the bounded-queue + breaker
 * + brownout stack (admission off, so SLO violations actually reach the
 * breaker) at the highest multiplier, with an aggressive breaker tuning
 * that guarantees open/half-open/close transitions inside even the smoke
 * horizon. Runs on a deliberately undersized fixture: drops while new
 * capacity is warming bypass the breaker as provisioning artifacts, so
 * transitions need bursts that exceed what the *fully scaled* fleet can
 * serve, and the sweep's cluster absorbs every multiplier once warm.
 */
constexpr std::size_t kDemoServers = 2;

core::PlatformOptions
demoOptions(bool with_trace)
{
    core::PlatformOptions opts;
    opts.overload.queue.depthCap = 64;
    opts.overload.queue.evictOldest = true;
    opts.overload.breaker.enabled = true;
    opts.overload.breaker.window = 2 * sim::kTicksPerSec;
    opts.overload.breaker.windowBuckets = 8;
    opts.overload.breaker.openThreshold = 0.3;
    opts.overload.breaker.minSamples = 10;
    opts.overload.breaker.openDuration = sim::kTicksPerSec;
    opts.overload.breaker.probeFraction = 0.2;
    opts.overload.retryBudget.enabled = true;
    opts.overload.brownout.enabled = true;
    opts.overload.brownout.minSamples = 30;
    opts.overload.brownout.enterThreshold = 0.10;
    opts.overload.brownout.minHold = 5 * sim::kTicksPerSec;
    if (with_trace) {
        opts.obs.trace.sampleRate = 1.0;
        opts.obs.trace.capacity = std::size_t{1} << 17;
    }
    return opts;
}

SweepPoint
runDemo(const SweepConfig &cfg, double capacity_rps, bool with_trace)
{
    double multiplier = cfg.multipliers.back();
    auto platform = makeSystem(SystemKind::Infless, kDemoServers,
                               demoOptions(with_trace));

    std::vector<WorkloadSpec> workloads(1);
    workloads[0].model = cfg.model;
    workloads[0].slo = cfg.slo;
    workloads[0].series = burstTrain(cfg, multiplier, capacity_rps);

    metrics::TimelineSampler sampler(platform->simulation(),
                                     sim::kTicksPerSec);
    const auto &m = platform->totalMetrics();
    sampler.trackCounter("sheds", [&m] {
        return static_cast<double>(m.sheds() + m.breakerSheds());
    });
    sampler.trackCounter("drops", [&m] {
        return static_cast<double>(m.drops());
    });
    sampler.trackCounter("evictions", [&m] {
        return static_cast<double>(m.queueEvictions());
    });
    // Gauge series: the single demo function deploys as id 0.
    sampler.track("breaker_state", [&p = *platform] {
        return static_cast<double>(p.overloadSnapshot(0).breakerState);
    });
    sampler.track("brownout_active", [&p = *platform] {
        return p.overloadSnapshot(0).brownoutActive ? 1.0 : 0.0;
    });

    SweepPoint point;
    point.defense = Defense::Full;
    point.multiplier = multiplier;
    point.result = runScenario(*platform, workloads, cfg.grace);
    point.consistent = point.result.completions + point.result.drops ==
                       point.result.arrivals;

    sampler.stop();
    {
        std::ofstream csv("overload_timeline.csv");
        sampler.writeCsv(csv);
    }
    if (with_trace) {
        std::ofstream ofs("overload_trace.json");
        platform->tracer().writeChromeTrace(ofs);
    }
    if (telemetryEnabled()) {
        // Written after the sweep rows so the breaker-state timeline
        // survives the harness's last-writer-wins telemetry file.
        obs::TelemetryRegistry telemetry =
            buildTelemetry(*platform, "overload_burst");
        telemetry.addTimeline(sampler);
        writeTelemetryFiles(telemetry);
    }
    return point;
}

void
writeBenchJson(const SweepConfig &cfg, double capacity_rps,
               const std::vector<SweepPoint> &points,
               const SweepPoint &demo, double none_2x, double full_2x,
               const std::string &path)
{
    std::ofstream out(path);
    out << "{\n"
        << "  \"benchmark\": \"overload_burst\",\n"
        << "  \"model\": \"" << cfg.model << "\",\n"
        << "  \"servers\": " << cfg.servers << ",\n"
        << "  \"slo_ms\": " << sim::ticksToSec(cfg.slo) * 1e3 << ",\n"
        << "  \"duration_sec\": " << sim::ticksToSec(cfg.duration)
        << ",\n"
        << "  \"burst_sec\": " << sim::ticksToSec(cfg.burstLen) << ",\n"
        << "  \"period_sec\": " << sim::ticksToSec(cfg.period) << ",\n"
        << "  \"base_fraction\": " << cfg.baseFraction << ",\n"
        << "  \"capacity_rps\": " << capacity_rps << ",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        const ScenarioResult &r = p.result;
        out << "    {\"defense\": \"" << defenseName(p.defense) << "\""
            << ", \"multiplier\": " << p.multiplier
            << ", \"offered_rps\": " << r.offeredRps
            << ", \"completed_rps\": " << r.completedRps
            << ", \"goodput_rps\": " << p.goodputRps
            << ", \"degraded_goodput_rps\": " << p.degradedGoodputRps
            << ", \"p99_ms\": " << p.p99Ms
            << ", \"slo_violation_rate\": " << r.sloViolationRate
            << ", \"arrivals\": " << r.arrivals
            << ", \"completions\": " << r.completions
            << ", \"drops\": " << r.drops
            << ", \"sheds\": " << r.sheds
            << ", \"breaker_sheds\": " << r.breakerSheds
            << ", \"queue_evictions\": " << r.queueEvictions
            << ", \"retry_budget_exhausted\": " << r.retryBudgetExhausted
            << ", \"breaker_opens\": " << r.breakerOpens
            << ", \"brownout_entries\": " << r.brownoutEntries
            << ", \"truncated\": " << (r.truncated ? "true" : "false")
            << ", \"consistent\": " << (p.consistent ? "true" : "false")
            << "},\n";
    }
    const ScenarioResult &d = demo.result;
    out << "    {\"defense\": \"demo\""
        << ", \"multiplier\": " << demo.multiplier
        << ", \"offered_rps\": " << d.offeredRps
        << ", \"completed_rps\": " << d.completedRps
        << ", \"sheds\": " << d.sheds
        << ", \"breaker_sheds\": " << d.breakerSheds
        << ", \"queue_evictions\": " << d.queueEvictions
        << ", \"breaker_opens\": " << d.breakerOpens
        << ", \"breaker_closes\": " << d.breakerCloses
        << ", \"brownout_entries\": " << d.brownoutEntries
        << ", \"truncated\": " << (d.truncated ? "true" : "false")
        << ", \"consistent\": " << (demo.consistent ? "true" : "false")
        << "}\n";
    out << "  ],\n"
        << "  \"goodput_2x_none\": " << none_2x << ",\n"
        << "  \"goodput_2x_full\": " << full_2x << ",\n"
        << "  \"graceful\": " << (full_2x >= none_2x ? "true" : "false")
        << "\n"
        << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool trace = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        if (std::strcmp(argv[i], "--trace") == 0)
            trace = true;
    }

    SweepConfig cfg;
    if (smoke) {
        // CI-sized: fewer multipliers, short runs, a cheaper calibration
        // ladder. The breaker/brownout demo still covers its state
        // machine thanks to the aggressive demo tuning.
        cfg.duration = 20 * sim::kTicksPerSec;
        cfg.grace = 5 * sim::kTicksPerSec;
        cfg.calibMaxOffered = 4'000.0;
        cfg.calibDuration = 10 * sim::kTicksPerSec;
        cfg.multipliers = {0.5, 2.0, 4.0};
    }

    printHeading(std::cout,
                 "Overload burst: " + cfg.model + " on " +
                     std::to_string(cfg.servers) +
                     " servers; offered load x defense stack");

    // Calibrate: the undefended system's goodput knee is the 1x point of
    // the multiplier axis.
    double capacity = measureMaxRps(SystemKind::Infless, {cfg.model},
                                    cfg.slo, cfg.servers, {},
                                    cfg.calibMaxOffered, cfg.calibDuration);
    std::cout << "  calibrated capacity: " << fmt(capacity, 0)
              << " RPS (undefended goodput knee)\n";

    struct Cell
    {
        Defense defense = Defense::None;
        double multiplier = 0.0;
    };
    std::vector<Cell> cells;
    for (double mult : cfg.multipliers)
        for (Defense defense : cfg.defenses)
            cells.push_back({defense, mult});

    std::vector<SweepPoint> points =
        ParallelSweep::map(cells, [&cfg, capacity](const Cell &cell) {
            return runPoint(cfg, cell.defense, cell.multiplier, capacity);
        });

    // Timeline/trace demo: serial, after the sweep, so its telemetry
    // write is the file's last.
    SweepPoint demo = runDemo(cfg, capacity, trace);

    TextTable table({"defense", "load", "offered", "goodput",
                     "degraded-goodput", "p99 ms", "viol rate", "sheds",
                     "evictions", "consistent"});
    bool all_consistent = true;
    for (const SweepPoint &p : points) {
        all_consistent = all_consistent && p.consistent;
        table.addRow(
            {defenseName(p.defense), fmt(p.multiplier, 1) + "x",
             fmt(p.result.offeredRps, 0), fmt(p.goodputRps, 0),
             fmt(p.degradedGoodputRps, 0), fmt(p.p99Ms, 1),
             fmtPercent(p.result.sloViolationRate),
             std::to_string(p.result.sheds + p.result.breakerSheds),
             std::to_string(p.result.queueEvictions),
             p.consistent ? "yes" : "NO"});
    }
    all_consistent = all_consistent && demo.consistent;
    table.print(std::cout);

    // Acceptance signal: at 2x offered load the full stack must hold at
    // least the undefended goodput (graceful degradation, not collapse).
    auto goodput_at = [&points](Defense defense, double mult) {
        for (const SweepPoint &p : points)
            if (p.defense == defense && p.multiplier == mult)
                return p.goodputRps;
        return 0.0;
    };
    double none_2x = goodput_at(Defense::None, 2.0);
    double full_2x = goodput_at(Defense::Full, 2.0);
    std::cout << "  goodput at 2x load: undefended " << fmt(none_2x, 0)
              << " RPS vs full stack " << fmt(full_2x, 0) << " RPS ("
              << (full_2x >= none_2x ? "graceful" : "NOT graceful")
              << ")\n";

    writeBenchJson(cfg, capacity, points, demo, none_2x, full_2x,
                   "BENCH_overload.json");
    std::cout << "  (rows written to BENCH_overload.json; shed/breaker "
                 "timeline of the full-stack demo run in "
                 "overload_timeline.csv)\n";

    if (!all_consistent) {
        std::cerr << "ERROR: request conservation violated "
                     "(completions + drops != arrivals)\n";
        return 1;
    }
    return 0;
}
