/**
 * @file
 * Overload-burst bench: goodput under a periodic burst train whose peaks
 * reach half to four times the calibrated capacity, comparing admission
 * modes — no gate, static (feedforward, profile-driven) admission, the
 * full PR-5 stack, and the adaptive (feedback, gradient) concurrency
 * limiter — with the profiler both accurate and lying.
 *
 * Not a paper figure: the paper's stress test (Fig. 11) stops at the
 * throughput knee, but production gateways get pushed past it — and in
 * bursts, not at a steady rate. The workload alternates a modest base
 * load with short bursts at multiplier x capacity. Undefended, the
 * autoscaler scales in during every trough and each burst onset lands on
 * a cold fleet: a storm of cold-start SLO violations and over-submission
 * drops, repeated every cycle. Static admission sheds the unservable
 * head of each burst at ingress — but it trusts the profiled latency
 * surface. The mispredicted rows re-run the knee point with a
 * pessimistic profiler (every prediction scaled 1.5x high): all
 * feedforward consumers now see phantom congestion — admission sheds at
 * two-thirds of its calibrated queue depth and batch deadlines shrink —
 * while the gradient limiter never reads a prediction and keeps gating
 * on observed RTT alone. The acceptance gate requires adaptive
 * SLO-goodput >= static's under that injected profile error: feedback
 * control must hold the line a lying model cannot move. Each row
 * self-checks request conservation.
 *
 * Emits BENCH_overload.json plus a per-second shed/drop/breaker-state
 * timeline (overload_timeline.csv) of one full-stack run at the highest
 * multiplier and a limiter-state timeline
 * (overload_adaptive_timeline.csv) of an adaptive run under the lying
 * profiler. `--smoke` shrinks the sweep for CI. `--trace` additionally
 * records those runs' request lifecycles into Perfetto-loadable
 * overload_trace.json / overload_adaptive_trace.json.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/harness.hh"
#include "common/parallel_sweep.hh"
#include "metrics/report.hh"
#include "metrics/timeline.hh"
#include "workload/generators.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using metrics::TextTable;

enum class Defense
{
    None,
    Admission,
    Full,
    Adaptive
};

const char *
defenseName(Defense d)
{
    switch (d) {
      case Defense::None:
        return "none";
      case Defense::Admission:
        return "admission";
      case Defense::Full:
        return "full";
      case Defense::Adaptive:
        return "adaptive";
    }
    return "?";
}

/** Admission-mode label of a defense (the feedforward-vs-feedback axis;
 *  the full stack gates with static admission). */
const char *
modeName(Defense d)
{
    switch (d) {
      case Defense::None:
        return "none";
      case Defense::Admission:
      case Defense::Full:
        return "static";
      case Defense::Adaptive:
        return "adaptive";
    }
    return "?";
}

overload::OverloadConfig
defenseConfig(Defense d)
{
    switch (d) {
      case Defense::None:
        return {};
      case Defense::Admission: {
        overload::OverloadConfig cfg;
        cfg.admission.enabled = true;
        return cfg;
      }
      case Defense::Full:
        return overload::OverloadConfig::fullStack();
      case Defense::Adaptive: {
        // The pure feedback gate: no profile-driven admission, no
        // breaker — whatever the limiter cannot prove servable from
        // observed RTT is shed at ingress.
        overload::OverloadConfig cfg;
        cfg.mode = overload::AdmissionMode::Adaptive;
        return cfg;
      }
    }
    return {};
}

struct SweepConfig
{
    std::size_t servers = 8;
    std::string model = "ResNet-50";
    sim::Tick slo = 200 * sim::kTicksPerMs;
    sim::Tick duration = 60 * sim::kTicksPerSec;
    sim::Tick grace = 10 * sim::kTicksPerSec;
    /** Burst train: `burstSec` at multiplier x capacity at the head of
     *  every `periodSec`, base load in between. */
    sim::Tick burstLen = 3 * sim::kTicksPerSec;
    sim::Tick period = 10 * sim::kTicksPerSec;
    double baseFraction = 0.4;
    /** Calibration sweep bounds (the undefended capacity knee). */
    double calibMaxOffered = 16'000.0;
    sim::Tick calibDuration = 30 * sim::kTicksPerSec;
    /**
     * Profiler error of the mispredicted rows: every prediction is
     * scaled by this factor while execution truth is untouched. 1.5
     * makes the profiler pessimistic by 1.5x: every feedforward
     * consumer sees phantom congestion — static admission's shed
     * threshold drops to 1/1.5 of its calibrated queue depth, batch
     * deadlines shrink, and the scheduler provisions against inflated
     * service times — while the feedback limiter, which never reads a
     * prediction, keeps gating on observed RTT alone.
     */
    double profileErrorFactor = 1.5;
    /** Multiplier at which the mispredicted 3-way comparison runs (the
     *  gate point: twice the capacity knee). */
    double errorMultiplier = 2.0;
    std::vector<double> multipliers = {0.5, 1.0, 1.5, 2.0, 3.0, 4.0};
    std::vector<Defense> defenses = {Defense::None, Defense::Admission,
                                     Defense::Full, Defense::Adaptive};
};

/** Periodic burst train in 1s bins (the default bin is a whole minute,
 *  which would silently round short durations up and skew every rate). */
workload::RateSeries
burstTrain(const SweepConfig &cfg, double multiplier, double capacity_rps)
{
    workload::RateSeries series;
    series.binWidth = sim::kTicksPerSec;
    auto bins =
        static_cast<std::size_t>(cfg.duration / sim::kTicksPerSec);
    series.rps.reserve(bins);
    for (std::size_t b = 0; b < bins; ++b) {
        sim::Tick phase =
            (static_cast<sim::Tick>(b) * sim::kTicksPerSec) % cfg.period;
        series.rps.push_back(phase < cfg.burstLen
                                 ? multiplier * capacity_rps
                                 : cfg.baseFraction * capacity_rps);
    }
    return series;
}

struct SweepPoint
{
    Defense defense = Defense::None;
    double multiplier = 0.0;
    /** Profiler distortion this row ran under (1 = accurate). */
    double profileError = 1.0;
    ScenarioResult result;
    /** Completions inside the nominal SLO, per second. */
    double goodputRps = 0.0;
    /** Completions inside the degraded (2x) SLO, per second. */
    double degradedGoodputRps = 0.0;
    double p99Ms = 0.0;
    /** Limiter state at run end (adaptive rows; zero otherwise). */
    double limitFinal = 0.0;
    double limitMinRttMs = 0.0;
    double limitGradient = 0.0;
    bool consistent = false;
};

SweepPoint
runPoint(const SweepConfig &cfg, Defense defense, double multiplier,
         double capacity_rps, double profile_error)
{
    SweepPoint point;
    point.defense = defense;
    point.multiplier = multiplier;
    point.profileError = profile_error;

    core::PlatformOptions opts;
    opts.overload = defenseConfig(defense);
    opts.faults.profileError.factor = profile_error;
    auto platform = makeSystem(SystemKind::Infless, cfg.servers,
                               std::move(opts));

    std::vector<WorkloadSpec> workloads(1);
    workloads[0].model = cfg.model;
    workloads[0].slo = cfg.slo;
    workloads[0].series = burstTrain(cfg, multiplier, capacity_rps);

    point.result = runScenario(*platform, workloads, cfg.grace);

    const metrics::RunMetrics &m = platform->totalMetrics();
    double run_sec = sim::ticksToSec(platform->simulation().now());
    point.goodputRps =
        static_cast<double>(m.completions() - m.sloViolations()) / run_sec;
    sim::Tick degraded_slo = static_cast<sim::Tick>(
        static_cast<double>(cfg.slo) *
        overload::BrownoutConfig{}.degradedSloMultiplier);
    point.degradedGoodputRps =
        static_cast<double>(m.completions()) *
        (1.0 - m.latency().fractionAbove(degraded_slo)) / run_sec;
    point.p99Ms = sim::ticksToSec(m.latency().percentile(99.0)) * 1e3;
    if (defense == Defense::Adaptive) {
        core::OverloadSnapshot snap = platform->overloadSnapshot(0);
        point.limitFinal = snap.limit;
        point.limitMinRttMs =
            sim::ticksToSec(snap.limiterMinRtt) * 1e3;
        point.limitGradient = snap.limiterGradient;
    }
    point.consistent = point.result.completions + point.result.drops ==
                       point.result.arrivals;
    return point;
}

/**
 * Demo run for the timeline/trace artifacts: the bounded-queue + breaker
 * + brownout stack (admission off, so SLO violations actually reach the
 * breaker) at the highest multiplier, with an aggressive breaker tuning
 * that guarantees open/half-open/close transitions inside even the smoke
 * horizon. Runs on a deliberately undersized fixture: drops while new
 * capacity is warming bypass the breaker as provisioning artifacts, so
 * transitions need bursts that exceed what the *fully scaled* fleet can
 * serve, and the sweep's cluster absorbs every multiplier once warm.
 */
constexpr std::size_t kDemoServers = 2;

core::PlatformOptions
demoOptions(bool with_trace)
{
    core::PlatformOptions opts;
    opts.overload.queue.depthCap = 64;
    opts.overload.queue.evictOldest = true;
    opts.overload.breaker.enabled = true;
    opts.overload.breaker.window = 2 * sim::kTicksPerSec;
    opts.overload.breaker.windowBuckets = 8;
    opts.overload.breaker.openThreshold = 0.3;
    opts.overload.breaker.minSamples = 10;
    opts.overload.breaker.openDuration = sim::kTicksPerSec;
    opts.overload.breaker.probeFraction = 0.2;
    opts.overload.retryBudget.enabled = true;
    opts.overload.brownout.enabled = true;
    opts.overload.brownout.minSamples = 30;
    opts.overload.brownout.enterThreshold = 0.10;
    opts.overload.brownout.minHold = 5 * sim::kTicksPerSec;
    if (with_trace) {
        opts.obs.trace.sampleRate = 1.0;
        opts.obs.trace.capacity = std::size_t{1} << 17;
    }
    return opts;
}

SweepPoint
runDemo(const SweepConfig &cfg, double capacity_rps, bool with_trace)
{
    double multiplier = cfg.multipliers.back();
    auto platform = makeSystem(SystemKind::Infless, kDemoServers,
                               demoOptions(with_trace));

    std::vector<WorkloadSpec> workloads(1);
    workloads[0].model = cfg.model;
    workloads[0].slo = cfg.slo;
    workloads[0].series = burstTrain(cfg, multiplier, capacity_rps);

    metrics::TimelineSampler sampler(platform->simulation(),
                                     sim::kTicksPerSec);
    const auto &m = platform->totalMetrics();
    sampler.trackCounter("sheds", [&m] {
        return static_cast<double>(m.sheds() + m.breakerSheds());
    });
    sampler.trackCounter("drops", [&m] {
        return static_cast<double>(m.drops());
    });
    sampler.trackCounter("evictions", [&m] {
        return static_cast<double>(m.queueEvictions());
    });
    // Gauge series: the single demo function deploys as id 0.
    sampler.track("breaker_state", [&p = *platform] {
        return static_cast<double>(p.overloadSnapshot(0).breakerState);
    });
    sampler.track("brownout_active", [&p = *platform] {
        return p.overloadSnapshot(0).brownoutActive ? 1.0 : 0.0;
    });

    SweepPoint point;
    point.defense = Defense::Full;
    point.multiplier = multiplier;
    point.result = runScenario(*platform, workloads, cfg.grace);
    point.consistent = point.result.completions + point.result.drops ==
                       point.result.arrivals;

    sampler.stop();
    {
        std::ofstream csv("overload_timeline.csv");
        sampler.writeCsv(csv);
    }
    if (with_trace) {
        std::ofstream ofs("overload_trace.json");
        platform->tracer().writeChromeTrace(ofs);
    }
    if (telemetryEnabled()) {
        // Written after the sweep rows so the breaker-state timeline
        // survives the harness's last-writer-wins telemetry file.
        obs::TelemetryRegistry telemetry =
            buildTelemetry(*platform, "overload_burst");
        telemetry.addTimeline(sampler);
        writeTelemetryFiles(telemetry);
    }
    return point;
}

/**
 * Adaptive demo: the gradient limiter on the same undersized fixture,
 * under the lying profiler, so the limiter visibly engages — the limit
 * grows out of warmup against the backlog drain, then backs off through
 * each burst's SLO violations (growth frozen per cooldown) until it
 * binds and sheds, and re-grows in the troughs. Emits the limiter state
 * series (limit, in-flight, minRTT, gradient, sheds, backoffs) per
 * second.
 */
SweepPoint
runAdaptiveDemo(const SweepConfig &cfg, double capacity_rps,
                bool with_trace)
{
    // The limiter needs several burst/trough cycles to warm up, back
    // off to the binding point, and shed: floor the demo at six bursts
    // even under --smoke (a serial 2-server run, so the CI cost is
    // small), or the trace would have no limiter_shed instants.
    SweepConfig demo_cfg = cfg;
    demo_cfg.duration =
        std::max(demo_cfg.duration, 60 * sim::kTicksPerSec);
    double multiplier = cfg.multipliers.back();
    core::PlatformOptions opts;
    opts.overload.mode = overload::AdmissionMode::Adaptive;
    // The demo fixture is chronically starved, the configuration the
    // growth freeze exists for: without it the healthy majority regrows
    // every backoff cut and the limit never descends below the queue's
    // in-flight ceiling, so the limiter would never visibly shed.
    opts.overload.adaptive.growthFreeze = true;
    opts.faults.profileError.factor = cfg.profileErrorFactor;
    if (with_trace) {
        opts.obs.trace.sampleRate = 1.0;
        opts.obs.trace.capacity = std::size_t{1} << 17;
    }
    auto platform = makeSystem(SystemKind::Infless, kDemoServers,
                               std::move(opts));

    std::vector<WorkloadSpec> workloads(1);
    workloads[0].model = cfg.model;
    workloads[0].slo = cfg.slo;
    workloads[0].series = burstTrain(demo_cfg, multiplier, capacity_rps);

    metrics::TimelineSampler sampler(platform->simulation(),
                                     sim::kTicksPerSec);
    const auto &m = platform->totalMetrics();
    sampler.track("limit", [&p = *platform] {
        return p.overloadSnapshot(0).limit;
    });
    sampler.track("limiter_inflight", [&p = *platform] {
        return static_cast<double>(
            p.overloadSnapshot(0).limiterInFlight);
    });
    sampler.track("limiter_min_rtt_ms", [&p = *platform] {
        return sim::ticksToSec(p.overloadSnapshot(0).limiterMinRtt) * 1e3;
    });
    sampler.track("limiter_gradient", [&p = *platform] {
        return p.overloadSnapshot(0).limiterGradient;
    });
    sampler.trackCounter("limiter_sheds", [&m] {
        return static_cast<double>(m.limiterSheds());
    });
    sampler.trackCounter("limiter_backoffs", [&m] {
        return static_cast<double>(m.limiterBackoffs());
    });

    SweepPoint point;
    point.defense = Defense::Adaptive;
    point.multiplier = multiplier;
    point.profileError = cfg.profileErrorFactor;
    point.result = runScenario(*platform, workloads, cfg.grace);
    point.consistent = point.result.completions + point.result.drops ==
                       point.result.arrivals;
    core::OverloadSnapshot snap = platform->overloadSnapshot(0);
    point.limitFinal = snap.limit;
    point.limitMinRttMs = sim::ticksToSec(snap.limiterMinRtt) * 1e3;
    point.limitGradient = snap.limiterGradient;

    sampler.stop();
    {
        std::ofstream csv("overload_adaptive_timeline.csv");
        sampler.writeCsv(csv);
    }
    if (with_trace) {
        std::ofstream ofs("overload_adaptive_trace.json");
        platform->tracer().writeChromeTrace(ofs);
    }
    if (telemetryEnabled()) {
        // The limiter state series ride this snapshot; the SLO health
        // demo overwrites the files afterwards, but the limiter *counter*
        // names survive (addRunMetrics emits them for every run).
        obs::TelemetryRegistry telemetry =
            buildTelemetry(*platform, "overload_burst_adaptive");
        telemetry.addTimeline(sampler);
        writeTelemetryFiles(telemetry);
    }
    return point;
}

/**
 * SLO health demo: the burn-rate monitor plus the always-on flight
 * recorder on the undersized fixture at the gate multiplier (2x the
 * calibrated knee — ~8x what two servers serve). The burst head lands
 * on a cold fleet, the first windows run a violation fraction far over
 * the 5% budget, and the fast rule must page within its two-window span;
 * the first firing edge freezes the flight dump, whose instant the bench
 * gate requires to coincide with the alert. No other defense is armed,
 * so the SLO alert is the only flight trigger.
 */
struct SloDemo
{
    SweepPoint point;
    /** Single-window burn of every closed window, in order (fn 0). */
    std::vector<double> windowBurn;
    bool fastFired = false;
    std::int64_t alertsTotal = 0;
    sim::Tick alertTick = 0;
    /** Mean attribution over the firing alert's span (the "why"). */
    double meanColdMs = 0.0;
    double meanQueueMs = 0.0;
    double meanBatchMs = 0.0;
    double meanExecMs = 0.0;
    sim::Tick dumpTick = 0;
    std::size_t dumpSpans = 0;
    bool dumpCoincides = false;
};

SloDemo
runSloHealthDemo(const SweepConfig &cfg, double capacity_rps)
{
    core::PlatformOptions opts;
    opts.obs.slo.enabled = true;
    opts.obs.slo.windowTicks = sim::kTicksPerSec;
    opts.obs.slo.errorBudget = 0.05;
    opts.obs.slo.fast = {8.0, 2};
    opts.obs.slo.slow = {2.0, 12};
    opts.obs.flight.enabled = true;
    auto platform = makeSystem(SystemKind::Infless, kDemoServers,
                               std::move(opts));

    std::vector<WorkloadSpec> workloads(1);
    workloads[0].model = cfg.model;
    workloads[0].slo = cfg.slo;
    workloads[0].series =
        burstTrain(cfg, cfg.errorMultiplier, capacity_rps);

    metrics::TimelineSampler sampler(platform->simulation(),
                                     sim::kTicksPerSec);
    sampler.track("slo_burn_fast", [&p = *platform] {
        return p.sloMonitor().burnRate(0, obs::AlertKind::FastBurn);
    });
    sampler.track("slo_burn_slow", [&p = *platform] {
        return p.sloMonitor().burnRate(0, obs::AlertKind::SlowBurn);
    });
    sampler.trackCounter("slo_alerts", [&p = *platform] {
        return static_cast<double>(p.sloMonitor().alertsFired());
    });

    SloDemo demo;
    demo.point.defense = Defense::None;
    demo.point.multiplier = cfg.errorMultiplier;
    demo.point.result = runScenario(*platform, workloads, cfg.grace);
    demo.point.consistent =
        demo.point.result.completions + demo.point.result.drops ==
        demo.point.result.arrivals;
    sampler.stop();

    const obs::SloMonitor &slo = platform->sloMonitor();
    for (const obs::WindowRow &row : slo.closed(0))
        demo.windowBurn.push_back(row.burn);
    demo.alertsTotal = slo.alertsFired();
    for (const obs::SloAlert &alert : slo.alerts()) {
        if (alert.kind != obs::AlertKind::FastBurn ||
            alert.edge != obs::AlertEdge::Firing)
            continue;
        demo.fastFired = true;
        demo.alertTick = alert.at;
        demo.meanColdMs =
            alert.meanCold / static_cast<double>(sim::kTicksPerMs);
        demo.meanQueueMs =
            alert.meanQueue / static_cast<double>(sim::kTicksPerMs);
        demo.meanBatchMs =
            alert.meanBatch / static_cast<double>(sim::kTicksPerMs);
        demo.meanExecMs =
            alert.meanExec / static_cast<double>(sim::kTicksPerMs);
        break;
    }
    const obs::FlightRecorder &flight = platform->flightRecorder();
    demo.dumpTick = flight.triggerAt();
    demo.dumpSpans = flight.dump().size();
    demo.dumpCoincides =
        flight.triggered() &&
        flight.triggerCause() == obs::FlightTrigger::SloFastBurn &&
        flight.triggerAt() == demo.alertTick;
    // runScenario already dumped, but this demo runs last precisely so
    // flight_trace.json is the alert-frozen ring, not an earlier run's.
    writeFlightDump(flight);

    if (telemetryEnabled()) {
        // Final telemetry writer of the bench: metrics.prom carries live
        // burn-rate gauges and the alert counter (every other metric name
        // still rides along through addRunMetrics).
        obs::TelemetryRegistry telemetry =
            buildTelemetry(*platform, "overload_burst_slo");
        telemetry.addTimeline(sampler);
        writeTelemetryFiles(telemetry);
    }
    return demo;
}

void
writeRow(std::ofstream &out, const SweepPoint &p, const char *defense)
{
    const ScenarioResult &r = p.result;
    out << "    {\"defense\": \"" << defense << "\""
        << ", \"mode\": \"" << modeName(p.defense) << "\""
        << ", \"multiplier\": " << p.multiplier
        << ", \"profile_error\": " << p.profileError
        << ", \"offered_rps\": " << r.offeredRps
        << ", \"completed_rps\": " << r.completedRps
        << ", \"goodput_rps\": " << p.goodputRps
        << ", \"degraded_goodput_rps\": " << p.degradedGoodputRps
        << ", \"p99_ms\": " << p.p99Ms
        << ", \"slo_violation_rate\": " << r.sloViolationRate
        << ", \"arrivals\": " << r.arrivals
        << ", \"completions\": " << r.completions
        << ", \"drops\": " << r.drops
        << ", \"sheds\": " << r.sheds
        << ", \"breaker_sheds\": " << r.breakerSheds
        << ", \"limiter_sheds\": " << r.limiterSheds
        << ", \"limiter_backoffs\": " << r.limiterBackoffs
        << ", \"limit_final\": " << p.limitFinal
        << ", \"limit_min_rtt_ms\": " << p.limitMinRttMs
        << ", \"limit_gradient\": " << p.limitGradient
        << ", \"queue_evictions\": " << r.queueEvictions
        << ", \"retry_budget_exhausted\": " << r.retryBudgetExhausted
        << ", \"breaker_opens\": " << r.breakerOpens
        << ", \"brownout_entries\": " << r.brownoutEntries
        << ", \"truncated\": " << (r.truncated ? "true" : "false")
        << ", \"consistent\": " << (p.consistent ? "true" : "false")
        << "}";
}

struct GateSummary
{
    double none2x = 0.0;
    double full2x = 0.0;
    double staticErr = 0.0;
    double adaptiveErr = 0.0;
    bool graceful() const { return full2x >= none2x; }
    bool feedbackRobust() const { return adaptiveErr >= staticErr; }
};

void
writeBenchJson(const SweepConfig &cfg, double capacity_rps,
               const std::vector<SweepPoint> &points,
               const SweepPoint &demo, const SweepPoint &adaptive_demo,
               const SloDemo &slo_demo, const GateSummary &gate,
               const std::string &path)
{
    std::ofstream out(path);
    out << "{\n"
        << "  \"benchmark\": \"overload_burst\",\n"
        << "  \"model\": \"" << cfg.model << "\",\n"
        << "  \"servers\": " << cfg.servers << ",\n"
        << "  \"slo_ms\": " << sim::ticksToSec(cfg.slo) * 1e3 << ",\n"
        << "  \"duration_sec\": " << sim::ticksToSec(cfg.duration)
        << ",\n"
        << "  \"burst_sec\": " << sim::ticksToSec(cfg.burstLen) << ",\n"
        << "  \"period_sec\": " << sim::ticksToSec(cfg.period) << ",\n"
        << "  \"base_fraction\": " << cfg.baseFraction << ",\n"
        << "  \"capacity_rps\": " << capacity_rps << ",\n"
        << "  \"profile_error_factor\": " << cfg.profileErrorFactor
        << ",\n"
        << "  \"rows\": [\n";
    for (const SweepPoint &p : points) {
        writeRow(out, p, defenseName(p.defense));
        out << ",\n";
    }
    writeRow(out, demo, "demo");
    out << ",\n";
    writeRow(out, adaptive_demo, "demo_adaptive");
    out << ",\n";
    writeRow(out, slo_demo.point, "demo_slo_health");
    out << "\n  ],\n"
        << "  \"slo_window_burn\": [";
    for (std::size_t i = 0; i < slo_demo.windowBurn.size(); ++i)
        out << (i ? ", " : "") << slo_demo.windowBurn[i];
    out << "],\n"
        << "  \"slo_fast_burn_fired\": "
        << (slo_demo.fastFired ? "true" : "false") << ",\n"
        << "  \"slo_alerts_total\": " << slo_demo.alertsTotal << ",\n"
        << "  \"slo_alert_tick\": " << slo_demo.alertTick << ",\n"
        << "  \"slo_alert_mean_cold_ms\": " << slo_demo.meanColdMs
        << ",\n"
        << "  \"slo_alert_mean_queue_ms\": " << slo_demo.meanQueueMs
        << ",\n"
        << "  \"slo_alert_mean_batch_ms\": " << slo_demo.meanBatchMs
        << ",\n"
        << "  \"slo_alert_mean_exec_ms\": " << slo_demo.meanExecMs
        << ",\n"
        << "  \"flight_dump_tick\": " << slo_demo.dumpTick << ",\n"
        << "  \"flight_dump_spans\": " << slo_demo.dumpSpans << ",\n"
        << "  \"flight_dump_coincides\": "
        << (slo_demo.dumpCoincides ? "true" : "false") << ",\n"
        << "  \"goodput_2x_none\": " << gate.none2x << ",\n"
        << "  \"goodput_2x_full\": " << gate.full2x << ",\n"
        << "  \"goodput_2x_static_mispredicted\": " << gate.staticErr
        << ",\n"
        << "  \"goodput_2x_adaptive_mispredicted\": " << gate.adaptiveErr
        << ",\n"
        << "  \"graceful\": " << (gate.graceful() ? "true" : "false")
        << ",\n"
        << "  \"feedback_robust\": "
        << (gate.feedbackRobust() ? "true" : "false") << "\n"
        << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool trace = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        if (std::strcmp(argv[i], "--trace") == 0)
            trace = true;
    }

    SweepConfig cfg;
    if (smoke) {
        // CI-sized: fewer multipliers, short runs, a cheaper calibration
        // ladder. The breaker/brownout demo still covers its state
        // machine thanks to the aggressive demo tuning.
        cfg.duration = 20 * sim::kTicksPerSec;
        cfg.grace = 5 * sim::kTicksPerSec;
        cfg.calibMaxOffered = 4'000.0;
        cfg.calibDuration = 10 * sim::kTicksPerSec;
        cfg.multipliers = {0.5, 2.0, 4.0};
    }

    printHeading(std::cout,
                 "Overload burst: " + cfg.model + " on " +
                     std::to_string(cfg.servers) +
                     " servers; offered load x defense stack");

    // Calibrate: the undefended system's goodput knee is the 1x point of
    // the multiplier axis.
    double capacity = measureMaxRps(SystemKind::Infless, {cfg.model},
                                    cfg.slo, cfg.servers, {},
                                    cfg.calibMaxOffered, cfg.calibDuration);
    std::cout << "  calibrated capacity: " << fmt(capacity, 0)
              << " RPS (undefended goodput knee)\n";

    struct Cell
    {
        Defense defense = Defense::None;
        double multiplier = 0.0;
        double profileError = 1.0;
    };
    std::vector<Cell> cells;
    for (double mult : cfg.multipliers)
        for (Defense defense : cfg.defenses)
            cells.push_back({defense, mult, 1.0});
    // The mispredicted 3-way: none/static/adaptive at the gate point
    // under the lying profiler. The full stack is omitted — its breaker
    // confounds the feedforward-vs-feedback comparison.
    for (Defense defense :
         {Defense::None, Defense::Admission, Defense::Adaptive}) {
        cells.push_back(
            {defense, cfg.errorMultiplier, cfg.profileErrorFactor});
    }

    std::vector<SweepPoint> points =
        ParallelSweep::map(cells, [&cfg, capacity](const Cell &cell) {
            return runPoint(cfg, cell.defense, cell.multiplier, capacity,
                            cell.profileError);
        });

    // Timeline/trace demos: serial, after the sweep. The SLO health demo
    // runs last: its telemetry (live burn rates, alert counter) and its
    // alert-frozen flight_trace.json are the files' final writers.
    SweepPoint demo = runDemo(cfg, capacity, trace);
    SweepPoint adaptive_demo = runAdaptiveDemo(cfg, capacity, trace);
    SloDemo slo_demo = runSloHealthDemo(cfg, capacity);

    TextTable table({"defense", "load", "profiler", "offered", "goodput",
                     "degraded-goodput", "p99 ms", "viol rate", "sheds",
                     "consistent"});
    bool all_consistent = true;
    for (const SweepPoint &p : points) {
        all_consistent = all_consistent && p.consistent;
        table.addRow(
            {defenseName(p.defense), fmt(p.multiplier, 1) + "x",
             p.profileError == 1.0 ? "accurate" : "lying",
             fmt(p.result.offeredRps, 0), fmt(p.goodputRps, 0),
             fmt(p.degradedGoodputRps, 0), fmt(p.p99Ms, 1),
             fmtPercent(p.result.sloViolationRate),
             std::to_string(p.result.sheds + p.result.breakerSheds +
                            p.result.limiterSheds),
             p.consistent ? "yes" : "NO"});
    }
    all_consistent = all_consistent && demo.consistent &&
                     adaptive_demo.consistent &&
                     slo_demo.point.consistent;
    table.print(std::cout);

    auto goodput_at = [&points](Defense defense, double mult,
                                double error) {
        for (const SweepPoint &p : points)
            if (p.defense == defense && p.multiplier == mult &&
                p.profileError == error)
                return p.goodputRps;
        return 0.0;
    };
    GateSummary gate;
    // Acceptance signal 1: at 2x offered load the full stack must hold
    // at least the undefended goodput (graceful degradation).
    gate.none2x = goodput_at(Defense::None, 2.0, 1.0);
    gate.full2x = goodput_at(Defense::Full, 2.0, 1.0);
    // Acceptance signal 2: under the lying profiler the feedback gate
    // must hold at least the feedforward gate's SLO-goodput.
    gate.staticErr = goodput_at(Defense::Admission, cfg.errorMultiplier,
                                cfg.profileErrorFactor);
    gate.adaptiveErr = goodput_at(Defense::Adaptive, cfg.errorMultiplier,
                                  cfg.profileErrorFactor);
    std::cout << "  goodput at 2x load: undefended " << fmt(gate.none2x, 0)
              << " RPS vs full stack " << fmt(gate.full2x, 0) << " RPS ("
              << (gate.graceful() ? "graceful" : "NOT graceful") << ")\n";
    std::cout << "  goodput at " << fmt(cfg.errorMultiplier, 1)
              << "x load, lying profiler (x" << fmt(cfg.profileErrorFactor, 3)
              << "): static " << fmt(gate.staticErr, 0)
              << " RPS vs adaptive " << fmt(gate.adaptiveErr, 0)
              << " RPS ("
              << (gate.feedbackRobust() ? "feedback robust"
                                        : "NOT feedback robust")
              << ")\n";

    std::cout << "  SLO health demo at " << fmt(cfg.errorMultiplier, 1)
              << "x knee: fast-burn "
              << (slo_demo.fastFired ? "fired" : "DID NOT FIRE")
              << " at t=" << sim::ticksToSec(slo_demo.alertTick)
              << "s (mean attribution cold "
              << fmt(slo_demo.meanColdMs, 1) << " ms / queue "
              << fmt(slo_demo.meanQueueMs, 1) << " ms / batch-wait "
              << fmt(slo_demo.meanBatchMs, 1) << " ms / exec "
              << fmt(slo_demo.meanExecMs, 1) << " ms); flight dump "
              << slo_demo.dumpSpans << " spans, "
              << (slo_demo.dumpCoincides ? "coincides with the alert"
                                         : "DOES NOT coincide")
              << "\n";

    writeBenchJson(cfg, capacity, points, demo, adaptive_demo, slo_demo,
                   gate, "BENCH_overload.json");
    std::cout << "  (rows written to BENCH_overload.json; shed/breaker "
                 "timeline of the full-stack demo run in "
                 "overload_timeline.csv; limiter state series of the "
                 "adaptive demo in overload_adaptive_timeline.csv; "
                 "alert-frozen span ring in flight_trace.json)\n";

    if (!all_consistent) {
        std::cerr << "ERROR: request conservation violated "
                     "(completions + drops != arrivals)\n";
        return 1;
    }
    if (!gate.feedbackRobust()) {
        std::cerr << "ERROR: adaptive limiter lost to static admission "
                     "under profile error ("
                  << gate.adaptiveErr << " < " << gate.staticErr
                  << " RPS)\n";
        return 1;
    }
    if (!slo_demo.fastFired || slo_demo.dumpSpans == 0 ||
        !slo_demo.dumpCoincides) {
        std::cerr << "ERROR: SLO health gate failed (fast-burn fired: "
                  << (slo_demo.fastFired ? "yes" : "no")
                  << ", flight dump spans: " << slo_demo.dumpSpans
                  << ", dump coincides with alert: "
                  << (slo_demo.dumpCoincides ? "yes" : "no") << ")\n";
        return 1;
    }
    return 0;
}
