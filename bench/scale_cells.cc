/**
 * @file
 * Sharded-control-plane scale benchmark (BENCH_scale.json).
 *
 * Not a paper figure. The cell partition's acceptance bar is
 * quantitative: at 100k servers the multi-cell engine must sustain
 * >= 3x the single-cell event throughput when >= 8 hardware threads are
 * available. This binary drives the same pre-materialized traces through
 * a flat (cells=1) and a sharded platform at 10k and 100k servers,
 * measures events/sec and scheduler decisions/sec over the run() wall
 * time, cross-checks that both ingest the identical arrival count, and
 * writes the series to BENCH_scale.json. On boxes with fewer than 8
 * hardware threads the speedup gate is reported as not applicable (the
 * barriers and routing are pure overhead without parallel cells) while
 * the throughput numbers are still emitted. `--smoke` runs the 10k
 * points only, shortened for CI.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_platform.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "workload/generators.hh"

namespace {

using namespace infless;
using metrics::fmt;
using metrics::printHeading;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PointResult
{
    std::size_t servers = 0;
    std::size_t cells = 0;
    std::size_t threads = 0;
    std::size_t functions = 0;
    double durationSec = 0.0;
    double constructSec = 0.0;
    double wallSec = 0.0;
    std::uint64_t events = 0;
    std::uint64_t decisions = 0;
    std::int64_t arrivals = 0;
    std::int64_t completions = 0;
    std::int64_t drops = 0;
    int liveInstances = 0;

    double eventsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(events) / wallSec : 0.0;
    }
    double decisionsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(decisions) / wallSec
                             : 0.0;
    }
};

/** The fixed workload of one scale point, shared by both cell configs. */
struct ScaleWorkload
{
    std::vector<std::string> models;
    std::vector<workload::ArrivalTrace> traces;
    sim::Tick horizon = 0;
};

ScaleWorkload
buildWorkload(std::size_t functions, double rps_per_fn, sim::Tick duration,
              std::uint64_t seed)
{
    const auto &zoo = models::ModelZoo::shared();
    ScaleWorkload w;
    w.horizon = duration + 5 * sim::kTicksPerSec;
    workload::RateSeries series =
        workload::constantRate(rps_per_fn, duration);
    for (std::size_t f = 0; f < functions; ++f) {
        w.models.push_back(zoo.all()[f % zoo.all().size()].name);
        // Traces are materialized ONCE per point and injected into every
        // cell config, so flat and sharded runs see identical arrivals.
        sim::Rng rng(sim::hashCombine(seed, f));
        w.traces.push_back(
            workload::ArrivalTrace::fromRateSeries(series, rng));
    }
    return w;
}

PointResult
runPoint(std::size_t servers, std::size_t cells, const ScaleWorkload &w)
{
    PointResult r;
    r.servers = servers;
    r.cells = cells;
    r.functions = w.models.size();
    r.durationSec = sim::ticksToSec(w.horizon);

    core::PlatformOptions opts;
    opts.seed = 42;
    core::CellOptions cell_opts;
    cell_opts.cells = cells;

    auto construct_start = Clock::now();
    core::ShardedPlatform platform(servers, opts, cell_opts);
    for (std::size_t f = 0; f < w.models.size(); ++f) {
        core::FunctionSpec spec;
        spec.name = w.models[f] + "-" + std::to_string(f);
        spec.model = w.models[f];
        auto fn = platform.deploy(spec);
        platform.injectTrace(fn, w.traces[f]);
    }
    r.constructSec = secondsSince(construct_start);

    r.threads = cells == 1
                    ? 1
                    : std::min(sim::WorkerPool::defaultThreads(), cells);

    auto run_start = Clock::now();
    platform.run(w.horizon);
    r.wallSec = secondsSince(run_start);

    r.events = platform.eventsExecuted();
    r.decisions = platform.schedulerDecisions();
    const auto &m = platform.totalMetrics();
    r.arrivals = m.arrivals();
    r.completions = m.completions();
    r.drops = m.drops();
    r.liveInstances = platform.liveInstanceCount();
    return r;
}

void
printPoint(const PointResult &r)
{
    std::cout << "  " << r.servers << " servers, " << r.cells
              << (r.cells == 1 ? " cell:  " : " cells: ")
              << fmt(r.eventsPerSec() / 1e3, 1) << " k events/s, "
              << fmt(r.decisionsPerSec(), 1) << " decisions/s  ("
              << r.events << " events in " << fmt(r.wallSec, 2)
              << " s wall, " << r.completions << "/" << r.arrivals
              << " completed, " << r.drops << " dropped)\n";
}

void
emitPoint(std::ostream &out, const PointResult &r, bool last)
{
    out << "    {\n"
        << "      \"servers\": " << r.servers << ",\n"
        << "      \"cells\": " << r.cells << ",\n"
        << "      \"threads\": " << r.threads << ",\n"
        << "      \"functions\": " << r.functions << ",\n"
        << "      \"duration_sec\": " << r.durationSec << ",\n"
        << "      \"construct_sec\": " << r.constructSec << ",\n"
        << "      \"wall_sec\": " << r.wallSec << ",\n"
        << "      \"events\": " << r.events << ",\n"
        << "      \"events_per_sec\": " << r.eventsPerSec() << ",\n"
        << "      \"decisions\": " << r.decisions << ",\n"
        << "      \"decisions_per_sec\": " << r.decisionsPerSec() << ",\n"
        << "      \"arrivals\": " << r.arrivals << ",\n"
        << "      \"completions\": " << r.completions << ",\n"
        << "      \"drops\": " << r.drops << ",\n"
        << "      \"live_instances\": " << r.liveInstances << "\n"
        << "    }" << (last ? "\n" : ",\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    unsigned hw = std::thread::hardware_concurrency();
    bool gate_applicable = hw >= 8;

    printHeading(std::cout,
                 std::string("Sharded control plane: scale (") +
                     (smoke ? "smoke" : "full") + " workload, " +
                     std::to_string(hw) + " hardware threads)");

    struct Scale
    {
        std::size_t servers;
        std::size_t cells;
        std::size_t functions;
        double rpsPerFn;
        sim::Tick duration;
    };
    std::vector<Scale> scales;
    if (smoke) {
        scales.push_back({10'000, 8, 8, 50.0, 5 * sim::kTicksPerSec});
    } else {
        scales.push_back({10'000, 8, 32, 100.0, 30 * sim::kTicksPerSec});
        scales.push_back({100'000, 16, 64, 100.0, 20 * sim::kTicksPerSec});
    }

    std::vector<PointResult> points;
    bool arrivals_match = true;
    double speedup_10k = 0.0;
    double speedup_100k = 0.0;
    for (const Scale &s : scales) {
        ScaleWorkload w =
            buildWorkload(s.functions, s.rpsPerFn, s.duration, s.servers);
        PointResult flat = runPoint(s.servers, 1, w);
        printPoint(flat);
        PointResult sharded = runPoint(s.servers, s.cells, w);
        printPoint(sharded);
        if (flat.arrivals != sharded.arrivals)
            arrivals_match = false;
        double speedup = flat.eventsPerSec() > 0.0
                             ? sharded.eventsPerSec() / flat.eventsPerSec()
                             : 0.0;
        std::cout << "    speedup: " << fmt(speedup, 2) << "x\n";
        if (s.servers == 10'000)
            speedup_10k = speedup;
        else if (s.servers == 100'000)
            speedup_100k = speedup;
        points.push_back(flat);
        points.push_back(sharded);
    }

    // The >= 3x bar only binds where the cells can actually run in
    // parallel; a 1-2 core box measures barrier overhead, not scaling.
    bool gate_pass =
        !gate_applicable || smoke || speedup_100k >= 3.0;

    std::ofstream out("BENCH_scale.json");
    out << "{\n"
        << "  \"benchmark\": \"scale_cells\",\n"
        << "  \"schema_version\": 1,\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"arrivals_match\": " << (arrivals_match ? "true" : "false")
        << ",\n"
        << "  \"speedup_10k\": " << speedup_10k << ",\n"
        << "  \"speedup_100k\": " << speedup_100k << ",\n"
        << "  \"speedup_gate_applicable\": "
        << (gate_applicable ? "true" : "false") << ",\n"
        << "  \"speedup_gate_pass\": " << (gate_pass ? "true" : "false")
        << ",\n"
        << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i)
        emitPoint(out, points[i], i + 1 == points.size());
    out << "  ]\n}\n";
    std::cout << "  (results written to BENCH_scale.json)\n";

    if (!arrivals_match) {
        std::cerr << "ERROR: sharded run ingested a different arrival "
                     "count than the flat run\n";
        return 1;
    }
    if (!gate_pass) {
        std::cerr << "ERROR: multi-cell speedup at 100k servers below the "
                     "3x bar on >= 8 hardware threads\n";
        return 1;
    }
    return 0;
}
