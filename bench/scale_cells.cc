/**
 * @file
 * Sharded-control-plane scale benchmark (BENCH_scale.json).
 *
 * Not a paper figure. The cell partition's acceptance bar is
 * quantitative: at 100k servers the multi-cell engine must sustain
 * >= 3x the single-cell event throughput when >= 8 hardware threads are
 * available. This binary drives the same pre-materialized traces through
 * a flat (cells=1) and a sharded platform at 10k and 100k servers,
 * measures events/sec and scheduler decisions/sec over the run() wall
 * time, cross-checks that both ingest the identical arrival count, and
 * writes the series to BENCH_scale.json. On boxes with fewer than 8
 * hardware threads the speedup gate is reported as not applicable (the
 * barriers and routing are pure overhead without parallel cells) while
 * the throughput numbers are still emitted. `--smoke` runs the 10k
 * points only, shortened for CI.
 *
 * The second scenario is *skewed*: hotspot functions pinned to cell 0
 * (affinity traffic the router cannot steer) on top of routed
 * background load. The same traces run through a static partition
 * (rebalancing as a pure observer, byte-identical to off — it only
 * records the straggler's imbalance factor) and through a rebalancing
 * partition that migrates spare servers into the straggler at window
 * barriers. The gate: at 100k servers with >= 8 hardware threads the
 * rebalanced run must sustain >= 1.5x the static events/sec. Both
 * points emit the per-barrier imbalance-factor and migration-count
 * series. With --trace the rebalanced run writes the straggler cell's
 * Perfetto trace (cell_migration instants); with INFLESS_TELEMETRY=1
 * it exports per-cell load shares and the migration counter to
 * scale_skew_telemetry.json / scale_skew_metrics.prom.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.hh"
#include "core/sharded_platform.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "obs/telemetry.hh"
#include "workload/generators.hh"

namespace {

using namespace infless;
using metrics::fmt;
using metrics::printHeading;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PointResult
{
    std::size_t servers = 0;
    std::size_t cells = 0;
    std::size_t threads = 0;
    std::size_t functions = 0;
    double durationSec = 0.0;
    double constructSec = 0.0;
    double wallSec = 0.0;
    std::uint64_t events = 0;
    std::uint64_t decisions = 0;
    std::int64_t arrivals = 0;
    std::int64_t completions = 0;
    std::int64_t drops = 0;
    int liveInstances = 0;

    double eventsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(events) / wallSec : 0.0;
    }
    double decisionsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(decisions) / wallSec
                             : 0.0;
    }
};

/** The fixed workload of one scale point, shared by both cell configs. */
struct ScaleWorkload
{
    std::vector<std::string> models;
    std::vector<workload::ArrivalTrace> traces;
    sim::Tick horizon = 0;
    /** The first `hotspots` functions are pinned to cell 0. */
    std::size_t hotspots = 0;
};

ScaleWorkload
buildWorkload(std::size_t functions, double rps_per_fn, sim::Tick duration,
              std::uint64_t seed)
{
    const auto &zoo = models::ModelZoo::shared();
    ScaleWorkload w;
    w.horizon = duration + 5 * sim::kTicksPerSec;
    workload::RateSeries series =
        workload::constantRate(rps_per_fn, duration);
    for (std::size_t f = 0; f < functions; ++f) {
        w.models.push_back(zoo.all()[f % zoo.all().size()].name);
        // Traces are materialized ONCE per point and injected into every
        // cell config, so flat and sharded runs see identical arrivals.
        sim::Rng rng(sim::hashCombine(seed, f));
        w.traces.push_back(
            workload::ArrivalTrace::fromRateSeries(series, rng));
    }
    return w;
}

PointResult
runPoint(std::size_t servers, std::size_t cells, const ScaleWorkload &w)
{
    PointResult r;
    r.servers = servers;
    r.cells = cells;
    r.functions = w.models.size();
    r.durationSec = sim::ticksToSec(w.horizon);

    core::PlatformOptions opts;
    opts.seed = 42;
    core::CellOptions cell_opts;
    cell_opts.cells = cells;

    auto construct_start = Clock::now();
    core::ShardedPlatform platform(servers, opts, cell_opts);
    for (std::size_t f = 0; f < w.models.size(); ++f) {
        core::FunctionSpec spec;
        spec.name = w.models[f] + "-" + std::to_string(f);
        spec.model = w.models[f];
        auto fn = platform.deploy(spec);
        platform.injectTrace(fn, w.traces[f]);
    }
    r.constructSec = secondsSince(construct_start);

    r.threads = cells == 1
                    ? 1
                    : std::min(sim::WorkerPool::defaultThreads(), cells);

    auto run_start = Clock::now();
    platform.run(w.horizon);
    r.wallSec = secondsSince(run_start);

    r.events = platform.eventsExecuted();
    r.decisions = platform.schedulerDecisions();
    const auto &m = platform.totalMetrics();
    r.arrivals = m.arrivals();
    r.completions = m.completions();
    r.drops = m.drops();
    r.liveInstances = platform.liveInstanceCount();
    return r;
}

void
printPoint(const PointResult &r)
{
    std::cout << "  " << r.servers << " servers, " << r.cells
              << (r.cells == 1 ? " cell:  " : " cells: ")
              << fmt(r.eventsPerSec() / 1e3, 1) << " k events/s, "
              << fmt(r.decisionsPerSec(), 1) << " decisions/s  ("
              << r.events << " events in " << fmt(r.wallSec, 2)
              << " s wall, " << r.completions << "/" << r.arrivals
              << " completed, " << r.drops << " dropped)\n";
}

/**
 * Like buildWorkload, but the first @p hotspots functions arrive at
 * @p rps_hot and will be pinned to cell 0 — a straggler the router
 * cannot steer around.
 */
ScaleWorkload
buildSkewWorkload(std::size_t functions, std::size_t hotspots,
                  double rps_bg, double rps_hot, sim::Tick duration,
                  std::uint64_t seed)
{
    const auto &zoo = models::ModelZoo::shared();
    ScaleWorkload w;
    w.horizon = duration + 5 * sim::kTicksPerSec;
    w.hotspots = hotspots;
    workload::RateSeries bg = workload::constantRate(rps_bg, duration);
    workload::RateSeries hot = workload::constantRate(rps_hot, duration);
    for (std::size_t f = 0; f < functions; ++f) {
        w.models.push_back(zoo.all()[f % zoo.all().size()].name);
        sim::Rng rng(sim::hashCombine(seed, f));
        w.traces.push_back(workload::ArrivalTrace::fromRateSeries(
            f < hotspots ? hot : bg, rng));
    }
    return w;
}

/** One skew point: the PointResult axes plus straggler accounting. */
struct SkewResult
{
    PointResult base;
    bool rebalanced = false;
    std::int64_t migrations = 0;
    double imbalancePeak = 1.0;
    double imbalanceFinal = 1.0;
    std::size_t stragglerServers = 0;
    std::vector<double> imbalanceSeries;
    std::vector<std::int64_t> migrationSeries;
};

SkewResult
runSkewPoint(std::size_t servers, std::size_t cells,
             const ScaleWorkload &w, bool rebalanced, bool with_trace)
{
    SkewResult r;
    r.rebalanced = rebalanced;
    r.base.servers = servers;
    r.base.cells = cells;
    r.base.functions = w.models.size();
    r.base.durationSec = sim::ticksToSec(w.horizon);
    r.base.threads = std::min(sim::WorkerPool::defaultThreads(), cells);

    core::PlatformOptions opts;
    opts.seed = 43;
    if (rebalanced && with_trace) {
        // Sample few request spans; cluster instants (cell_migration)
        // are recorded whenever tracing is on at all.
        opts.obs.trace.sampleRate = 0.0005;
    }
    core::CellOptions cell_opts;
    cell_opts.cells = cells;
    cell_opts.rebalance.enabled = true;
    if (rebalanced) {
        // Budget k scales with cell size: up to 1/8 of a cell per window
        // keeps barrier work bounded without starving a large straggler.
        cell_opts.rebalance.maxMigrationsPerWindow =
            std::max<std::size_t>(4, servers / cells / 8);
    } else {
        // Static partition, straggler accounting only: unreachable
        // thresholds make the rebalancer a pure observer (byte-identical
        // to disabled — pinned by ShardedRebalance tests) that still
        // records the per-barrier imbalance factor.
        cell_opts.rebalance.imbalanceHigh = 1e18;
        cell_opts.rebalance.imbalanceLow = 1e17;
    }

    auto construct_start = Clock::now();
    core::ShardedPlatform platform(servers, opts, cell_opts);
    for (std::size_t f = 0; f < w.models.size(); ++f) {
        core::FunctionSpec spec;
        spec.name = w.models[f] + "-" + std::to_string(f);
        spec.model = w.models[f];
        auto fn = platform.deploy(spec);
        if (f < w.hotspots)
            platform.pinFunction(fn, 0);
        platform.injectTrace(fn, w.traces[f]);
    }
    r.base.constructSec = secondsSince(construct_start);

    auto run_start = Clock::now();
    platform.run(w.horizon);
    r.base.wallSec = secondsSince(run_start);

    r.base.events = platform.eventsExecuted();
    r.base.decisions = platform.schedulerDecisions();
    const auto &m = platform.totalMetrics();
    r.base.arrivals = m.arrivals();
    r.base.completions = m.completions();
    r.base.drops = m.drops();
    r.base.liveInstances = platform.liveInstanceCount();

    r.migrations = platform.cellMigrations();
    r.imbalanceSeries = platform.imbalanceHistory();
    r.migrationSeries = platform.migrationHistory();
    for (double i : r.imbalanceSeries)
        r.imbalancePeak = std::max(r.imbalancePeak, i);
    if (!r.imbalanceSeries.empty())
        r.imbalanceFinal = r.imbalanceSeries.back();
    r.stragglerServers = platform.cellServers(0);

    if (rebalanced && with_trace) {
        // The straggler is the receiver, so its tracer holds the
        // cell_migration instants.
        std::ofstream ofs("scale_skew_trace.json");
        platform.cell(0).tracer().writeChromeTrace(ofs);
    }
    if (rebalanced && bench::telemetryEnabled()) {
        obs::TelemetryRegistry telemetry;
        telemetry.setRun("scale_cells_skew", opts.seed,
                         sim::ticksToSec(w.horizon));
        telemetry.addRunMetrics(m); // includes cell_migrations_total
        double total_events =
            std::max<double>(1.0, static_cast<double>(r.base.events));
        for (std::size_t c = 0; c < platform.cellCount(); ++c) {
            std::string id = "cell_" + std::to_string(c);
            telemetry.gauge(
                id + "_events_share",
                static_cast<double>(platform.cell(c)
                                        .simulation()
                                        .events()
                                        .executed()) /
                    total_events,
                "Fraction of run events executed by this cell");
            telemetry.gauge(
                id + "_queue_depth",
                static_cast<double>(platform.cell(c).queuedRequests()),
                "Requests waiting in this cell's batch queues at run "
                "end");
            telemetry.gauge(
                id + "_servers",
                static_cast<double>(platform.cellServers(c)),
                "Servers this cell owns after rebalancing");
        }
        telemetry.gauge("cell_imbalance_factor", r.imbalanceFinal,
                        "Straggler load-per-server over fleet mean at "
                        "the final barrier");
        bench::writeTelemetryFiles(telemetry, "scale_skew_telemetry.json",
                                   "scale_skew_metrics.prom");
    }
    return r;
}

void
printSkewPoint(const SkewResult &r)
{
    std::cout << "  " << r.base.servers << " servers, " << r.base.cells
              << " cells, " << (r.rebalanced ? "rebalanced:" : "static:    ")
              << " " << fmt(r.base.eventsPerSec() / 1e3, 1)
              << " k events/s, imbalance peak " << fmt(r.imbalancePeak, 2)
              << ", " << r.migrations << " migrations, straggler owns "
              << r.stragglerServers << " servers  ("
              << r.base.completions << "/" << r.base.arrivals
              << " completed, " << r.base.drops << " dropped)\n";
}

void
emitSkewPoint(std::ostream &out, const SkewResult &r, bool last)
{
    out << "    {\n"
        << "      \"servers\": " << r.base.servers << ",\n"
        << "      \"cells\": " << r.base.cells << ",\n"
        << "      \"threads\": " << r.base.threads << ",\n"
        << "      \"functions\": " << r.base.functions << ",\n"
        << "      \"hotspots_pinned\": true,\n"
        << "      \"rebalanced\": " << (r.rebalanced ? "true" : "false")
        << ",\n"
        << "      \"wall_sec\": " << r.base.wallSec << ",\n"
        << "      \"events\": " << r.base.events << ",\n"
        << "      \"events_per_sec\": " << r.base.eventsPerSec() << ",\n"
        << "      \"arrivals\": " << r.base.arrivals << ",\n"
        << "      \"completions\": " << r.base.completions << ",\n"
        << "      \"drops\": " << r.base.drops << ",\n"
        << "      \"migrations\": " << r.migrations << ",\n"
        << "      \"imbalance_factor\": " << r.imbalancePeak << ",\n"
        << "      \"imbalance_final\": " << r.imbalanceFinal << ",\n"
        << "      \"straggler_servers\": " << r.stragglerServers << ",\n";
    out << "      \"imbalance_series\": [";
    for (std::size_t i = 0; i < r.imbalanceSeries.size(); ++i)
        out << (i ? ", " : "") << r.imbalanceSeries[i];
    out << "],\n";
    out << "      \"migration_series\": [";
    for (std::size_t i = 0; i < r.migrationSeries.size(); ++i)
        out << (i ? ", " : "") << r.migrationSeries[i];
    out << "]\n";
    out << "    }" << (last ? "\n" : ",\n");
}

void
emitPoint(std::ostream &out, const PointResult &r, bool last)
{
    out << "    {\n"
        << "      \"servers\": " << r.servers << ",\n"
        << "      \"cells\": " << r.cells << ",\n"
        << "      \"threads\": " << r.threads << ",\n"
        << "      \"functions\": " << r.functions << ",\n"
        << "      \"duration_sec\": " << r.durationSec << ",\n"
        << "      \"construct_sec\": " << r.constructSec << ",\n"
        << "      \"wall_sec\": " << r.wallSec << ",\n"
        << "      \"events\": " << r.events << ",\n"
        << "      \"events_per_sec\": " << r.eventsPerSec() << ",\n"
        << "      \"decisions\": " << r.decisions << ",\n"
        << "      \"decisions_per_sec\": " << r.decisionsPerSec() << ",\n"
        << "      \"arrivals\": " << r.arrivals << ",\n"
        << "      \"completions\": " << r.completions << ",\n"
        << "      \"drops\": " << r.drops << ",\n"
        << "      \"live_instances\": " << r.liveInstances << "\n"
        << "    }" << (last ? "\n" : ",\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool with_trace = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--trace") == 0)
            with_trace = true;
    }

    unsigned hw = std::thread::hardware_concurrency();
    bool gate_applicable = hw >= 8;

    printHeading(std::cout,
                 std::string("Sharded control plane: scale (") +
                     (smoke ? "smoke" : "full") + " workload, " +
                     std::to_string(hw) + " hardware threads)");

    struct Scale
    {
        std::size_t servers;
        std::size_t cells;
        std::size_t functions;
        double rpsPerFn;
        sim::Tick duration;
    };
    std::vector<Scale> scales;
    if (smoke) {
        scales.push_back({10'000, 8, 8, 50.0, 5 * sim::kTicksPerSec});
    } else {
        scales.push_back({10'000, 8, 32, 100.0, 30 * sim::kTicksPerSec});
        scales.push_back({100'000, 16, 64, 100.0, 20 * sim::kTicksPerSec});
    }

    std::vector<PointResult> points;
    bool arrivals_match = true;
    double speedup_10k = 0.0;
    double speedup_100k = 0.0;
    for (const Scale &s : scales) {
        ScaleWorkload w =
            buildWorkload(s.functions, s.rpsPerFn, s.duration, s.servers);
        PointResult flat = runPoint(s.servers, 1, w);
        printPoint(flat);
        PointResult sharded = runPoint(s.servers, s.cells, w);
        printPoint(sharded);
        if (flat.arrivals != sharded.arrivals)
            arrivals_match = false;
        double speedup = flat.eventsPerSec() > 0.0
                             ? sharded.eventsPerSec() / flat.eventsPerSec()
                             : 0.0;
        std::cout << "    speedup: " << fmt(speedup, 2) << "x\n";
        if (s.servers == 10'000)
            speedup_10k = speedup;
        else if (s.servers == 100'000)
            speedup_100k = speedup;
        points.push_back(flat);
        points.push_back(sharded);
    }

    // The >= 3x bar only binds where the cells can actually run in
    // parallel; a 1-2 core box measures barrier overhead, not scaling.
    bool gate_pass =
        !gate_applicable || smoke || speedup_100k >= 3.0;

    // Skewed scenario: hotspot functions pinned to cell 0, static
    // partition vs rebalancing, same traces.
    printHeading(std::cout,
                 "Sharded control plane: skewed arrivals "
                 "(static vs rebalanced)");
    std::vector<SkewResult> skew_points;
    bool skew_arrivals_match = true;
    double skew_speedup_10k = 0.0;
    double skew_speedup_100k = 0.0;
    for (const Scale &s : scales) {
        std::size_t hotspots = std::max<std::size_t>(1, s.functions / 8);
        ScaleWorkload w =
            buildSkewWorkload(s.functions, hotspots, s.rpsPerFn,
                              8.0 * s.rpsPerFn, s.duration, s.servers + 1);
        SkewResult st = runSkewPoint(s.servers, s.cells, w, false,
                                     with_trace);
        printSkewPoint(st);
        SkewResult rb = runSkewPoint(s.servers, s.cells, w, true,
                                     with_trace);
        printSkewPoint(rb);
        if (st.base.arrivals != rb.base.arrivals)
            skew_arrivals_match = false;
        double speedup =
            st.base.eventsPerSec() > 0.0
                ? rb.base.eventsPerSec() / st.base.eventsPerSec()
                : 0.0;
        std::cout << "    skew speedup: " << fmt(speedup, 2) << "x\n";
        if (s.servers == 10'000)
            skew_speedup_10k = speedup;
        else if (s.servers == 100'000)
            skew_speedup_100k = speedup;
        skew_points.push_back(std::move(st));
        skew_points.push_back(std::move(rb));
    }
    // Same applicability rule as the flat-vs-sharded gate: the 1.5x bar
    // binds at 100k servers with real parallelism only.
    bool skew_gate_pass =
        !gate_applicable || smoke || skew_speedup_100k >= 1.5;

    std::ofstream out("BENCH_scale.json");
    out << "{\n"
        << "  \"benchmark\": \"scale_cells\",\n"
        << "  \"schema_version\": 1,\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"arrivals_match\": " << (arrivals_match ? "true" : "false")
        << ",\n"
        << "  \"speedup_10k\": " << speedup_10k << ",\n"
        << "  \"speedup_100k\": " << speedup_100k << ",\n"
        << "  \"speedup_gate_applicable\": "
        << (gate_applicable ? "true" : "false") << ",\n"
        << "  \"speedup_gate_pass\": " << (gate_pass ? "true" : "false")
        << ",\n"
        << "  \"skew_arrivals_match\": "
        << (skew_arrivals_match ? "true" : "false") << ",\n"
        << "  \"skew_speedup_10k\": " << skew_speedup_10k << ",\n"
        << "  \"skew_speedup_100k\": " << skew_speedup_100k << ",\n"
        << "  \"skew_gate_applicable\": "
        << (gate_applicable ? "true" : "false") << ",\n"
        << "  \"skew_speedup_gate\": "
        << (skew_gate_pass ? "true" : "false") << ",\n"
        << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i)
        emitPoint(out, points[i], i + 1 == points.size());
    out << "  ],\n"
        << "  \"skew_points\": [\n";
    for (std::size_t i = 0; i < skew_points.size(); ++i)
        emitSkewPoint(out, skew_points[i], i + 1 == skew_points.size());
    out << "  ]\n}\n";
    std::cout << "  (results written to BENCH_scale.json)\n";

    if (!arrivals_match) {
        std::cerr << "ERROR: sharded run ingested a different arrival "
                     "count than the flat run\n";
        return 1;
    }
    if (!gate_pass) {
        std::cerr << "ERROR: multi-cell speedup at 100k servers below the "
                     "3x bar on >= 8 hardware threads\n";
        return 1;
    }
    if (!skew_arrivals_match) {
        std::cerr << "ERROR: rebalanced skew run ingested a different "
                     "arrival count than the static run\n";
        return 1;
    }
    if (!skew_gate_pass) {
        std::cerr << "ERROR: rebalanced skew throughput at 100k servers "
                     "below the 1.5x bar on >= 8 hardware threads\n";
        return 1;
    }
    return 0;
}
