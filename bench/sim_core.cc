/**
 * @file
 * Simulation-core microbenchmark: event-engine drain throughput and
 * latency-surface pricing throughput, measured against the pre-overhaul
 * implementations inside one binary.
 *
 * Not a paper figure. The overhaul's acceptance bar is quantitative
 * (>= 3x event throughput over the legacy std::function queue, >= 5x
 * exec-model pricing over direct computation), so this binary drives the
 * same deterministic workload through both engines and both pricing
 * paths, checks the results are bit-identical, and writes the measured
 * ratios to BENCH_sim.json. `--smoke` shrinks the workload for CI; the
 * ASan preset additionally exercises the inline-callable move/destroy
 * paths under instrumentation.
 */

#include <array>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/harness.hh"
#include "metrics/report.hh"
#include "models/latency_cache.hh"
#include "models/model_zoo.hh"
#include "profiler/op_profile_db.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"

namespace {

using namespace infless;
using metrics::fmt;
using metrics::fmtPercent;
using metrics::printHeading;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Event-engine drain
// ---------------------------------------------------------------------------
//
// The workload mirrors a platform drain, and specifically the
// dispatcher's batch cycle: every instance keeps two cancellable timers
// (Platform's per-instance timeoutEvent — an SLO deadline far past the
// batch window — and the near-term expiryEvent) plus a fixed completion;
// when the completion runs it cancels both timers — so most cancellable
// events are scheduled, sifted, and cancelled without ever firing,
// exactly like the real timer churn, and cancelled far-future deadlines
// dominate the queue's steady-state population. Every 16th cycle the
// batch window expires instead: the window timer fires, cancels the
// deadline, and continues the chain. Closures capture ~60 bytes — the
// size of Platform's batch-completion lambda, past std::function's
// inline buffer but within the new queue's.

/** One batch cycle of a simulated instance. */
template <typename Queue>
void
batchCycle(Queue &q, std::uint64_t *checksum,
           std::array<std::uint64_t, 2> payload, int hops_left,
           sim::Tick period)
{
    *checksum +=
        payload[0] ^ payload[1] ^ static_cast<std::uint64_t>(q.now());
    if (hops_left <= 0)
        return;
    payload[0] = payload[0] * 0x9e3779b97f4a7c15ULL + 1;
    payload[1] ^= payload[0] >> 17;

    // SLO timeout: scheduled at the deadline, far past the batch window —
    // like Platform's per-instance timeoutEvent, it is almost always
    // cancelled long before it would fire, so cancelled deadline entries
    // dominate the queue's steady-state population.
    auto expiry =
        q.schedule(q.now() + 40 * period + 6, [checksum, payload] {
            *checksum ^= payload[1];
        });
    // Batch-window timer: cancellable, usually cancelled below.
    auto window = q.schedule(
        q.now() + period + 2,
        [&q, checksum, payload, hops_left, period, expiry] {
            q.cancel(expiry);
            batchCycle(q, checksum, payload, hops_left - 1, period);
        });
    if ((payload[0] & 15) == 0)
        return; // window expires: the timer continues the chain
    // Batch dispatched before the window: fixed completion cancels both
    // timers (the dominant hot path).
    q.scheduleFixed(q.now() + period,
                    [&q, checksum, payload, hops_left, period, window,
                     expiry] {
                        q.cancel(window);
                        q.cancel(expiry);
                        batchCycle(q, checksum, payload, hops_left - 1,
                                   period);
                    });
}

struct DrainResult
{
    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
    double nsPerEvent = 0.0;
    /** Whether the drain hit the runAll safety cap (legacy queue does
     *  not report it; stays false there). */
    bool truncated = false;

    double
    eventsPerSec() const
    {
        return nsPerEvent > 0.0 ? 1e9 / nsPerEvent : 0.0;
    }
};

/** Drain the benchmark workload once; identical per queue type. */
template <typename Queue>
DrainResult
drainOnce(std::size_t chains, int hops, std::size_t churn)
{
    Queue q;
    q.reserve(chains + churn);
    std::uint64_t checksum = 0;
    sim::Rng rng(4242);

    for (std::size_t i = 0; i < chains; ++i) {
        std::array<std::uint64_t, 2> payload = {rng.raw(), rng.raw()};
        sim::Tick start = static_cast<sim::Tick>(rng.uniformInt(1, 64));
        sim::Tick period = static_cast<sim::Tick>(rng.uniformInt(1, 16));
        q.scheduleFixed(start, [&q, checksum_p = &checksum, payload, hops,
                                period] {
            batchCycle(q, checksum_p, payload, hops, period);
        });
    }
    // Cancellation churn: schedule cancellable one-shots, cancel half.
    std::vector<std::uint64_t> ids;
    ids.reserve(churn);
    for (std::size_t i = 0; i < churn; ++i) {
        sim::Tick when = static_cast<sim::Tick>(rng.uniformInt(1, 512));
        std::uint64_t tag = rng.raw();
        ids.push_back(q.schedule(when, [checksum_p = &checksum, tag] {
            *checksum_p ^= tag;
        }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2)
        q.cancel(ids[i]);

    auto start = Clock::now();
    q.runAll();
    double sec = secondsSince(start);

    DrainResult result;
    result.events = q.executed();
    result.checksum = checksum;
    if constexpr (requires { q.truncated(); })
        result.truncated = q.truncated();
    result.nsPerEvent =
        result.events == 0 ? 0.0
                           : 1e9 * sec / static_cast<double>(result.events);
    return result;
}

/** Best-of-reps drain (min ns/event; counts and checksum are invariant). */
template <typename Queue>
DrainResult
drainBest(std::size_t chains, int hops, std::size_t churn, int reps)
{
    DrainResult best;
    best.nsPerEvent = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        DrainResult r = drainOnce<Queue>(chains, hops, churn);
        if (r.nsPerEvent < best.nsPerEvent)
            best = r;
    }
    return best;
}

// ---------------------------------------------------------------------------
// Latency-surface pricing
// ---------------------------------------------------------------------------
//
// Prices the full model zoo x batch ladder x profile-grid configuration
// space repeatedly — the access pattern of the scheduler's candidate
// enumeration — once directly through ExecModel and once through a
// LatencyCache, accumulating identical checksums.

struct PricingResult
{
    std::uint64_t points = 0;
    std::uint64_t checksum = 0;
    double nsPerPoint = 0.0;
    double hitRate = 0.0;
};

template <typename PriceFn>
PricingResult
priceGrid(int passes, PriceFn &&price)
{
    const auto &zoo = models::ModelZoo::shared();
    profiler::ProfileGrid grid;
    PricingResult result;

    auto start = Clock::now();
    for (int pass = 0; pass < passes; ++pass) {
        for (const auto &model : zoo.all()) {
            for (std::int64_t cpu : grid.cpuMillicores) {
                for (std::int64_t gpu : grid.gpuSmPercent) {
                    cluster::Resources res{cpu, gpu, 0};
                    for (int batch : grid.batchSizes) {
                        if (batch > model.maxBatch)
                            break;
                        result.checksum +=
                            static_cast<std::uint64_t>(
                                price(model, batch, res));
                        ++result.points;
                    }
                }
            }
        }
    }
    double sec = secondsSince(start);
    result.nsPerPoint =
        result.points == 0 ? 0.0
                           : 1e9 * sec / static_cast<double>(result.points);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    // Workload sizes: ~1M events per drain normally, ~60k in smoke. The
    // chain count sets the steady-state pending population (a few
    // thousand, like a platform run's in-flight batches and arrivals);
    // hops set the drain length.
    const std::size_t chains = smoke ? 600 : 120'000;
    const int hops = smoke ? 96 : 8;
    const std::size_t churn = smoke ? 4'000 : 60'000;
    const int reps = smoke ? 2 : 3;
    const int pricing_passes = smoke ? 4 : 40;

    printHeading(std::cout,
                 std::string("Simulation core: event engine (") +
                     (smoke ? "smoke" : "full") + " workload)");

    DrainResult legacy =
        drainBest<sim::LegacyEventQueue>(chains, hops, churn, reps);
    DrainResult engine =
        drainBest<sim::EventQueue>(chains, hops, churn, reps);
    bool drain_match = legacy.checksum == engine.checksum &&
                       legacy.events == engine.events;
    double engine_speedup = engine.nsPerEvent > 0.0
                                ? legacy.nsPerEvent / engine.nsPerEvent
                                : 0.0;

    std::cout << "  legacy queue: " << fmt(legacy.nsPerEvent, 1)
              << " ns/event (" << fmt(legacy.eventsPerSec() / 1e6, 2)
              << " M events/s, " << legacy.events << " events)\n"
              << "  inline queue: " << fmt(engine.nsPerEvent, 1)
              << " ns/event (" << fmt(engine.eventsPerSec() / 1e6, 2)
              << " M events/s)\n"
              << "  speedup: " << fmt(engine_speedup, 2)
              << "x  (target >= 3x); identical drains: "
              << (drain_match ? "yes" : "NO") << "\n";

    printHeading(std::cout, "Simulation core: latency-surface pricing");

    models::ExecModel exec;
    PricingResult direct = priceGrid(
        pricing_passes, [&exec](const models::ModelInfo &model, int batch,
                                const cluster::Resources &res) {
            return exec.trueTicks(model, batch, res);
        });
    models::LatencyCache cache;
    PricingResult cached = priceGrid(
        pricing_passes,
        [&exec, &cache](const models::ModelInfo &model, int batch,
                        const cluster::Resources &res) {
            return cache.trueTicks(exec, model, batch, res);
        });
    cached.hitRate = cache.stats().hitRate();
    bool pricing_match = direct.checksum == cached.checksum &&
                         direct.points == cached.points;
    double pricing_speedup = cached.nsPerPoint > 0.0
                                 ? direct.nsPerPoint / cached.nsPerPoint
                                 : 0.0;

    std::cout << "  direct: " << fmt(direct.nsPerPoint, 1)
              << " ns/point over " << direct.points << " pricings\n"
              << "  cached: " << fmt(cached.nsPerPoint, 1)
              << " ns/point, hit rate " << fmtPercent(cached.hitRate)
              << " (" << cache.configCount() << " config lines, "
              << cache.size() << " values)\n"
              << "  speedup: " << fmt(pricing_speedup, 2)
              << "x  (target >= 5x); bit-identical: "
              << (pricing_match ? "yes" : "NO") << "\n";

    std::ofstream out("BENCH_sim.json");
    out << "{\n"
        << "  \"benchmark\": \"sim_core\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"event_engine\": {\n"
        << "    \"events_per_drain\": " << engine.events << ",\n"
        << "    \"legacy_ns_per_event\": " << legacy.nsPerEvent << ",\n"
        << "    \"inline_ns_per_event\": " << engine.nsPerEvent << ",\n"
        << "    \"legacy_events_per_sec\": " << legacy.eventsPerSec()
        << ",\n"
        << "    \"inline_events_per_sec\": " << engine.eventsPerSec()
        << ",\n"
        << "    \"speedup\": " << engine_speedup << ",\n"
        << "    \"identical_drains\": " << (drain_match ? "true" : "false")
        << ",\n"
        << "    \"truncated\": " << (engine.truncated ? "true" : "false")
        << "\n  },\n"
        << "  \"pricing\": {\n"
        << "    \"points\": " << direct.points << ",\n"
        << "    \"direct_ns_per_point\": " << direct.nsPerPoint << ",\n"
        << "    \"cached_ns_per_point\": " << cached.nsPerPoint << ",\n"
        << "    \"speedup\": " << pricing_speedup << ",\n"
        << "    \"cache_hit_rate\": " << cached.hitRate << ",\n"
        << "    \"cache_hits\": " << cache.stats().hits << ",\n"
        << "    \"cache_misses\": " << cache.stats().misses << ",\n"
        << "    \"config_lines\": " << cache.configCount() << ",\n"
        << "    \"bit_identical\": " << (pricing_match ? "true" : "false")
        << "\n  }\n"
        << "}\n";
    std::cout << "  (results written to BENCH_sim.json)\n";

    if (!drain_match || !pricing_match) {
        std::cerr << "ERROR: fast path diverged from reference\n";
        return 1;
    }
    return 0;
}
