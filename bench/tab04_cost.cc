/**
 * @file
 * Table 4 — computation cost comparison: CPUs and GPUs consumed per 100
 * RPS of served load and the monetary cost per request, for dedicated
 * EC2-style provisioning, OpenFaaS+, BATCH and INFless.
 */

#include <cmath>
#include <iostream>

#include "common/harness.hh"
#include "metrics/cost_model.hh"
#include "metrics/report.hh"
#include "workload/generators.hh"

namespace {

using namespace infless;
using namespace infless::bench;
using metrics::CostReport;
using metrics::fmt;
using metrics::fmtSci;
using metrics::printHeading;
using metrics::TextTable;
using sim::kTicksPerMin;
using sim::msToTicks;

CostReport
systemCost(SystemKind kind)
{
    auto platform = makeSystem(kind, 8);
    auto specs = osvtWorkload(120.0, 15 * kTicksPerMin);
    runScenario(*platform, specs);
    return metrics::computeCost(platform->name(),
                                platform->totalMetrics(),
                                platform->endTime());
}

/**
 * Dedicated EC2-style provisioning: fixed one-to-one instances sized for
 * 1.3x the peak rate, held for the whole period regardless of load.
 */
CostReport
ec2Cost()
{
    // Reuse the OpenFaaS+ per-instance capacity estimate.
    auto probe = makeSystem(SystemKind::OpenFaas, 8);
    core::FunctionSpec spec{"probe", "ResNet-50", msToTicks(200), 1};
    auto fn = probe->deploy(spec);
    probe->injectRateSeries(fn, workload::constantRate(
                                    30.0, 30 * sim::kTicksPerSec));
    probe->run(40 * sim::kTicksPerSec);
    double per_instance_rps =
        probe->totalMetrics().throughputRps(probe->endTime()) /
        std::max(1, probe->liveInstanceCount());

    double offered = 3 * 120.0; // the OSVT bundle
    double instances =
        std::ceil(1.3 * offered / std::max(per_instance_rps, 1.0));
    double cpus = instances * 2.0;   // 2 cores each
    double gpus = instances * 0.10;  // 10% SM each
    return metrics::costFromAverages("AWS EC2 (dedicated)", cpus, gpus,
                                     offered);
}

} // namespace

int
main()
{
    printHeading(std::cout,
                 "Table 4: computation cost per served load (OSVT bundle "
                 "at 360 RPS; prices: CPU $0.034/h, GPU $2.5/h)");
    TextTable table({"system", "CPUs per 100RPS", "GPUs per 100RPS",
                     "cost per request"});

    auto add = [&](const CostReport &report) {
        table.addRow({report.system, fmt(report.cpusPer100Rps, 2),
                      fmt(report.gpusPer100Rps, 2),
                      fmtSci(report.costPerRequest)});
    };
    add(ec2Cost());
    add(systemCost(SystemKind::OpenFaas));
    add(systemCost(SystemKind::Batch));
    add(systemCost(SystemKind::Infless));
    table.print(std::cout);

    std::cout << "  (paper: EC2 49.42/2.47/$2.23e-5, OpenFaaS+ "
                 "55.63/2.13/$2e-5, BATCH 41.45/1.34/$1.32e-5, INFless "
                 "13.91/0.51/$1.6e-6 -> >10x saving vs EC2)\n";
    return 0;
}
