/**
 * @file
 * Inference function chains — the paper's §7 future work, implemented.
 *
 * The OSVT business is really a pipeline: SSD detects the vehicle,
 * MobileNet reads the license plate, ResNet-50 classifies the model.
 * Deploying it as a chain gives the whole pipeline one end-to-end SLO;
 * the platform splits the budget across stages (proportional to their
 * predicted cost) and forwards each request stage to stage.
 */

#include <iostream>

#include "core/platform.hh"
#include "metrics/report.hh"
#include "workload/generators.hh"

using namespace infless;

int
main()
{
    core::Platform platform(8);

    core::ChainSpec chain_spec;
    chain_spec.name = "osvt-pipeline";
    chain_spec.models = {"SSD", "MobileNet", "ResNet-50"};
    chain_spec.sloTicks = sim::msToTicks(400);
    chain_spec.split = core::SloSplit::Proportional;
    auto chain = platform.deployChain(chain_spec);

    platform.injectChainRateSeries(
        chain, workload::constantRate(60.0, 10 * sim::kTicksPerMin));
    platform.run(10 * sim::kTicksPerMin + 15 * sim::kTicksPerSec);

    metrics::printHeading(std::cout,
                          "OSVT as a 3-stage chain, 400 ms end-to-end SLO "
                          "@ 60 RPS");
    metrics::TextTable stages({"stage", "model", "stage SLO (ms)",
                               "mean latency (ms)", "batch fill"});
    int index = 0;
    for (auto fn : platform.chainStages(chain)) {
        const auto &m = platform.functionMetrics(fn);
        stages.addRow({std::to_string(index++),
                       platform.spec(fn).model,
                       metrics::fmt(platform.spec(fn).sloTicks /
                                        static_cast<double>(
                                            sim::kTicksPerMs),
                                    0),
                       metrics::fmt(m.latency().mean() / sim::kTicksPerMs,
                                    1),
                       metrics::fmt(m.meanBatchFill(), 1)});
    }
    stages.print(std::cout);

    const auto &cm = platform.chainMetrics(chain);
    std::cout << "\nend-to-end: " << cm.completions()
              << " pipelines completed, p50 "
              << metrics::fmt(sim::ticksToMs(cm.latency().percentile(50)),
                              0)
              << " ms, p99 "
              << metrics::fmt(sim::ticksToMs(cm.latency().percentile(99)),
                              0)
              << " ms, SLO violations "
              << metrics::fmtPercent(cm.sloViolationRate()) << "\n";
    std::cout << "breakdown: cold "
              << metrics::fmt(cm.coldTime().mean() / sim::kTicksPerMs, 1)
              << " ms, queuing "
              << metrics::fmt(cm.queueTime().mean() / sim::kTicksPerMs, 1)
              << " ms, execution "
              << metrics::fmt(cm.execTime().mean() / sim::kTicksPerMs, 1)
              << " ms\n";
    return 0;
}
