/**
 * @file
 * Side-by-side run of the three systems of Table 3 — OpenFaaS+, BATCH
 * and INFless — on the same workload, printing the headline metrics the
 * paper compares them on.
 */

#include <iostream>
#include <memory>

#include "baselines/batch_otp.hh"
#include "baselines/openfaas_plus.hh"
#include "core/platform.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "workload/generators.hh"

using namespace infless;

namespace {

struct Row
{
    std::string system;
    double tpr;
    double violations;
    double fill;
    double gpus;
};

Row
runOne(core::Platform &platform)
{
    for (const auto &model : models::ModelZoo::osvtModels()) {
        core::FunctionSpec spec;
        spec.name = model + "-fn";
        spec.model = model;
        spec.sloTicks = sim::msToTicks(200);
        auto fn = platform.deploy(spec);
        platform.injectRateSeries(
            fn, workload::constantRate(100.0, 10 * sim::kTicksPerMin));
    }
    platform.run(10 * sim::kTicksPerMin + 10 * sim::kTicksPerSec);
    const auto &m = platform.totalMetrics();
    return Row{platform.name(),
               m.throughputPerResource(platform.endTime(),
                                       cluster::kDefaultBeta),
               m.sloViolationRate(), m.meanBatchFill(),
               m.meanGpuDevices(platform.endTime())};
}

} // namespace

int
main()
{
    metrics::printHeading(std::cout,
                          "OSVT bundle @ 300 RPS total on the 8-node "
                          "cluster: OpenFaaS+ vs BATCH vs INFless");

    baselines::OpenFaasPlus openfaas(8);
    baselines::BatchOtp batch(8);
    core::Platform infless(8);

    Row rows[] = {runOne(openfaas), runOne(batch), runOne(infless)};

    metrics::TextTable table({"system", "throughput/resource",
                              "SLO violations", "batch fill",
                              "mean GPUs held"});
    for (const Row &row : rows) {
        table.addRow({row.system, metrics::fmt(row.tpr, 1),
                      metrics::fmtPercent(row.violations),
                      metrics::fmt(row.fill, 1),
                      metrics::fmt(row.gpus, 2)});
    }
    table.print(std::cout);

    double vs_ofp = rows[0].tpr > 0 ? rows[2].tpr / rows[0].tpr : 0.0;
    double vs_batch = rows[1].tpr > 0 ? rows[2].tpr / rows[1].tpr : 0.0;
    std::cout << "\nINFless serves the same load with "
              << metrics::fmt(vs_ofp, 1) << "x the resource efficiency of "
              << "OpenFaaS+ and " << metrics::fmt(vs_batch, 1)
              << "x that of BATCH (paper: 2x-5x).\n";
    return 0;
}
