/**
 * @file
 * Command-line simulation runner: drive any of the three systems with a
 * synthetic pattern or a real Azure-format trace file, and get the run's
 * headline metrics (optionally a provisioning timeline CSV).
 *
 * Examples:
 *   infless_sim --pattern bursty --mean 80 --minutes 20
 *   infless_sim --system batch --model LSTM-2365 --slo 50
 *   infless_sim --trace mytrace.csv --timeline provisioning.csv
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/batch_otp.hh"
#include "baselines/openfaas_plus.hh"
#include "core/platform.hh"
#include "sim/logging.hh"
#include "metrics/report.hh"
#include "metrics/timeline.hh"
#include "models/model_zoo.hh"
#include "workload/azure_synth.hh"
#include "workload/trace_io.hh"

using namespace infless;

namespace {

struct Options
{
    std::string system = "infless";
    std::string pattern = "periodic";
    std::string trace;
    std::string timeline;
    std::string model = "ResNet-50";
    double meanRps = 60.0;
    int minutes = 15;
    int sloMs = 200;
    std::size_t servers = 8;
    std::uint64_t seed = 1;
};

int
usage()
{
    std::cerr
        << "usage: infless_sim [options]\n"
           "  --system infless|openfaas|batch   platform (default infless)\n"
           "  --pattern sporadic|periodic|bursty  synthetic trace shape\n"
           "  --trace FILE.csv   Azure-format trace (overrides --pattern)\n"
           "  --model NAME       zoo model for synthetic runs\n"
           "  --mean RPS         synthetic mean rate (default 60)\n"
           "  --minutes M        run length (default 15)\n"
           "  --slo MS           latency SLO (default 200)\n"
           "  --servers N        cluster size (default 8)\n"
           "  --seed S           random seed (default 1)\n"
           "  --timeline FILE.csv  write a provisioning timeline\n";
    return 2;
}

std::unique_ptr<core::Platform>
makePlatform(const Options &opts)
{
    core::PlatformOptions popts;
    popts.seed = opts.seed;
    if (opts.system == "infless")
        return std::make_unique<core::Platform>(opts.servers, popts);
    if (opts.system == "openfaas")
        return std::make_unique<baselines::OpenFaasPlus>(opts.servers,
                                                         popts);
    if (opts.system == "batch")
        return std::make_unique<baselines::BatchOtp>(opts.servers, popts);
    sim::fatal("unknown system: ", opts.system);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                sim::fatal("missing value for ", arg);
            return argv[i];
        };
        if (arg == "--system")
            opts.system = next();
        else if (arg == "--pattern")
            opts.pattern = next();
        else if (arg == "--trace")
            opts.trace = next();
        else if (arg == "--model")
            opts.model = next();
        else if (arg == "--mean")
            opts.meanRps = std::stod(next());
        else if (arg == "--minutes")
            opts.minutes = std::stoi(next());
        else if (arg == "--slo")
            opts.sloMs = std::stoi(next());
        else if (arg == "--servers")
            opts.servers = static_cast<std::size_t>(std::stoul(next()));
        else if (arg == "--seed")
            opts.seed = std::stoull(next());
        else if (arg == "--timeline")
            opts.timeline = next();
        else
            return usage();
    }

    auto platform = makePlatform(opts);
    sim::Tick horizon =
        static_cast<sim::Tick>(opts.minutes) * sim::kTicksPerMin;

    if (!opts.trace.empty()) {
        // One function per trace row; models assigned round-robin from
        // the zoo's application bundles.
        auto traces = workload::readAzureCsv(opts.trace);
        auto bundle = models::ModelZoo::osvtModels();
        std::size_t next_model = 0;
        for (const auto &[name, series] : traces) {
            core::FunctionSpec spec;
            spec.name = name;
            spec.model = bundle[next_model++ % bundle.size()];
            spec.sloTicks = sim::msToTicks(opts.sloMs);
            auto fn = platform->deploy(spec);
            platform->injectRateSeries(fn, series.truncated(horizon));
        }
    } else {
        workload::AzureSynthParams params;
        if (opts.pattern == "sporadic")
            params.pattern = workload::TracePattern::Sporadic;
        else if (opts.pattern == "periodic")
            params.pattern = workload::TracePattern::Periodic;
        else if (opts.pattern == "bursty")
            params.pattern = workload::TracePattern::Bursty;
        else
            return usage();
        params.meanRps = opts.meanRps;
        params.days = 1.0;
        params.seed = opts.seed;
        core::FunctionSpec spec;
        spec.name = opts.model + "-fn";
        spec.model = opts.model;
        spec.sloTicks = sim::msToTicks(opts.sloMs);
        auto fn = platform->deploy(spec);
        platform->injectRateSeries(
            fn, workload::synthesizeTrace(params).truncated(horizon));
    }

    metrics::TimelineSampler sampler(platform->simulation(),
                                     10 * sim::kTicksPerSec);
    sampler.track("weighted_alloc", [&] {
        return platform->cluster().totalAllocated().weighted(
            cluster::kDefaultBeta);
    });
    sampler.track("live_instances", [&] {
        return static_cast<double>(platform->liveInstanceCount());
    });

    platform->run(horizon + 10 * sim::kTicksPerSec);

    const auto &m = platform->totalMetrics();
    metrics::printHeading(std::cout, platform->name() + " run summary");
    metrics::TextTable table({"metric", "value"});
    table.addRow({"functions", std::to_string(platform->functionCount())});
    table.addRow({"requests", std::to_string(m.arrivals())});
    table.addRow({"completed", std::to_string(m.completions())});
    table.addRow({"dropped", std::to_string(m.drops())});
    table.addRow({"SLO violations",
                  metrics::fmtPercent(m.sloViolationRate())});
    table.addRow({"p99 latency (ms)",
                  metrics::fmt(
                      sim::ticksToMs(m.latency().percentile(99)), 1)});
    table.addRow({"mean batch fill", metrics::fmt(m.meanBatchFill(), 1)});
    table.addRow({"throughput/resource",
                  metrics::fmt(m.throughputPerResource(
                                   platform->endTime(),
                                   cluster::kDefaultBeta),
                               1)});
    table.addRow({"cold launches", std::to_string(m.coldLaunches())});
    table.print(std::cout);

    if (!opts.timeline.empty()) {
        std::ofstream os(opts.timeline);
        if (!os)
            sim::fatal("cannot write timeline: ", opts.timeline);
        sampler.writeCsv(os);
        std::cout << "timeline written to " << opts.timeline << "\n";
    }
    return 0;
}
