/**
 * @file
 * A website-backend scenario from the paper's introduction: when users
 * publish listings, background ML services moderate them — an image
 * moderation chain (detect objects, then classify), a fraud-detection
 * text model, and a customer-service Q&A robot — all sharing one
 * cluster with very different SLOs and traffic shapes.
 */

#include <iostream>

#include "core/platform.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "workload/azure_synth.hh"

using namespace infless;

int
main()
{
    core::Platform platform(8);
    sim::Tick horizon = 20 * sim::kTicksPerMin;

    // Image moderation: a two-stage chain on each uploaded photo.
    core::ChainSpec moderation;
    moderation.name = "image-moderation";
    moderation.models = {"SSD", "ResNet-50"};
    moderation.sloTicks = sim::msToTicks(300);
    auto chain = platform.deployChain(moderation);
    platform.injectChainRateSeries(
        chain, workload::synthesizeTrace(workload::TracePattern::Bursty,
                                         50.0, 1.0, 5)
                   .truncated(horizon));

    // Fraud detection: text classification on every listing, periodic
    // diurnal traffic.
    core::FunctionSpec fraud{"fraud-detection", "TextCNN-69",
                             sim::msToTicks(150), 32};
    auto fraud_fn = platform.deploy(fraud);
    platform.injectRateSeries(
        fraud_fn,
        workload::synthesizeTrace(workload::TracePattern::Periodic, 120.0,
                                  1.0, 6)
            .truncated(horizon));

    // Customer-service robot: tight 50 ms SLO, sporadic usage.
    core::FunctionSpec robot{"qa-robot", "LSTM-2365", sim::msToTicks(50),
                             32};
    auto robot_fn = platform.deploy(robot);
    platform.injectRateSeries(
        robot_fn,
        workload::synthesizeTrace(workload::TracePattern::Sporadic, 8.0,
                                  1.0, 9)
            .truncated(horizon));

    platform.run(horizon + 15 * sim::kTicksPerSec);

    metrics::printHeading(std::cout,
                          "mixed moderation backend (20 min, one shared "
                          "cluster)");
    metrics::TextTable table({"service", "requests", "violations",
                              "p99 (ms)", "cold launches"});
    auto add_fn = [&](const char *label, core::FunctionId fn) {
        const auto &m = platform.functionMetrics(fn);
        table.addRow({label, std::to_string(m.arrivals()),
                      metrics::fmtPercent(m.sloViolationRate()),
                      metrics::fmt(
                          sim::ticksToMs(m.latency().percentile(99)), 0),
                      std::to_string(m.coldLaunches())});
    };
    const auto &cm = platform.chainMetrics(chain);
    table.addRow({"image-moderation (chain)",
                  std::to_string(cm.arrivals()),
                  metrics::fmtPercent(cm.sloViolationRate()),
                  metrics::fmt(sim::ticksToMs(cm.latency().percentile(99)),
                               0),
                  "-"});
    add_fn("fraud-detection", fraud_fn);
    add_fn("qa-robot", robot_fn);
    table.print(std::cout);

    const auto &total = platform.totalMetrics();
    std::cout << "\ncluster: mean "
              << metrics::fmt(total.meanCpuCores(platform.endTime()), 1)
              << " cores + "
              << metrics::fmt(total.meanGpuDevices(platform.endTime()), 2)
              << " GPUs held for "
              << metrics::fmt(total.throughputRps(platform.endTime()), 0)
              << " RPS served ("
              << metrics::fmt(total.throughputPerResource(
                                  platform.endTime(),
                                  cluster::kDefaultBeta),
                              0)
              << " requests per weighted resource-second)\n";
    std::cout << "Isolation holds: each service keeps its own SLO "
                 "despite sharing machines - the point of native "
                 "multi-tenant inference serving.\n";
    return 0;
}
