/**
 * @file
 * The OSVT (online secondhand vehicle trading) scenario of §5.1: SSD for
 * object detection, MobileNet for license recognition and ResNet-50 for
 * vehicle classification, all under a 200 ms SLO, driven by a bursty
 * production-style trace.
 */

#include <iostream>

#include "core/platform.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "workload/azure_synth.hh"

using namespace infless;

int
main()
{
    core::Platform platform(8);

    std::vector<core::FunctionId> fns;
    std::uint64_t seed = 7;
    for (const auto &model : models::ModelZoo::osvtModels()) {
        core::FunctionSpec spec;
        spec.name = model + "-osvt";
        spec.model = model;
        spec.sloTicks = sim::msToTicks(200);
        auto fn = platform.deploy(spec);
        fns.push_back(fn);
        auto series =
            workload::synthesizeTrace(workload::TracePattern::Bursty,
                                      70.0, 1.0, seed++)
                .truncated(30 * sim::kTicksPerMin);
        platform.injectRateSeries(fn, series);
    }
    platform.run(30 * sim::kTicksPerMin + 10 * sim::kTicksPerSec);

    metrics::printHeading(std::cout,
                          "OSVT pipeline under a bursty trace (30 min)");
    metrics::TextTable table({"function", "requests", "violations",
                              "p99 (ms)", "batch fill", "launches"});
    for (auto fn : fns) {
        const auto &m = platform.functionMetrics(fn);
        table.addRow({platform.spec(fn).name,
                      std::to_string(m.arrivals()),
                      metrics::fmtPercent(m.sloViolationRate()),
                      metrics::fmt(
                          sim::ticksToMs(m.latency().percentile(99)), 0),
                      metrics::fmt(m.meanBatchFill(), 1),
                      std::to_string(m.launches())});
    }
    table.print(std::cout);

    const auto &total = platform.totalMetrics();
    std::cout << "\noverall: " << total.completions()
              << " requests served, "
              << metrics::fmtPercent(total.sloViolationRate())
              << " SLO violations, throughput/resource "
              << metrics::fmt(total.throughputPerResource(
                                  platform.endTime(),
                                  cluster::kDefaultBeta),
                              1)
              << "\n";
    return 0;
}
