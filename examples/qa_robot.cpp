/**
 * @file
 * The Q&A robot scenario of §5.1: TextCNN-69, LSTM-2365 and DSSM answer
 * user questions under a tight 50 ms SLO. Demonstrates that small text
 * models batch well too, and shows the latency breakdown INFless keeps
 * (queuing roughly equal to execution).
 */

#include <iostream>

#include "core/platform.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"
#include "workload/generators.hh"

using namespace infless;

int
main()
{
    core::Platform platform(8);

    std::vector<core::FunctionId> fns;
    for (const auto &model : models::ModelZoo::qaRobotModels()) {
        core::FunctionSpec spec;
        spec.name = model + "-qa";
        spec.model = model;
        spec.sloTicks = sim::msToTicks(50);
        auto fn = platform.deploy(spec);
        fns.push_back(fn);
        platform.injectRateSeries(
            fn, workload::constantRate(150.0, 10 * sim::kTicksPerMin));
    }
    platform.run(10 * sim::kTicksPerMin + 5 * sim::kTicksPerSec);

    metrics::printHeading(std::cout,
                          "Q&A robot: three text models @ 150 RPS each, "
                          "SLO 50 ms");
    metrics::TextTable table({"function", "completed", "violations",
                              "queue (ms)", "exec (ms)", "p99 (ms)"});
    for (auto fn : fns) {
        const auto &m = platform.functionMetrics(fn);
        table.addRow(
            {platform.spec(fn).name, std::to_string(m.completions()),
             metrics::fmtPercent(m.sloViolationRate()),
             metrics::fmt(m.queueTime().mean() / sim::kTicksPerMs, 1),
             metrics::fmt(m.execTime().mean() / sim::kTicksPerMs, 1),
             metrics::fmt(sim::ticksToMs(m.latency().percentile(99)), 1)});
    }
    table.print(std::cout);

    std::cout << "\nINFless keeps batch queuing time on the order of the "
                 "execution time (Fig. 15b/c), even at a 50 ms SLO.\n";
    return 0;
}
