/**
 * @file
 * Quickstart: deploy one inference function with a latency SLO, drive it
 * with Poisson traffic, and read back the metrics INFless reports.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/platform.hh"
#include "metrics/report.hh"
#include "workload/generators.hh"

using namespace infless;

int
main()
{
    // A platform simulating the paper's 8-node GPU testbed.
    core::Platform platform(8);

    // Deploy: like the Fig. 5 template, a function is a model plus an
    // SLO; batching, resources and scaling are the platform's job.
    core::FunctionSpec spec;
    spec.name = "image-classifier";
    spec.model = "ResNet-50";
    spec.sloTicks = sim::msToTicks(200);
    auto fn = platform.deploy(spec);

    // Offer 80 requests/second for five minutes.
    platform.injectRateSeries(
        fn, workload::constantRate(80.0, 5 * sim::kTicksPerMin));
    platform.run(5 * sim::kTicksPerMin + 10 * sim::kTicksPerSec);

    const auto &m = platform.totalMetrics();
    metrics::printHeading(std::cout, "quickstart: ResNet-50 @ 80 RPS");
    metrics::TextTable table({"metric", "value"});
    table.addRow({"requests", std::to_string(m.arrivals())});
    table.addRow({"completed", std::to_string(m.completions())});
    table.addRow({"SLO violations",
                  metrics::fmtPercent(m.sloViolationRate())});
    table.addRow({"p50 latency",
                  metrics::fmt(sim::ticksToMs(m.latency().percentile(50)),
                               1) +
                      " ms"});
    table.addRow({"p99 latency",
                  metrics::fmt(sim::ticksToMs(m.latency().percentile(99)),
                               1) +
                      " ms"});
    table.addRow({"mean batch fill", metrics::fmt(m.meanBatchFill(), 1)});
    table.addRow({"instances launched", std::to_string(m.launches())});
    table.addRow(
        {"mean GPUs held",
         metrics::fmt(m.meanGpuDevices(platform.endTime()), 2)});
    table.print(std::cout);

    std::cout << "\nEach launched configuration (non-uniform scaling):\n";
    for (const auto &usage : platform.configUsage(fn)) {
        std::cout << "  " << usage.config.str() << "  launches="
                  << usage.launches << " served=" << usage.requestsServed
                  << "\n";
    }
    return 0;
}
