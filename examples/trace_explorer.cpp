/**
 * @file
 * Generate and summarize the three production-style invocation patterns
 * of Fig. 10 (sporadic, periodic, bursty), and show what the LSTH
 * keep-alive policy decides on each — a small tour of the workload and
 * cold-start substrates.
 */

#include <algorithm>
#include <iostream>

#include "coldstart/evaluator.hh"
#include "coldstart/hhp.hh"
#include "coldstart/lsth.hh"
#include "metrics/report.hh"
#include "sim/rng.hh"
#include "workload/azure_synth.hh"

using namespace infless;

namespace {

/** Render one day of a rate series as a coarse ASCII sparkline. */
std::string
sparkline(const workload::RateSeries &series, int columns = 48)
{
    static const char *levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    double peak = series.peakRps();
    std::string out;
    std::size_t bins_per_col =
        std::max<std::size_t>(1, series.rps.size() / columns);
    for (int col = 0; col < columns; ++col) {
        double sum = 0.0;
        std::size_t start = col * bins_per_col;
        if (start >= series.rps.size())
            break;
        std::size_t end =
            std::min(series.rps.size(), start + bins_per_col);
        for (std::size_t i = start; i < end; ++i)
            sum += series.rps[i];
        double mean = sum / static_cast<double>(end - start);
        int level = peak > 0 ? static_cast<int>(mean / peak * 7.0) : 0;
        out += levels[std::clamp(level, 0, 7)];
    }
    return out;
}

} // namespace

int
main()
{
    metrics::printHeading(std::cout,
                          "Fig. 10 trace patterns (one day, mean 0.05 "
                          "RPS -- the per-function scale where keep-alive "
                          "policy matters)");
    for (auto pattern : workload::kAllPatterns) {
        auto series = workload::synthesizeTrace(pattern, 0.05, 1.0, 5);
        std::cout << "  " << workload::tracePatternName(pattern) << "\t["
                  << sparkline(series) << "]  peak/mean="
                  << metrics::fmt(series.peakRps() /
                                      std::max(series.meanRps(), 1e-9),
                                  1)
                  << "\n";
    }

    metrics::printHeading(std::cout,
                          "Keep-alive policies replayed on 3-day traces");
    metrics::TextTable table({"pattern", "policy", "cold-start rate",
                              "idle waste"});
    for (auto pattern : workload::kAllPatterns) {
        auto series = workload::synthesizeTrace(pattern, 0.01, 3.0, 11);
        sim::Rng rng(23);
        auto trace = workload::ArrivalTrace::fromRateSeries(series, rng);

        coldstart::HybridHistogramPolicy hhp;
        auto hhp_eval = coldstart::evaluatePolicy(hhp, trace);
        table.addRow({workload::tracePatternName(pattern), "HHP",
                      metrics::fmtPercent(hhp_eval.coldStartRate(), 2),
                      metrics::fmtPercent(hhp_eval.wasteRatio())});

        coldstart::LsthPolicy lsth;
        auto lsth_eval = coldstart::evaluatePolicy(lsth, trace);
        table.addRow({workload::tracePatternName(pattern), "LSTH(0.5)",
                      metrics::fmtPercent(lsth_eval.coldStartRate(), 2),
                      metrics::fmtPercent(lsth_eval.wasteRatio())});
    }
    table.print(std::cout);
    return 0;
}
