#include "baselines/batch_otp.hh"

#include <algorithm>
#include <utility>

#include "coldstart/fixed.hh"
#include "core/rps_bounds.hh"

namespace infless::baselines {

namespace {

core::PlatformOptions
withFixedKeepAlive(core::PlatformOptions opts, sim::Tick keep_alive)
{
    opts.keepAlive = coldstart::FixedKeepAlive::factory(keep_alive);
    return opts;
}

} // namespace

BatchOtp::BatchOtp(std::size_t num_servers, core::PlatformOptions opts,
                   BatchOtpOptions batch)
    : core::Platform(num_servers,
                     withFixedKeepAlive(std::move(opts), batch.keepAlive)),
      batch_(std::move(batch))
{
}

std::vector<core::LaunchPlan>
BatchOtp::planScaleOut(FunctionState &fn, double residual_rps)
{
    // Adaptive uniform batching: among the menu entries whose predicted
    // execution time admits the SLO, pick the (batch, config) pair with
    // the best throughput per weighted resource. Unlike Algorithm 1 there
    // is no per-instance saturation (r_low) check and every instance gets
    // the same pair, so low-rate functions end up with oversized batches
    // that time out (the paper's Observation 5).
    const core::CandidateConfig *chosen = nullptr;
    core::CandidateConfig best;
    double best_value = -1.0;
    for (int b : batch_.batchChoices) {
        if (b > fn.spec.maxBatch)
            continue;
        for (cluster::Resources res : batch_.configMenu) {
            res.memoryMb = scheduler().instanceMemoryMb(*fn.model);
            sim::Tick exec = predictor().predict(*fn.model, b, res);
            if (!core::execFeasible(exec, fn.spec.sloTicks, b))
                continue;
            core::RpsBounds bounds =
                core::rpsBounds(exec, fn.spec.sloTicks, b);
            double value =
                bounds.up / res.weighted(options().scheduler.beta);
            if (value > best_value) {
                best_value = value;
                best.config = cluster::InstanceConfig{b, res};
                best.execPredicted = exec;
                best.bounds = bounds;
                chosen = &best;
            }
        }
    }
    if (!chosen)
        return {};

    return core::uniformSchedule(*chosen, residual_rps, mutableCluster(),
                                 bestFitPlacement(),
                                 options().scheduler.beta,
                                 chosen->config.resources.memoryMb);
}

} // namespace infless::baselines
