/**
 * @file
 * BATCH baseline — Ali et al., SC'20, re-hosted like the paper does.
 *
 * BATCH is an On-Top-of-Platform design: a buffer layer in front of the
 * serverless platform aggregates requests into uniform batches. Compared
 * to INFless it (1) adds OTP scheduling delay on the ingress path,
 * (2) is unaware of the platform's internal queuing when it sets its
 * batch timeout, (3) scales uniformly — every instance of a function gets
 * the same adaptively chosen (batch, resources) pair from a small fixed
 * menu — and (4) keeps instances alive for a fixed window.
 */

#ifndef INFLESS_BASELINES_BATCH_OTP_HH
#define INFLESS_BASELINES_BATCH_OTP_HH

#include <vector>

#include "core/platform.hh"

namespace infless::baselines {

/** BATCH knobs. */
struct BatchOtpOptions
{
    /**
     * Resource menu the OTP controller may pick from (CPU mc, GPU %).
     * Like the original BATCH's memory-indexed Lambda profiles, the menu
     * keeps a coarse proportional flavor: GPU share scales with the CPU
     * grant rather than being tuned per model.
     */
    std::vector<cluster::Resources> configMenu = {
        {1000, 5, 0},
        {2000, 10, 0},
        {3000, 20, 0},
    };
    /** Batchsizes the adaptive buffer supports. */
    std::vector<int> batchChoices = {1, 2, 4, 8};
    /** Extra per-request delay through the OTP buffer layer. */
    sim::Tick otpDelay = 10 * sim::kTicksPerMs;
    /** Fixed keep-alive window. */
    sim::Tick keepAlive = 300 * sim::kTicksPerSec;
};

/**
 * The BATCH comparison system.
 */
class BatchOtp : public core::Platform
{
  public:
    BatchOtp(std::size_t num_servers, core::PlatformOptions opts = {},
             BatchOtpOptions batch = {});

    std::string name() const override { return "BATCH"; }

  protected:
    std::vector<core::LaunchPlan> planScaleOut(FunctionState &fn,
                                               double residual_rps) override;
    sim::Tick ingressDelay() const override { return batch_.otpDelay; }
    bool activeScaleIn() const override { return false; }
    bool packRouting() const override { return true; }
    bool reconfigures() const override { return false; }

    /** Whether placement uses the e_ij best-fit rule (BATCH+RS). */
    virtual bool bestFitPlacement() const { return false; }

    const BatchOtpOptions &batchOptions() const { return batch_; }

  private:
    BatchOtpOptions batch_;
};

} // namespace infless::baselines

#endif // INFLESS_BASELINES_BATCH_OTP_HH
