#include "baselines/batch_rs.hh"

// BatchRs is fully defined in the header; this translation unit anchors
// its vtable.

namespace infless::baselines {

} // namespace infless::baselines
