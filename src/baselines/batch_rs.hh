/**
 * @file
 * BATCH+RS — Fig. 17(b)'s fourth system.
 *
 * The instances BATCH configures, placed by INFless's resource-aware
 * best-fit rule instead of first-fit. Isolates the contribution of the
 * scheduling algorithm to fragmentation reduction.
 */

#ifndef INFLESS_BASELINES_BATCH_RS_HH
#define INFLESS_BASELINES_BATCH_RS_HH

#include "baselines/batch_otp.hh"

namespace infless::baselines {

/**
 * BATCH with resource-aware placement.
 */
class BatchRs : public BatchOtp
{
  public:
    using BatchOtp::BatchOtp;

    std::string name() const override { return "BATCH+RS"; }

  protected:
    bool bestFitPlacement() const override { return true; }
};

} // namespace infless::baselines

#endif // INFLESS_BASELINES_BATCH_RS_HH
