#include "baselines/lambda_model.hh"

#include <cmath>

namespace infless::baselines {

const std::vector<std::int64_t> &
LambdaModel::memorySizesMb()
{
    static const std::vector<std::int64_t> sizes = {
        128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2304, 2560,
        2816, 3008};
    return sizes;
}

std::int64_t
LambdaModel::cpuQuotaMillicores(std::int64_t memory_mb)
{
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(memory_mb) / kMbPerVcpu * 1000.0));
}

cluster::Resources
LambdaModel::resourcesFor(std::int64_t memory_mb)
{
    return cluster::Resources{cpuQuotaMillicores(memory_mb), 0, memory_mb};
}

double
LambdaModel::actualConsumptionMb(const models::ModelInfo &model)
{
    // Weights loaded twice (serialized + deserialized) plus the serving
    // framework's resident footprint. Calibrated to the paper's example:
    // serving SSD actually consumes ~427 MB.
    return model.sizeMb * 2.0 + 370.0;
}

bool
LambdaModel::canLoad(const models::ModelInfo &model, std::int64_t memory_mb)
{
    return static_cast<double>(memory_mb) >= actualConsumptionMb(model);
}

sim::Tick
LambdaModel::invokeTicks(const models::ModelInfo &model,
                         std::int64_t memory_mb, int batch) const
{
    if (!canLoad(model, memory_mb))
        return sim::kTickNever;
    return cache_.trueTicks(exec_, model, batch, resourcesFor(memory_mb));
}

std::int64_t
LambdaModel::minMemoryForSlo(const models::ModelInfo &model, sim::Tick slo,
                             int batch) const
{
    for (std::int64_t mem : memorySizesMb()) {
        sim::Tick t = invokeTicks(model, mem, batch);
        if (t != sim::kTickNever && t <= slo)
            return mem;
    }
    return -1;
}

double
LambdaModel::overProvisionRatio(const models::ModelInfo &model,
                                sim::Tick slo, int batch) const
{
    std::int64_t mem = minMemoryForSlo(model, slo, batch);
    if (mem < 0)
        return -1.0;
    double wasted =
        static_cast<double>(mem) - actualConsumptionMb(model);
    return wasted / static_cast<double>(mem);
}

} // namespace infless::baselines
