/**
 * @file
 * AWS-Lambda-style commercial serverless model (§2.2, Fig. 2).
 *
 * Commercial platforms allocate CPU power in proportion to the configured
 * memory (about one vCPU per 1,769 MB on Lambda) and support no
 * accelerators. This analytic model reproduces the paper's motivation
 * observations: large models cannot meet 200 ms at any memory size
 * (Obs. 1), batching on CPU multiplies latency (Obs. 2), and meeting the
 * SLO forces memory over-provisioning well past actual consumption
 * (Obs. 3).
 */

#ifndef INFLESS_BASELINES_LAMBDA_MODEL_HH
#define INFLESS_BASELINES_LAMBDA_MODEL_HH

#include <cstdint>
#include <vector>

#include "cluster/resources.hh"
#include "models/exec_model.hh"
#include "models/latency_cache.hh"
#include "models/model_zoo.hh"
#include "sim/time.hh"

namespace infless::baselines {

/**
 * The proportional CPU-memory allocation model.
 */
class LambdaModel
{
  public:
    LambdaModel() = default;
    explicit LambdaModel(const models::ExecParams &exec) : exec_(exec) {}

    /** MB of function memory buying one vCPU worth of quota. */
    static constexpr double kMbPerVcpu = 1769.0;

    /** Standard memory sizes of the Fig. 2 sweep. */
    static const std::vector<std::int64_t> &memorySizesMb();

    /** CPU quota (millicores) the platform grants for @p memory_mb. */
    static std::int64_t cpuQuotaMillicores(std::int64_t memory_mb);

    /** CPU-only resource vector for a memory setting. */
    static cluster::Resources resourcesFor(std::int64_t memory_mb);

    /**
     * Actual memory footprint of serving the model (weights + framework
     * runtime), independent of the configured size.
     */
    static double actualConsumptionMb(const models::ModelInfo &model);

    /** Whether the model fits in the configured memory at all. */
    static bool canLoad(const models::ModelInfo &model,
                        std::int64_t memory_mb);

    /**
     * Invocation (batch execution) time at a memory setting.
     *
     * @return kTickNever when the model cannot be loaded.
     */
    sim::Tick invokeTicks(const models::ModelInfo &model,
                          std::int64_t memory_mb, int batch = 1) const;

    /**
     * Smallest standard memory size meeting @p slo.
     *
     * @return -1 when no size qualifies (Obs. 1's large models).
     */
    std::int64_t minMemoryForSlo(const models::ModelInfo &model,
                                 sim::Tick slo, int batch = 1) const;

    /**
     * Memory over-provisioning ratio for meeting @p slo: configured
     * memory minus actual consumption, over configured memory (Fig. 2c).
     *
     * @return -1 when the SLO is unreachable.
     */
    double overProvisionRatio(const models::ModelInfo &model, sim::Tick slo,
                              int batch = 1) const;

    const models::ExecModel &execModel() const { return exec_; }

    /** Hit/miss counters of the invocation-latency memo. */
    const models::LatencyCacheStats &cacheStats() const
    {
        return cache_.stats();
    }

  private:
    models::ExecModel exec_;
    /** Fig. 2 sweeps re-price (model, memory, batch) points heavily. */
    mutable models::LatencyCache cache_;
};

} // namespace infless::baselines

#endif // INFLESS_BASELINES_LAMBDA_MODEL_HH
