#include "baselines/openfaas_plus.hh"

#include <utility>

#include "coldstart/fixed.hh"

namespace infless::baselines {

namespace {

core::PlatformOptions
withFixedKeepAlive(core::PlatformOptions opts, sim::Tick keep_alive)
{
    opts.keepAlive = coldstart::FixedKeepAlive::factory(keep_alive);
    return opts;
}

} // namespace

OpenFaasPlus::OpenFaasPlus(std::size_t num_servers,
                           core::PlatformOptions opts,
                           OpenFaasPlusOptions ofp)
    : core::Platform(num_servers,
                     withFixedKeepAlive(std::move(opts), ofp.keepAlive)),
      ofp_(ofp)
{
}

std::vector<core::LaunchPlan>
OpenFaasPlus::planScaleOut(FunctionState &fn, double residual_rps)
{
    cluster::Resources res = ofp_.instanceResources;
    res.memoryMb = scheduler().instanceMemoryMb(*fn.model);

    core::CandidateConfig config;
    config.config = cluster::InstanceConfig{1, res};
    config.execPredicted = predictor().predict(*fn.model, 1, res);
    // OpenFaaS is SLO-unaware: it launches its fixed configuration no
    // matter what; the capacity is simply 1/t_exec.
    config.bounds.up =
        1.0 / sim::ticksToSec(std::max<sim::Tick>(1, config.execPredicted));
    config.bounds.low = 0.0;

    return core::uniformSchedule(config, residual_rps, mutableCluster(),
                                 /*best_fit=*/false,
                                 options().scheduler.beta, res.memoryMb);
}

} // namespace infless::baselines
