/**
 * @file
 * OpenFaaS+ baseline (§5.1, Table 3).
 *
 * The enhanced OpenFaaS the paper compares against: GPU-capable, but with
 * the "one-to-one mapping" request policy (each request needs its own
 * unoccupied instance), no batching, a single fixed instance
 * configuration (2 CPU cores + 10% GPU SMs), uniform scaling and a fixed
 * 300 s keep-alive window.
 */

#ifndef INFLESS_BASELINES_OPENFAAS_PLUS_HH
#define INFLESS_BASELINES_OPENFAAS_PLUS_HH

#include "core/platform.hh"

namespace infless::baselines {

/** OpenFaaS+ knobs. */
struct OpenFaasPlusOptions
{
    /** The uniform per-instance allocation (paper: 2 cores, 10% SM). */
    cluster::Resources instanceResources{2000, 10, 0};
    /** Fixed keep-alive window. */
    sim::Tick keepAlive = 300 * sim::kTicksPerSec;
};

/**
 * The OpenFaaS+ comparison system.
 */
class OpenFaasPlus : public core::Platform
{
  public:
    OpenFaasPlus(std::size_t num_servers, core::PlatformOptions opts = {},
                 OpenFaasPlusOptions ofp = {});

    std::string name() const override { return "OpenFaaS+"; }

  protected:
    std::vector<core::LaunchPlan> planScaleOut(FunctionState &fn,
                                               double residual_rps) override;
    bool oneToOne() const override { return true; }
    bool activeScaleIn() const override { return false; }
    bool packRouting() const override { return true; }
    bool reconfigures() const override { return false; }

  private:
    OpenFaasPlusOptions ofp_;
};

} // namespace infless::baselines

#endif // INFLESS_BASELINES_OPENFAAS_PLUS_HH
