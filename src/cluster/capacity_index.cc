#include "cluster/capacity_index.hh"

#include "sim/logging.hh"

namespace infless::cluster {

void
CapacityIndex::rebuild(const std::vector<Server> &servers)
{
    classes_.clear();
    serverCount_ = 0;
    for (const auto &s : servers) {
        if (!s.isDown())
            insert(s.id(), s.available());
    }
}

void
CapacityIndex::insert(ServerId id, const Resources &avail)
{
    classes_[avail].members.insert(id);
    ++serverCount_;
}

void
CapacityIndex::update(ServerId id, const Resources &before,
                      const Resources &after)
{
    auto it = classes_.find(before);
    sim::simAssert(it != classes_.end() && it->second.members.count(id),
                   "capacity index out of sync for server ", id);
    it->second.members.erase(id);
    if (it->second.members.empty())
        classes_.erase(it);
    classes_[after].members.insert(id);
}

void
CapacityIndex::remove(ServerId id, const Resources &avail)
{
    auto it = classes_.find(avail);
    sim::simAssert(it != classes_.end() && it->second.members.count(id),
                   "capacity index out of sync for server ", id);
    it->second.members.erase(id);
    if (it->second.members.empty())
        classes_.erase(it);
    --serverCount_;
}

ServerId
CapacityIndex::firstFit(const Resources &req) const
{
    ServerId best = kNoServer;
    for (const auto &[avail, entry] : classes_) {
        if (!req.fitsIn(avail))
            continue;
        ServerId min_id = *entry.members.begin();
        if (best == kNoServer || min_id < best)
            best = min_id;
    }
    return best;
}

ServerId
CapacityIndex::bestFit(const Resources &req, double beta) const
{
    ServerId best = kNoServer;
    double best_avail = std::numeric_limits<double>::max();
    for (const auto &[avail, entry] : classes_) {
        if (!req.fitsIn(avail))
            continue;
        if (entry.cachedBeta != beta) {
            entry.cachedWeighted = avail.weighted(beta);
            entry.cachedBeta = beta;
        }
        double weighted = entry.cachedWeighted;
        ServerId min_id = *entry.members.begin();
        // Mirror a linear id-order scan with a strict `<` improvement
        // test: smallest weighted availability wins, ties go to the
        // lowest id.
        if (best == kNoServer || weighted < best_avail ||
            (weighted == best_avail && min_id < best)) {
            best_avail = weighted;
            best = min_id;
        }
    }
    return best;
}

bool
CapacityIndex::consistentWith(const std::vector<Server> &servers) const
{
    std::size_t filed = 0;
    for (const auto &[avail, entry] : classes_) {
        if (entry.members.empty())
            return false;
        for (ServerId id : entry.members) {
            if (id < 0 || static_cast<std::size_t>(id) >= servers.size())
                return false;
            const Server &s = servers[static_cast<std::size_t>(id)];
            if (s.isDown() || s.isRetired() || !(s.available() == avail))
                return false;
            ++filed;
        }
    }
    // Down and retired servers are unfiled: classes partition the *up,
    // still-member* servers only.
    std::size_t up = 0;
    for (const auto &s : servers)
        up += (s.isDown() || s.isRetired()) ? 0 : 1;
    return filed == up && serverCount_ == up;
}

} // namespace infless::cluster
