#include "cluster/capacity_index.hh"

#include "sim/logging.hh"

namespace infless::cluster {

void
CapacityIndex::rebuild(const std::vector<Server> &servers)
{
    classes_.clear();
    serverCount_ = 0;
    for (const auto &s : servers) {
        if (!s.isDown() && !s.isRetired() && !s.isQuarantined())
            insert(s.id(), s.available());
    }
}

void
CapacityIndex::insert(ServerId id, const Resources &avail)
{
    ClassEntry &entry = classes_[avail];
    entry.members.insert(id);
    if (domainsEnabled())
        entry.byDomain[domainOf(id)].insert(id);
    ++serverCount_;
}

void
CapacityIndex::eraseDomainMember(ClassEntry &entry, ServerId id)
{
    if (!domainsEnabled())
        return;
    auto bucket = entry.byDomain.find(domainOf(id));
    sim::simAssert(bucket != entry.byDomain.end() &&
                       bucket->second.erase(id) == 1,
                   "domain bucket out of sync for server ", id);
    if (bucket->second.empty())
        entry.byDomain.erase(bucket);
}

void
CapacityIndex::update(ServerId id, const Resources &before,
                      const Resources &after)
{
    auto it = classes_.find(before);
    sim::simAssert(it != classes_.end() && it->second.members.count(id),
                   "capacity index out of sync for server ", id);
    it->second.members.erase(id);
    eraseDomainMember(it->second, id);
    if (it->second.members.empty())
        classes_.erase(it);
    ClassEntry &entry = classes_[after];
    entry.members.insert(id);
    if (domainsEnabled())
        entry.byDomain[domainOf(id)].insert(id);
}

void
CapacityIndex::remove(ServerId id, const Resources &avail)
{
    auto it = classes_.find(avail);
    sim::simAssert(it != classes_.end() && it->second.members.count(id),
                   "capacity index out of sync for server ", id);
    it->second.members.erase(id);
    eraseDomainMember(it->second, id);
    if (it->second.members.empty())
        classes_.erase(it);
    --serverCount_;
}

void
CapacityIndex::assignDomain(ServerId id, DomainId rack,
                            const Resources *filed_avail)
{
    sim::simAssert(id >= 0, "bad server id ", id);
    if (!domainsEnabled()) {
        // First assignment: backfill every filed member into the
        // kNoDomain bucket so the bucket partition is complete before
        // any per-server moves happen.
        rackOf_.assign(static_cast<std::size_t>(id) + 1, kNoDomain);
        for (auto &[avail, entry] : classes_)
            entry.byDomain[kNoDomain] = entry.members;
    }
    if (static_cast<std::size_t>(id) >= rackOf_.size())
        rackOf_.resize(static_cast<std::size_t>(id) + 1, kNoDomain);

    if (filed_avail != nullptr) {
        auto it = classes_.find(*filed_avail);
        sim::simAssert(it != classes_.end() &&
                           it->second.members.count(id),
                       "capacity index out of sync for server ", id);
        eraseDomainMember(it->second, id);
        rackOf_[static_cast<std::size_t>(id)] = rack;
        it->second.byDomain[rack].insert(id);
    } else {
        rackOf_[static_cast<std::size_t>(id)] = rack;
    }
}

ServerId
CapacityIndex::firstFit(const Resources &req) const
{
    ServerId best = kNoServer;
    for (const auto &[avail, entry] : classes_) {
        if (!req.fitsIn(avail))
            continue;
        ServerId min_id = *entry.members.begin();
        if (best == kNoServer || min_id < best)
            best = min_id;
    }
    return best;
}

ServerId
CapacityIndex::bestFit(const Resources &req, double beta) const
{
    ServerId best = kNoServer;
    double best_avail = std::numeric_limits<double>::max();
    for (const auto &[avail, entry] : classes_) {
        if (!req.fitsIn(avail))
            continue;
        if (entry.cachedBeta != beta) {
            entry.cachedWeighted = avail.weighted(beta);
            entry.cachedBeta = beta;
        }
        double weighted = entry.cachedWeighted;
        ServerId min_id = *entry.members.begin();
        // Mirror a linear id-order scan with a strict `<` improvement
        // test: smallest weighted availability wins, ties go to the
        // lowest id.
        if (best == kNoServer || weighted < best_avail ||
            (weighted == best_avail && min_id < best)) {
            best_avail = weighted;
            best = min_id;
        }
    }
    return best;
}

bool
CapacityIndex::consistentWith(const std::vector<Server> &servers) const
{
    std::size_t filed = 0;
    for (const auto &[avail, entry] : classes_) {
        if (entry.members.empty())
            return false;
        for (ServerId id : entry.members) {
            if (id < 0 || static_cast<std::size_t>(id) >= servers.size())
                return false;
            const Server &s = servers[static_cast<std::size_t>(id)];
            if (s.isDown() || s.isRetired() || s.isQuarantined() ||
                !(s.available() == avail))
                return false;
            ++filed;
        }
        // With domains on, the rack buckets must partition the members
        // and every member must sit in the bucket of its assigned rack.
        if (domainsEnabled()) {
            std::size_t bucketed = 0;
            for (const auto &[rack, members] : entry.byDomain) {
                if (members.empty())
                    return false;
                for (ServerId id : members) {
                    if (!entry.members.count(id) || domainOf(id) != rack)
                        return false;
                    ++bucketed;
                }
            }
            if (bucketed != entry.members.size())
                return false;
        } else if (!entry.byDomain.empty()) {
            return false;
        }
    }
    // Down, retired and quarantined servers are unfiled: classes
    // partition the *up, still-member, admitted* servers only.
    std::size_t up = 0;
    for (const auto &s : servers)
        up += (s.isDown() || s.isRetired() || s.isQuarantined()) ? 0 : 1;
    return filed == up && serverCount_ == up;
}

} // namespace infless::cluster
