/**
 * @file
 * Server capacity index — equivalence classes over available resources.
 *
 * The scheduler's argmax over e_ij only depends on a server through its
 * available-resource vector, so servers with identical remainders are
 * interchangeable up to the id tie-break. The index groups servers into
 * equivalence classes keyed by that vector (a fresh homogeneous
 * 2,000-server cluster has exactly *one* class), letting placement loops
 * evaluate each candidate once per class instead of once per server.
 * Updates on allocate/release move one id between two classes —
 * O(log classes + log members).
 */

#ifndef INFLESS_CLUSTER_CAPACITY_INDEX_HH
#define INFLESS_CLUSTER_CAPACITY_INDEX_HH

#include <cstddef>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "cluster/resources.hh"
#include "cluster/server.hh"
#include "cluster/topology.hh"

namespace infless::cluster {

/**
 * Groups the servers of one Cluster by available-resource vector.
 *
 * The owning Cluster keeps the index in sync from allocate()/release();
 * all placement probes (firstFit, bestFit, the scheduler's e_ij argmax)
 * run over classes. Iteration order is deterministic: classes are sorted
 * by their (cpu, gpu, memory) key.
 */
class CapacityIndex
{
  public:
    CapacityIndex() = default;

    /** Rebuild from scratch (constructor / wholesale reset). */
    void rebuild(const std::vector<Server> &servers);

    /**
     * Move @p id from the class keyed by @p before to the one keyed by
     * @p after. Panics if the server is not filed under @p before.
     */
    void update(ServerId id, const Resources &before,
                const Resources &after);

    /**
     * Unfile a server (crashed machine leaving the placement pool).
     * Panics if it is not filed under @p avail.
     */
    void remove(ServerId id, const Resources &avail);

    /** Re-file a recovered server under its current availability. */
    void add(ServerId id, const Resources &avail) { insert(id, avail); }

    /** Number of distinct available-resource vectors. */
    std::size_t classCount() const { return classes_.size(); }

    /** Total servers tracked. */
    std::size_t serverCount() const { return serverCount_; }

    /**
     * Lowest server id whose availability fits @p req (the first-fit
     * answer of a linear id-order scan), or kNoServer.
     */
    ServerId firstFit(const Resources &req) const;

    /**
     * Server with the smallest weighted availability that fits @p req;
     * ties broken toward the lowest id (matching a linear id-order
     * best-fit scan). kNoServer when nothing fits.
     */
    ServerId bestFit(const Resources &req, double beta) const;

    /**
     * Visit every class as f(avail, weightedAvail, minId, count).
     *
     * @p weightedAvail is avail.weighted(beta), cached per class until
     * the class key changes (class entries are immutable once created,
     * so the cache only recomputes when @p beta differs from the last
     * call's).
     */
    template <typename F>
    void
    forEachClass(double beta, F &&f) const
    {
        for (const auto &[avail, entry] : classes_) {
            if (entry.cachedBeta != beta) {
                entry.cachedWeighted = avail.weighted(beta);
                entry.cachedBeta = beta;
            }
            f(avail, entry.cachedWeighted, *entry.members.begin(),
              entry.members.size());
        }
    }

    // Failure domains -------------------------------------------------------

    /**
     * Record the rack domain of a server. The first call enables domain
     * bucketing: from then on every class additionally partitions its
     * members by rack, and forEachClassDomain() becomes meaningful.
     * Clusters that never assign a domain pay nothing — the per-class
     * bucket maps stay empty and forEachClass() is untouched.
     *
     * @param filed_avail The server's current availability if it is
     *        presently filed in the index (so its bucket can move), or
     *        nullptr if it is unfiled (down/retired/quarantined).
     */
    void assignDomain(ServerId id, DomainId rack,
                      const Resources *filed_avail);

    /** Whether any domain was ever assigned. */
    bool domainsEnabled() const { return !rackOf_.empty(); }

    /** Rack domain of a server (kNoDomain when unassigned). */
    DomainId
    domainOf(ServerId id) const
    {
        if (id < 0 || static_cast<std::size_t>(id) >= rackOf_.size())
            return kNoDomain;
        return rackOf_[static_cast<std::size_t>(id)];
    }

    /**
     * Visit every (class, rack-domain) bucket as
     * f(avail, weightedAvail, rack, minId, count).
     *
     * Buckets iterate in (class key, rack id) order — deterministic.
     * Servers without an assigned domain appear under kNoDomain. Only
     * valid once domainsEnabled(); the spread-aware scheduler path is
     * the sole caller.
     */
    template <typename F>
    void
    forEachClassDomain(double beta, F &&f) const
    {
        for (const auto &[avail, entry] : classes_) {
            if (entry.cachedBeta != beta) {
                entry.cachedWeighted = avail.weighted(beta);
                entry.cachedBeta = beta;
            }
            for (const auto &[rack, members] : entry.byDomain)
                f(avail, entry.cachedWeighted, rack, *members.begin(),
                  members.size());
        }
    }

    /**
     * Exhaustive invariant check against the source of truth: classes
     * partition the servers and every member's availability matches its
     * class key. For tests.
     */
    bool consistentWith(const std::vector<Server> &servers) const;

  private:
    /** Strict weak order on resource vectors (class key). */
    struct KeyLess
    {
        bool
        operator()(const Resources &a, const Resources &b) const
        {
            if (a.cpuMillicores != b.cpuMillicores)
                return a.cpuMillicores < b.cpuMillicores;
            if (a.gpuSmPercent != b.gpuSmPercent)
                return a.gpuSmPercent < b.gpuSmPercent;
            return a.memoryMb < b.memoryMb;
        }
    };

    struct ClassEntry
    {
        std::set<ServerId> members;
        /** Per-rack partition of members; empty unless domainsEnabled(). */
        std::map<DomainId, std::set<ServerId>> byDomain;
        /** Lazy weighted-availability cache (key never changes). */
        mutable double cachedWeighted = 0.0;
        mutable double cachedBeta =
            std::numeric_limits<double>::quiet_NaN();
    };

    void insert(ServerId id, const Resources &avail);

    /** Drop @p id from its domain bucket inside @p entry (no-op when
     *  domains are disabled). */
    void eraseDomainMember(ClassEntry &entry, ServerId id);

    std::map<Resources, ClassEntry, KeyLess> classes_;
    std::size_t serverCount_ = 0;
    /** Rack domain per server id; empty == domains disabled. */
    std::vector<DomainId> rackOf_;
};

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_CAPACITY_INDEX_HH
