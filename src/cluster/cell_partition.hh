/**
 * @file
 * Partitioning a server fleet into scheduling cells.
 *
 * A cell is a set of server ids that one Platform instance owns
 * exclusively: its own CapacityIndex, event queue and metrics shard.
 * Construction still hands out contiguous near-equal slices (cells=1
 * covers exactly the flat cluster), but ownership is *dynamic*: the
 * CellMembership map tracks which cell owns each global server id and
 * which local id the owning cell filed it under, so servers can migrate
 * between cells at window barriers without any contiguous-range
 * arithmetic baked into lookups.
 */

#ifndef INFLESS_CLUSTER_CELL_PARTITION_HH
#define INFLESS_CLUSTER_CELL_PARTITION_HH

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "cluster/server.hh"
#include "sim/logging.hh"

namespace infless::cluster {

/** Half-open server-id range [begin, end) seeding one cell. */
struct CellSlice
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }

    bool operator==(const CellSlice &o) const = default;
};

/**
 * Split @p num_servers into @p cells contiguous near-equal slices.
 *
 * The remainder of the floor division goes to the first slices, so sizes
 * differ by at most one and every server belongs to exactly one slice.
 *
 * Edge handling is explicit rather than left to caller discipline:
 *  - @p cells == 0 or @p num_servers == 0 throws std::invalid_argument
 *    (a partition with no cells, or cells with no placement targets,
 *    has no meaning).
 *  - @p cells > @p num_servers clamps to one server per cell: the
 *    caller gets num_servers single-server slices instead of empty
 *    cells. Callers that size per-cell state must use the returned
 *    vector's length, not the requested cell count.
 */
inline std::vector<CellSlice>
partitionServers(std::size_t num_servers, std::size_t cells)
{
    if (cells == 0)
        throw std::invalid_argument("partitionServers: cells must be > 0");
    if (num_servers == 0)
        throw std::invalid_argument("partitionServers: no servers");
    if (cells > num_servers)
        cells = num_servers;
    std::vector<CellSlice> slices(cells);
    std::size_t base = num_servers / cells;
    std::size_t extra = num_servers % cells;
    std::size_t at = 0;
    for (std::size_t c = 0; c < cells; ++c) {
        std::size_t len = base + (c < extra ? 1 : 0);
        slices[c] = CellSlice{at, at + len};
        at += len;
    }
    return slices;
}

/**
 * Dynamic global-server-id <-> (cell, local id) mapping.
 *
 * Starts from the contiguous partitionServers() layout and is updated by
 * migrate() whenever a server moves between cells. Lookups are O(1)
 * array reads; per-cell member lists are kept sorted by global id so
 * donor scans and any iteration over a cell's servers are deterministic
 * regardless of migration history.
 *
 * Local ids only ever grow in the receiving cell (the cell's Platform
 * appends an adopted server to its Cluster); the donor's old local slot
 * is retired and maps to kNoServer.
 */
class CellMembership
{
  public:
    CellMembership(std::size_t num_servers, std::size_t cells)
    {
        auto slices = partitionServers(num_servers, cells);
        cellOf_.resize(num_servers);
        localOf_.resize(num_servers);
        members_.resize(slices.size());
        localToGlobal_.resize(slices.size());
        for (std::size_t c = 0; c < slices.size(); ++c) {
            members_[c].reserve(slices[c].size());
            localToGlobal_[c].reserve(slices[c].size());
            for (std::size_t g = slices[c].begin; g < slices[c].end; ++g) {
                cellOf_[g] = c;
                localOf_[g] =
                    static_cast<ServerId>(g - slices[c].begin);
                members_[c].push_back(static_cast<ServerId>(g));
                localToGlobal_[c].push_back(static_cast<ServerId>(g));
            }
        }
    }

    std::size_t cellCount() const { return members_.size(); }
    std::size_t totalServers() const { return cellOf_.size(); }

    /** Cell currently owning global server @p global. */
    std::size_t
    cellOf(ServerId global) const
    {
        checkGlobal(global);
        return cellOf_[static_cast<std::size_t>(global)];
    }

    /** Local id the owning cell filed @p global under. */
    ServerId
    localId(ServerId global) const
    {
        checkGlobal(global);
        return localOf_[static_cast<std::size_t>(global)];
    }

    /** Global id behind (cell, local); kNoServer for retired slots. */
    ServerId
    globalId(std::size_t cell, ServerId local) const
    {
        sim::simAssert(cell < members_.size(), "bad cell ", cell);
        const auto &l2g = localToGlobal_[cell];
        sim::simAssert(local >= 0 &&
                           static_cast<std::size_t>(local) < l2g.size(),
                       "bad local id ", local);
        return l2g[static_cast<std::size_t>(local)];
    }

    /** Global ids owned by @p cell, ascending. */
    const std::vector<ServerId> &
    members(std::size_t cell) const
    {
        sim::simAssert(cell < members_.size(), "bad cell ", cell);
        return members_[cell];
    }

    /** Servers currently owned by @p cell. */
    std::size_t size(std::size_t cell) const
    {
        return members(cell).size();
    }

    /**
     * Re-home @p global to @p to_cell under the local id @p new_local the
     * receiving cell assigned. The donor's old local slot becomes a
     * retired tombstone (globalId() returns kNoServer for it).
     */
    void
    migrate(ServerId global, std::size_t to_cell, ServerId new_local)
    {
        checkGlobal(global);
        sim::simAssert(to_cell < members_.size(), "bad cell ", to_cell);
        auto g = static_cast<std::size_t>(global);
        std::size_t from = cellOf_[g];
        sim::simAssert(from != to_cell, "migrate to the owning cell");
        // Validate the append before touching anything so a rejected
        // migrate leaves the map untouched.
        sim::simAssert(static_cast<std::size_t>(new_local) ==
                           localToGlobal_[to_cell].size(),
                       "adopted local id must append");

        // Unfile from the donor: tombstone the local slot, drop the
        // (sorted) member entry.
        localToGlobal_[from][static_cast<std::size_t>(localOf_[g])] =
            kNoServer;
        auto &src = members_[from];
        auto it = std::lower_bound(src.begin(), src.end(), global);
        sim::simAssert(it != src.end() && *it == global,
                       "membership lost server ", global);
        src.erase(it);

        // File under the receiver. The receiving platform appends, so
        // new_local extends its local id space by exactly one.
        localToGlobal_[to_cell].push_back(global);
        auto &dst = members_[to_cell];
        dst.insert(std::lower_bound(dst.begin(), dst.end(), global),
                   global);
        cellOf_[g] = to_cell;
        localOf_[g] = new_local;
    }

    /**
     * Exhaustive invariant check: every global id is owned by exactly
     * one cell, member lists are sorted and consistent with the O(1)
     * maps, and tombstones point nowhere. For tests.
     */
    bool
    consistent() const
    {
        std::size_t seen = 0;
        for (std::size_t c = 0; c < members_.size(); ++c) {
            ServerId prev = kNoServer;
            for (ServerId g : members_[c]) {
                if (g <= prev)
                    return false;
                prev = g;
                auto gi = static_cast<std::size_t>(g);
                if (gi >= cellOf_.size() || cellOf_[gi] != c)
                    return false;
                if (globalId(c, localOf_[gi]) != g)
                    return false;
                ++seen;
            }
        }
        return seen == cellOf_.size();
    }

  private:
    void
    checkGlobal(ServerId global) const
    {
        sim::simAssert(global >= 0 && static_cast<std::size_t>(global) <
                                          cellOf_.size(),
                       "bad global server id ", global);
    }

    std::vector<std::size_t> cellOf_;
    std::vector<ServerId> localOf_;
    std::vector<std::vector<ServerId>> members_;
    std::vector<std::vector<ServerId>> localToGlobal_;
};

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_CELL_PARTITION_HH
