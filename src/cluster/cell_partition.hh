/**
 * @file
 * Partitioning a server fleet into scheduling cells.
 *
 * A cell is a contiguous slice of the server-id space that one Platform
 * instance owns exclusively: its own CapacityIndex, event queue and
 * metrics shard. Contiguous near-equal slices keep the mapping trivial
 * (cellOf is a comparison against precomputed bounds, not a hash) and
 * make a cells=1 partition cover exactly the flat cluster.
 */

#ifndef INFLESS_CLUSTER_CELL_PARTITION_HH
#define INFLESS_CLUSTER_CELL_PARTITION_HH

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace infless::cluster {

/** Half-open server-id range [begin, end) owned by one cell. */
struct CellSlice
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }

    bool operator==(const CellSlice &o) const = default;
};

/**
 * Split @p num_servers into @p cells contiguous near-equal slices.
 *
 * The remainder of the floor division goes to the first slices, so sizes
 * differ by at most one and every server belongs to exactly one slice.
 *
 * @throws std::invalid_argument when cells is zero or exceeds the number
 *         of servers (an empty cell would have no placement targets).
 */
inline std::vector<CellSlice>
partitionServers(std::size_t num_servers, std::size_t cells)
{
    if (cells == 0)
        throw std::invalid_argument("partitionServers: cells must be > 0");
    if (cells > num_servers)
        throw std::invalid_argument(
            "partitionServers: more cells than servers");
    std::vector<CellSlice> slices(cells);
    std::size_t base = num_servers / cells;
    std::size_t extra = num_servers % cells;
    std::size_t at = 0;
    for (std::size_t c = 0; c < cells; ++c) {
        std::size_t len = base + (c < extra ? 1 : 0);
        slices[c] = CellSlice{at, at + len};
        at += len;
    }
    return slices;
}

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_CELL_PARTITION_HH
