#include "cluster/cell_rebalancer.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace infless::cluster {

CellRebalancer::CellRebalancer(RebalanceConfig cfg) : cfg_(cfg)
{
    sim::simAssert(cfg_.imbalanceLow <= cfg_.imbalanceHigh,
                   "hysteresis band inverted");
    sim::simAssert(cfg_.imbalanceHigh >= 1.0,
                   "imbalanceHigh below 1.0 would always engage");
}

double
CellRebalancer::loadOf(const CellLoad &l) const
{
    return static_cast<double>(l.eventsDelta) +
           cfg_.queueWeight * static_cast<double>(l.queueDepth) +
           cfg_.inFlightWeight * static_cast<double>(l.inFlight);
}

std::vector<MigrationOrder>
CellRebalancer::plan(const std::vector<CellLoad> &loads)
{
    if (!cfg_.enabled || loads.size() < 2)
        return {};

    // Per-server load: a cell that is hot *because it is large* is not a
    // straggler — the signal is load density, not volume.
    std::vector<double> per_server(loads.size(), 0.0);
    double sum = 0.0;
    std::size_t populated = 0;
    for (std::size_t c = 0; c < loads.size(); ++c) {
        if (loads[c].servers == 0)
            continue;
        per_server[c] =
            loadOf(loads[c]) / static_cast<double>(loads[c].servers);
        sum += per_server[c];
        ++populated;
    }
    if (populated < 2)
        return {};
    double mean = sum / static_cast<double>(populated);
    double hottest = 0.0;
    std::size_t receiver = 0;
    for (std::size_t c = 0; c < loads.size(); ++c) {
        if (loads[c].servers > 0 && per_server[c] > hottest) {
            hottest = per_server[c];
            receiver = c;
        }
    }
    lastImbalance_ = mean > 0.0 ? hottest / mean : 1.0;

    // Hysteresis: engage only after hotWindows consecutive windows above
    // imbalanceHigh; once engaged, keep migrating every window until the
    // ratio drops below imbalanceLow.
    if (!engaged_) {
        if (lastImbalance_ >= cfg_.imbalanceHigh) {
            ++hotStreak_;
            if (hotStreak_ >= cfg_.hotWindows)
                engaged_ = true;
        } else {
            hotStreak_ = 0;
        }
        if (!engaged_)
            return {};
    } else if (lastImbalance_ <= cfg_.imbalanceLow) {
        engaged_ = false;
        hotStreak_ = 0;
        return {};
    }

    // Coldest donors first: ascending load-per-server, ties to the lower
    // cell index (stable under permutation of equal loads).
    std::vector<std::size_t> donors;
    donors.reserve(loads.size());
    for (std::size_t c = 0; c < loads.size(); ++c) {
        if (c != receiver && loads[c].servers > cfg_.minCellServers)
            donors.push_back(c);
    }
    std::sort(donors.begin(), donors.end(),
              [&](std::size_t a, std::size_t b) {
                  if (per_server[a] != per_server[b])
                      return per_server[a] < per_server[b];
                  return a < b;
              });

    std::vector<MigrationOrder> orders;
    std::size_t budget = cfg_.maxMigrationsPerWindow;
    for (std::size_t d : donors) {
        if (budget == 0)
            break;
        std::size_t spare = loads[d].servers - cfg_.minCellServers;
        std::size_t take = std::min(budget, spare);
        if (take == 0)
            continue;
        orders.push_back(MigrationOrder{d, receiver, take});
        migrationsOrdered_ += take;
        budget -= take;
    }
    return orders;
}

} // namespace infless::cluster
