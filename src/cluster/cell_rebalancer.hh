/**
 * @file
 * Slow-timescale cell rebalancing: server migration plans at barriers.
 *
 * A static cell partition turns the lockstep-window design into a serial
 * system under skew: every barrier waits for the hottest cell. The
 * rebalancer watches *deterministic* per-window load signals — events
 * processed, queue depth, in-flight requests, live instances; never wall
 * clock, so the plan is identical at every worker-thread count — and,
 * when one cell's load-per-server runs persistently hot against the
 * fleet mean, emits bounded migration orders that move spare servers
 * from the coldest cells into the straggler.
 *
 * The rebalancer only *plans* (which cell donates how many servers to
 * which receiver); picking the concrete servers and executing the
 * adopt/release hand-off is ShardedPlatform's job at the barrier.
 */

#ifndef INFLESS_CLUSTER_CELL_REBALANCER_HH
#define INFLESS_CLUSTER_CELL_REBALANCER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace infless::cluster {

/** Rebalancer tuning. Disabled by default: off must be byte-identical
 *  to not having the subsystem. */
struct RebalanceConfig
{
    /** Master switch. */
    bool enabled = false;
    /**
     * Engage threshold on the imbalance ratio
     * max(load/server) / mean(load/server). 1.0 = perfectly balanced.
     */
    double imbalanceHigh = 1.5;
    /** Disengage threshold (hysteresis; must be <= imbalanceHigh). */
    double imbalanceLow = 1.2;
    /**
     * Consecutive hot windows required before the first migration. One
     * bursty window is noise; a straggler is persistent.
     */
    std::size_t hotWindows = 2;
    /** Migration budget per window (k): bounds barrier work and keeps
     *  the partition from thrashing. */
    std::size_t maxMigrationsPerWindow = 4;
    /** No donor may shrink below this many servers. */
    std::size_t minCellServers = 1;
    /** Weight of queued requests in the load signal. */
    double queueWeight = 4.0;
    /** Weight of in-flight requests in the load signal. */
    double inFlightWeight = 2.0;
};

/** One cell's deterministic load sample for the window just ended. */
struct CellLoad
{
    /** Engine events executed this window (work actually done). */
    std::uint64_t eventsDelta = 0;
    /** Requests waiting in batch queues at the barrier (work owed). */
    std::int64_t queueDepth = 0;
    /** Admitted-but-unsettled requests at the barrier. */
    std::int64_t inFlight = 0;
    /** Live instances at the barrier. */
    int liveInstances = 0;
    /** Servers the cell currently owns (non-retired). */
    std::size_t servers = 0;
};

/** "Move @p count servers from cell @p from to cell @p to." */
struct MigrationOrder
{
    std::size_t from = 0;
    std::size_t to = 0;
    std::size_t count = 0;

    bool operator==(const MigrationOrder &o) const = default;
};

/**
 * Straggler detector + migration planner with hysteresis.
 *
 * plan() is a pure function of the call sequence: no clocks, no
 * randomness, no hidden inputs beyond the accumulated hot-streak /
 * engaged state. Feeding it the same window-by-window loads always
 * yields the same orders.
 */
class CellRebalancer
{
  public:
    explicit CellRebalancer(RebalanceConfig cfg);

    /**
     * Consume one window's per-cell loads and decide migrations.
     *
     * Empty result while disabled, while the fleet is balanced, or
     * while the hot streak is still shorter than hotWindows. Once
     * engaged, each window emits up to maxMigrationsPerWindow server
     * moves into the hottest cell, coldest donors first, until the
     * imbalance falls below imbalanceLow.
     */
    std::vector<MigrationOrder> plan(const std::vector<CellLoad> &loads);

    /** Imbalance ratio of the most recent plan() call. */
    double lastImbalance() const { return lastImbalance_; }

    /** Whether the hysteresis loop is currently engaged. */
    bool engaged() const { return engaged_; }

    /** Total servers ordered moved over the rebalancer's lifetime. */
    std::uint64_t migrationsOrdered() const { return migrationsOrdered_; }

    const RebalanceConfig &config() const { return cfg_; }

  private:
    /** Scalar load of one cell for this window. */
    double loadOf(const CellLoad &l) const;

    RebalanceConfig cfg_;
    std::size_t hotStreak_ = 0;
    bool engaged_ = false;
    double lastImbalance_ = 1.0;
    std::uint64_t migrationsOrdered_ = 0;
};

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_CELL_REBALANCER_HH
