#include "cluster/cell_router.hh"

#include <algorithm>
#include <stdexcept>

namespace infless::cluster {

CellRouter::CellRouter(std::size_t cells, std::uint64_t seed)
    : digests_(cells), routed_(cells, 0), rng_(seed)
{
    if (cells == 0)
        throw std::invalid_argument("CellRouter: cells must be > 0");
}

void
CellRouter::refresh(const std::vector<CellDigest> &digests)
{
    if (digests.size() != digests_.size())
        throw std::invalid_argument("CellRouter::refresh: digest count");
    digests_ = digests;
    std::fill(routed_.begin(), routed_.end(), 0);
}

void
CellRouter::invalidate(std::size_t cell)
{
    if (cell >= digests_.size())
        throw std::invalid_argument("CellRouter::invalidate: bad cell");
    digests_[cell] = CellDigest{};
    routed_[cell] = 0;
}

double
CellRouter::score(std::size_t cell) const
{
    // A cell reporting no free capacity still gets a finite (huge) score
    // so routing stays total when every cell is saturated.
    constexpr double kEpsAvail = 1e-9;
    const CellDigest &d = digests_[cell];
    double load = static_cast<double>(d.queueDepth + routed_[cell] +
                                      d.dropPressure);
    return load / std::max(d.weightedAvail, kEpsAvail);
}

std::size_t
CellRouter::route()
{
    std::size_t n = digests_.size();
    if (n == 1) {
        ++routed_[0];
        return 0;
    }
    // Two *distinct* candidates: the second draw samples the n-1 other
    // cells and shifts past the first pick. Sampling with replacement
    // would send self-collisions (1/n of traffic) to arbitrary cells,
    // blunting the load-avoidance guarantee for small n.
    auto a = static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    auto b = static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(n) - 2));
    if (b >= a)
        ++b;
    double sa = score(a);
    double sb = score(b);
    std::size_t pick;
    if (sa < sb)
        pick = a;
    else if (sb < sa)
        pick = b;
    else
        pick = std::min(a, b);
    ++routed_[pick];
    return pick;
}

} // namespace infless::cluster
