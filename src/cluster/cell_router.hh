/**
 * @file
 * Cross-cell request router.
 *
 * The sharded control plane fronts its cells with a router that spreads
 * arriving requests by power-of-two-choices over per-cell load digests.
 * Digests are refreshed only at window barriers (conservative time
 * synchronization), so between refreshes the router corrects its stale
 * view with a local count of requests it has already sent each way.
 */

#ifndef INFLESS_CLUSTER_CELL_ROUTER_HH
#define INFLESS_CLUSTER_CELL_ROUTER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace infless::cluster {

/**
 * One cell's load summary as of the last window barrier.
 *
 * weightedAvail is the cell's free capacity in the paper's beta-weighted
 * scalar (Eq. 2); queueDepth counts requests waiting in the cell's
 * instance queues; dropPressure counts drops and load-sheds since the
 * previous barrier — the reactive scale-out spillover signal that steers
 * new work away from cells that are rejecting it.
 */
struct CellDigest
{
    double weightedAvail = 0.0;
    std::int64_t queueDepth = 0;
    std::int64_t dropPressure = 0;
};

/**
 * Power-of-two-choices router over cell digests.
 *
 * Stateless apart from a dedicated RNG stream and the per-epoch routed
 * counters, so routing decisions depend only on (seed, refresh history,
 * call sequence) — never on wall-clock or thread schedule — and a run is
 * reproducible bit-for-bit.
 */
class CellRouter
{
  public:
    /**
     * @param cells Number of cells routed over; must be >= 1.
     * @param seed Seed for the router's own RNG stream (derive it from
     *        the run seed so the stream is independent of every other
     *        consumer).
     */
    CellRouter(std::size_t cells, std::uint64_t seed);

    std::size_t cells() const { return digests_.size(); }

    /**
     * Install fresh digests (one per cell, cell order) at a window
     * barrier and reset the per-epoch routed counters.
     */
    void refresh(const std::vector<CellDigest> &digests);

    /**
     * Pick the cell for the next request.
     *
     * Draws two candidate cells from the router's RNG stream and keeps
     * the one with the lower load score; ties go to the lower cell
     * index. A single-cell router short-circuits to 0 without drawing,
     * so cells=1 consumes no randomness.
     */
    std::size_t route();

    /** Requests routed to @p cell since the last refresh(). */
    std::int64_t routedSinceRefresh(std::size_t cell) const
    {
        return routed_[cell];
    }

    /**
     * Drop the stale view of one cell ahead of a refresh: a migration
     * just changed its capacity, so the routed-since-refresh correction
     * (counted against the *old* digest) no longer means anything. The
     * digest's availability is zeroed alongside so a score() query
     * between invalidate() and refresh() never credits departed
     * capacity.
     */
    void invalidate(std::size_t cell);

    /**
     * Load score used to compare candidates: outstanding work (queue
     * depth at the barrier, plus what this router already sent since,
     * plus drop pressure) per unit of weighted free capacity. Lower is
     * better.
     */
    double score(std::size_t cell) const;

  private:
    std::vector<CellDigest> digests_;
    std::vector<std::int64_t> routed_;
    sim::Rng rng_;
};

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_CELL_ROUTER_HH
