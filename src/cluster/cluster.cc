#include "cluster/cluster.hh"

#include "sim/logging.hh"

namespace infless::cluster {

Cluster::Cluster(std::size_t num_servers, const Resources &capacity)
{
    sim::simAssert(num_servers > 0, "cluster needs at least one server");
    servers_.reserve(num_servers);
    for (std::size_t i = 0; i < num_servers; ++i)
        servers_.emplace_back(static_cast<ServerId>(i), capacity);
    index_.rebuild(servers_);
}

Cluster::Cluster(const std::vector<Resources> &capacities)
{
    sim::simAssert(!capacities.empty(),
                   "cluster needs at least one server");
    servers_.reserve(capacities.size());
    for (std::size_t i = 0; i < capacities.size(); ++i)
        servers_.emplace_back(static_cast<ServerId>(i), capacities[i]);
    index_.rebuild(servers_);
}

std::vector<Resources>
Cluster::capacities() const
{
    std::vector<Resources> result;
    result.reserve(servers_.size());
    for (const auto &s : servers_)
        result.push_back(s.isRetired() ? Resources{} : s.capacity());
    return result;
}

std::size_t
Cluster::liveServers() const
{
    std::size_t live = 0;
    for (const auto &s : servers_)
        live += s.isRetired() ? 0 : 1;
    return live;
}

Server &
Cluster::serverMut(ServerId id)
{
    sim::simAssert(id >= 0 && static_cast<std::size_t>(id) < servers_.size(),
                   "bad server id ", id);
    return servers_[static_cast<std::size_t>(id)];
}

const Server &
Cluster::server(ServerId id) const
{
    sim::simAssert(id >= 0 && static_cast<std::size_t>(id) < servers_.size(),
                   "bad server id ", id);
    return servers_[static_cast<std::size_t>(id)];
}

Resources
Cluster::totalCapacity() const
{
    Resources total;
    for (const auto &s : servers_) {
        if (!s.isRetired())
            total += s.capacity();
    }
    return total;
}

Resources
Cluster::totalAvailable() const
{
    Resources total;
    for (const auto &s : servers_) {
        if (!s.isRetired())
            total += s.available();
    }
    return total;
}

Resources
Cluster::totalAllocated() const
{
    Resources total;
    for (const auto &s : servers_) {
        if (!s.isRetired())
            total += s.allocated();
    }
    return total;
}

double
Cluster::fragmentRatio(double beta) const
{
    double sum = 0.0;
    std::size_t active = 0;
    for (const auto &s : servers_) {
        if (!s.isActive())
            continue;
        sum += s.fragmentRatio(beta);
        ++active;
    }
    return active == 0 ? 0.0 : sum / static_cast<double>(active);
}

std::size_t
Cluster::activeServers() const
{
    std::size_t active = 0;
    for (const auto &s : servers_)
        active += s.isActive() ? 1 : 0;
    return active;
}

bool
Cluster::allocate(ServerId id, const Resources &req)
{
    Server &s = serverMut(id);
    Resources before = s.available();
    if (!s.allocate(req))
        return false;
    index_.update(id, before, s.available());
    return true;
}

void
Cluster::release(ServerId id, const Resources &req)
{
    Server &s = serverMut(id);
    Resources before = s.available();
    s.release(req);
    // Down and quarantined servers are unfiled from the index; their
    // availability is re-filed wholesale when they rejoin the pool.
    if (filed(s))
        index_.update(id, before, s.available());
}

ServerId
Cluster::addServer(const Resources &capacity)
{
    auto id = static_cast<ServerId>(servers_.size());
    servers_.emplace_back(id, capacity);
    index_.add(id, servers_.back().available());
    return id;
}

Resources
Cluster::removeServer(ServerId id)
{
    Server &s = serverMut(id);
    sim::simAssert(!s.isRetired(), "server ", id, " already retired");
    sim::simAssert(!s.isDown(), "cannot release a crashed server ", id);
    sim::simAssert(s.allocationCount() == 0,
                   "cannot release a busy server ", id);
    if (filed(s))
        index_.remove(id, s.available());
    s.markRetired();
    return s.capacity();
}

void
Cluster::setServerDown(ServerId id)
{
    Server &s = serverMut(id);
    if (s.isDown())
        return;
    if (filed(s))
        index_.remove(id, s.available());
    s.markDown();
}

void
Cluster::setServerUp(ServerId id)
{
    Server &s = serverMut(id);
    if (!s.isDown())
        return;
    s.markUp();
    // Re-file only if nothing else keeps the server out of the pool: a
    // quarantined server recovering from a crash stays quarantined.
    if (filed(s))
        index_.add(id, s.available());
}

void
Cluster::setServerDomain(ServerId id, const FailureDomain &domain)
{
    Server &s = serverMut(id);
    if (domains_.size() < servers_.size())
        domains_.resize(servers_.size());
    domains_[static_cast<std::size_t>(id)] = domain;
    Resources avail = s.available();
    index_.assignDomain(id, domain.rack, filed(s) ? &avail : nullptr);
}

FailureDomain
Cluster::serverDomain(ServerId id) const
{
    sim::simAssert(id >= 0 && static_cast<std::size_t>(id) < servers_.size(),
                   "bad server id ", id);
    if (static_cast<std::size_t>(id) >= domains_.size())
        return FailureDomain{};
    return domains_[static_cast<std::size_t>(id)];
}

void
Cluster::quarantineServer(ServerId id)
{
    Server &s = serverMut(id);
    if (s.isQuarantined())
        return;
    sim::simAssert(!s.isRetired(), "cannot quarantine retired server ", id);
    if (filed(s))
        index_.remove(id, s.available());
    s.markQuarantined();
}

void
Cluster::liftQuarantine(ServerId id)
{
    Server &s = serverMut(id);
    if (!s.isQuarantined())
        return;
    s.markAdmitted();
    if (filed(s))
        index_.add(id, s.available());
}

std::size_t
Cluster::quarantinedServers() const
{
    std::size_t n = 0;
    for (const auto &s : servers_)
        n += s.isQuarantined() ? 1 : 0;
    return n;
}

std::size_t
Cluster::downServers() const
{
    std::size_t down = 0;
    for (const auto &s : servers_)
        down += s.isDown() ? 1 : 0;
    return down;
}

ServerId
Cluster::firstFit(const Resources &req) const
{
    return index_.firstFit(req);
}

ServerId
Cluster::bestFit(const Resources &req, double beta) const
{
    return index_.bestFit(req, beta);
}

} // namespace infless::cluster
