/**
 * @file
 * A fleet of simulated servers.
 */

#ifndef INFLESS_CLUSTER_CLUSTER_HH
#define INFLESS_CLUSTER_CLUSTER_HH

#include <cstddef>
#include <vector>

#include "cluster/capacity_index.hh"
#include "cluster/resources.hh"
#include "cluster/server.hh"
#include "cluster/topology.hh"

namespace infless::cluster {

/**
 * The set of machines the scheduler places instances on.
 *
 * Both the 8-node local testbed and the 2,000-node simulation of the paper
 * are instances of this class with different sizes.
 */
class Cluster
{
  public:
    /**
     * Build a homogeneous cluster.
     *
     * @param num_servers Number of machines.
     * @param capacity Per-machine capacity; defaults to the paper testbed.
     */
    explicit Cluster(std::size_t num_servers,
                     const Resources &capacity = testbedServerCapacity());

    /**
     * Build a heterogeneous cluster (e.g. a mix of GPU and CPU-only
     * machines).
     */
    explicit Cluster(const std::vector<Resources> &capacities);

    /** Per-server capacities, in server-id order. Retired servers report
     *  zero capacity so scratch clusters built from this vector keep id
     *  alignment without re-counting departed machines. */
    std::vector<Resources> capacities() const;

    std::size_t size() const { return servers_.size(); }

    /** Servers that still belong to this cluster (not retired). */
    std::size_t liveServers() const;

    const Server &server(ServerId id) const;

    const std::vector<Server> &servers() const { return servers_; }

    /**
     * The capacity index over the fleet. Kept in sync by allocate() and
     * release() — all mutation must go through the Cluster, never
     * directly through a Server.
     */
    const CapacityIndex &capacityIndex() const { return index_; }

    /** Sum of all capacities. */
    Resources totalCapacity() const;

    /** Sum of all unallocated resources. */
    Resources totalAvailable() const;

    /** Sum of all allocated resources. */
    Resources totalAllocated() const;

    /**
     * Average unallocated fraction over *active* servers (Fig. 17b's
     * resource fragment ratio). Idle servers are excluded: they are spare
     * capacity, not fragmentation.
     */
    double fragmentRatio(double beta = kDefaultBeta) const;

    /** Number of servers with at least one allocation. */
    std::size_t activeServers() const;

    /** Allocate @p req on the given server; false if it does not fit
     *  (always false while the server is down). */
    bool allocate(ServerId id, const Resources &req);

    /** Release a previous allocation on the given server. Legal on a down
     *  server: the platform returns crashed instances' resources before
     *  the machine recovers. */
    void release(ServerId id, const Resources &req);

    // Membership (cell rebalancing) -----------------------------------------

    /**
     * Adopt a machine migrated in from another cell: append a fresh
     * server of the given capacity and file it into the capacity index.
     * Ids are append-only, so every existing id stays valid.
     *
     * @return The id assigned to the adopted server.
     */
    ServerId addServer(const Resources &capacity);

    /**
     * Release a machine to another cell. The server must be idle (no
     * allocations), up, and not already retired — migration of busy
     * servers is the caller's job via drain-then-release. The server
     * becomes a permanent tombstone: it leaves the capacity index,
     * reports zero capacity, and canFit() refuses forever.
     *
     * @return The capacity the departing machine takes with it.
     */
    Resources removeServer(ServerId id);

    // Failure state ---------------------------------------------------------

    /**
     * Take a server offline (fault injection): it leaves the capacity
     * index, so no placement probe or scheduler pass can select it, and
     * allocate() refuses until setServerUp(). Idempotent.
     */
    void setServerDown(ServerId id);

    /** Bring a crashed server back into the placement pool. Idempotent. */
    void setServerUp(ServerId id);

    /** Whether the server is currently down. */
    bool serverDown(ServerId id) const { return server(id).isDown(); }

    /** Number of servers currently down. */
    std::size_t downServers() const;

    // Failure domains -------------------------------------------------------

    /**
     * Assign the (zone, rack) a server physically lives in. The rack is
     * forwarded to the capacity index so domain-bucketed placement
     * queries (forEachClassDomain) see it. Domains are a property of the
     * *machine*, keyed off its global id by the caller — a server
     * adopted into another cell keeps its physical rack.
     */
    void setServerDomain(ServerId id, const FailureDomain &domain);

    /** Domain of a server (unassigned ⇒ kNoDomain fields). */
    FailureDomain serverDomain(ServerId id) const;

    // Health state (outlier ejection) ---------------------------------------

    /**
     * Quarantine a server: it leaves the capacity index, so no placement
     * probe or scheduler pass selects it, but — unlike a crash — it keeps
     * serving what it already hosts while the platform drains it.
     * Orthogonal to the crash state: a quarantined server may crash and
     * recover without rejoining the pool. Idempotent.
     */
    void quarantineServer(ServerId id);

    /** Re-admit a quarantined server to the placement pool. Idempotent. */
    void liftQuarantine(ServerId id);

    /** Whether the server is currently quarantined. */
    bool
    serverQuarantined(ServerId id) const
    {
        return server(id).isQuarantined();
    }

    /** Number of servers currently quarantined. */
    std::size_t quarantinedServers() const;

    /**
     * First-fit probe: the first server that can host @p req.
     *
     * Answered from the capacity index — O(classes), not O(servers).
     *
     * @return kNoServer when nothing fits.
     */
    ServerId firstFit(const Resources &req) const;

    /**
     * Best-fit probe: the server with the smallest weighted availability
     * that can host @p req, ties to the lowest id (equivalent to a linear
     * id-order best-fit scan). Answered from the capacity index.
     *
     * @return kNoServer when nothing fits.
     */
    ServerId bestFit(const Resources &req, double beta) const;

  private:
    Server &serverMut(ServerId id);

    /** Whether the server is filed in the capacity index. */
    static bool
    filed(const Server &s)
    {
        return !s.isDown() && !s.isRetired() && !s.isQuarantined();
    }

    std::vector<Server> servers_;
    CapacityIndex index_;
    /** Per-server failure domain; empty until the first assignment. */
    std::vector<FailureDomain> domains_;
};

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_CLUSTER_HH
