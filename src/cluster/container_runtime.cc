#include "cluster/container_runtime.hh"

// Header-only today; this translation unit anchors the library.

namespace infless::cluster {

} // namespace infless::cluster
