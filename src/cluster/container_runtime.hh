/**
 * @file
 * Container cold-start cost model.
 *
 * Inference cold starts are dominated by container creation plus loading
 * the model and serving library; for large models the paper notes this can
 * exceed the query execution time itself (§3.5). The model here is:
 *
 *   t_cold = containerCreate + libraryInit + modelMb * loadPerMb
 *
 * A pre-warmed container (image loaded ahead of time by the keep-alive
 * policy) skips all of it.
 */

#ifndef INFLESS_CLUSTER_CONTAINER_RUNTIME_HH
#define INFLESS_CLUSTER_CONTAINER_RUNTIME_HH

#include "sim/time.hh"

namespace infless::cluster {

/** Tunable parameters of the cold-start model. */
struct ColdStartParams
{
    /** Container/pod creation (scheduler + containerd + cgroups). */
    sim::Tick containerCreate = sim::msToTicks(900);
    /** Serving-library initialization (TensorFlow Serving + CUDA ctx). */
    sim::Tick libraryInit = sim::msToTicks(600);
    /** Model weight load + warm-up per MiB of model size. */
    sim::Tick loadPerMb = sim::msToTicks(6);
};

/**
 * Accelerated-startup parameters in the spirit of SOCK (Oakes et al.,
 * ATC'18) and Catalyzer (Du et al., ASPLOS'20), which 3.5 points to for
 * spikes LSTH cannot pre-warm: zygote-forked containers and
 * checkpoint-restored library state leave mostly the model load.
 */
constexpr ColdStartParams
acceleratedColdStartParams()
{
    return ColdStartParams{sim::msToTicks(30), sim::msToTicks(50),
                           sim::msToTicks(3)};
}

/**
 * Computes startup latencies for instances.
 */
class ContainerRuntime
{
  public:
    ContainerRuntime() = default;
    explicit ContainerRuntime(const ColdStartParams &params)
        : params_(params)
    {
    }

    const ColdStartParams &params() const { return params_; }

    /**
     * Full cold-start latency for a model of @p model_mb MiB.
     */
    sim::Tick
    coldStartTicks(double model_mb) const
    {
        return params_.containerCreate + params_.libraryInit +
               static_cast<sim::Tick>(model_mb * params_.loadPerMb);
    }

    /**
     * Startup latency when a pre-warmed container already holds the image
     * and model: effectively instantaneous routing setup.
     */
    sim::Tick warmStartTicks() const { return sim::msToTicks(2); }

  private:
    ColdStartParams params_;
};

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_CONTAINER_RUNTIME_HH
