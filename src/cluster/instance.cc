#include "cluster/instance.hh"

#include <sstream>

#include "sim/logging.hh"

namespace infless::cluster {

std::string
InstanceConfig::str() const
{
    std::ostringstream os;
    os << "(b=" << batchSize << ", cpu=" << resources.cpuMillicores
       << "mc, gpu=" << resources.gpuSmPercent << "%)";
    return os.str();
}

const char *
instanceStateName(InstanceState s)
{
    switch (s) {
      case InstanceState::ColdStarting:
        return "cold-starting";
      case InstanceState::Idle:
        return "idle";
      case InstanceState::Busy:
        return "busy";
      case InstanceState::Reaped:
        return "reaped";
    }
    return "?";
}

Instance::Instance(InstanceId id, std::string function,
                   InstanceConfig config, ServerId server, sim::Tick created,
                   bool cold)
    : id_(id), function_(std::move(function)), config_(std::move(config)),
      server_(server), cold_(cold), created_(created), lastActive_(created),
      stateSince_(created)
{
    sim::simAssert(config_.batchSize >= 1, "batchSize must be >= 1");
}

void
Instance::becomeWarm(sim::Tick now)
{
    sim::simAssert(state_ == InstanceState::ColdStarting,
                   "becomeWarm from state ", instanceStateName(state_));
    state_ = InstanceState::Idle;
    stateSince_ = now;
    lastActive_ = now;
}

void
Instance::startBatch(sim::Tick now, int batch_fill)
{
    sim::simAssert(state_ == InstanceState::Idle,
                   "startBatch from state ", instanceStateName(state_));
    sim::simAssert(batch_fill >= 1 && batch_fill <= config_.batchSize,
                   "batch fill ", batch_fill, " out of range for ",
                   config_.str());
    idleTicksAccum_ += now - stateSince_;
    state_ = InstanceState::Busy;
    stateSince_ = now;
    ++batchesExecuted_;
    requestsServed_ += batch_fill;
}

void
Instance::finishBatch(sim::Tick now)
{
    sim::simAssert(state_ == InstanceState::Busy,
                   "finishBatch from state ", instanceStateName(state_));
    busyTicks_ += now - stateSince_;
    state_ = InstanceState::Idle;
    stateSince_ = now;
    lastActive_ = now;
}

void
Instance::reap(sim::Tick now)
{
    sim::simAssert(state_ == InstanceState::Idle ||
                       state_ == InstanceState::ColdStarting,
                   "reap from state ", instanceStateName(state_));
    if (state_ == InstanceState::Idle)
        idleTicksAccum_ += now - stateSince_;
    state_ = InstanceState::Reaped;
    stateSince_ = now;
    reapedAt_ = now;
}

void
Instance::crash(sim::Tick now)
{
    sim::simAssert(state_ != InstanceState::Reaped,
                   "crash of an already-reaped instance ", id_);
    if (state_ == InstanceState::Idle)
        idleTicksAccum_ += now - stateSince_;
    else if (state_ == InstanceState::Busy)
        busyTicks_ += now - stateSince_;
    state_ = InstanceState::Reaped;
    stateSince_ = now;
    reapedAt_ = now;
}

sim::Tick
Instance::idleTicks(sim::Tick now) const
{
    sim::Tick total = idleTicksAccum_;
    if (state_ == InstanceState::Idle)
        total += now - stateSince_;
    return total;
}

sim::Tick
Instance::lifetime(sim::Tick now) const
{
    sim::Tick end = (state_ == InstanceState::Reaped) ? reapedAt_ : now;
    return end - created_;
}

} // namespace infless::cluster
