/**
 * @file
 * Function instance (container) lifecycle.
 *
 * An Instance is one launched container serving one function with a fixed
 * (batchsize, cpu, gpu) configuration. INFless's non-uniform scaling means
 * two instances of the same function may carry different configs.
 */

#ifndef INFLESS_CLUSTER_INSTANCE_HH
#define INFLESS_CLUSTER_INSTANCE_HH

#include <cstdint>
#include <string>

#include "cluster/resources.hh"
#include "cluster/server.hh"
#include "sim/time.hh"

namespace infless::cluster {

/** Unique id of an instance within a platform run. */
using InstanceId = std::int64_t;

/** Sentinel for "no instance". */
constexpr InstanceId kNoInstance = -1;

/** Configuration an instance is launched with. */
struct InstanceConfig
{
    int batchSize = 1;
    Resources resources;

    bool operator==(const InstanceConfig &o) const = default;

    /** Render as "(b=4, cpu=2000mc, gpu=10%)". */
    std::string str() const;
};

/** Lifecycle states of an instance. */
enum class InstanceState
{
    ColdStarting, ///< container being created / model loading
    Idle,         ///< warm and waiting for work
    Busy,         ///< executing a batch
    Reaped        ///< terminated; resources returned
};

/** Human-readable state name. */
const char *instanceStateName(InstanceState s);

/**
 * One running container.
 *
 * The platform layer drives state transitions; this class only validates
 * them and keeps accounting used by the metrics module.
 */
class Instance
{
  public:
    Instance(InstanceId id, std::string function, InstanceConfig config,
             ServerId server, sim::Tick created, bool cold);

    InstanceId id() const { return id_; }
    const std::string &function() const { return function_; }
    const InstanceConfig &config() const { return config_; }
    ServerId serverId() const { return server_; }
    InstanceState state() const { return state_; }
    sim::Tick createdAt() const { return created_; }

    /** Whether the launch paid a cold start. */
    bool wasCold() const { return cold_; }

    /** Transition ColdStarting -> Idle once the container is warm. */
    void becomeWarm(sim::Tick now);

    /** Transition Idle -> Busy when a batch starts executing. */
    void startBatch(sim::Tick now, int batch_fill);

    /** Transition Busy -> Idle when the running batch completes. */
    void finishBatch(sim::Tick now);

    /** Transition (Idle|ColdStarting) -> Reaped on scale-in / keep-alive
     *  expiry. */
    void reap(sim::Tick now);

    /**
     * Transition any live state -> Reaped when the hosting server
     * crashes. Unlike reap(), a Busy instance may die mid-batch; the
     * partial busy time is still accounted.
     */
    void crash(sim::Tick now);

    /** Last time the instance finished work (or became warm). */
    sim::Tick lastActive() const { return lastActive_; }

    /** Batches executed so far. */
    std::int64_t batchesExecuted() const { return batchesExecuted_; }

    /** Requests served so far (sum of batch fills). */
    std::int64_t requestsServed() const { return requestsServed_; }

    /** Total ticks spent Busy. */
    sim::Tick busyTicks() const { return busyTicks_; }

    /** Total ticks spent Idle (warm but unused), up to @p now. */
    sim::Tick idleTicks(sim::Tick now) const;

    /** Lifetime from creation until reap (or @p now if still alive). */
    sim::Tick lifetime(sim::Tick now) const;

  private:
    InstanceId id_;
    std::string function_;
    InstanceConfig config_;
    ServerId server_;
    InstanceState state_ = InstanceState::ColdStarting;
    bool cold_;

    sim::Tick created_;
    sim::Tick lastActive_;
    sim::Tick stateSince_;
    sim::Tick reapedAt_ = sim::kTickNever;
    sim::Tick busyTicks_ = 0;
    sim::Tick idleTicksAccum_ = 0;

    std::int64_t batchesExecuted_ = 0;
    std::int64_t requestsServed_ = 0;
};

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_INSTANCE_HH
