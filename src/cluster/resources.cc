#include "cluster/resources.hh"

#include <sstream>

#include "sim/logging.hh"

namespace infless::cluster {

Resources &
Resources::operator+=(const Resources &o)
{
    cpuMillicores += o.cpuMillicores;
    gpuSmPercent += o.gpuSmPercent;
    memoryMb += o.memoryMb;
    return *this;
}

Resources &
Resources::operator-=(const Resources &o)
{
    cpuMillicores -= o.cpuMillicores;
    gpuSmPercent -= o.gpuSmPercent;
    memoryMb -= o.memoryMb;
    sim::simAssert(isValid(), "resource subtraction went negative: ", str());
    return *this;
}

std::string
Resources::str() const
{
    std::ostringstream os;
    os << "cpu=" << cpuMillicores << "mc gpu=" << gpuSmPercent
       << "% mem=" << memoryMb << "MB";
    return os.str();
}

} // namespace infless::cluster
