/**
 * @file
 * Heterogeneous resource vectors.
 *
 * INFless abstracts every allocatable unit as a vector of CPU millicores,
 * GPU streaming-multiprocessor percent (CUDA MPS granularity) and memory.
 * The paper's beta factor makes CPU and GPU commensurable through their
 * FLOPS ratio (Eq. 2 and Eq. 10).
 */

#ifndef INFLESS_CLUSTER_RESOURCES_HH
#define INFLESS_CLUSTER_RESOURCES_HH

#include <cstdint>
#include <string>

namespace infless::cluster {

/**
 * A (CPU, GPU, memory) allocation.
 *
 * CPU is in millicores (1000 = one physical core), GPU in percent of one
 * device's SMs (100 = a whole GPU), memory in MiB.
 */
struct Resources
{
    std::int64_t cpuMillicores = 0;
    std::int64_t gpuSmPercent = 0;
    std::int64_t memoryMb = 0;

    /** CPU amount in cores. */
    double cpuCores() const { return cpuMillicores / 1000.0; }

    /** GPU amount in whole-device units. */
    double gpuDevices() const { return gpuSmPercent / 100.0; }

    /** True when every component is zero. */
    bool
    isZero() const
    {
        return cpuMillicores == 0 && gpuSmPercent == 0 && memoryMb == 0;
    }

    /** True when every component is non-negative. */
    bool
    isValid() const
    {
        return cpuMillicores >= 0 && gpuSmPercent >= 0 && memoryMb >= 0;
    }

    /** Component-wise "fits inside" test. */
    bool
    fitsIn(const Resources &capacity) const
    {
        return cpuMillicores <= capacity.cpuMillicores &&
               gpuSmPercent <= capacity.gpuSmPercent &&
               memoryMb <= capacity.memoryMb;
    }

    /**
     * The paper's scalar cost beta*c + g (Eq. 2), with c in cores and g in
     * GPU devices.
     *
     * @param beta CPU-to-GPU FLOPS conversion factor.
     */
    double
    weighted(double beta) const
    {
        return beta * cpuCores() + gpuDevices();
    }

    Resources &operator+=(const Resources &o);
    Resources &operator-=(const Resources &o);
    friend Resources operator+(Resources a, const Resources &b)
    {
        return a += b;
    }
    friend Resources operator-(Resources a, const Resources &b)
    {
        return a -= b;
    }
    bool operator==(const Resources &o) const = default;

    /** Render as "cpu=2000mc gpu=10% mem=4096MB". */
    std::string str() const;
};

/**
 * Default CPU<->GPU conversion factor.
 *
 * The paper evaluates beta by comparing the FLOPS of the two devices: a
 * Xeon Silver 4215 core peaks near 80 GFLOPS (2.5 GHz AVX-512 FMA) while
 * an RTX 2080Ti peaks near 13,400 GFLOPS, so one core is worth about
 * 0.006 GPUs.
 */
constexpr double kDefaultBeta = 80.0 / 13'400.0;

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_RESOURCES_HH
