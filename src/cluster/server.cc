#include "cluster/server.hh"

#include "sim/logging.hh"

namespace infless::cluster {

Resources
testbedServerCapacity()
{
    // Table 2: 16 physical cores, 128 GiB memory, and the 8-node cluster
    // hosts 16 GPUs, i.e. two 2080Ti per node.
    return Resources{16'000, 200, 128 * 1024};
}

Server::Server() : Server(kNoServer, testbedServerCapacity()) {}

Server::Server(ServerId id, const Resources &capacity)
    : id_(id), capacity_(capacity), available_(capacity)
{
    sim::simAssert(capacity.isValid(), "invalid server capacity");
}

bool
Server::allocate(const Resources &req)
{
    sim::simAssert(req.isValid() && !req.isZero(),
                   "invalid allocation request: ", req.str());
    if (!canFit(req))
        return false;
    available_ -= req;
    ++allocationCount_;
    invalidateWeighted();
    return true;
}

void
Server::release(const Resources &req)
{
    Resources restored = available_ + req;
    sim::simAssert(restored.fitsIn(capacity_),
                   "over-release on server ", id_, ": ", req.str());
    sim::simAssert(allocationCount_ > 0,
                   "release with no live allocations on server ", id_);
    available_ = restored;
    --allocationCount_;
    invalidateWeighted();
}

double
Server::fragmentRatio(double beta) const
{
    double total = capacity_.weighted(beta);
    if (total <= 0.0)
        return 0.0;
    return available_.weighted(beta) / total;
}

} // namespace infless::cluster
