/**
 * @file
 * A single simulated server with allocatable CPU/GPU/memory capacity.
 */

#ifndef INFLESS_CLUSTER_SERVER_HH
#define INFLESS_CLUSTER_SERVER_HH

#include <cstdint>
#include <limits>

#include "cluster/resources.hh"

namespace infless::cluster {

/** Index of a server inside its Cluster. */
using ServerId = std::int32_t;

/** Sentinel for "no server". */
constexpr ServerId kNoServer = -1;

/**
 * Tracks capacity, current allocation and fragmentation of one machine.
 *
 * The testbed machine of the paper (Table 2) is the default: 16 physical
 * cores, 128 GiB RAM and two RTX 2080Ti GPUs (200% SM).
 */
class Server
{
  public:
    /** Default-constructed servers mirror the paper's testbed node. */
    Server();

    Server(ServerId id, const Resources &capacity);

    ServerId id() const { return id_; }

    /** Total capacity. */
    const Resources &capacity() const { return capacity_; }

    /** Currently unallocated resources. */
    const Resources &available() const { return available_; }

    /**
     * available().weighted(beta), cached between allocations.
     *
     * The scheduler evaluates every (candidate, server) pair against the
     * same availability; the cache turns the repeated weighted() into a
     * load. Invalidated by allocate()/release(), recomputed when @p beta
     * differs from the cached one.
     */
    double
    weightedAvailable(double beta) const
    {
        if (weightedBeta_ != beta) {
            weightedCache_ = available_.weighted(beta);
            weightedBeta_ = beta;
        }
        return weightedCache_;
    }

    /** Currently allocated resources. */
    Resources allocated() const { return capacity_ - available_; }

    /** Whether @p req fits in the unallocated remainder (false while the
     *  server is down, retired, or quarantined: none hosts anything new). */
    bool
    canFit(const Resources &req) const
    {
        return !down_ && !retired_ && !quarantined_ &&
               req.fitsIn(available_);
    }

    // Membership state ------------------------------------------------------

    /**
     * Whether the server left this cluster (migrated to another cell).
     *
     * A retired server is a tombstone: its id stays valid so ids never
     * shift, but it holds no capacity, never files into the capacity
     * index, and canFit() refuses. Retirement is permanent — the server
     * now lives, under a new id, in some other Cluster.
     */
    bool isRetired() const { return retired_; }

    /** Tombstone the server. Use Cluster::removeServer(), never this. */
    void markRetired() { retired_ = true; }

    // Failure state ---------------------------------------------------------

    /** Whether the server is crashed/offline (fault injection). */
    bool isDown() const { return down_; }

    /** Take the machine offline; canFit()/allocate() refuse until markUp().
     *  The owning Cluster keeps the capacity index in sync — use
     *  Cluster::setServerDown(), never this directly. */
    void markDown() { down_ = true; }

    /** Bring the machine back after repair. */
    void markUp() { down_ = false; }

    // Health state ----------------------------------------------------------

    /**
     * Whether the server is quarantined by the outlier ejector: the
     * machine is up and still serving whatever it already hosts, but it
     * left the placement pool, so nothing new lands on it. Orthogonal to
     * the crash state — a quarantined server can crash and recover
     * without rejoining the pool.
     */
    bool isQuarantined() const { return quarantined_; }

    /** Eject from the placement pool. The owning Cluster keeps the
     *  capacity index in sync — use Cluster::quarantineServer(). */
    void markQuarantined() { quarantined_ = true; }

    /** Re-admit after probation. Use Cluster::liftQuarantine(). */
    void markAdmitted() { quarantined_ = false; }

    /**
     * Reserve @p req.
     *
     * @return false (and change nothing) if it does not fit.
     */
    bool allocate(const Resources &req);

    /** Return a previous allocation. Panics on over-release. */
    void release(const Resources &req);

    /** Number of live allocations. */
    int allocationCount() const { return allocationCount_; }

    /** True if anything is allocated. */
    bool isActive() const { return allocationCount_ > 0; }

    /**
     * Fraction of weighted compute capacity left unallocated.
     *
     * This is the per-server quantity averaged into the paper's resource
     * fragment ratio (Fig. 17b).
     */
    double fragmentRatio(double beta = kDefaultBeta) const;

    /** Fraction of weighted compute capacity allocated. */
    double
    occupancy(double beta = kDefaultBeta) const
    {
        return 1.0 - fragmentRatio(beta);
    }

  private:
    /** Drop the weighted-availability cache (availability changed). */
    void
    invalidateWeighted()
    {
        weightedBeta_ = std::numeric_limits<double>::quiet_NaN();
    }

    ServerId id_ = kNoServer;
    Resources capacity_;
    Resources available_;
    int allocationCount_ = 0;
    bool down_ = false;
    bool retired_ = false;
    bool quarantined_ = false;
    /** NaN == "no cached value" (never compares equal to any beta). */
    mutable double weightedBeta_ = std::numeric_limits<double>::quiet_NaN();
    mutable double weightedCache_ = 0.0;
};

/** The paper's testbed node: 16 cores, 128 GiB, 2x RTX 2080Ti. */
Resources testbedServerCapacity();

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_SERVER_HH
