/**
 * @file
 * Failure-domain topology: zones and racks over the server fleet.
 *
 * Production clusters fail in correlated units — a rack PDU trips, a
 * zone loses cooling — and placement that ignores the topology stacks a
 * function's instances into one blast radius. TopologyConfig assigns
 * every server a (zone, rack) FailureDomain as a pure function of its
 * *global* id, so the assignment survives cell migrations (PR 8): a
 * server adopted by another cell keeps the physical rack it lives in.
 */

#ifndef INFLESS_CLUSTER_TOPOLOGY_HH
#define INFLESS_CLUSTER_TOPOLOGY_HH

#include <cstddef>
#include <cstdint>

#include "cluster/server.hh"

namespace infless::cluster {

/** Index of a failure domain (zone or rack, depending on context). */
using DomainId = std::int32_t;

/** Sentinel for "no domain assigned" (topology disabled). */
constexpr DomainId kNoDomain = -1;

/** The (zone, rack) a server physically lives in. */
struct FailureDomain
{
    DomainId zone = kNoDomain;
    /** Rack index, global across zones (zone * racksPerZone + local). */
    DomainId rack = kNoDomain;

    bool assigned() const { return zone != kNoDomain; }

    bool
    operator==(const FailureDomain &o) const
    {
        return zone == o.zone && rack == o.rack;
    }
};

/**
 * Deterministic fleet topology. Disabled by default (zones == 0): no
 * server gets a domain and every topology-aware code path is inert.
 *
 * Servers are laid out in contiguous blocks of @p rackSize, assigned to
 * racks round-robin: rack(s) = (s / rackSize) mod (zones * racksPerZone).
 * Contiguous blocks make the assignment legible in traces, and the
 * modulo wrap keeps every rack populated however large the fleet grows
 * (adopted servers with fresh ids land in existing racks, never in
 * phantom new ones).
 */
struct TopologyConfig
{
    /** Number of zones; 0 disables the topology entirely. */
    std::size_t zones = 0;
    /** Racks per zone. */
    std::size_t racksPerZone = 1;
    /** Servers per contiguous rack block. */
    std::size_t rackSize = 8;

    bool enabled() const { return zones > 0; }

    /** Total rack domains (the granularity of correlated outages). */
    std::size_t rackDomains() const { return zones * racksPerZone; }

    /** Rack of a server, keyed by its GLOBAL id. */
    DomainId
    rackOf(ServerId global_id) const
    {
        if (!enabled() || global_id < 0)
            return kNoDomain;
        auto block = static_cast<std::size_t>(global_id) /
                     (rackSize == 0 ? 1 : rackSize);
        return static_cast<DomainId>(block % rackDomains());
    }

    /** Zone a rack belongs to. */
    DomainId
    zoneOf(DomainId rack) const
    {
        if (rack == kNoDomain)
            return kNoDomain;
        return rack / static_cast<DomainId>(racksPerZone);
    }

    /** Full (zone, rack) of a server, keyed by its GLOBAL id. */
    FailureDomain
    domainOf(ServerId global_id) const
    {
        FailureDomain d;
        d.rack = rackOf(global_id);
        d.zone = zoneOf(d.rack);
        return d;
    }
};

} // namespace infless::cluster

#endif // INFLESS_CLUSTER_TOPOLOGY_HH
