#include "coldstart/evaluator.hh"

#include <algorithm>

namespace infless::coldstart {

PolicyEvaluation
evaluatePolicy(KeepAlivePolicy &policy, const workload::ArrivalTrace &trace)
{
    PolicyEvaluation eval;
    const auto &arrivals = trace.arrivals();
    eval.invocations = static_cast<std::int64_t>(arrivals.size());
    eval.traceTicks = trace.duration();
    if (arrivals.empty())
        return eval;

    // The very first invocation finds nothing warm.
    ++eval.coldStarts;
    policy.recordInvocation(arrivals.front());

    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        sim::Tick prev = arrivals[i - 1];
        sim::Tick gap = arrivals[i] - prev;
        KeepAliveDecision windows = policy.decide(prev);

        if (windows.covers(gap)) {
            // Image sat loaded from warmStart until the request arrived.
            eval.wastedWarmTicks += gap - windows.warmStart();
        } else {
            ++eval.coldStarts;
            if (gap > windows.warmEnd()) {
                // The whole keep-alive window elapsed unused.
                eval.wastedWarmTicks += windows.keepAliveWindow;
            }
            // gap < warmStart: the image was never loaded -> no waste.
        }
        policy.recordInvocation(arrivals[i]);
    }
    return eval;
}

} // namespace infless::coldstart
