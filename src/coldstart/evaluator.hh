/**
 * @file
 * Policy-level cold-start evaluator.
 *
 * Replays a per-function arrival trace against a keep-alive policy and
 * measures the two quantities Fig. 16 reports: the cold-start rate (the
 * fraction of invocations arriving outside the warm interval) and the
 * idle resource waste (warm time not ended by an invocation).
 */

#ifndef INFLESS_COLDSTART_EVALUATOR_HH
#define INFLESS_COLDSTART_EVALUATOR_HH

#include <cstdint>

#include "coldstart/policy.hh"
#include "workload/trace.hh"

namespace infless::coldstart {

/** Outcome of replaying one trace against one policy. */
struct PolicyEvaluation
{
    std::int64_t invocations = 0;
    std::int64_t coldStarts = 0;
    /** Warm-but-idle time accumulated across all gaps. */
    sim::Tick wastedWarmTicks = 0;
    /** Total trace duration (for normalizing the waste). */
    sim::Tick traceTicks = 0;

    /** Cold starts per invocation. */
    double
    coldStartRate() const
    {
        return invocations == 0
                   ? 0.0
                   : static_cast<double>(coldStarts) /
                         static_cast<double>(invocations);
    }

    /** Wasted warm time as a fraction of the trace duration. */
    double
    wasteRatio() const
    {
        return traceTicks == 0
                   ? 0.0
                   : static_cast<double>(wastedWarmTicks) /
                         static_cast<double>(traceTicks);
    }
};

/**
 * Replay @p trace against @p policy.
 *
 * The first invocation is always cold (nothing was warm yet). For each
 * consecutive pair, the policy decides windows at the earlier invocation;
 * the later one is warm iff its gap falls inside [pw, pw+ka]. Idle warm
 * time is what the loaded image spends waiting: gap - pw on a hit, the
 * whole keep-alive window on a miss past the window, nothing when the
 * request lands before the pre-warm.
 */
PolicyEvaluation evaluatePolicy(KeepAlivePolicy &policy,
                                const workload::ArrivalTrace &trace);

} // namespace infless::coldstart

#endif // INFLESS_COLDSTART_EVALUATOR_HH
