#include "coldstart/fixed.hh"

#include "sim/logging.hh"

namespace infless::coldstart {

FixedKeepAlive::FixedKeepAlive(sim::Tick keep_alive)
    : keepAlive_(keep_alive)
{
    sim::simAssert(keep_alive > 0, "keep-alive must be positive");
}

void
FixedKeepAlive::recordInvocation(sim::Tick)
{
    // History-free by design.
}

KeepAliveDecision
FixedKeepAlive::decide(sim::Tick) const
{
    return KeepAliveDecision{0, keepAlive_};
}

PolicyFactory
FixedKeepAlive::factory(sim::Tick keep_alive)
{
    return [keep_alive]() {
        return std::make_unique<FixedKeepAlive>(keep_alive);
    };
}

} // namespace infless::coldstart
