/**
 * @file
 * Fixed keep-alive policy.
 *
 * What OpenFaaS and the BATCH baseline use: no pre-warming, a constant
 * keep-alive window (300 s in the paper's comparison, Table 3).
 */

#ifndef INFLESS_COLDSTART_FIXED_HH
#define INFLESS_COLDSTART_FIXED_HH

#include "coldstart/policy.hh"

namespace infless::coldstart {

/**
 * Keep every instance warm for a constant window after use.
 */
class FixedKeepAlive : public KeepAlivePolicy
{
  public:
    explicit FixedKeepAlive(sim::Tick keep_alive = 300 * sim::kTicksPerSec);

    void recordInvocation(sim::Tick now) override;
    KeepAliveDecision decide(sim::Tick now) const override;
    std::string name() const override { return "fixed"; }

    /** Factory for platform wiring. */
    static PolicyFactory factory(sim::Tick keep_alive =
                                     300 * sim::kTicksPerSec);

  private:
    sim::Tick keepAlive_;
};

} // namespace infless::coldstart

#endif // INFLESS_COLDSTART_FIXED_HH
