#include "coldstart/hhp.hh"

#include <algorithm>
#include <cmath>

namespace infless::coldstart {

HybridHistogramPolicy::HybridHistogramPolicy(HhpParams params)
    : params_(params),
      hist_(params.trackedDuration, params.binWidth, params.range)
{
}

void
HybridHistogramPolicy::recordInvocation(sim::Tick now)
{
    hist_.recordInvocation(now);
}

KeepAliveDecision
HybridHistogramPolicy::windowsFrom(sim::Tick head, sim::Tick tail,
                                   double margin)
{
    auto prewarm = static_cast<sim::Tick>(
        std::floor(static_cast<double>(head) * (1.0 - margin)));
    auto keep_until = static_cast<sim::Tick>(
        std::ceil(static_cast<double>(tail) * (1.0 + margin)));
    prewarm = std::max<sim::Tick>(0, prewarm);
    keep_until = std::max(keep_until, prewarm + sim::kTicksPerMin);
    return KeepAliveDecision{prewarm, keep_until - prewarm};
}

KeepAliveDecision
HybridHistogramPolicy::decide(sim::Tick now) const
{
    hist_.evict(now);
    bool representative = hist_.count() >= params_.minSamples &&
                          hist_.overflowFraction() <= params_.maxOverflow;
    if (!representative) {
        // Conservative: keep warm continuously.
        return KeepAliveDecision{0, params_.fallbackKeepAlive};
    }
    // Head from the lower bin edge (pre-warm early), tail from the upper
    // edge (keep alive late): conservative on both sides.
    sim::Tick head = hist_.percentileLower(params_.headPercentile);
    sim::Tick tail = hist_.percentile(params_.tailPercentile);
    return windowsFrom(head, tail, params_.margin);
}

PolicyFactory
HybridHistogramPolicy::factory(HhpParams params)
{
    return [params]() {
        return std::make_unique<HybridHistogramPolicy>(params);
    };
}

} // namespace infless::coldstart
