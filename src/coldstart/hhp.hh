/**
 * @file
 * Hybrid Histogram Policy (HHP) — Shahrad et al., USENIX ATC'20.
 *
 * Tracks idle times over one configurable duration (4 h by default), and
 * derives the pre-warming window from the head (5th percentile) and the
 * keep-alive window from the tail (99th percentile) of the distribution,
 * each with a safety margin. Falls back to a conservative
 * always-keep-alive when the histogram is unrepresentative (too few
 * samples or too much overflow).
 */

#ifndef INFLESS_COLDSTART_HHP_HH
#define INFLESS_COLDSTART_HHP_HH

#include "coldstart/histogram.hh"
#include "coldstart/policy.hh"

namespace infless::coldstart {

/** HHP tunables. */
struct HhpParams
{
    /** Tracked duration of the single histogram. */
    sim::Tick trackedDuration = 4 * sim::kTicksPerHour;
    /** Histogram bin width. */
    sim::Tick binWidth = sim::kTicksPerMin;
    /** Histogram range; gaps beyond it overflow. */
    sim::Tick range = 4 * sim::kTicksPerHour;
    /** Head percentile driving the pre-warming window. */
    double headPercentile = 5.0;
    /** Tail percentile driving the keep-alive window. */
    double tailPercentile = 99.0;
    /** Fractional margin shrinking the head / extending the tail. */
    double margin = 0.15;
    /** Minimum samples before trusting the histogram. */
    std::size_t minSamples = 10;
    /** Max overflow fraction before declaring it unrepresentative. */
    double maxOverflow = 0.5;
    /** Conservative keep-alive used while unrepresentative. */
    sim::Tick fallbackKeepAlive = 4 * sim::kTicksPerHour;
};

/**
 * The state-of-the-art policy INFless's LSTH improves upon.
 */
class HybridHistogramPolicy : public KeepAlivePolicy
{
  public:
    explicit HybridHistogramPolicy(HhpParams params = {});

    void recordInvocation(sim::Tick now) override;
    KeepAliveDecision decide(sim::Tick now) const override;
    std::string name() const override { return "hhp"; }

    const IdleTimeHistogram &histogram() const { return hist_; }

    static PolicyFactory factory(HhpParams params = {});

    /**
     * Shared window-derivation rule: shrink the head by the margin for the
     * pre-warming window and extend the tail for keep-alive coverage.
     */
    static KeepAliveDecision windowsFrom(sim::Tick head, sim::Tick tail,
                                         double margin);

  private:
    HhpParams params_;
    /** Mutable: decide() lazily evicts samples older than the window. */
    mutable IdleTimeHistogram hist_;
};

} // namespace infless::coldstart

#endif // INFLESS_COLDSTART_HHP_HH
