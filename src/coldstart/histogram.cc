#include "coldstart/histogram.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace infless::coldstart {

IdleTimeHistogram::IdleTimeHistogram(sim::Tick window, sim::Tick bin_width,
                                     sim::Tick range)
    : window_(window), binWidth_(bin_width), range_(range)
{
    sim::simAssert(window > 0 && bin_width > 0 && range > 0,
                   "histogram parameters must be positive");
    // One overflow bin past the range.
    bins_.assign(static_cast<std::size_t>(range / bin_width) + 2, 0);
}

std::size_t
IdleTimeHistogram::binOf(sim::Tick gap) const
{
    if (gap < 0)
        gap = 0;
    auto bin = static_cast<std::size_t>(gap / binWidth_);
    return std::min(bin, bins_.size() - 1);
}

void
IdleTimeHistogram::recordInvocation(sim::Tick now)
{
    if (lastInvocation_ >= 0 && now >= lastInvocation_)
        addSample(now - lastInvocation_, now);
    lastInvocation_ = now;
}

void
IdleTimeHistogram::addSample(sim::Tick gap, sim::Tick now)
{
    evict(now);
    std::size_t bin = binOf(gap);
    samples_.push_back(Sample{now, bin});
    ++bins_[bin];
    ++total_;
}

void
IdleTimeHistogram::evict(sim::Tick now)
{
    sim::Tick cutoff = now - window_;
    while (!samples_.empty() && samples_.front().observedAt < cutoff) {
        --bins_[samples_.front().bin];
        --total_;
        samples_.pop_front();
    }
}

double
IdleTimeHistogram::overflowFraction() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bins_.back()) /
           static_cast<double>(total_);
}

std::size_t
IdleTimeHistogram::percentileBin(double p) const
{
    sim::simAssert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    auto target = static_cast<std::int64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total_)));
    target = std::max<std::int64_t>(1, target);
    std::int64_t seen = 0;
    for (std::size_t bin = 0; bin < bins_.size(); ++bin) {
        seen += bins_[bin];
        if (seen >= target)
            return bin;
    }
    return bins_.size() - 1;
}

sim::Tick
IdleTimeHistogram::percentile(double p) const
{
    sim::simAssert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (total_ == 0)
        return 0;
    std::size_t bin = percentileBin(p);
    if (bin == bins_.size() - 1)
        return range_; // overflow reports as the cap
    return static_cast<sim::Tick>(bin + 1) * binWidth_;
}

sim::Tick
IdleTimeHistogram::percentileLower(double p) const
{
    sim::simAssert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (total_ == 0)
        return 0;
    std::size_t bin = percentileBin(p);
    if (bin == bins_.size() - 1)
        return range_;
    return static_cast<sim::Tick>(bin) * binWidth_;
}

} // namespace infless::coldstart
