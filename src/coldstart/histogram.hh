/**
 * @file
 * Sliding-window idle-time histogram.
 *
 * The histogram policies (HHP, LSTH) characterize a function's idle-time
 * distribution over a tracked duration. Samples older than the window are
 * evicted, so the histogram follows the workload.
 */

#ifndef INFLESS_COLDSTART_HISTOGRAM_HH
#define INFLESS_COLDSTART_HISTOGRAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/time.hh"

namespace infless::coldstart {

/**
 * Fixed-bin histogram of idle gaps with time-based sample eviction.
 */
class IdleTimeHistogram
{
  public:
    /**
     * @param window Retention horizon: samples older than now-window are
     *        dropped (HHP's "tracked duration", e.g. 4 h; LSTH uses 1 h
     *        and 24 h).
     * @param bin_width Histogram granularity (1 minute, as in HHP).
     * @param range Largest representable idle time; larger gaps land in
     *        the overflow bin.
     */
    explicit IdleTimeHistogram(sim::Tick window,
                               sim::Tick bin_width = sim::kTicksPerMin,
                               sim::Tick range = 4 * sim::kTicksPerHour);

    /**
     * Observe an invocation at @p now; derives the idle gap from the
     * previous invocation automatically.
     */
    void recordInvocation(sim::Tick now);

    /** Insert an explicit idle-gap sample observed at @p now. */
    void addSample(sim::Tick gap, sim::Tick now);

    /** Drop samples observed before @p now - window. */
    void evict(sim::Tick now);

    /** Number of retained samples. */
    std::size_t count() const { return samples_.size(); }

    /** Fraction of retained samples in the overflow bin. */
    double overflowFraction() const;

    /**
     * Idle-time percentile in ticks (p in [0, 100]), reported as the
     * *upper* edge of the containing bin — conservative for keep-alive
     * tails (keep a little longer). Overflow samples report as the range
     * cap. Returns 0 when empty.
     */
    sim::Tick percentile(double p) const;

    /**
     * Like percentile(), but reported as the *lower* edge of the
     * containing bin — conservative for pre-warming heads (load a little
     * earlier).
     */
    sim::Tick percentileLower(double p) const;

    sim::Tick window() const { return window_; }
    sim::Tick range() const { return range_; }

  private:
    struct Sample
    {
        sim::Tick observedAt;
        std::size_t bin;
    };

    std::size_t binOf(sim::Tick gap) const;
    std::size_t percentileBin(double p) const;

    sim::Tick window_;
    sim::Tick binWidth_;
    sim::Tick range_;
    sim::Tick lastInvocation_ = -1;
    std::deque<Sample> samples_;
    std::vector<std::int64_t> bins_;
    std::int64_t total_ = 0;
};

} // namespace infless::coldstart

#endif // INFLESS_COLDSTART_HISTOGRAM_HH
