#include "coldstart/lsth.hh"

#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace infless::coldstart {

LsthPolicy::LsthPolicy(LsthParams params)
    : params_(params),
      shortHist_(params.shortDuration, params.binWidth, params.range),
      longHist_(params.longDuration, params.binWidth, params.range)
{
    sim::simAssert(params.gamma >= 0.0 && params.gamma <= 1.0,
                   "gamma must lie in [0, 1]");
    sim::simAssert(params.shortDuration < params.longDuration,
                   "short duration must be below long duration");
}

void
LsthPolicy::recordInvocation(sim::Tick now)
{
    shortHist_.recordInvocation(now);
    longHist_.recordInvocation(now);
}

KeepAliveDecision
LsthPolicy::decide(sim::Tick now) const
{
    shortHist_.evict(now);
    longHist_.evict(now);
    bool short_ok = shortHist_.count() >= params_.minSamples;
    bool long_ok = longHist_.count() >= params_.minSamples;
    if (!short_ok && !long_ok)
        return KeepAliveDecision{0, params_.fallbackKeepAlive};

    double gamma = params_.gamma;
    if (!long_ok)
        gamma = 0.0; // trust only the short horizon
    else if (!short_ok)
        gamma = 1.0; // trust only the long horizon

    auto blend = [gamma](sim::Tick l, sim::Tick s) {
        return static_cast<sim::Tick>(std::llround(
            gamma * static_cast<double>(l) +
            (1.0 - gamma) * static_cast<double>(s)));
    };

    sim::Tick head =
        blend(longHist_.percentileLower(params_.headPercentile),
              shortHist_.percentileLower(params_.headPercentile));
    sim::Tick tail = blend(longHist_.percentile(params_.tailPercentile),
                           shortHist_.percentile(params_.tailPercentile));
    return HybridHistogramPolicy::windowsFrom(head, tail, params_.margin);
}

std::string
LsthPolicy::name() const
{
    std::ostringstream os;
    os << "lsth(gamma=" << params_.gamma << ")";
    return os.str();
}

PolicyFactory
LsthPolicy::factory(LsthParams params)
{
    return [params]() { return std::make_unique<LsthPolicy>(params); };
}

} // namespace infless::coldstart
