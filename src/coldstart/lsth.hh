/**
 * @file
 * Long-Short Term Histogram (LSTH) policy — the paper's contribution
 * (§3.5).
 *
 * Inference request loads show long-term periodicity (diurnal patterns)
 * *and* short-term bursts. A single tracked duration must pick between
 * them: long durations react slowly to bursts and waste resources when
 * the rate collapses; short durations miss the periodicity and raise the
 * cold-start rate. LSTH keeps two histograms — short (1 h) and long
 * (24 h) — and blends their heads and tails with a weight gamma:
 *
 *   pre-warm   = gamma * L_prewarm   + (1 - gamma) * S_prewarm
 *   keep-alive = gamma * L_keepalive + (1 - gamma) * S_keepalive
 */

#ifndef INFLESS_COLDSTART_LSTH_HH
#define INFLESS_COLDSTART_LSTH_HH

#include "coldstart/hhp.hh"
#include "coldstart/histogram.hh"
#include "coldstart/policy.hh"

namespace infless::coldstart {

/** LSTH tunables. */
struct LsthParams
{
    /** Short-term tracked duration (STB horizon). */
    sim::Tick shortDuration = sim::kTicksPerHour;
    /** Long-term tracked duration (LTP horizon). */
    sim::Tick longDuration = 24 * sim::kTicksPerHour;
    /** Blend weight toward the long-term histogram. */
    double gamma = 0.5;
    /** Histogram bin width. */
    sim::Tick binWidth = sim::kTicksPerMin;
    /** Histogram range; gaps beyond it overflow. */
    sim::Tick range = 4 * sim::kTicksPerHour;
    /** Head percentile. */
    double headPercentile = 5.0;
    /** Tail percentile. */
    double tailPercentile = 99.0;
    /** Safety margin, as in HHP. */
    double margin = 0.15;
    /** Minimum samples before trusting a histogram. */
    std::size_t minSamples = 10;
    /** Conservative keep-alive while both histograms are cold. */
    sim::Tick fallbackKeepAlive = 4 * sim::kTicksPerHour;
};

/**
 * The gamma-weighted two-horizon policy.
 */
class LsthPolicy : public KeepAlivePolicy
{
  public:
    explicit LsthPolicy(LsthParams params = {});

    void recordInvocation(sim::Tick now) override;
    KeepAliveDecision decide(sim::Tick now) const override;
    std::string name() const override;

    const IdleTimeHistogram &shortHistogram() const { return shortHist_; }
    const IdleTimeHistogram &longHistogram() const { return longHist_; }

    static PolicyFactory factory(LsthParams params = {});

  private:
    LsthParams params_;
    /** Mutable: decide() lazily evicts samples older than each window. */
    mutable IdleTimeHistogram shortHist_;
    mutable IdleTimeHistogram longHist_;
};

} // namespace infless::coldstart

#endif // INFLESS_COLDSTART_LSTH_HH
