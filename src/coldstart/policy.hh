/**
 * @file
 * Keep-alive / pre-warming policy interface (§3.5).
 *
 * After a function invocation at time t, a policy yields two windows:
 *
 *  - pre-warming window (pw): how long to wait after t before loading the
 *    function image in expectation of the next invocation;
 *  - keep-alive window (ka): how long the loaded image stays alive.
 *
 * The function is warm during [t + pw, t + pw + ka]. pw == 0 degenerates
 * to a plain keep-alive policy. An invocation landing outside the warm
 * interval is a cold start; warm time not ended by an invocation is idle
 * resource waste.
 */

#ifndef INFLESS_COLDSTART_POLICY_HH
#define INFLESS_COLDSTART_POLICY_HH

#include <functional>
#include <memory>
#include <string>

#include "sim/time.hh"

namespace infless::coldstart {

/** The two windows a policy controls. */
struct KeepAliveDecision
{
    /** Wait after the last invocation before (re)loading the image. */
    sim::Tick prewarmWindow = 0;
    /** Lifetime of the loaded image. */
    sim::Tick keepAliveWindow = 0;

    /** Warm-interval start relative to the last invocation. */
    sim::Tick warmStart() const { return prewarmWindow; }
    /** Warm-interval end relative to the last invocation. */
    sim::Tick warmEnd() const { return prewarmWindow + keepAliveWindow; }

    /** Whether an idle gap of @p gap would stay warm. */
    bool
    covers(sim::Tick gap) const
    {
        return gap >= warmStart() && gap <= warmEnd();
    }
};

/**
 * Per-function policy deriving the windows from observed invocations.
 */
class KeepAlivePolicy
{
  public:
    virtual ~KeepAlivePolicy() = default;

    /** Observe one invocation of the function. */
    virtual void recordInvocation(sim::Tick now) = 0;

    /** Current windows, given the history observed so far. */
    virtual KeepAliveDecision decide(sim::Tick now) const = 0;

    /** Policy name for reports. */
    virtual std::string name() const = 0;
};

/** Factory signature used by the platform to make per-function policies. */
using PolicyFactory = std::function<std::unique_ptr<KeepAlivePolicy>()>;

} // namespace infless::coldstart

#endif // INFLESS_COLDSTART_POLICY_HH
