#include "core/autoscaler.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace infless::core {

std::vector<std::size_t>
chooseDrains(const std::vector<InstanceRateInfo> &infos,
             const std::vector<double> &weighted_cost, double measured_rps,
             double alpha)
{
    sim::simAssert(infos.size() == weighted_cost.size(),
                   "drain planning arity mismatch");
    double r_max = 0.0;
    double r_min = 0.0;
    for (const auto &info : infos) {
        r_max += info.rUp;
        r_min += info.rLow;
    }

    // Candidate order: least efficient (r_up per resource) first.
    std::vector<std::size_t> order(infos.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        double ea = weighted_cost[a] > 0.0 ? infos[a].rUp / weighted_cost[a]
                                           : infos[a].rUp;
        double eb = weighted_cost[b] > 0.0 ? infos[b].rUp / weighted_cost[b]
                                           : infos[b].rUp;
        return ea < eb;
    });

    std::vector<std::size_t> drains;
    for (std::size_t idx : order) {
        // Already back to case (ii) (or better)?
        if (measured_rps >= alpha * r_min + (1.0 - alpha) * r_max)
            break;
        double new_max = r_max - infos[idx].rUp;
        if (new_max < measured_rps)
            continue; // removing this one would under-provision
        r_max = new_max;
        r_min -= infos[idx].rLow;
        drains.push_back(idx);
    }
    return drains;
}

double
scaleOutClaim(double measured_rps, double residual_rps, bool prioritized)
{
    if (prioritized)
        return residual_rps;
    return std::min(residual_rps, std::max(measured_rps * 0.25, 50.0));
}

} // namespace infless::core
