/**
 * @file
 * Scale-in planning: which instances to drain when the load drops.
 *
 * The auto-scaling engine's case (iii) releases extra instances so the
 * function returns to case (ii). Drains are chosen lowest resource
 * efficiency (r_up per weighted resource) first, never dropping the
 * remaining aggregate capacity below the measured rate.
 */

#ifndef INFLESS_CORE_AUTOSCALER_HH
#define INFLESS_CORE_AUTOSCALER_HH

#include <cstddef>
#include <vector>

#include "core/dispatcher.hh"

namespace infless::core {

/**
 * Pick instance indices to drain.
 *
 * @param infos Rate windows of the live instances.
 * @param weighted_cost Eq. 2 weighted resource cost of each instance.
 * @param measured_rps Current function rate R.
 * @param alpha The dispatcher's blend constant.
 * @return Indices into @p infos to drain, in drain order.
 */
std::vector<std::size_t>
chooseDrains(const std::vector<InstanceRateInfo> &infos,
             const std::vector<double> &weighted_cost, double measured_rps,
             double alpha);

/**
 * Per-tick scale-out claim for a function's residual load.
 *
 * Growing in bounded slices keeps one under-provisioned function from
 * grabbing the whole cluster in a single tick and starving its peers.
 * A prioritized function (brownout: the overload control plane asked
 * for scale-out at full speed) claims its entire residual instead.
 */
double scaleOutClaim(double measured_rps, double residual_rps,
                     bool prioritized);

} // namespace infless::core

#endif // INFLESS_CORE_AUTOSCALER_HH
