#include "core/batch_queue.hh"

#include "sim/logging.hh"

namespace infless::core {

BatchQueue::BatchQueue(int batch_size, sim::Tick max_wait,
                       std::size_t depth_cap)
    : batchSize_(batch_size), maxWait_(max_wait), depthCap_(depth_cap)
{
    sim::simAssert(batch_size >= 1, "batch size must be >= 1");
    sim::simAssert(max_wait >= 0, "max wait must be >= 0");
}

void
BatchQueue::setMaxWait(sim::Tick max_wait)
{
    sim::simAssert(max_wait >= 0, "max wait must be >= 0");
    maxWait_ = max_wait;
}

bool
BatchQueue::push(RequestIndex request, sim::Tick now)
{
    if (!hasRoom())
        return false;
    entries_.push_back(Entry{request, now});
    return true;
}

sim::Tick
BatchQueue::headDeadline() const
{
    if (entries_.empty())
        return sim::kTickNever;
    return entries_.front().arrival + maxWait_;
}

sim::Tick
BatchQueue::headArrival() const
{
    if (entries_.empty())
        return sim::kTickNever;
    return entries_.front().arrival;
}

std::vector<RequestIndex>
BatchQueue::takeBatch()
{
    std::vector<RequestIndex> batch;
    while (!entries_.empty() &&
           batch.size() < static_cast<std::size_t>(batchSize_)) {
        batch.push_back(entries_.front().request);
        entries_.pop_front();
    }
    return batch;
}

RequestIndex
BatchQueue::evictOldest()
{
    sim::simAssert(!entries_.empty(), "evictOldest on empty queue");
    RequestIndex victim = entries_.front().request;
    entries_.pop_front();
    return victim;
}

std::vector<RequestIndex>
BatchQueue::drain()
{
    std::vector<RequestIndex> all;
    while (!entries_.empty()) {
        all.push_back(entries_.front().request);
        entries_.pop_front();
    }
    return all;
}

} // namespace infless::core
