/**
 * @file
 * Per-instance batch queue (§3.2, built-in non-uniform batching).
 *
 * Every instance aggregates requests in its own queue. A batch is
 * released when the queue holds a full batch, or when the head request's
 * submission deadline (SLO minus predicted execution time) passes. While
 * the instance is busy executing, at most one further batch may
 * accumulate; beyond that requests are dropped (Fig. 6a's
 * over-submission).
 */

#ifndef INFLESS_CORE_BATCH_QUEUE_HH
#define INFLESS_CORE_BATCH_QUEUE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/time.hh"

namespace infless::core {

/** Index into the platform's request table. */
using RequestIndex = std::int64_t;

/**
 * FIFO of waiting requests with batch-release bookkeeping.
 */
class BatchQueue
{
  public:
    /**
     * @param batch_size Batch the queue aggregates toward.
     * @param max_wait Longest a head request may wait before the partial
     *        batch must be submitted (t_slo - t_exec).
     * @param depth_cap Queue depth bound in requests; 0 keeps the legacy
     *        bound of one full pending batch.
     */
    BatchQueue(int batch_size, sim::Tick max_wait,
               std::size_t depth_cap = 0);

    int batchSize() const { return batchSize_; }
    sim::Tick maxWait() const { return maxWait_; }

    /** Effective depth bound (configured cap or one full batch). */
    std::size_t depthCap() const
    {
        return depthCap_ != 0 ? depthCap_
                              : static_cast<std::size_t>(batchSize_);
    }

    /**
     * Re-aim the submission deadline (brownout relaxing/restoring the
     * batching slack of a live instance). Applies to the current head
     * as well: callers must re-arm their timeout.
     */
    void setMaxWait(sim::Tick max_wait);

    /**
     * Try to enqueue a request.
     *
     * @return false when the queue is at its depth cap and the request
     *         must be dropped, evicted into, or re-routed.
     */
    bool push(RequestIndex request, sim::Tick now);

    /** Requests currently waiting. */
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Whether a full batch is waiting. */
    bool hasFullBatch() const
    {
        return size() >= static_cast<std::size_t>(batchSize_);
    }

    /** Whether another request can still enter. */
    bool hasRoom() const { return size() < depthCap(); }

    /**
     * Deadline by which the head request forces submission
     * (kTickNever when empty).
     */
    sim::Tick headDeadline() const;

    /** Arrival time of the head request (kTickNever when empty). */
    sim::Tick headArrival() const;

    /**
     * Pop up to a full batch.
     *
     * @return Request indices in arrival order; empty when idle.
     */
    std::vector<RequestIndex> takeBatch();

    /** Drain everything (instance reaped mid-queue). */
    std::vector<RequestIndex> drain();

    /**
     * Remove and return the oldest queued request (overload eviction;
     * callers check headDeadline() first so only a request that is
     * already doomed to miss its SLO gets bumped). Panics when empty.
     */
    RequestIndex evictOldest();

  private:
    struct Entry
    {
        RequestIndex request;
        sim::Tick arrival;
    };

    int batchSize_;
    sim::Tick maxWait_;
    std::size_t depthCap_;
    std::deque<Entry> entries_;
};

} // namespace infless::core

#endif // INFLESS_CORE_BATCH_QUEUE_HH
