#include "core/dispatcher.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace infless::core {

RateEstimator::RateEstimator(sim::Tick window) : window_(window)
{
    sim::simAssert(window > 0, "rate window must be positive");
}

void
RateEstimator::record(sim::Tick now)
{
    if (firstArrival_ < 0)
        firstArrival_ = now;
    arrivals_.push_back(now);
}

double
RateEstimator::rps(sim::Tick now) const
{
    sim::Tick cutoff = now - window_;
    while (!arrivals_.empty() && arrivals_.front() <= cutoff)
        arrivals_.pop_front();
    // Before a full window has elapsed since the first arrival, divide by
    // the observed span instead, so ramp-up estimates are not halved.
    sim::Tick effective = window_;
    if (firstArrival_ >= 0 && now - firstArrival_ < window_) {
        effective = std::max<sim::Tick>(now - firstArrival_,
                                        window_ / 8);
    }
    return static_cast<double>(arrivals_.size()) /
           sim::ticksToSec(effective);
}

ScalingAssessment
assessScaling(double measured_rps, double r_max, double r_min, double alpha)
{
    sim::simAssert(alpha >= 0.0 && alpha <= 1.0, "alpha out of [0,1]");
    ScalingAssessment result;
    if (measured_rps > r_max) {
        result.action = ScalingAssessment::Action::ScaleOut;
        result.residualRps = measured_rps - r_max;
    } else if (measured_rps < alpha * r_min + (1.0 - alpha) * r_max) {
        result.action = ScalingAssessment::Action::ScaleIn;
    } else {
        result.action = ScalingAssessment::Action::Hold;
    }
    return result;
}

std::vector<double>
targetRates(const std::vector<InstanceRateInfo> &infos, double measured_rps)
{
    double r_max = 0.0;
    double r_min = 0.0;
    for (const auto &info : infos) {
        r_max += info.rUp;
        r_min += info.rLow;
    }

    double fraction = 0.0; // 0 -> everyone at r_up
    if (r_max > r_min) {
        fraction = (r_max - measured_rps) / (r_max - r_min);
        fraction = std::clamp(fraction, 0.0, 1.0);
    } else if (measured_rps < r_max) {
        fraction = 1.0;
    }

    std::vector<double> rates;
    rates.reserve(infos.size());
    for (const auto &info : infos)
        rates.push_back(info.rUp - fraction * (info.rUp - info.rLow));
    return rates;
}

std::size_t
pickWeighted(const std::vector<double> &weights,
             const std::vector<double> &served,
             const std::vector<bool> &eligible)
{
    sim::simAssert(weights.size() == served.size() &&
                       weights.size() == eligible.size(),
                   "weighted pick arity mismatch");
    std::size_t best = std::numeric_limits<std::size_t>::max();
    double best_ratio = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (!eligible[i] || weights[i] <= 0.0)
            continue;
        double ratio = (served[i] + 1.0) / weights[i];
        if (ratio < best_ratio) {
            best_ratio = ratio;
            best = i;
        }
    }
    if (best != std::numeric_limits<std::size_t>::max())
        return best;
    // Last resort: every eligible instance has a zero target rate (e.g.
    // the rate estimator reads 0 rps right after a lull or a mass
    // failover). Round-robin over the eligible set by least-served
    // rather than dropping the request on the floor.
    double least_served = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (!eligible[i])
            continue;
        if (served[i] < least_served) {
            least_served = served[i];
            best = i;
        }
    }
    return best;
}

} // namespace infless::core
