/**
 * @file
 * Batch-aware dispatching logic (§3.2).
 *
 * The dispatcher keeps each instance's assigned rate inside its
 * [r_low, r_up] window. Given the measured function rate R and the
 * instances' aggregate R_min/R_max, the three-case rule decides between
 * scaling out (R > R_max), holding with interpolated per-instance
 * targets, and scaling in (R below the alpha-blend threshold).
 */

#ifndef INFLESS_CORE_DISPATCHER_HH
#define INFLESS_CORE_DISPATCHER_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "sim/time.hh"

namespace infless::core {

/**
 * Sliding-window arrival-rate estimator.
 */
class RateEstimator
{
  public:
    explicit RateEstimator(sim::Tick window = 2 * sim::kTicksPerSec);

    /** Observe one arrival. */
    void record(sim::Tick now);

    /** Arrivals per second over the trailing window. */
    double rps(sim::Tick now) const;

    sim::Tick window() const { return window_; }

  private:
    sim::Tick window_;
    sim::Tick firstArrival_ = -1;
    mutable std::deque<sim::Tick> arrivals_;
};

/** The rate window of one live instance. */
struct InstanceRateInfo
{
    double rUp = 0.0;
    double rLow = 0.0;
};

/** Outcome of the three-case rule. */
struct ScalingAssessment
{
    enum class Action
    {
        ScaleOut, ///< case (i): R > R_max
        Hold,     ///< case (ii)
        ScaleIn   ///< case (iii): R < alpha*R_min + (1-alpha)*R_max
    };

    Action action = Action::Hold;
    /** Rate the existing instances cannot absorb (case i only). */
    double residualRps = 0.0;
};

/** Apply the three-case rule of §3.2. */
ScalingAssessment assessScaling(double measured_rps, double r_max,
                                double r_min, double alpha);

/**
 * Case (ii) per-instance target rates: interpolate each instance between
 * its bounds by the global headroom fraction
 * (R_max - R) / (R_max - R_min).
 *
 * The paper's Eq. divides by R_min, which underflows r_low whenever
 * R_max - R > R_min; we use the (R_max - R_min) denominator that realizes
 * the stated intent (r_i in proportion to the instance's range size, sum
 * approximately R, each r_i within bounds).
 */
std::vector<double> targetRates(const std::vector<InstanceRateInfo> &infos,
                                double measured_rps);

/**
 * Weighted-round-robin pick: the index minimizing served/weight, i.e. the
 * instance furthest behind its target share. Entries with weight <= 0 or
 * eligible[i] == false are skipped. When every eligible entry has a
 * non-positive weight (all target rates zero), falls back to the
 * least-served eligible entry instead of failing, so a momentary
 * all-zero rate plan cannot silently drop traffic.
 *
 * @return Index into @p weights, or SIZE_MAX when nothing is eligible.
 */
std::size_t pickWeighted(const std::vector<double> &weights,
                         const std::vector<double> &served,
                         const std::vector<bool> &eligible);

} // namespace infless::core

#endif // INFLESS_CORE_DISPATCHER_HH
