#include "core/oracle_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace infless::core {

OracleScheduler::OracleScheduler(const profiler::CopPredictor &predictor,
                                 SchedulerConfig config,
                                 std::int64_t max_nodes)
    : greedy_(predictor, config), config_(std::move(config)),
      maxNodes_(max_nodes)
{
    sim::simAssert(max_nodes > 0, "node budget must be positive");
}

namespace {

struct Item
{
    CandidateConfig config;
    double cost;
    double up;
    double low;
};

/** Depth-first branch-and-bound state. */
struct Search
{
    const std::vector<Item> &items;
    /** Cheapest cost-per-covered-RPS from item i onward (suffix min). */
    std::vector<double> suffixRate;
    double demand;
    std::int64_t nodeBudget;
    std::int64_t nodes = 0;
    bool exact = true;

    double bestCost = std::numeric_limits<double>::max();
    std::vector<int> bestCounts;
    std::vector<int> counts;

    void
    dfs(std::size_t idx, double cost, double up, double low)
    {
        if (++nodes > nodeBudget) {
            exact = false;
            return;
        }
        if (cost >= bestCost)
            return;
        if (up >= demand) {
            // Covered; the saturation side needs sum(low) <= demand.
            if (low <= demand + 1e-9) {
                bestCost = cost;
                bestCounts = counts;
            }
            return; // more instances only add cost
        }
        if (idx >= items.size())
            return;

        // Optimistic completion bound: cover the remaining demand at the
        // best cost rate any remaining item offers.
        double bound = cost + (demand - up) * suffixRate[idx];
        if (bound >= bestCost)
            return;

        const Item &item = items[idx];
        double remaining = demand - up;
        int k_cover = static_cast<int>(std::ceil(remaining / item.up));
        int k_low = item.low > 0.0 ? static_cast<int>(std::floor(
                                         (demand - low) / item.low))
                                   : k_cover;
        int k_max = std::min(k_cover, k_low);
        for (int k = k_max; k >= 0; --k) {
            counts[idx] = k;
            dfs(idx + 1, cost + k * item.cost, up + k * item.up,
                low + k * item.low);
            if (!exact)
                break;
        }
        counts[idx] = 0;
    }
};

} // namespace

OracleResult
OracleScheduler::solve(const models::ModelInfo &model, double demand_rps,
                       sim::Tick slo, int max_batch) const
{
    OracleResult result;
    if (demand_rps <= 0.0)
        return result;

    // Candidate pool under the same feasibility rules as the greedy.
    std::vector<Item> items;
    int cap = std::min(max_batch, model.maxBatch);
    for (int b = 1; b <= cap; b *= 2) {
        for (const auto &cand :
             greedy_.availableConfigs(model, b, demand_rps, slo)) {
            if (!cand.bounds.valid() || cand.bounds.up <= 0.0)
                continue;
            items.push_back(Item{
                cand, cand.config.resources.weighted(config_.beta),
                cand.bounds.up, cand.bounds.low});
        }
    }
    if (items.empty())
        return result;

    // Pareto prune: drop items dominated on (cost, up, low).
    std::vector<Item> pruned;
    for (const auto &item : items) {
        bool dominated = false;
        for (const auto &other : items) {
            bool better = other.cost <= item.cost && other.up >= item.up &&
                          other.low <= item.low;
            bool strict = other.cost < item.cost || other.up > item.up ||
                          other.low < item.low;
            if (&other != &item && better && strict) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            pruned.push_back(item);
    }

    // Most efficient first so good incumbents appear early.
    std::sort(pruned.begin(), pruned.end(), [](const Item &a,
                                               const Item &b) {
        return a.cost / a.up < b.cost / b.up;
    });

    Search search{pruned, {}, demand_rps, maxNodes_};
    search.suffixRate.assign(pruned.size() + 1,
                             std::numeric_limits<double>::max());
    for (std::size_t i = pruned.size(); i-- > 0;) {
        search.suffixRate[i] = std::min(search.suffixRate[i + 1],
                                        pruned[i].cost / pruned[i].up);
    }
    search.counts.assign(pruned.size(), 0);
    search.dfs(0, 0.0, 0.0, 0.0);

    result.exact = search.exact;
    if (search.bestCost == std::numeric_limits<double>::max())
        return result; // infeasible (saturation constraints)
    result.cost = search.bestCost;
    for (std::size_t i = 0; i < search.bestCounts.size(); ++i) {
        for (int k = 0; k < search.bestCounts[i]; ++k) {
            result.fleet.push_back(pruned[i].config);
            result.capacity += pruned[i].up;
        }
    }
    return result;
}

} // namespace infless::core
