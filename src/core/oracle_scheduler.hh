/**
 * @file
 * Exhaustive "oracle" scheduler for optimality-gap measurement.
 *
 * The paper shows the instance-provisioning problem (Eq. 2-9) is at
 * least as hard as bin packing and resorts to the greedy Algorithm 1.
 * For small demands the optimum is still computable: this oracle
 * branch-and-bounds over multisets of feasible configurations to find
 * the cheapest fleet covering a single function's rate, ignoring
 * placement (a lower bound on any placed solution). Comparing it with
 * the greedy scheduler quantifies the greedy's optimality gap.
 *
 * Exponential in the worst case — intended for tests and ablation
 * benches, not the runtime path.
 */

#ifndef INFLESS_CORE_ORACLE_SCHEDULER_HH
#define INFLESS_CORE_ORACLE_SCHEDULER_HH

#include <vector>

#include "core/scheduler.hh"

namespace infless::core {

/** Result of an oracle search. */
struct OracleResult
{
    /** Chosen configurations (one entry per instance). */
    std::vector<CandidateConfig> fleet;
    /** Total beta-weighted resource cost. */
    double cost = 0.0;
    /** Total r_up capacity. */
    double capacity = 0.0;
    /** Whether the search proved optimality (vs hitting the node cap). */
    bool exact = true;

    bool feasible() const { return !fleet.empty() || capacity > 0.0; }
};

/**
 * Minimum-cost fleet covering @p demand_rps for one model.
 */
class OracleScheduler
{
  public:
    /**
     * @param predictor Latency predictor (shared with the greedy).
     * @param config Grid and beta (shared with the greedy).
     * @param max_nodes Search-node budget; beyond it the best incumbent
     *        is returned with exact = false.
     */
    OracleScheduler(const profiler::CopPredictor &predictor,
                    SchedulerConfig config = {},
                    std::int64_t max_nodes = 2'000'000);

    /**
     * Find the cheapest fleet whose aggregate r_up covers @p demand_rps,
     * honoring the same feasibility and saturation rules as
     * AvailableConfig (each instance's r_low must be coverable by the
     * rate left for it).
     */
    OracleResult solve(const models::ModelInfo &model, double demand_rps,
                       sim::Tick slo, int max_batch) const;

  private:
    GreedyScheduler greedy_; ///< reused for AvailableConfig
    SchedulerConfig config_;
    std::int64_t maxNodes_;
};

} // namespace infless::core

#endif // INFLESS_CORE_ORACLE_SCHEDULER_HH
