#include "core/platform.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "coldstart/lsth.hh"
#include "core/autoscaler.hh"
#include "sim/logging.hh"

namespace infless::core {

Platform::Platform(std::size_t num_servers, PlatformOptions opts)
    : Platform(cluster::Cluster(num_servers), std::move(opts))
{
}

Platform::Platform(cluster::Cluster machines, PlatformOptions opts)
    : sim_(opts.seed), cluster_(std::move(machines)),
      zoo_(models::ModelZoo::shared()), exec_(opts.exec),
      profileDb_(exec_), predictor_(profileDb_, opts.cop),
      scheduler_(predictor_, opts.scheduler), runtime_(opts.coldStart),
      opts_(std::move(opts))
{
    if (!opts_.keepAlive)
        opts_.keepAlive = coldstart::LsthPolicy::factory();
    tracer_.configure(opts_.obs.trace);
    flight_.configure(opts_.obs.flight);
    monitor_.configure(opts_.obs.slo);
    if (monitor_.enabled()) {
        // A firing burn-rate alert is a flight trigger: the recorder
        // freezes the spans that led up to the first incident.
        monitor_.setAlertCallback([this](const obs::SloAlert &alert) {
            if (alert.edge != obs::AlertEdge::Firing)
                return;
            flight_.trigger(alert.kind == obs::AlertKind::FastBurn
                                ? obs::FlightTrigger::SloFastBurn
                                : obs::FlightTrigger::SloSlowBurn,
                            alert.at);
        });
    }
    prof_.setEnabled(opts_.obs.profiling);
    scheduler_.setProfiler(&prof_);
    scalerHandle_ = sim_.every(opts_.scalerPeriod, [this] { scalerTick(); });

    if (opts_.faults.profileError.enabled()) {
        // Mispredicted-profile fault: distort the latency surface the
        // controllers see. Execution pricing (execCache_ over exec_)
        // never goes through the predictor, so ground truth is intact.
        const faults::ProfileErrorConfig pe = opts_.faults.profileError;
        const std::uint64_t seed = opts_.seed;
        predictor_.setDistortion([pe, seed](std::uint64_t model_key) {
            return faults::profileErrorMultiplier(pe, seed, model_key);
        });
    }

    serverDownSince_.assign(cluster_.size(), sim::kTickNever);

    if (opts_.topology.enabled()) {
        // Flat platform: local ids ARE global ids. ShardedPlatform
        // re-assigns with true global ids right after construction.
        for (std::size_t s = 0; s < cluster_.size(); ++s) {
            auto id = static_cast<cluster::ServerId>(s);
            cluster_.setServerDomain(id, opts_.topology.domainOf(id));
        }
    }
    if (opts_.faults.grayEnabled()) {
        grayMult_.resize(cluster_.size(), 1.0);
        for (std::size_t s = 0; s < cluster_.size(); ++s) {
            grayMult_[s] = faults::grayExecMultiplier(
                opts_.faults, opts_.seed,
                static_cast<cluster::ServerId>(s));
        }
    }
    if (opts_.health.enabled) {
        health_ = std::make_unique<health::OutlierEjector>(opts_.health);
        health_->ensureServers(cluster_.size());
        healthHandle_ =
            sim_.every(opts_.health.evalPeriod, [this] { healthTick(); });
    }
    if (opts_.faults.enabled()) {
        faults_ = std::make_unique<faults::FaultInjector>(
            sim_, opts_.faults, opts_.seed, cluster_.size(),
            opts_.topology.zones);
        faults_->start(faults::FaultInjector::Hooks{
            [this](cluster::ServerId id) { injectServerCrash(id); },
            [this](cluster::ServerId id) { injectServerRecovery(id); },
            [this](cluster::DomainId zone) { injectDomainOutage(zone); },
            [this](cluster::DomainId zone) { injectDomainRepair(zone); }});
    }
}

Platform::~Platform() = default;

FunctionId
Platform::deploy(const FunctionSpec &spec)
{
    sim::simAssert(spec.maxBatch >= 1, "maxBatch must be >= 1");
    FunctionState state(opts_.rateWindow, opts_.overload);
    state.spec = spec;
    state.model = &zoo_.get(spec.model);
    state.spec.maxBatch = std::min(spec.maxBatch, state.model->maxBatch);
    state.policy = opts_.keepAlive();
    functions_.push_back(std::move(state));
    auto fn = static_cast<FunctionId>(functions_.size() - 1);
    monitor_.registerFunction(fn, functions_.back().spec.sloTicks);
    return fn;
}

ChainId
Platform::deployChain(const ChainSpec &spec)
{
    sim::simAssert(!spec.models.empty(), "chain needs at least one stage");
    sim::simAssert(spec.sloTicks > 0, "chain SLO must be positive");

    // Split the end-to-end SLO into per-stage budgets. Proportional
    // splitting weighs stages by their predicted single-sample execution
    // time on a reference configuration, so slow stages get more room to
    // batch.
    const cluster::Resources reference{2000, 10, 0};
    std::vector<double> weights;
    for (const auto &name : spec.models) {
        const auto &model = zoo_.get(name);
        double weight =
            spec.split == SloSplit::Equal
                ? 1.0
                : static_cast<double>(
                      predictor_.predict(model, 1, reference));
        weights.push_back(weight);
    }
    double total = 0.0;
    for (double w : weights)
        total += w;

    ChainState state;
    state.spec = spec;
    auto chain = static_cast<ChainId>(chains_.size());
    for (std::size_t stage = 0; stage < spec.models.size(); ++stage) {
        FunctionSpec fn_spec;
        fn_spec.name = spec.name + "-stage" + std::to_string(stage);
        fn_spec.model = spec.models[stage];
        fn_spec.sloTicks = std::max<sim::Tick>(
            10 * sim::kTicksPerMs,
            static_cast<sim::Tick>(static_cast<double>(spec.sloTicks) *
                                   weights[stage] / total));
        fn_spec.maxBatch = spec.maxBatch;
        FunctionId fn = deploy(fn_spec);
        functionState(fn).chain = chain;
        functionState(fn).stage = static_cast<int>(stage);
        state.stages.push_back(fn);
    }
    chains_.push_back(std::move(state));
    return chain;
}

const metrics::RunMetrics &
Platform::chainMetrics(ChainId chain) const
{
    sim::simAssert(chain >= 0 &&
                       static_cast<std::size_t>(chain) < chains_.size(),
                   "bad chain id ", chain);
    return chains_[static_cast<std::size_t>(chain)].metrics;
}

const std::vector<FunctionId> &
Platform::chainStages(ChainId chain) const
{
    sim::simAssert(chain >= 0 &&
                       static_cast<std::size_t>(chain) < chains_.size(),
                   "bad chain id ", chain);
    return chains_[static_cast<std::size_t>(chain)].stages;
}

void
Platform::injectChainTrace(ChainId chain, workload::ArrivalTrace trace)
{
    injectTrace(chainStages(chain).front(), std::move(trace));
}

void
Platform::injectChainRateSeries(ChainId chain,
                                const workload::RateSeries &series)
{
    injectRateSeries(chainStages(chain).front(), series);
}

Platform::FunctionState &
Platform::functionState(FunctionId fn)
{
    sim::simAssert(fn >= 0 &&
                       static_cast<std::size_t>(fn) < functions_.size(),
                   "bad function id ", fn);
    return functions_[static_cast<std::size_t>(fn)];
}

const FunctionSpec &
Platform::spec(FunctionId fn) const
{
    return const_cast<Platform *>(this)->functionState(fn).spec;
}

const metrics::RunMetrics &
Platform::functionMetrics(FunctionId fn) const
{
    return const_cast<Platform *>(this)->functionState(fn).metrics;
}

void
Platform::injectTrace(FunctionId fn, workload::ArrivalTrace trace)
{
    functionState(fn); // validate the id
    feeds_.push_back(TraceFeed{fn, std::move(trace), 0});
    scheduleNextArrival(feeds_.size() - 1);
}

void
Platform::injectRateSeries(FunctionId fn,
                           const workload::RateSeries &series)
{
    sim::Rng rng = sim_.forkRng(static_cast<std::uint64_t>(fn) + 0x77);
    injectTrace(fn, workload::ArrivalTrace::fromRateSeries(series, rng));
}

void
Platform::scheduleNextArrival(std::size_t feed_idx)
{
    TraceFeed &feed = feeds_[feed_idx];
    if (feed.cursor >= feed.trace.size())
        return;
    sim::Tick when = feed.trace.arrivals()[feed.cursor];
    sim_.atFixed(std::max(when, sim_.now()), [this, feed_idx] {
        TraceFeed &f = feeds_[feed_idx];
        ++f.cursor;
        onArrival(f.fn);
        scheduleNextArrival(feed_idx);
    });
}

void
Platform::run(sim::Tick until)
{
    endTime_ = until;
    sim_.runUntil(until);
    // Close every SLO window the run passed (purely observational: the
    // monitor schedules no events and draws no randomness).
    monitor_.advanceTo(until);
    // Surface the memo's effectiveness alongside the run's other
    // aggregates (idempotent: counters are absolute snapshots).
    total_.recordExecCache(execCache_.stats().hits,
                           execCache_.stats().misses);
    // Conservation audit: every arrived request must be completed,
    // dropped, or verifiably in flight. A truncated event engine may
    // legitimately strand events, so only audit full runs.
    if (!sim_.events().truncated()) {
        std::string diag;
        sim::simAssert(auditConservation(&diag),
                       "request conservation violated:\n", diag);
    }
}

double
Platform::meanFragmentRatio() const
{
    return fragRatio_.meanUntil(endTime_ > 0 ? endTime_ : sim_.now());
}

std::vector<ConfigUsage>
Platform::configUsage(FunctionId fn) const
{
    return const_cast<Platform *>(this)->functionState(fn).usage;
}

int
Platform::liveInstanceCount(FunctionId fn) const
{
    return static_cast<int>(
        const_cast<Platform *>(this)->functionState(fn).live.size());
}

std::vector<InstanceSnapshot>
Platform::instanceSnapshots(FunctionId fn) const
{
    const FunctionState &f =
        const_cast<Platform *>(this)->functionState(fn);
    std::vector<InstanceSnapshot> snapshots;
    snapshots.reserve(f.live.size());
    for (std::size_t idx : f.live) {
        const InstanceRuntime &rt = instances_[idx];
        InstanceSnapshot snap;
        snap.id = rt.inst.id();
        snap.function = fn;
        snap.config = rt.inst.config();
        snap.server = rt.inst.serverId();
        snap.state = rt.inst.state();
        snap.draining = rt.draining;
        snap.targetRate = rt.targetRate;
        snap.rUp = rt.bounds.up;
        snap.rLow = rt.bounds.low;
        snap.queueDepth = rt.queue.size();
        snapshots.push_back(snap);
    }
    return snapshots;
}

int
Platform::liveInstanceCount() const
{
    int total = 0;
    for (const auto &f : functions_)
        total += static_cast<int>(f.live.size());
    return total;
}

std::int64_t
Platform::queuedRequests() const
{
    std::int64_t total = 0;
    for (const auto &f : functions_)
        for (std::size_t idx : f.live)
            total += static_cast<std::int64_t>(instances_[idx].queue.size());
    return total;
}

std::int64_t
Platform::inFlightRequests() const
{
    std::int64_t total = 0;
    for (const auto &f : functions_) {
        for (std::size_t idx : f.live) {
            const InstanceRuntime &rt = instances_[idx];
            total += static_cast<std::int64_t>(rt.queue.size());
            total += static_cast<std::int64_t>(rt.inFlight.size());
        }
        total += f.pendingRetries + f.pendingIngress;
    }
    return total;
}

std::int64_t
Platform::totalLaunches() const
{
    return total_.launches();
}

// ---------------------------------------------------------------------------
// Arrival and routing
// ---------------------------------------------------------------------------

void
Platform::onArrival(FunctionId fn)
{
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);

    auto request = static_cast<RequestIndex>(requests_.size());
    RequestRecord record;
    record.function = fn;
    record.arrival = now;
    record.rootArrival = now;
    record.chain = f.chain;
    record.stage = f.stage;
    requests_.push_back(record);

    if (f.chain != kNoChain && f.stage == 0) {
        chains_[static_cast<std::size_t>(f.chain)].metrics.recordArrival(
            now);
    }
    ingestRequest(fn, request);
}

void
Platform::ingestRequest(FunctionId fn, RequestIndex request)
{
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);
    f.metrics.recordArrival(now);
    total_.recordArrival(now);
    f.rate.record(now);
    f.policy->recordInvocation(now);
    f.lastInvocation = now;

    emitSpan(obs::SpanKind::Arrival, request, fn, -1, -1, now, 0);

    sim::Tick delay = ingressDelay();
    if (delay > 0) {
        ++f.pendingIngress;
        sim_.afterFixed(delay, [this, fn, request] {
            --functionState(fn).pendingIngress;
            routeRequest(fn, request);
        });
    } else {
        routeRequest(fn, request);
    }
}

void
Platform::routeRequest(FunctionId fn, RequestIndex request)
{
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);

    // Overload gate: the circuit breaker and the deadline-aware
    // admission predicate both shed at ingress (no-op when disabled).
    if (!admitRequest(fn, request))
        return;

    // Draining instances stop receiving traffic, but serve as a fallback
    // while replacements are still cold-starting (make-before-break).
    auto pick = [&](bool include_draining) -> std::size_t {
        constexpr auto kNone = std::numeric_limits<std::size_t>::max();
        auto is_eligible = [&](const InstanceRuntime &rt) {
            if (rt.draining && !include_draining)
                return false;
            if (!rt.queue.hasRoom())
                return false;
            if (oneToOne()) {
                return rt.queue.empty() &&
                       rt.inst.state() != cluster::InstanceState::Busy;
            }
            return true;
        };
        if (packRouting()) {
            for (std::size_t idx : f.live) {
                if (is_eligible(instances_[idx]))
                    return idx;
            }
            return kNone;
        }
        std::vector<double> weights, served;
        std::vector<bool> eligible;
        weights.reserve(f.live.size());
        for (std::size_t idx : f.live) {
            const InstanceRuntime &rt = instances_[idx];
            weights.push_back(rt.targetRate > 0.0 ? rt.targetRate
                                                  : rt.bounds.up);
            served.push_back(rt.servedInEpoch);
            eligible.push_back(is_eligible(rt));
        }
        std::size_t local = pickWeighted(weights, served, eligible);
        return local == kNone ? kNone : f.live[local];
    };

    std::size_t idx = pick(false);
    if (idx == std::numeric_limits<std::size_t>::max())
        idx = pick(true);
    if (idx == std::numeric_limits<std::size_t>::max() &&
        maybeReactiveScaleOut(fn)) {
        idx = pick(false);
        if (idx == std::numeric_limits<std::size_t>::max())
            idx = pick(true);
    }
    if (idx == std::numeric_limits<std::size_t>::max()) {
        // Last resort before giving up: evict the oldest *doomed*
        // queued request fleet-wide (one already past its submission
        // deadline) to seat this one.
        if (opts_.overload.queue.evictOldest && tryEvictInto(fn, request))
            return;
        const RequestRecord &record =
            requests_[static_cast<std::size_t>(request)];
        if (record.retried) {
            // Already lost to a crash once: burn another retry instead
            // of dropping into a cluster that is still restoring
            // capacity. Budget exhaustion inside failoverRequest yields
            // the (single) drop.
            failoverRequest(fn, request);
        } else {
            dropRequest(f, request, now);
        }
        return;
    }

    InstanceRuntime &rt = instances_[idx];
    bool pushed = rt.queue.push(request, now);
    sim::simAssert(pushed, "push failed on eligible instance");
    rt.servedInEpoch += 1.0;
    if (rt.queue.size() == 1)
        armTimeout(idx);
    tryStartBatch(idx);
}

// ---------------------------------------------------------------------------
// Batching
// ---------------------------------------------------------------------------

void
Platform::tryStartBatch(std::size_t idx)
{
    InstanceRuntime &rt = instances_[idx];
    if (rt.inst.state() != cluster::InstanceState::Idle)
        return;
    if (rt.queue.empty())
        return;
    if (rt.queue.hasFullBatch() || rt.queue.headDeadline() <= sim_.now())
        startBatch(idx);
}

void
Platform::startBatch(std::size_t idx)
{
    sim::Tick now = sim_.now();
    InstanceRuntime &rt = instances_[idx];
    FunctionState &f = functionState(rt.fn);

    std::vector<RequestIndex> batch = rt.queue.takeBatch();
    int fill = static_cast<int>(batch.size());
    sim::Tick exec_time = execCache_.trueTicks(
        exec_, *f.model, fill, rt.inst.config().resources);
    // Health scoring judges actual exec against this healthy baseline
    // for the same model + config, so heterogeneous configs compare
    // fairly and the gray/straggler surcharge is what stands out.
    sim::Tick base_exec = exec_time;
    if (!grayMult_.empty()) {
        double mult = grayMultiplier(rt.inst.serverId());
        if (mult != 1.0) {
            exec_time = static_cast<sim::Tick>(
                std::llround(static_cast<double>(exec_time) * mult));
        }
    }
    if (faults_)
        exec_time = faults_->stretchExec(exec_time);
    if (health_)
        health_->recordExec(rt.inst.serverId(), base_exec, exec_time);

    rt.inst.startBatch(now, fill);
    // Latency attribution: snapshot when the executor became available
    // to this batch (it last went idle); the gap up to `now` is batch
    // formation — waiting for fill or the head deadline.
    rt.batchAvailAt = rt.idleSince == sim::kTickNever ? now : rt.idleSince;
    rt.idleSince = sim::kTickNever;
    rt.inFlight.assign(batch.begin(), batch.end());
    f.metrics.recordBatch(fill);
    total_.recordBatch(fill);
    f.usage[rt.usageKey].requestsServed += fill;

    if (rt.timeoutEvent != sim::kNoEvent) {
        sim_.events().cancel(rt.timeoutEvent);
        rt.timeoutEvent = sim::kNoEvent;
    }
    if (rt.expiryEvent != sim::kNoEvent && !rt.fastReap) {
        sim_.events().cancel(rt.expiryEvent);
        rt.expiryEvent = sim::kNoEvent;
    }

    // The completion event is on the non-cancellable fast path; the epoch
    // guard dead-letters it when a crash kills the instance mid-batch.
    std::uint32_t epoch = rt.liveEpoch;
    auto completion =
        [this, idx, epoch, batch = std::move(batch), now, exec_time] {
            if (instances_[idx].liveEpoch != epoch)
                return; // instance crashed while the batch was running
            onBatchComplete(idx, batch, now, exec_time);
        };
    // The busiest closure of a drain: it must stay on the event queue's
    // allocation-free inline path.
    static_assert(
        sim::EventQueue::Callback::fitsInline<decltype(completion)>,
        "batch-completion closure outgrew the event queue inline buffer");
    sim_.afterFixed(exec_time, std::move(completion));
}

void
Platform::onBatchComplete(std::size_t idx, std::vector<RequestIndex> batch,
                          sim::Tick started, sim::Tick exec_time)
{
    instances_[idx].inst.finishBatch(sim_.now());
    instances_[idx].inFlight.clear();
    instances_[idx].idleSince = sim_.now();
    if (health_)
        health_->recordSuccess(instances_[idx].inst.serverId());
    for (RequestIndex request : batch)
        completeRequest(idx, request, started, exec_time);

    // Re-resolve after completeRequest: completing requests can launch
    // replacement instances and reallocate instances_ underneath any
    // reference taken before the loop.
    InstanceRuntime &rt = instances_[idx];
    if (rt.reapAsap) {
        // Forced hand-over: re-route whatever queued behind this batch
        // and free the resources for the replacement fleet.
        FunctionId fn = rt.fn;
        std::vector<RequestIndex> stranded = rt.queue.drain();
        reapInstance(idx);
        for (RequestIndex request : stranded)
            routeRequest(fn, request);
        return;
    }

    tryStartBatch(idx);
    if (rt.inst.state() == cluster::InstanceState::Idle &&
        rt.queue.empty()) {
        armExpiry(idx);
    }
}

void
Platform::completeRequest(std::size_t idx, RequestIndex request,
                          sim::Tick started, sim::Tick exec_time)
{
    const InstanceRuntime &rt = instances_[idx];
    RequestRecord &record = requests_[static_cast<std::size_t>(request)];
    FunctionState &f = functionState(record.function);

    sim::Tick cold = 0;
    if (rt.warmAt != sim::kTickNever && rt.warmAt > record.arrival)
        cold = std::min(started, rt.warmAt) - record.arrival;
    sim::Tick queue_time =
        std::max<sim::Tick>(0, started - record.arrival - cold);
    // Batch-formation wait: the tail of the queue time after both the
    // request (past its cold wait) and the executor (batchAvailAt) were
    // ready — time spent waiting for fill or the head deadline. The rest
    // of queue_time is waiting behind the previous batch. batchWait is a
    // refinement of queue_time, not a fourth addend.
    sim::Tick ready = record.arrival + cold;
    sim::Tick avail =
        rt.batchAvailAt == sim::kTickNever ? started : rt.batchAvailAt;
    sim::Tick batch_wait = std::clamp<sim::Tick>(
        started - std::max(avail, ready), 0, queue_time);

    metrics::LatencyBreakdown parts{cold, queue_time, exec_time,
                                    batch_wait};
    f.metrics.recordCompletion(sim_.now(), parts, f.spec.sloTicks);
    total_.recordCompletion(sim_.now(), parts, f.spec.sloTicks);
    if (monitor_.enabled()) {
        monitor_.recordCompletion(record.function, sim_.now(),
                                  parts.total(), cold,
                                  queue_time - batch_wait, batch_wait,
                                  exec_time);
    }

    const overload::OverloadConfig &oc = opts_.overload;
    bool adaptive =
        oc.admissionMode() == overload::AdmissionMode::Adaptive;
    if (oc.breaker.enabled || oc.brownout.enabled ||
        oc.retryBudget.enabled || adaptive) {
        // Health feedback is judged against the *effective* SLO and only
        // on the serving path (queue + exec): while brownout holds the
        // degraded envelope, completions inside it must count as
        // successes or the breaker can never close, and a cold-start
        // wait is a provisioning event (admission's domain), not
        // evidence that warm servers are overloaded. Reported metrics
        // above stay pinned to the nominal SLO and full latency.
        sim::Tick health_slo = effectiveSlo(f);
        sim::Tick serving = parts.total() - parts.coldStart;
        bool violated = health_slo > 0 && serving > health_slo;
        if (oc.breaker.enabled) {
            f.breaker.record(sim_.now(), violated);
            noteBreakerTransitions(record.function, sim_.now());
        }
        if (oc.brownout.enabled) {
            f.brownout.record(sim_.now(), violated);
            noteBrownoutTransition(record.function, sim_.now());
        }
        if (oc.retryBudget.enabled)
            f.retryBudget.onSuccess();
        if (adaptive && record.limiterHeld) {
            // The limiter samples the same serving latency the breaker
            // judges: cold-start waits are provisioning, not queueing
            // pressure the limit should choke on.
            releaseLimiter(f, record);
            if (f.limiter.limit.onSample(sim_.now(), serving, violated,
                                         f.limiter.strategy.inFlight())) {
                f.metrics.recordLimiterBackoff();
                total_.recordLimiterBackoff();
            }
        }
    }

    if (tracer_.wants(request) || flight_.enabled()) {
        cluster::ServerId server = rt.inst.serverId();
        cluster::InstanceId instance = rt.inst.id();
        if (cold > 0) {
            emitSpan(obs::SpanKind::ColdStart, request, record.function,
                     server, instance, record.arrival, cold);
        }
        emitSpan(obs::SpanKind::Queue, request, record.function, server,
                 instance, record.arrival + cold, queue_time);
        if (batch_wait > 0) {
            emitSpan(obs::SpanKind::BatchWait, request, record.function,
                     server, instance, started - batch_wait, batch_wait);
        }
        emitSpan(obs::SpanKind::Exec, request, record.function, server,
                 instance, started, exec_time);
        emitSpan(obs::SpanKind::Complete, request, record.function,
                 server, instance, sim_.now(), 0);
    }

    if (record.retried) {
        // A crash-lost request made it through a re-dispatch: that is a
        // successful failover.
        record.retried = false;
        f.metrics.recordFailover();
        total_.recordFailover();
    }

    if (record.chain != kNoChain) {
        record.coldAccum += cold;
        record.queueAccum += queue_time;
        record.execAccum += exec_time;
        record.batchAccum += batch_wait;
        advanceChain(request, sim_.now());
    }
}

void
Platform::advanceChain(RequestIndex request, sim::Tick now)
{
    const RequestRecord &record =
        requests_[static_cast<std::size_t>(request)];
    ChainState &chain = chains_[static_cast<std::size_t>(record.chain)];

    auto next_stage = static_cast<std::size_t>(record.stage) + 1;
    if (next_stage < chain.stages.size()) {
        FunctionId next_fn = chain.stages[next_stage];
        auto next = static_cast<RequestIndex>(requests_.size());
        RequestRecord forwarded;
        forwarded.function = next_fn;
        forwarded.arrival = now;
        forwarded.chain = record.chain;
        forwarded.stage = static_cast<int>(next_stage);
        forwarded.rootArrival = record.rootArrival;
        forwarded.coldAccum = record.coldAccum;
        forwarded.queueAccum = record.queueAccum;
        forwarded.execAccum = record.execAccum;
        forwarded.batchAccum = record.batchAccum;
        requests_.push_back(forwarded);
        ingestRequest(next_fn, next);
        return;
    }

    metrics::LatencyBreakdown parts{record.coldAccum, record.queueAccum,
                                    record.execAccum, record.batchAccum};
    chain.metrics.recordCompletion(now, parts, chain.spec.sloTicks);
}

void
Platform::onWarm(std::size_t idx)
{
    InstanceRuntime &rt = instances_[idx];
    if (rt.inst.state() == cluster::InstanceState::Reaped)
        return; // reaped while cold-starting
    rt.inst.becomeWarm(sim_.now());
    rt.warmAt = sim_.now();
    rt.idleSince = sim_.now();
    tryStartBatch(idx);
    if (rt.inst.state() == cluster::InstanceState::Idle &&
        rt.queue.empty()) {
        armExpiry(idx);
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void
Platform::armTimeout(std::size_t idx)
{
    InstanceRuntime &rt = instances_[idx];
    if (rt.timeoutEvent != sim::kNoEvent) {
        sim_.events().cancel(rt.timeoutEvent);
        rt.timeoutEvent = sim::kNoEvent;
    }
    sim::Tick deadline = rt.queue.headDeadline();
    if (deadline == sim::kTickNever)
        return;
    sim::Tick when = std::max(sim_.now(), deadline);
    rt.timeoutEvent = sim_.at(when, [this, idx] {
        instances_[idx].timeoutEvent = sim::kNoEvent;
        tryStartBatch(idx);
    });
}

void
Platform::armExpiry(std::size_t idx)
{
    InstanceRuntime &rt = instances_[idx];
    if (rt.expiryEvent != sim::kNoEvent) {
        sim_.events().cancel(rt.expiryEvent);
        rt.expiryEvent = sim::kNoEvent;
    }
    FunctionState &f = functionState(rt.fn);
    sim::Tick wait;
    if (rt.fastReap) {
        // Replaced by a reconfiguration: a short grace period covers the
        // hand-over while the replacement instances warm up.
        wait = 3 * sim::kTicksPerSec;
    } else {
        coldstart::KeepAliveDecision decision;
        {
            obs::ProfScope scope(&prof_, obs::Phase::ColdStartPolicy);
            decision = f.policy->decide(sim_.now());
        }
        sim::Tick keep_alive = std::max<sim::Tick>(
            decision.keepAliveWindow, sim::kTicksPerSec);
        // The policy's window may shrink as its histograms mature, so
        // long waits are re-checked at minute granularity instead of
        // sleeping the whole window on a stale decision.
        wait = std::min<sim::Tick>(keep_alive, sim::kTicksPerMin);
    }
    rt.expiryEvent = sim_.at(sim_.now() + wait, [this, idx] {
        InstanceRuntime &r = instances_[idx];
        r.expiryEvent = sim::kNoEvent;
        if (r.inst.state() != cluster::InstanceState::Idle ||
            !r.queue.empty()) {
            if (r.fastReap) {
                // Still serving as fallback: reap at the next batch
                // boundary so the replacement can claim the resources.
                r.reapAsap = true;
            }
            return;
        }
        if (r.fastReap) {
            reapInstance(idx);
            return;
        }
        // Reap only when the *current* keep-alive window has elapsed
        // since the last activity; otherwise keep checking.
        FunctionState &fs = functionState(r.fn);
        coldstart::KeepAliveDecision decision;
        {
            obs::ProfScope scope(&prof_, obs::Phase::ColdStartPolicy);
            decision = fs.policy->decide(sim_.now());
        }
        sim::Tick keep_alive = std::max<sim::Tick>(
            decision.keepAliveWindow, sim::kTicksPerSec);
        if (sim_.now() - r.inst.lastActive() >= keep_alive)
            reapInstance(idx);
        else
            armExpiry(idx);
    });
}

// ---------------------------------------------------------------------------
// Instance lifecycle
// ---------------------------------------------------------------------------

std::size_t
Platform::usageKeyFor(FunctionState &f,
                      const cluster::InstanceConfig &config)
{
    auto key = std::make_tuple(config.batchSize,
                               config.resources.cpuMillicores,
                               config.resources.gpuSmPercent);
    auto it = f.usageIndex.find(key);
    if (it != f.usageIndex.end())
        return it->second;
    f.usage.push_back(ConfigUsage{config, 0, 0});
    std::size_t idx = f.usage.size() - 1;
    f.usageIndex.emplace(key, idx);
    return idx;
}

std::size_t
Platform::launchInstance(FunctionId fn, const LaunchPlan &plan,
                         bool prewarmed_launch)
{
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);
    bool cold = !prewarmed_launch;
    sim::Tick startup = cold
                            ? runtime_.coldStartTicks(f.model->sizeMb)
                            : runtime_.warmStartTicks();
    if (cold && faults_) {
        // Each aborted startup attempt re-enters the cold-start path and
        // pays the full penalty again; eight consecutive aborts bound the
        // delay (the draw-until-success would otherwise be unbounded).
        int aborted = 0;
        while (aborted < 8 && faults_->startupFails()) {
            startup += runtime_.coldStartTicks(f.model->sizeMb);
            f.metrics.recordStartupFailure();
            total_.recordStartupFailure();
            ++aborted;
        }
    }
    sim::Tick max_wait =
        std::max<sim::Tick>(0, effectiveSlo(f) - plan.execPredicted);

    std::size_t idx = instances_.size();
    instances_.push_back(InstanceRuntime{
        cluster::Instance(nextInstanceId_++, f.spec.name, plan.config,
                          plan.server, now, cold),
        BatchQueue(plan.config.batchSize, max_wait,
                   opts_.overload.queue.depthCap),
        plan.bounds, plan.execPredicted});
    InstanceRuntime &rt = instances_.back();
    rt.targetRate = plan.bounds.up;
    rt.warmExpectedAt = now + startup;
    rt.prewarmed = prewarmed_launch;
    rt.fn = fn;
    rt.generation = f.generation;
    rt.usageKey = usageKeyFor(f, plan.config);
    f.usage[rt.usageKey].launches += 1;

    f.live.push_back(idx);
    f.allocated += plan.config.resources;
    f.metrics.recordLaunch(cold);
    total_.recordLaunch(cold);
    f.metrics.recordAllocation(now, f.allocated);
    f.metrics.recordInstanceCount(now, static_cast<int>(f.live.size()));
    total_.recordInstanceCount(now, liveInstanceCount());
    recordAllocationChange();

    sim_.afterFixed(startup, [this, idx] { onWarm(idx); });
    return idx;
}

void
Platform::reapInstance(std::size_t idx)
{
    sim::Tick now = sim_.now();
    InstanceRuntime &rt = instances_[idx];
    FunctionState &f = functionState(rt.fn);

    // Requests stranded in the queue (should not happen on the idle path,
    // but guard anyway) count as drops.
    for (RequestIndex request : rt.queue.drain())
        dropRequest(f, request, now);
    if (rt.timeoutEvent != sim::kNoEvent) {
        sim_.events().cancel(rt.timeoutEvent);
        rt.timeoutEvent = sim::kNoEvent;
    }
    if (rt.expiryEvent != sim::kNoEvent) {
        sim_.events().cancel(rt.expiryEvent);
        rt.expiryEvent = sim::kNoEvent;
    }

    rt.inst.reap(now);
    cluster_.release(rt.inst.serverId(), rt.inst.config().resources);
    f.allocated -= rt.inst.config().resources;
    std::erase(f.live, idx);

    f.metrics.recordAllocation(now, f.allocated);
    f.metrics.recordInstanceCount(now, static_cast<int>(f.live.size()));
    total_.recordInstanceCount(now, liveInstanceCount());
    recordAllocationChange();

    if (f.live.empty())
        maybePrewarm(rt.fn);
}

void
Platform::killInstance(std::size_t idx)
{
    sim::Tick now = sim_.now();
    InstanceRuntime &rt = instances_[idx];
    FunctionId fn = rt.fn;
    FunctionState &f = functionState(fn);

    // Dead-letter the (non-cancellable) batch-completion event, if any.
    ++rt.liveEpoch;
    std::vector<RequestIndex> stranded = rt.queue.drain();
    std::vector<RequestIndex> inflight = std::move(rt.inFlight);
    rt.inFlight.clear();

    if (rt.timeoutEvent != sim::kNoEvent) {
        sim_.events().cancel(rt.timeoutEvent);
        rt.timeoutEvent = sim::kNoEvent;
    }
    if (rt.expiryEvent != sim::kNoEvent) {
        sim_.events().cancel(rt.expiryEvent);
        rt.expiryEvent = sim::kNoEvent;
    }

    rt.inst.crash(now);
    // A lost in-flight batch is a serving failure of this server; an
    // idle instance dying with the machine is not evidence either way.
    if (health_ && !inflight.empty())
        health_->recordFailure(rt.inst.serverId());
    cluster_.release(rt.inst.serverId(), rt.inst.config().resources);
    f.allocated -= rt.inst.config().resources;
    std::erase(f.live, idx);

    f.metrics.recordAllocation(now, f.allocated);
    f.metrics.recordInstanceCount(now, static_cast<int>(f.live.size()));
    total_.recordInstanceCount(now, liveInstanceCount());
    recordAllocationChange();

    if (!inflight.empty()) {
        f.metrics.recordLostBatch(static_cast<int>(inflight.size()));
        total_.recordLostBatch(static_cast<int>(inflight.size()));
    }
    for (RequestIndex request : inflight)
        failoverRequest(fn, request);
    for (RequestIndex request : stranded)
        failoverRequest(fn, request);

    if (functionState(fn).live.empty())
        maybePrewarm(fn);
}

void
Platform::dropRequest(FunctionState &f, RequestIndex request, sim::Tick now)
{
    dropRequestInternal(f, request, now, true);
}

void
Platform::dropRequestInternal(FunctionState &f, RequestIndex request,
                              sim::Tick now, bool feed_health)
{
    f.metrics.recordDrop(now);
    total_.recordDrop(now);
    RequestRecord &record = requests_[static_cast<std::size_t>(request)];
    if (record.limiterHeld) {
        // A drop of an admitted request is the limiter's congestion
        // signal: free the slot and decrease multiplicatively (subject
        // to the backoff cooldown, so one lost batch is one signal).
        // Drops while cold capacity is warming bypass the decrease just
        // as they bypass the breaker: provisioning, not congestion.
        releaseLimiter(f, record);
        if (feed_health && !coldCapacityPending(f) &&
            f.limiter.limit.onDrop(now)) {
            f.metrics.recordLimiterBackoff();
            total_.recordLimiterBackoff();
        }
    }
    if (feed_health) {
        // A drop of an admitted request is a failure signal; sheds come
        // through with feed_health off so an open breaker's own rejects
        // cannot keep it open forever. Drops while cold capacity is
        // still warming are a provisioning artifact, not evidence the
        // warm servers are failing, so they bypass the breaker (but
        // still count as brownout pressure — engaging during a scale-up
        // storm is exactly brownout's job).
        if (opts_.overload.breaker.enabled && !coldCapacityPending(f)) {
            f.breaker.record(now, true);
            noteBreakerTransitions(record.function, now);
        }
        if (opts_.overload.brownout.enabled) {
            f.brownout.record(now, true);
            noteBrownoutTransition(record.function, now);
        }
    }
    if (monitor_.enabled())
        monitor_.recordDrop(record.function, now);
    emitSpan(obs::SpanKind::Drop, request, record.function, -1, -1, now,
             0);
    if (record.chain != kNoChain) {
        chains_[static_cast<std::size_t>(record.chain)].metrics.recordDrop(
            now);
    }
}

void
Platform::failoverRequest(FunctionId fn, RequestIndex request)
{
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);
    RequestRecord &rec = requests_[static_cast<std::size_t>(request)];
    const faults::RetryPolicy &rp = opts_.retry;
    if (!rp.retriesEnabled() || rec.retries >= rp.maxAttempts - 1) {
        dropRequest(f, request, now);
        return;
    }
    if (opts_.overload.retryBudget.enabled &&
        !f.retryBudget.tryConsume()) {
        // Budget dry: the function is not completing enough work to pay
        // for re-dispatch. Fail fast instead of storming the cluster.
        f.metrics.recordRetryBudgetExhausted();
        total_.recordRetryBudgetExhausted();
        dropRequest(f, request, now);
        return;
    }
    ++rec.retries;
    rec.retried = true;
    f.metrics.recordRetry(now);
    total_.recordRetry(now);
    emitSpan(obs::SpanKind::Retry, request, fn, -1, -1, now, 0);
    // Backoff, then re-enter the ordinary routing path (which may itself
    // trigger a reactive scale-out onto the surviving servers).
    ++f.pendingRetries;
    sim_.afterFixed(rp.backoff(rec.retries), [this, fn, request] {
        --functionState(fn).pendingRetries;
        routeRequest(fn, request);
    });
}

// ---------------------------------------------------------------------------
// Overload control plane
// ---------------------------------------------------------------------------

sim::Tick
Platform::effectiveSlo(const FunctionState &f) const
{
    if (!opts_.overload.brownout.enabled ||
        !f.brownout.relaxing(sim_.now()))
        return f.spec.sloTicks;
    return static_cast<sim::Tick>(static_cast<double>(f.spec.sloTicks) *
                                  f.brownout.sloMultiplier());
}

bool
Platform::coldCapacityPending(const FunctionState &f) const
{
    for (std::size_t idx : f.live) {
        const InstanceRuntime &rt = instances_[idx];
        if (!rt.draining && rt.warmAt == sim::kTickNever)
            return true;
    }
    return false;
}

bool
Platform::maybeReactiveScaleOut(FunctionId fn)
{
    // Reactive scale-out: the scaler tick has not caught up yet.
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);
    if (now < f.reconfigHold ||
        now - f.lastReactive < opts_.reactiveBackoff)
        return false;
    f.lastReactive = now;
    double measured = f.rate.rps(now);
    double residual = std::max(measured - aggregateRUp(f), 1.0);
    auto plans = planScaleOut(f, residual);
    for (const auto &plan : plans)
        launchInstance(fn, plan, false);
    if (!plans.empty())
        refreshTargets(f);
    return true;
}

bool
Platform::admitRequest(FunctionId fn, RequestIndex request)
{
    const overload::OverloadConfig &oc = opts_.overload;
    overload::AdmissionMode mode = oc.admissionMode();
    if (!oc.breaker.enabled && mode == overload::AdmissionMode::None)
        return true;
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);

    if (oc.breaker.enabled) {
        bool allowed = f.breaker.allow(now, request);
        noteBreakerTransitions(fn, now);
        if (!allowed) {
            shedRequest(f, request, now, ShedCause::Breaker);
            return false;
        }
    }

    if (mode == overload::AdmissionMode::Adaptive) {
        // Feedback gate: one in-flight slot per admitted request,
        // against a limit learned purely from observed latencies.
        // Retries and re-routes of an already-admitted request keep
        // their slot (limiterHeld), so the gate is idempotent per
        // request and conservation of the counter is exact.
        RequestRecord &record =
            requests_[static_cast<std::size_t>(request)];
        if (!record.limiterHeld) {
            if (!f.limiter.strategy.tryAcquire(f.limiter.limit.limit())) {
                if (!f.limiter.limit.warmedUp()) {
                    // The estimator has not consumed its warmup quota of
                    // samples yet, so the limit is a prior, not feedback
                    // — rejecting on it would shed the very load the
                    // first fleet is being built for (the same doctrine
                    // as the breaker's drop bypass: cold starts are
                    // provisioning, not congestion). Admit without a
                    // slot — slot-holders keep feeding the estimator,
                    // and once it has evidence the gate enforces.
                    return true;
                }
                shedRequest(f, request, now, ShedCause::Limiter);
                // Like a capacity-driven static shed, a limiter reject
                // is a scale-out signal: demand exceeds what the
                // current fleet serves within SLO.
                maybeReactiveScaleOut(fn);
                return false;
            }
            record.limiterHeld = true;
        }
        return true;
    }

    if (mode == overload::AdmissionMode::Static) {
        // Predicted sojourn of the best-placed instance with room:
        // cold-start remainder + batches queued ahead + its own batch.
        sim::Tick best = sim::kTickNever;
        bool any_room = false;
        // Draining instances still serve queued work (routing falls back
        // to them during make-before-break reconfigs), so they count as
        // capacity here; excluding them sheds a full reconfig wave.
        for (std::size_t idx : f.live) {
            const InstanceRuntime &rt = instances_[idx];
            if (!rt.queue.hasRoom())
                continue;
            any_room = true;
            sim::Tick ready =
                rt.warmAt == sim::kTickNever
                    ? std::max<sim::Tick>(0, rt.warmExpectedAt - now)
                    : 0;
            auto per_batch = static_cast<sim::Tick>(
                std::max(1, rt.queue.batchSize()));
            sim::Tick batches_ahead =
                static_cast<sim::Tick>(rt.queue.size()) / per_batch +
                (rt.inst.state() == cluster::InstanceState::Busy ? 1 : 0);
            sim::Tick predicted =
                ready + (batches_ahead + 1) * rt.execPredicted;
            best = std::min(best, predicted);
        }
        if (any_room) {
            double slack = static_cast<double>(effectiveSlo(f)) *
                           oc.admission.slackFactor;
            if (static_cast<double>(best) > slack) {
                shedRequest(f, request, now, ShedCause::Admission);
                // A capacity-driven shed is also a scale-out signal:
                // without this, shedding starves the reactive path in
                // routeRequest and the fleet only grows on scaler
                // ticks, so a cold burst stays unservable for longer.
                maybeReactiveScaleOut(fn);
                return false;
            }
        }
        // No instance with room: fall through to the routing path, which
        // can still scale out reactively or evict.
    }
    return true;
}

void
Platform::releaseLimiter(FunctionState &f, RequestRecord &record)
{
    sim::simAssert(record.limiterHeld, "limiter slot double-release");
    record.limiterHeld = false;
    f.limiter.strategy.release();
}

void
Platform::shedRequest(FunctionState &f, RequestIndex request, sim::Tick now,
                      ShedCause cause)
{
    const RequestRecord &record =
        requests_[static_cast<std::size_t>(request)];
    switch (cause) {
      case ShedCause::Breaker:
        f.metrics.recordBreakerShed(now);
        total_.recordBreakerShed(now);
        break;
      case ShedCause::Limiter:
        f.metrics.recordLimiterShed(now);
        total_.recordLimiterShed(now);
        break;
      case ShedCause::Admission:
        f.metrics.recordShed(now);
        total_.recordShed(now);
        break;
    }
    if (opts_.overload.brownout.enabled) {
        // Shedding is itself overload pressure: it keeps brownout engaged
        // while the admission gate is working hard.
        f.brownout.record(now, true);
        noteBrownoutTransition(record.function, now);
    }
    emitSpan(cause == ShedCause::Limiter ? obs::SpanKind::LimiterShed
                                         : obs::SpanKind::Shed,
             request, record.function, -1, -1, now, 0);
    dropRequestInternal(f, request, now, false);
}

bool
Platform::tryEvictInto(FunctionId fn, RequestIndex request)
{
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);
    constexpr auto kNone = std::numeric_limits<std::size_t>::max();
    std::size_t victim_idx = kNone;
    sim::Tick oldest = sim::kTickNever;
    for (std::size_t idx : f.live) {
        const InstanceRuntime &rt = instances_[idx];
        if (rt.draining || rt.queue.empty())
            continue;
        // Only a doomed head is evictable: one past its submission
        // deadline (arrival + max_wait) will violate the SLO even if
        // submitted right now, so trading it for a fresh request can
        // only raise goodput. Evicting a viable head would be churn —
        // under sustained saturation every arrival would bump a request
        // that was about to be served.
        if (rt.queue.headDeadline() > now)
            continue;
        if (rt.queue.headArrival() < oldest) {
            oldest = rt.queue.headArrival();
            victim_idx = idx;
        }
    }
    if (victim_idx == kNone)
        return false;

    InstanceRuntime &rt = instances_[victim_idx];
    RequestIndex victim = rt.queue.evictOldest();
    f.metrics.recordQueueEviction();
    total_.recordQueueEviction();
    dropRequest(f, victim, now);
    bool pushed = rt.queue.push(request, now);
    sim::simAssert(pushed, "push failed after eviction");
    rt.servedInEpoch += 1.0;
    // The pending timeout aimed at the evicted head; re-aim at the new
    // one (also covers the freshly pushed request becoming the head).
    armTimeout(victim_idx);
    tryStartBatch(victim_idx);
    return true;
}

void
Platform::emitSpan(obs::SpanKind kind, RequestIndex request, FunctionId fn,
                   std::int32_t server, std::int64_t instance,
                   sim::Tick start, sim::Tick duration)
{
    if (tracer_.wants(request))
        tracer_.record(kind, request, fn, server, instance, start,
                       duration);
    if (flight_.enabled())
        flight_.record(kind, request, fn, server, instance, start,
                       duration);
}

void
Platform::emitFunctionEvent(obs::SpanKind kind, FunctionId fn, sim::Tick at)
{
    if (tracer_.enabled())
        tracer_.record(kind, -1, fn, -1, -1, at, 0);
    if (flight_.enabled())
        flight_.record(kind, -1, fn, -1, -1, at, 0);
}

void
Platform::emitClusterEvent(obs::SpanKind kind, std::int32_t server,
                           sim::Tick at)
{
    if (tracer_.enabled())
        tracer_.clusterEvent(kind, server, at);
    if (flight_.enabled())
        flight_.clusterEvent(kind, server, at);
}

void
Platform::noteBreakerTransitions(FunctionId fn, sim::Tick now)
{
    FunctionState &f = functionState(fn);
    const auto &log = f.breaker.transitions();
    for (std::size_t i = f.breakerTransitionsSeen; i < log.size(); ++i) {
        const overload::BreakerTransition &t = log[i];
        if (t.to == overload::BreakerState::Open) {
            f.metrics.recordBreakerOpen();
            total_.recordBreakerOpen();
        } else if (t.to == overload::BreakerState::Closed) {
            f.metrics.recordBreakerClose();
            total_.recordBreakerClose();
        }
        obs::SpanKind kind =
            t.to == overload::BreakerState::Open
                ? obs::SpanKind::BreakerOpen
                : t.to == overload::BreakerState::HalfOpen
                      ? obs::SpanKind::BreakerHalfOpen
                      : obs::SpanKind::BreakerClose;
        emitFunctionEvent(kind, fn, t.at);
        // An opening breaker is an anomaly: freeze the flight dump
        // (after the transition span so the dump contains it).
        if (t.to == overload::BreakerState::Open)
            flight_.trigger(obs::FlightTrigger::BreakerOpen, t.at);
    }
    f.breakerTransitionsSeen = log.size();
    (void)now;
}

void
Platform::noteBrownoutTransition(FunctionId fn, sim::Tick now)
{
    FunctionState &f = functionState(fn);
    bool active = f.brownout.active();
    if (active == f.lastBrownoutActive)
        return;
    f.lastBrownoutActive = active;
    if (active) {
        f.metrics.recordBrownoutEntry();
        total_.recordBrownoutEntry();
    } else {
        f.metrics.recordBrownoutExit();
        total_.recordBrownoutExit();
    }
    emitFunctionEvent(active ? obs::SpanKind::BrownoutEnter
                             : obs::SpanKind::BrownoutExit,
                      fn, now);
    // Re-aim live queue deadlines at the new effective SLO so the
    // batching slack relaxes (and later restores) without waiting for
    // fleet turnover.
    for (std::size_t idx : f.live) {
        InstanceRuntime &rt = instances_[idx];
        rt.queue.setMaxWait(std::max<sim::Tick>(
            0, effectiveSlo(f) - rt.execPredicted));
        if (!rt.queue.empty())
            armTimeout(idx);
    }
}

OverloadSnapshot
Platform::overloadSnapshot(FunctionId fn) const
{
    const FunctionState &f =
        const_cast<Platform *>(this)->functionState(fn);
    OverloadSnapshot snap;
    snap.breakerState = f.breaker.state();
    snap.brownoutActive = f.brownout.active();
    snap.retryTokens = f.retryBudget.tokens();
    snap.sheds = f.metrics.sheds();
    snap.breakerSheds = f.metrics.breakerSheds();
    snap.queueEvictions = f.metrics.queueEvictions();
    snap.retryBudgetExhausted = f.metrics.retryBudgetExhausted();
    snap.limit = f.limiter.limit.limit();
    snap.limiterInFlight = f.limiter.strategy.inFlight();
    snap.limiterMinRtt = f.limiter.limit.minRtt();
    snap.limiterGradient = f.limiter.limit.gradient();
    snap.limiterSheds = f.metrics.limiterSheds();
    snap.limiterBackoffs = f.metrics.limiterBackoffs();
    return snap;
}

bool
Platform::auditConservation(std::string *diagnostic) const
{
    bool ok = true;
    for (std::size_t fi = 0; fi < functions_.size(); ++fi) {
        const FunctionState &f = functions_[fi];
        std::int64_t queued = 0;
        std::int64_t executing = 0;
        for (std::size_t idx : f.live) {
            const InstanceRuntime &rt = instances_[idx];
            queued += static_cast<std::int64_t>(rt.queue.size());
            executing += static_cast<std::int64_t>(rt.inFlight.size());
        }
        std::int64_t in_flight =
            queued + executing + f.pendingRetries + f.pendingIngress;
        std::int64_t arrivals = f.metrics.arrivals();
        std::int64_t settled =
            f.metrics.completions() + f.metrics.drops();
        if (arrivals == settled + in_flight)
            continue;
        ok = false;
        if (diagnostic) {
            *diagnostic +=
                "function " + std::to_string(fi) + " (" + f.spec.name +
                "): arrivals=" + std::to_string(arrivals) +
                " completions=" + std::to_string(f.metrics.completions()) +
                " drops=" + std::to_string(f.metrics.drops()) +
                " in-flight=" + std::to_string(in_flight) + " (queued=" +
                std::to_string(queued) + ", executing=" +
                std::to_string(executing) + ", retry-wait=" +
                std::to_string(f.pendingRetries) + ", ingress-wait=" +
                std::to_string(f.pendingIngress) + ") leak=" +
                std::to_string(arrivals - settled - in_flight) + "\n";
        }
    }
    return ok;
}

void
Platform::injectServerCrash(cluster::ServerId id)
{
    if (cluster_.server(id).isRetired())
        return; // migrated away: the new owning cell fields the fault
    if (cluster_.server(id).isDown())
        return; // double crash: already down
    sim::Tick now = sim_.now();
    cluster_.setServerDown(id);
    serverDownSince_[static_cast<std::size_t>(id)] = now;
    total_.recordServerCrash(now);
    emitClusterEvent(obs::SpanKind::ServerCrash, id, now);
    // A crash is an anomaly: freeze the flight dump (after the crash
    // span so the dump contains it).
    flight_.trigger(obs::FlightTrigger::ServerCrash, now);

    std::vector<std::size_t> victims;
    for (std::size_t idx = 0; idx < instances_.size(); ++idx) {
        const InstanceRuntime &rt = instances_[idx];
        if (rt.inst.serverId() == id &&
            rt.inst.state() != cluster::InstanceState::Reaped)
            victims.push_back(idx);
    }
    for (std::size_t idx : victims)
        killInstance(idx);
}

void
Platform::injectServerRecovery(cluster::ServerId id)
{
    if (cluster_.server(id).isRetired())
        return; // migrated away
    if (!cluster_.server(id).isDown())
        return; // never crashed, or recovered already
    sim::Tick now = sim_.now();
    cluster_.setServerUp(id);
    emitClusterEvent(obs::SpanKind::ServerRecovery, id, now);
    sim::Tick &since = serverDownSince_[static_cast<std::size_t>(id)];
    if (since != sim::kTickNever) {
        serverDownAccum_ += now - since;
        total_.recordServerRecovery(now - since);
        since = sim::kTickNever;
    }
}

double
Platform::clusterAvailability() const
{
    sim::Tick until = std::max(endTime_, sim_.now());
    std::size_t live = cluster_.liveServers();
    if (until <= 0 || live == 0)
        return 1.0;
    sim::Tick down = serverDownAccum_;
    for (sim::Tick since : serverDownSince_) {
        if (since != sim::kTickNever && since < until)
            down += until - since;
    }
    double total =
        static_cast<double>(until) * static_cast<double>(live);
    return 1.0 - static_cast<double>(down) / total;
}

void
Platform::injectDomainOutage(cluster::DomainId zone)
{
    noteDomainOutage(zone, sim_.now());
    // injectServerCrash is idempotent and skips retired servers itself.
    for (std::size_t s = 0; s < cluster_.size(); ++s) {
        auto id = static_cast<cluster::ServerId>(s);
        if (cluster_.serverDomain(id).zone == zone)
            injectServerCrash(id);
    }
}

void
Platform::injectDomainRepair(cluster::DomainId zone)
{
    noteDomainRepair(zone, sim_.now());
    for (std::size_t s = 0; s < cluster_.size(); ++s) {
        auto id = static_cast<cluster::ServerId>(s);
        if (cluster_.serverDomain(id).zone == zone)
            injectServerRecovery(id);
    }
}

void
Platform::noteDomainOutage(cluster::DomainId zone, sim::Tick at)
{
    total_.recordDomainOutage();
    // Cluster instants carry a server id; a domain instant carries the
    // zone id there instead (the kind disambiguates in the trace).
    emitClusterEvent(obs::SpanKind::DomainOutage, zone, at);
    // After the span so the frozen dump contains the outage marker.
    flight_.trigger(obs::FlightTrigger::DomainOutage, at);
}

void
Platform::noteDomainRepair(cluster::DomainId zone, sim::Tick at)
{
    emitClusterEvent(obs::SpanKind::DomainRepair, zone, at);
}

void
Platform::assignServerDomain(cluster::ServerId local_id,
                             cluster::ServerId global_id)
{
    if (!opts_.topology.enabled())
        return;
    cluster_.setServerDomain(local_id, opts_.topology.domainOf(global_id));
}

double
Platform::grayMultiplier(cluster::ServerId id) const
{
    auto i = static_cast<std::size_t>(id);
    return i < grayMult_.size() ? grayMult_[i] : 1.0;
}

void
Platform::setGrayMultiplier(cluster::ServerId id, double mult)
{
    auto i = static_cast<std::size_t>(id);
    if (grayMult_.size() <= i)
        grayMult_.resize(i + 1, 1.0);
    grayMult_[i] = mult;
}

void
Platform::healthTick()
{
    sim::Tick now = sim_.now();
    auto eligible = [this](cluster::ServerId id) {
        const cluster::Server &s = cluster_.server(id);
        return !s.isDown() && !s.isRetired();
    };
    health::OutlierEjector::Actions acts =
        health_->evaluate(now, eligible, cluster_.liveServers());
    for (cluster::ServerId id : acts.readmit) {
        cluster_.liftQuarantine(id);
        total_.recordHealthReadmission();
        emitClusterEvent(obs::SpanKind::HealthReadmission, id, now);
    }
    for (cluster::ServerId id : acts.eject) {
        cluster_.quarantineServer(id);
        // Drain-first, like rebalancing donors: what the server hosts
        // finishes or re-routes; only new placements are refused.
        drainServer(id);
        total_.recordHealthEjection();
        if (grayMultiplier(id) > 1.0) {
            // Ground-truth check for the detection-quality counter: the
            // ejector itself never sees this.
            total_.recordGrayDetection();
        }
        emitClusterEvent(obs::SpanKind::HealthEjection, id, now);
    }
}

bool
Platform::serverIdle(cluster::ServerId id) const
{
    const cluster::Server &s = cluster_.server(id);
    return !s.isRetired() && !s.isDown() && !s.isQuarantined() &&
           s.allocationCount() == 0;
}

cluster::ServerId
Platform::adoptServer(const cluster::Resources &capacity)
{
    cluster::ServerId id = cluster_.addServer(capacity);
    serverDownSince_.push_back(sim::kTickNever);
    if (!grayMult_.empty())
        grayMult_.push_back(1.0); // caller re-derives from the global id
    if (health_)
        health_->ensureServers(cluster_.size());
    if (faults_)
        faults_->addServer(id);
    total_.recordCellMigration();
    emitClusterEvent(obs::SpanKind::CellMigration, id, sim_.now());
    return id;
}

cluster::Resources
Platform::releaseServer(cluster::ServerId id)
{
    sim::simAssert(serverIdle(id), "released server must be idle: ", id);
    return cluster_.removeServer(id);
}

void
Platform::drainServer(cluster::ServerId id)
{
    for (std::size_t idx = 0; idx < instances_.size(); ++idx) {
        InstanceRuntime &rt = instances_[idx];
        if (rt.inst.serverId() != id ||
            rt.inst.state() == cluster::InstanceState::Reaped)
            continue;
        rt.draining = true;
        rt.fastReap = true;
        armExpiry(idx);
    }
}

void
Platform::maybePrewarm(FunctionId fn)
{
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);
    if (f.prewarmEvent != sim::kNoEvent || f.lastInvocation < 0)
        return;
    coldstart::KeepAliveDecision decision;
    {
        obs::ProfScope scope(&prof_, obs::Phase::ColdStartPolicy);
        decision = f.policy->decide(now);
    }
    if (decision.prewarmWindow <= 0)
        return;
    sim::Tick when = f.lastInvocation + decision.prewarmWindow;
    if (when <= now)
        return;
    f.prewarmEvent = sim_.at(when, [this, fn] {
        FunctionState &fs = functionState(fn);
        fs.prewarmEvent = sim::kNoEvent;
        if (!fs.live.empty())
            return;
        // Smallest feasible single-request configuration, best-fit placed.
        auto candidates = scheduler_.availableConfigs(
            *fs.model, 1, 1.0, fs.spec.sloTicks);
        if (candidates.empty())
            return;
        const CandidateConfig *best = nullptr;
        double best_cost = std::numeric_limits<double>::max();
        for (const auto &cand : candidates) {
            double cost = cand.config.resources.weighted(
                opts_.scheduler.beta);
            if (cost < best_cost) {
                best_cost = cost;
                best = &cand;
            }
        }
        cluster::ServerId server =
            cluster_.firstFit(best->config.resources);
        if (server == cluster::kNoServer)
            return;
        bool ok = cluster_.allocate(server, best->config.resources);
        sim::simAssert(ok, "prewarm allocation failed after fit check");
        LaunchPlan plan{best->config, server, best->execPredicted,
                        best->bounds};
        launchInstance(fn, plan, true);
    });
}

// ---------------------------------------------------------------------------
// Auto-scaling engine
// ---------------------------------------------------------------------------

double
Platform::aggregateRUp(const FunctionState &f) const
{
    double total = 0.0;
    for (std::size_t idx : f.live) {
        const InstanceRuntime &rt = instances_[idx];
        if (!rt.draining)
            total += rt.bounds.up;
    }
    return total;
}

void
Platform::refreshTargets(FunctionState &f)
{
    std::vector<InstanceRateInfo> infos;
    std::vector<std::size_t> mapping;
    for (std::size_t idx : f.live) {
        InstanceRuntime &rt = instances_[idx];
        rt.servedInEpoch = 0.0;
        if (rt.draining) {
            rt.targetRate = 0.0;
            continue;
        }
        infos.push_back(InstanceRateInfo{rt.bounds.up, rt.bounds.low});
        mapping.push_back(idx);
    }
    if (infos.empty())
        return;
    std::vector<double> rates =
        targetRates(infos, f.rate.rps(sim_.now()));
    for (std::size_t i = 0; i < mapping.size(); ++i)
        instances_[mapping[i]].targetRate = rates[i];
}

void
Platform::scalerTick()
{
    // Whole-tick scope: nested Schedule/CopSolve scopes report their own
    // (inclusive) share separately.
    obs::ProfScope scaler_scope(&prof_, obs::Phase::Autoscaler);
    sim::Tick now = sim_.now();
    // Pump the SLO monitor so windows close (and alerts fire) on idle
    // functions too, not only on completion traffic.
    if (monitor_.enabled())
        monitor_.advanceTo(now);
    // Rotate the function order each tick so no single function gets a
    // standing first claim on freed resources.
    std::size_t offset =
        functions_.empty()
            ? 0
            : static_cast<std::size_t>(now / opts_.scalerPeriod) %
                  functions_.size();
    for (std::size_t i = 0; i < functions_.size(); ++i) {
        std::size_t fi = (i + offset) % functions_.size();
        FunctionState &f = functions_[fi];
        double measured = f.rate.rps(now);

        bool browned_out = false;
        if (opts_.overload.brownout.enabled) {
            // The completion path only re-evaluates brownout on traffic;
            // this periodic update lets a function whose load vanished
            // recover once the hold expires.
            f.brownout.update(now);
            noteBrownoutTransition(static_cast<FunctionId>(fi), now);
            browned_out = f.brownout.active();
        }

        std::vector<InstanceRateInfo> infos;
        std::vector<double> costs;
        std::vector<std::size_t> mapping;
        double r_max = 0.0;
        double r_min = 0.0;
        for (std::size_t idx : f.live) {
            const InstanceRuntime &rt = instances_[idx];
            if (rt.draining)
                continue;
            infos.push_back(
                InstanceRateInfo{rt.bounds.up, rt.bounds.low});
            costs.push_back(rt.inst.config().resources.weighted(
                opts_.scheduler.beta));
            mapping.push_back(idx);
            r_max += rt.bounds.up;
            r_min += rt.bounds.low;
        }

        if (now < f.reconfigHold) {
            // Mid-reconfiguration: advance the rolling replacement and
            // suppress ordinary scaling decisions.
            continueReconfigure(static_cast<FunctionId>(fi), measured);
            refreshTargets(f);
            continue;
        }

        ScalingAssessment assess =
            assessScaling(measured, r_max, r_min, opts_.alpha);
        using Action = ScalingAssessment::Action;
        if (assess.action == Action::ScaleOut &&
            assess.residualRps > 0.01) {
            // Cap the per-tick claim: growing in bounded slices keeps one
            // under-provisioned function from grabbing the whole cluster
            // in a single tick and starving its peers. A browned-out
            // function claims its full residual — capacity is the cure.
            double claim =
                scaleOutClaim(measured, assess.residualRps, browned_out);
            auto plans = planScaleOut(f, claim);
            for (const auto &plan : plans)
                launchInstance(static_cast<FunctionId>(fi), plan, false);
            if (plans.empty() && reconfigures()) {
                // Nothing fits next to the current fleet: replacing it
                // with better configurations may be the only way to grow.
                maybeReconfigure(static_cast<FunctionId>(fi), measured);
            }
        } else if (assess.action == Action::ScaleIn && activeScaleIn()) {
            auto drains =
                chooseDrains(infos, costs, measured, opts_.alpha);
            for (std::size_t local : drains) {
                InstanceRuntime &rt = instances_[mapping[local]];
                // The keep-alive policy owns the pre-warmed pool: an
                // unused pre-warmed instance expires through its windows,
                // not through load-driven scale-in.
                if (rt.prewarmed && rt.inst.requestsServed() == 0)
                    continue;
                rt.draining = true;
                if (rt.inst.state() == cluster::InstanceState::Idle &&
                    rt.queue.empty()) {
                    armExpiry(mapping[local]);
                }
            }
        } else if (assess.action == Action::Hold && reconfigures()) {
            maybeReconfigure(static_cast<FunctionId>(fi), measured);
        }
        refreshTargets(f);
    }
}

void
Platform::maybeReconfigure(FunctionId fn, double measured)
{
    sim::Tick now = sim_.now();
    FunctionState &f = functionState(fn);
    if (measured <= 1.0 || now - f.lastReconfig < opts_.reconfigPeriod)
        return;
    f.lastReconfig = now;

    // Current fleet cost per unit of absorbable rate.
    double cur_cost = 0.0;
    double cur_up = 0.0;
    bool have_old = false;
    for (std::size_t idx : f.live) {
        const InstanceRuntime &rt = instances_[idx];
        if (rt.draining)
            continue;
        cur_cost += rt.inst.config().resources.weighted(
            opts_.scheduler.beta);
        cur_up += rt.bounds.up;
        have_old = true;
    }
    if (cur_up <= 0.0 || !have_old)
        return;

    // What would Algorithm 1 provision for the measured rate on an empty
    // cluster? (The old fleet may occupy most of the machines, so the
    // ideal is evaluated on a scratch clone.)
    cluster::Cluster scratch(cluster_.capacities());
    auto ideal = scheduler_.schedule(*f.model, measured, f.spec.sloTicks,
                                     f.spec.maxBatch, scratch);
    double ideal_cost = 0.0;
    double ideal_up = 0.0;
    for (const auto &plan : ideal) {
        ideal_cost += plan.config.resources.weighted(opts_.scheduler.beta);
        ideal_up += plan.bounds.up;
    }
    // Compare cost per *usable* unit of rate: capacity beyond the
    // measured rate is over-provisioning on either side.
    double ideal_usable = std::min(ideal_up, measured);
    double cur_usable = std::min(cur_up, measured);
    bool worthwhile = ideal_up >= measured * 0.95 && ideal_usable > 0.0 &&
                      ideal_cost / ideal_usable <
                          (cur_cost / cur_usable) *
                              (1.0 - opts_.reconfigGain);
    if (!worthwhile)
        return;

    // Enter the rolling replacement: bump the fleet generation (the
    // survivors become "old"), suppress ordinary scaling until done, and
    // advance the first slice immediately.
    ++f.generation;
    f.reconfigHold = now + 20 * sim::kTicksPerSec;
    continueReconfigure(fn, measured);
}

void
Platform::continueReconfigure(FunctionId fn, double measured)
{
    FunctionState &f = functionState(fn);

    // Capacity already provided by the new generation.
    double new_up = 0.0;
    std::vector<std::size_t> old_instances;
    for (std::size_t idx : f.live) {
        const InstanceRuntime &rt = instances_[idx];
        if (rt.generation == f.generation && !rt.draining) {
            new_up += rt.bounds.up;
        } else if (!rt.draining) {
            old_instances.push_back(idx);
        }
    }

    double need = measured - new_up;
    if (need <= 1.0 || old_instances.empty()) {
        // Replacement complete: retire whatever old capacity remains.
        for (std::size_t idx : old_instances) {
            InstanceRuntime &rt = instances_[idx];
            rt.draining = true;
            rt.fastReap = true;
            armExpiry(idx);
        }
        f.reconfigHold = 0;
        return;
    }

    // Launch the next slice into whatever room exists; new instances
    // carry the current generation.
    SpreadContext spread = spreadContextFor(f);
    auto plans = scheduler_.schedule(*f.model, need, f.spec.sloTicks,
                                     f.spec.maxBatch, cluster_,
                                     spreadArg(spread));
    double planned_up = 0.0;
    for (const auto &plan : plans) {
        planned_up += plan.bounds.up;
        launchInstance(fn, plan, false);
    }

    // Retire old capacity matching the slice (least efficient first), or
    // a quarter of the old fleet when nothing fit, to force headroom.
    double old_up = 0.0;
    for (std::size_t idx : old_instances)
        old_up += instances_[idx].bounds.up;
    double retire_up =
        plans.empty() ? 0.25 * old_up : std::min(planned_up, old_up);

    std::sort(old_instances.begin(), old_instances.end(),
              [&](std::size_t a, std::size_t b) {
                  const auto &ra = instances_[a];
                  const auto &rb = instances_[b];
                  double ea = ra.bounds.up /
                              ra.inst.config().resources.weighted(
                                  opts_.scheduler.beta);
                  double eb = rb.bounds.up /
                              rb.inst.config().resources.weighted(
                                  opts_.scheduler.beta);
                  return ea < eb;
              });
    double retired = 0.0;
    for (std::size_t idx : old_instances) {
        if (retired >= retire_up)
            break;
        InstanceRuntime &rt = instances_[idx];
        rt.draining = true;
        rt.fastReap = true;
        retired += rt.bounds.up;
        armExpiry(idx);
    }
}

std::vector<LaunchPlan>
Platform::planScaleOut(FunctionState &f, double residual_rps)
{
    // Always plan against the nominal SLO, even under brownout: configs
    // picked for the degraded envelope would keep violating the nominal
    // SLO long after brownout exits (instances linger until the next
    // reconfig). Brownout instead relaxes queue max-wait, which the
    // exit path re-aims instantly.
    SpreadContext spread = spreadContextFor(f);
    return scheduler_.schedule(*f.model, residual_rps, f.spec.sloTicks,
                               f.spec.maxBatch, cluster_,
                               spreadArg(spread));
}

SpreadContext
Platform::spreadContextFor(const FunctionState &f) const
{
    SpreadContext ctx;
    ctx.weight = opts_.scheduler.spreadWeight;
    if (ctx.weight <= 0.0)
        return ctx;
    for (std::size_t idx : f.live) {
        const InstanceRuntime &rt = instances_[idx];
        if (rt.draining)
            continue;
        ctx.add(cluster_.serverDomain(rt.inst.serverId()));
    }
    return ctx;
}

SpreadContext *
Platform::spreadArg(SpreadContext &ctx) const
{
    return ctx.weight > 0.0 ? &ctx : nullptr;
}

void
Platform::recordAllocationChange()
{
    sim::Tick now = sim_.now();
    total_.recordAllocation(now, cluster_.totalAllocated());
    fragRatio_.update(now, cluster_.fragmentRatio(opts_.scheduler.beta));
}

} // namespace infless::core
