/**
 * @file
 * The serverless inference platform (Fig. 4).
 *
 * Platform ties every subsystem together: functions deploy with an SLO,
 * request traces inject arrival events, the batch-aware dispatcher routes
 * requests into per-instance queues, the auto-scaling engine launches and
 * drains instances via the greedy scheduler, and the keep-alive policy
 * governs pre-warming and reaping.
 *
 * The baselines (OpenFaaS+, BATCH) subclass Platform and override the
 * protected policy hooks; the simulation engine, batching machinery and
 * accounting are shared, mirroring how the paper re-hosts BATCH on
 * OpenFaaS for a fair comparison.
 */

#ifndef INFLESS_CORE_PLATFORM_HH
#define INFLESS_CORE_PLATFORM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/container_runtime.hh"
#include "cluster/instance.hh"
#include "coldstart/lsth.hh"
#include "coldstart/policy.hh"
#include "core/batch_queue.hh"
#include "core/dispatcher.hh"
#include "core/scheduler.hh"
#include "core/types.hh"
#include "faults/fault_injector.hh"
#include "faults/retry_policy.hh"
#include "health/outlier_ejector.hh"
#include "metrics/collector.hh"
#include "models/exec_model.hh"
#include "models/latency_cache.hh"
#include "models/model_zoo.hh"
#include "obs/options.hh"
#include "obs/prof_scope.hh"
#include "obs/trace_recorder.hh"
#include "overload/overload.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"
#include "sim/simulation.hh"
#include "workload/trace.hh"

namespace infless::core {

/** Everything tunable about a platform run. */
struct PlatformOptions
{
    /** Dispatcher blend constant (§3.2; the paper uses 0.8). */
    double alpha = 0.8;
    /** Scheduler configuration (grid, beta, ablation flags). */
    SchedulerConfig scheduler;
    /** COP predictor configuration (safety offset; OP ablations). */
    profiler::CopOptions cop;
    /** Execution-surface parameters. */
    models::ExecParams exec;
    /** Cold-start cost parameters. */
    cluster::ColdStartParams coldStart;
    /** Per-function keep-alive policy factory (default: LSTH). */
    coldstart::PolicyFactory keepAlive;
    /** Auto-scaling engine period. */
    sim::Tick scalerPeriod = sim::kTicksPerSec;
    /** Arrival-rate estimation window. */
    sim::Tick rateWindow = 2 * sim::kTicksPerSec;
    /** Minimum spacing between fleet reconfiguration attempts. */
    sim::Tick reconfigPeriod = 5 * sim::kTicksPerSec;
    /**
     * Minimum spacing between reactive (arrival-triggered) scale-outs of
     * one function. Bounds the instance storm while a cold fleet warms
     * up; requests that cannot be routed meanwhile are dropped, as a
     * saturated gateway would.
     */
    sim::Tick reactiveBackoff = 250 * sim::kTicksPerMs;
    /**
     * Relative cost advantage (weighted resources per unit of r_up) a
     * fresh Algorithm 1 plan must show before the running fleet is
     * replaced. Guards against oscillation.
     */
    double reconfigGain = 0.10;
    /** Root random seed. */
    std::uint64_t seed = 1;
    /**
     * Injected failure surface (disabled by default: all rates zero). The
     * fault RNG stream derives from `seed` independently of the workload
     * streams, so enabling faults never shifts arrival randomness.
     */
    faults::FaultProfile faults;
    /** Failover discipline for requests lost to crashes. */
    faults::RetryPolicy retry;
    /**
     * Observability: request tracing and controller profiling (both off
     * by default). Tracing never perturbs the simulation — it schedules
     * no events and draws no randomness — and profiling measures wall
     * clock outside simulated time, so enabling either leaves every
     * simulation output bit-identical.
     */
    obs::ObsOptions obs;
    /**
     * Overload control plane: deadline-aware admission, bounded queues,
     * circuit breakers, retry budgets and brownout (all off by default;
     * the disabled config is bit-identical to not having the subsystem).
     */
    overload::OverloadConfig overload;
    /**
     * Failure-domain topology (zone/rack per server; disabled by
     * default). Assignment is a pure function of the GLOBAL server id,
     * so a server keeps its domain across cell migrations. Enabling the
     * topology alone changes no placement — only spreadWeight > 0 or
     * domain-outage faults consume it.
     */
    cluster::TopologyConfig topology;
    /**
     * Per-server rolling health scoring + outlier ejection (off by
     * default; the disabled config schedules nothing and is
     * bit-identical to not having the subsystem).
     */
    health::HealthConfig health;
};

/** Launch/served tallies of one instance configuration (Fig. 13). */
struct ConfigUsage
{
    cluster::InstanceConfig config;
    std::int64_t launches = 0;
    std::int64_t requestsServed = 0;
};

/** Point-in-time view of one live instance (observability API). */
struct InstanceSnapshot
{
    cluster::InstanceId id = cluster::kNoInstance;
    FunctionId function = kNoFunction;
    cluster::InstanceConfig config;
    cluster::ServerId server = cluster::kNoServer;
    cluster::InstanceState state = cluster::InstanceState::ColdStarting;
    bool draining = false;
    /** Dispatcher target rate and Eq. 1 window. */
    double targetRate = 0.0;
    double rUp = 0.0;
    double rLow = 0.0;
    /** Requests currently waiting in the batch queue. */
    std::size_t queueDepth = 0;
};

/** Point-in-time view of a function's overload defenses. */
struct OverloadSnapshot
{
    overload::BreakerState breakerState = overload::BreakerState::Closed;
    bool brownoutActive = false;
    double retryTokens = 0.0;
    std::int64_t sheds = 0;
    std::int64_t breakerSheds = 0;
    std::int64_t queueEvictions = 0;
    std::int64_t retryBudgetExhausted = 0;
    // Adaptive limiter state series (AdmissionMode::Adaptive) ----------
    /** Current concurrency limit estimate. */
    double limit = 0.0;
    /** Requests currently holding limiter slots. */
    std::int64_t limiterInFlight = 0;
    /** minRTT baseline (ticks) and last clamped gradient. */
    sim::Tick limiterMinRtt = 0;
    double limiterGradient = 1.0;
    std::int64_t limiterSheds = 0;
    std::int64_t limiterBackoffs = 0;
};

/**
 * The INFless platform (and base for the baseline platforms).
 */
class Platform
{
  public:
    /**
     * @param num_servers Cluster size (paper: 8 local, 2,000 simulated);
     *        each machine mirrors the Table 2 testbed node.
     * @param opts Run configuration.
     */
    explicit Platform(std::size_t num_servers, PlatformOptions opts = {});

    /**
     * Run on an explicit (possibly heterogeneous) machine fleet.
     */
    explicit Platform(cluster::Cluster machines, PlatformOptions opts = {});
    virtual ~Platform();

    Platform(const Platform &) = delete;
    Platform &operator=(const Platform &) = delete;

    /** System name for reports. */
    virtual std::string name() const { return "INFless"; }

    /** Deploy a function; returns its id. */
    FunctionId deploy(const FunctionSpec &spec);

    /**
     * Deploy a function chain (paper 7): each stage becomes a function
     * whose latency budget is a split of the end-to-end SLO; completing
     * a stage forwards the request to the next one.
     */
    ChainId deployChain(const ChainSpec &spec);

    /** Inject a pre-materialized arrival trace for a function. */
    void injectTrace(FunctionId fn, workload::ArrivalTrace trace);

    /** Materialize and inject a rate series (Poisson arrivals). */
    void injectRateSeries(FunctionId fn,
                          const workload::RateSeries &series);

    /** Inject arrivals at the head stage of a chain. */
    void injectChainTrace(ChainId chain, workload::ArrivalTrace trace);

    /** Materialize and inject a rate series at a chain's head stage. */
    void injectChainRateSeries(ChainId chain,
                               const workload::RateSeries &series);

    /** Run the simulation up to an absolute tick. */
    void run(sim::Tick until);

    // Introspection --------------------------------------------------------

    sim::Simulation &simulation() { return sim_; }
    const sim::Simulation &simulation() const { return sim_; }
    const cluster::Cluster &cluster() const { return cluster_; }
    const models::ModelZoo &zoo() const { return zoo_; }
    const PlatformOptions &options() const { return opts_; }

    /** Aggregate metrics over all functions. */
    const metrics::RunMetrics &totalMetrics() const { return total_; }

    /** The memoized ground-truth latency surface (hit/miss stats). */
    const models::LatencyCache &execCache() const { return execCache_; }

    /** Metrics of a single function. */
    const metrics::RunMetrics &functionMetrics(FunctionId fn) const;

    /** Time the run ended (argument of the last run()). */
    sim::Tick endTime() const { return endTime_; }

    /** Time-weighted mean of the cluster fragment ratio (Fig. 17b). */
    double meanFragmentRatio() const;

    /** Configuration usage tallies of a function (Fig. 13). */
    std::vector<ConfigUsage> configUsage(FunctionId fn) const;

    /** Live (non-reaped) instances of a function. */
    int liveInstanceCount(FunctionId fn) const;

    /** Snapshots of a function's live instances (observability). */
    std::vector<InstanceSnapshot> instanceSnapshots(FunctionId fn) const;

    /** Total live instances across functions. */
    int liveInstanceCount() const;

    /** Requests waiting in batch queues across all live instances
     *  (the load-digest component a cell router sees). */
    std::int64_t queuedRequests() const;

    /**
     * Requests admitted but not yet settled: live queues, executing
     * batches, retry backoffs and the ingress delay stage. Zero once a
     * run has fully drained.
     */
    std::int64_t inFlightRequests() const;

    /** Scheduling passes (Algorithm 1 invocations) run so far. */
    std::uint64_t schedulerDecisions() const
    {
        return scheduler_.decisions();
    }

    /** Instances ever launched. */
    std::int64_t totalLaunches() const;

    /** Number of deployed functions. */
    std::size_t functionCount() const { return functions_.size(); }

    /** Function spec lookup. */
    const FunctionSpec &spec(FunctionId fn) const;

    /** End-to-end metrics of a chain (latency vs the chain SLO). */
    const metrics::RunMetrics &chainMetrics(ChainId chain) const;

    /** Stage function ids of a chain, in order. */
    const std::vector<FunctionId> &chainStages(ChainId chain) const;

    /** Number of deployed chains. */
    std::size_t chainCount() const { return chains_.size(); }

    // Fault control plane ---------------------------------------------------

    /**
     * Crash a server now: resident instances are killed, their resources
     * released, pending per-instance timers cancelled, and every queued or
     * in-flight request is failed over through the retry policy (or
     * dropped when retries are exhausted/disabled). Idempotent while the
     * server is down. Usable directly from tests — no fault profile
     * required.
     */
    void injectServerCrash(cluster::ServerId id);

    /**
     * Recover a crashed server: its capacity rejoins the placement index
     * and the scheduler can target it again. Idempotent while up.
     */
    void injectServerRecovery(cluster::ServerId id);

    /** The fault injector, or nullptr when the profile is disabled. */
    const faults::FaultInjector *faultInjector() const
    {
        return faults_.get();
    }

    /**
     * Fraction of aggregate server-uptime over the run so far:
     * 1 - downtime / (servers x elapsed).
     */
    double clusterAvailability() const;

    // Failure domains / gray failures ---------------------------------------

    /**
     * Crash every non-retired server of @p zone at once (a correlated
     * failure-domain outage): one DomainOutage trace instant + flight
     * trigger, then the ordinary injectServerCrash path per member.
     * Usable directly from tests; the seeded domain-outage fault stream
     * lands here too.
     */
    void injectDomainOutage(cluster::DomainId zone);

    /**
     * Repair @p zone: every member recovers (including members that were
     * down for an unrelated i.i.d. crash — zone repair heals its whole
     * blast radius).
     */
    void injectDomainRepair(cluster::DomainId zone);

    /**
     * Account a domain outage (counter + DomainOutage cluster instant at
     * @p at + flight trigger) WITHOUT crashing anyone. ShardedPlatform
     * notes the outage on one cell and delivers the member crashes as
     * per-server fault commands at the barrier.
     */
    void noteDomainOutage(cluster::DomainId zone, sim::Tick at);

    /** Account a domain repair (DomainRepair cluster instant at @p at). */
    void noteDomainRepair(cluster::DomainId zone, sim::Tick at);

    /**
     * (Re)assign the failure domain of local server @p local_id from a
     * GLOBAL fleet id. The flat constructor already did this with
     * local == global; ShardedPlatform re-assigns with true global ids
     * after construction and after each migration.
     */
    void assignServerDomain(cluster::ServerId local_id,
                            cluster::ServerId global_id);

    /**
     * Ground-truth gray exec-time multiplier of local server @p id
     * (1.0 = healthy). Derived from the root seed and the GLOBAL id at
     * construction; ShardedPlatform overrides per cell.
     */
    double grayMultiplier(cluster::ServerId id) const;

    /** Override a server's gray multiplier (sharding / tests). */
    void setGrayMultiplier(cluster::ServerId id, double mult);

    // Health / outlier ejection ---------------------------------------------

    /** The outlier ejector, or nullptr when health.enabled is false. */
    const health::OutlierEjector *healthEjector() const
    {
        return health_.get();
    }

    /** Servers currently quarantined by the ejector. */
    std::size_t quarantinedServers() const
    {
        return cluster_.quarantinedServers();
    }

    // Cell membership (sharded rebalancing) ---------------------------------

    /**
     * Whether server @p id could migrate to another cell right now: up,
     * not retired, not quarantined, and hosting nothing. No allocations
     * implies no live
     * instances — every instance holds an allocation from launch to
     * reap — so an idle server owns no queues, no in-flight batches and
     * no pending per-instance timers.
     */
    bool serverIdle(cluster::ServerId id) const;

    /**
     * Adopt a machine migrated in from another cell: it joins the
     * cluster, the capacity index, the availability accounting — and the
     * fault injector's coverage — under a fresh local id (append-only —
     * existing ids never shift).
     *
     * Each server's crash substream is keyed on its id, so adopting a
     * server extends injected-fault coverage to it without perturbing
     * any existing server's fault schedule.
     *
     * @return The local id assigned to the adopted server.
     */
    cluster::ServerId adoptServer(const cluster::Resources &capacity);

    /**
     * Release an idle machine to another cell. The server must satisfy
     * serverIdle(); it becomes a permanent tombstone here (out of the
     * capacity index, zero capacity, canFit() refuses) while its
     * capacity moves to the receiving cell via adoptServer().
     *
     * @return The departing machine's capacity.
     */
    cluster::Resources releaseServer(cluster::ServerId id);

    /**
     * Put every live instance on @p id on the reconfiguration drain path
     * (fast-reap grace timer) so the server empties and can be released
     * at a later barrier. Queued work is still served or re-routed by
     * the existing drain machinery — nothing is dropped up front.
     */
    void drainServer(cluster::ServerId id);

    // Observability ---------------------------------------------------------

    /** The request-lifecycle span store (empty unless tracing is on). */
    const obs::TraceRecorder &tracer() const { return tracer_; }

    /** Controller overhead histograms (empty unless profiling is on). */
    const obs::OverheadProfiler &overheads() const { return prof_; }

    /** Windowed SLO attainment / burn-rate monitor (inert unless
     *  obs.slo.enabled). */
    const obs::SloMonitor &sloMonitor() const { return monitor_; }

    /** Anomaly-triggered flight recorder (inert unless
     *  obs.flight.enabled). */
    const obs::FlightRecorder &flightRecorder() const { return flight_; }

    /** Manually trip the flight recorder (tests / operators). */
    void triggerFlightDump(obs::FlightTrigger why)
    {
        flight_.trigger(why, sim_.now());
    }

    // Overload control plane ------------------------------------------------

    /** Breaker/brownout/budget state of one function. */
    OverloadSnapshot overloadSnapshot(FunctionId fn) const;

    /**
     * Request conservation: for every function,
     * arrivals == completions + drops + in-flight, where in-flight spans
     * live queues, executing batches, retry backoffs and the ingress
     * delay stage. Checked automatically after every run() (unless the
     * event engine truncated); public for tests.
     *
     * @param diagnostic When non-null, receives one line per leaking
     *        function on failure.
     * @return true when every function balances.
     */
    bool auditConservation(std::string *diagnostic = nullptr) const;

  protected:
    /** Runtime state of one instance. */
    struct InstanceRuntime
    {
        cluster::Instance inst;
        BatchQueue queue;
        RpsBounds bounds;
        sim::Tick execPredicted = 0;
        double targetRate = 0.0;
        double servedInEpoch = 0.0;
        bool draining = false;
        /** Reconfiguration drain: reap on a short grace timer instead of
         *  the keep-alive window. */
        bool fastReap = false;
        /** Grace expired while busy: reap at the next batch boundary,
         *  re-routing whatever is still queued. */
        bool reapAsap = false;
        bool prewarmed = false;
        /** Fleet generation the instance belongs to (reconfiguration
         *  bumps the function's generation). */
        std::int64_t generation = 0;
        sim::Tick warmAt = sim::kTickNever;
        /** Predicted end of the startup phase (admission control's
         *  cold-start remainder; warmAt stays kTickNever until warm). */
        sim::Tick warmExpectedAt = 0;
        /** When the executor last went idle (warm with no running batch);
         *  kTickNever while a batch runs. Latency attribution only. */
        sim::Tick idleSince = sim::kTickNever;
        /** idleSince snapshot taken when the current batch started: the
         *  instant the executor became available to that batch. */
        sim::Tick batchAvailAt = sim::kTickNever;
        sim::EventId timeoutEvent = sim::kNoEvent;
        sim::EventId expiryEvent = sim::kNoEvent;
        std::size_t usageKey = 0;
        FunctionId fn = kNoFunction;
        /** Requests of the batch currently executing (failed over when a
         *  crash kills the instance mid-batch). */
        std::vector<RequestIndex> inFlight;
        /** Bumped when the instance is crash-killed: the non-cancellable
         *  batch-completion event compares it and dead-letters itself. */
        std::uint32_t liveEpoch = 0;
    };

    /** Runtime state of one deployed function. */
    struct FunctionState
    {
        FunctionSpec spec;
        const models::ModelInfo *model = nullptr;
        std::vector<std::size_t> live; ///< indices into instances_
        std::unique_ptr<coldstart::KeepAlivePolicy> policy;
        RateEstimator rate;
        sim::Tick lastInvocation = -1;
        /** Chain membership of this function (kNoChain if standalone). */
        ChainId chain = kNoChain;
        /** Stage index within the chain. */
        int stage = 0;
        sim::EventId prewarmEvent = sim::kNoEvent;
        sim::Tick lastReconfig = -sim::kTicksPerHour;
        sim::Tick lastReactive = -sim::kTicksPerSec;
        /** While now < reconfigHold the function is mid-reconfiguration:
         *  ordinary scale-out is suppressed and each tick advances the
         *  rolling replacement instead. */
        sim::Tick reconfigHold = 0;
        /** Current fleet generation. */
        std::int64_t generation = 0;
        metrics::RunMetrics metrics;
        cluster::Resources allocated;
        std::vector<ConfigUsage> usage;
        std::map<std::tuple<int, std::int64_t, std::int64_t>, std::size_t>
            usageIndex;

        // Overload control plane -------------------------------------------
        overload::CircuitBreaker breaker;
        overload::RetryBudget retryBudget;
        overload::BrownoutController brownout;
        /** Adaptive concurrency limiter (AdmissionMode::Adaptive);
         *  inert — never acquired from — in the other modes. */
        overload::AdaptiveLimiter limiter;
        /** Breaker transition-log entries already surfaced to
         *  metrics/traces (a count, so multi-step transitions within one
         *  event are all seen). */
        std::size_t breakerTransitionsSeen = 0;
        bool lastBrownoutActive = false;
        /** Failover re-dispatches waiting out their backoff; part of the
         *  conservation audit's in-flight term. */
        std::int64_t pendingRetries = 0;
        /** Requests inside the ingress-delay stage (OTP buffer); part of
         *  the conservation audit's in-flight term. */
        std::int64_t pendingIngress = 0;

        FunctionState(sim::Tick rate_window,
                      const overload::OverloadConfig &oc)
            : rate(rate_window), breaker(oc.breaker),
              retryBudget(oc.retryBudget), brownout(oc.brownout),
              limiter(oc.adaptive)
        {
        }
    };

    // Baseline hooks --------------------------------------------------------

    /**
     * Plan instances for residual load; the default runs Algorithm 1.
     * Implementations must allocate plan resources on the cluster.
     */
    virtual std::vector<LaunchPlan> planScaleOut(FunctionState &fn,
                                                 double residual_rps);

    /** One-to-one request mapping (OpenFaaS+): a request only goes to an
     *  unoccupied instance. */
    virtual bool oneToOne() const { return false; }

    /** Extra ingress latency before dispatch (the OTP buffer layer). */
    virtual sim::Tick ingressDelay() const { return 0; }

    /** Whether the scaler actively drains excess instances (INFless). */
    virtual bool activeScaleIn() const { return true; }

    /** Pack requests onto the lowest-index instances instead of
     *  target-rate weighted spreading (baselines). */
    virtual bool packRouting() const { return false; }

    /**
     * Whether the auto-scaling engine periodically re-derives the optimal
     * batch-resource decisions for the measured rate and performs a
     * rolling (make-before-break) fleet replacement when the current
     * instances are far from optimal (5 in Fig. 4). The uniform-scaling
     * baselines never reconfigure running instances.
     */
    virtual bool reconfigures() const { return true; }

    // Shared internals for subclasses ---------------------------------------

    const profiler::CopPredictor &predictor() const { return predictor_; }
    const models::ExecModel &execModel() const { return exec_; }
    const GreedyScheduler &scheduler() const { return scheduler_; }
    cluster::Cluster &mutableCluster() { return cluster_; }
    FunctionState &functionState(FunctionId fn);

  private:
    /** Runtime state of one deployed chain. */
    struct ChainState
    {
        ChainSpec spec;
        std::vector<FunctionId> stages;
        metrics::RunMetrics metrics;
    };

    // Event handlers ---------------------------------------------------------

    void onArrival(FunctionId fn);
    /** Shared arrival path: account the request and route it. */
    void ingestRequest(FunctionId fn, RequestIndex request);
    /** Move a finished chain request to its next stage (or finish it). */
    void advanceChain(RequestIndex request, sim::Tick now);
    void routeRequest(FunctionId fn, RequestIndex request);
    void tryStartBatch(std::size_t idx);
    void startBatch(std::size_t idx);
    void onBatchComplete(std::size_t idx, std::vector<RequestIndex> batch,
                         sim::Tick started, sim::Tick exec_time);
    void onWarm(std::size_t idx);
    void scalerTick();
    /** Periodic outlier-ejector evaluation: eject (quarantine + drain)
     *  and re-admit per its deterministic decisions. */
    void healthTick();
    void maybeReconfigure(FunctionId fn, double measured);
    void continueReconfigure(FunctionId fn, double measured);

    // Instance lifecycle ------------------------------------------------------

    std::size_t launchInstance(FunctionId fn, const LaunchPlan &plan,
                               bool prewarmed_launch);
    void reapInstance(std::size_t idx);
    /** Crash-kill an instance: fail over its queue and in-flight batch. */
    void killInstance(std::size_t idx);
    void armTimeout(std::size_t idx);
    void armExpiry(std::size_t idx);
    void maybePrewarm(FunctionId fn);

    // Helpers -----------------------------------------------------------------

    void refreshTargets(FunctionState &fn);
    void recordAllocationChange();
    void completeRequest(std::size_t idx, RequestIndex request,
                         sim::Tick started, sim::Tick exec_time);
    /** Account one dropped request (function, total and chain metrics). */
    void dropRequest(FunctionState &f, RequestIndex request, sim::Tick now);
    /** Drop with explicit control over breaker/brownout feedback (sheds
     *  must not count as failures of admitted requests). */
    void dropRequestInternal(FunctionState &f, RequestIndex request,
                             sim::Tick now, bool feed_health);
    /** Re-dispatch a failure-lost request per the retry policy, or drop
     *  it when the budget is exhausted (exactly one drop per request). */
    void failoverRequest(FunctionId fn, RequestIndex request);

    // Overload control plane --------------------------------------------------

    /** SLO stretched by the brownout multiplier while the brownout
     *  pressure window is hot (see BrownoutController::relaxing). */
    sim::Tick effectiveSlo(const FunctionState &f) const;
    /** True while any non-draining live instance is still cold-starting
     *  (drops during provisioning bypass the breaker). */
    bool coldCapacityPending(const FunctionState &f) const;
    /** Backoff-limited reactive scale-out; true when an attempt ran
     *  (shared by the routing dead-end and capacity-driven sheds). */
    bool maybeReactiveScaleOut(FunctionId fn);
    /** Which ingress defense rejected a request (metrics/trace tag). */
    enum class ShedCause : std::uint8_t
    {
        Admission, ///< static feedforward predicate
        Breaker,   ///< open/half-open circuit breaker
        Limiter    ///< adaptive concurrency limit
    };

    /** Breaker + admission/limiter gate at ingress; false = shed. */
    bool admitRequest(FunctionId fn, RequestIndex request);
    /** Account one shed and drop the request. */
    void shedRequest(FunctionState &f, RequestIndex request, sim::Tick now,
                     ShedCause cause);
    /** Release the limiter slot a request holds (terminal paths). */
    void releaseLimiter(FunctionState &f, RequestRecord &record);
    /** Evict the oldest queued request fleet-wide to seat @p request;
     *  false when eviction is off or no queue has anything to evict. */
    bool tryEvictInto(FunctionId fn, RequestIndex request);
    // Observability emit paths ------------------------------------------------

    /** Emit a request-lifecycle span to the sampling tracer (if it wants
     *  the request) and the flight recorder (always when enabled). */
    void emitSpan(obs::SpanKind kind, RequestIndex request, FunctionId fn,
                  std::int32_t server, std::int64_t instance,
                  sim::Tick start, sim::Tick duration);
    /** Emit a function-level instant (breaker/brownout transitions). */
    void emitFunctionEvent(obs::SpanKind kind, FunctionId fn, sim::Tick at);
    /** Emit a cluster-level instant (crash/recovery/migration). */
    void emitClusterEvent(obs::SpanKind kind, std::int32_t server,
                          sim::Tick at);

    /** Surface breaker state changes to metrics and the tracer. */
    void noteBreakerTransitions(FunctionId fn, sim::Tick now);
    /** Surface brownout enter/exit and re-aim live queue deadlines. */
    void noteBrownoutTransition(FunctionId fn, sim::Tick now);
    double aggregateRUp(const FunctionState &fn) const;
    std::size_t usageKeyFor(FunctionState &fn,
                            const cluster::InstanceConfig &config);
    /** Domain occupancy of @p fn's non-draining live instances — the
     *  anti-affinity spread score input (inert at weight 0). */
    SpreadContext spreadContextFor(const FunctionState &fn) const;
    /** &ctx when spread scoring is active, else nullptr (bit-identical
     *  disabled path: scheduler never sees a context). */
    SpreadContext *spreadArg(SpreadContext &ctx) const;

    /** One injected trace and its replay cursor. */
    struct TraceFeed
    {
        FunctionId fn;
        workload::ArrivalTrace trace;
        std::size_t cursor = 0;
    };
    void scheduleNextArrival(std::size_t feed_idx);

    sim::Simulation sim_;
    cluster::Cluster cluster_;
    const models::ModelZoo &zoo_;
    models::ExecModel exec_;
    /** Memo in front of exec_.trueTicks — the batch-pricing hot path. */
    models::LatencyCache execCache_;
    profiler::OpProfileDb profileDb_;
    profiler::CopPredictor predictor_;
    GreedyScheduler scheduler_;
    cluster::ContainerRuntime runtime_;
    PlatformOptions opts_;

    std::vector<FunctionState> functions_;
    std::vector<ChainState> chains_;
    std::vector<InstanceRuntime> instances_;
    std::vector<RequestRecord> requests_;
    std::vector<TraceFeed> feeds_;

    metrics::RunMetrics total_;
    metrics::TimeWeightedMean fragRatio_;
    /** Request-lifecycle span store (no storage when tracing is off). */
    obs::TraceRecorder tracer_;
    /** Wall-clock controller overhead histograms. */
    obs::OverheadProfiler prof_;
    /** Windowed SLO attainment / burn-rate monitor. */
    obs::SloMonitor monitor_;
    /** Anomaly-triggered flight recorder (always-on span ring). */
    obs::FlightRecorder flight_;
    cluster::InstanceId nextInstanceId_ = 0;
    sim::Tick endTime_ = 0;
    std::shared_ptr<sim::Simulation::Periodic> scalerHandle_;

    /** Fault injector (null when the profile is disabled). */
    std::unique_ptr<faults::FaultInjector> faults_;
    /** Crash start per server; kTickNever while up. */
    std::vector<sim::Tick> serverDownSince_;
    /** Completed downtime summed over all servers. */
    sim::Tick serverDownAccum_ = 0;

    /** Ground-truth gray exec multiplier per server (empty = all 1.0). */
    std::vector<double> grayMult_;
    /** Outlier ejector (null when health scoring is disabled). */
    std::unique_ptr<health::OutlierEjector> health_;
    std::shared_ptr<sim::Simulation::Periodic> healthHandle_;
};

} // namespace infless::core

#endif // INFLESS_CORE_PLATFORM_HH
