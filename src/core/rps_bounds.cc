#include "core/rps_bounds.hh"

#include <cmath>

#include "sim/logging.hh"

namespace infless::core {

bool
execFeasible(sim::Tick t_exec, sim::Tick t_slo, int batch)
{
    if (t_exec <= 0 || t_slo <= 0 || batch < 1)
        return false;
    if (batch == 1)
        return t_exec <= t_slo;
    return 2 * t_exec <= t_slo;
}

RpsBounds
rpsBounds(sim::Tick t_exec, sim::Tick t_slo, int batch)
{
    sim::simAssert(execFeasible(t_exec, t_slo, batch),
                   "rpsBounds on infeasible config: t_exec=", t_exec,
                   " t_slo=", t_slo, " b=", batch);
    double exec_sec = sim::ticksToSec(t_exec);
    RpsBounds bounds;
    bounds.up = std::floor(1.0 / exec_sec) * batch;
    if (batch == 1) {
        // A single request never waits for peers; any arrival rate up to
        // r_up is admissible.
        bounds.low = 0.0;
    } else {
        double slack_sec = sim::ticksToSec(t_slo - t_exec);
        bounds.low = std::ceil(1.0 / slack_sec) * batch;
    }
    if (bounds.low > bounds.up)
        bounds.low = bounds.up; // degenerate but feasible corner
    return bounds;
}

} // namespace infless::core
