/**
 * @file
 * Per-instance request-rate bounds — Eq. 1 of §3.2.
 *
 * An instance with batchsize b and batch execution time t_exec can absorb
 * at most r_up = floor(1/t_exec) * b requests per second (the batch
 * pipeline is saturated), and needs at least
 * r_low = ceil(1/(t_slo - t_exec)) * b so a batch fills before its
 * submission deadline. Feasibility requires t_exec <= t_slo/2 (batch
 * submission must not outpace execution); with b = 1 there is no batch
 * wait and the requirement relaxes to t_exec <= t_slo.
 */

#ifndef INFLESS_CORE_RPS_BOUNDS_HH
#define INFLESS_CORE_RPS_BOUNDS_HH

#include "sim/time.hh"

namespace infless::core {

/** The [r_low, r_up] workload window of one instance, in RPS. */
struct RpsBounds
{
    double low = 0.0;
    double up = 0.0;

    bool valid() const { return up > 0.0 && low <= up; }
};

/**
 * Whether a configuration with the given execution time can meet the SLO
 * at all (Algorithm 1's feasibility check).
 */
bool execFeasible(sim::Tick t_exec, sim::Tick t_slo, int batch);

/**
 * Eq. 1. Requires execFeasible(); panics otherwise.
 */
RpsBounds rpsBounds(sim::Tick t_exec, sim::Tick t_slo, int batch);

} // namespace infless::core

#endif // INFLESS_CORE_RPS_BOUNDS_HH
