#include "core/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "sim/logging.hh"

namespace infless::core {

GreedyScheduler::GreedyScheduler(const profiler::CopPredictor &predictor,
                                 SchedulerConfig config)
    : predictor_(predictor), config_(std::move(config))
{
    sim::simAssert(!config_.cpuChoices.empty(), "no CPU choices");
    sim::simAssert(!config_.gpuChoices.empty(), "no GPU choices");
    sim::simAssert(config_.beta > 0.0, "beta must be positive");
}

std::int64_t
GreedyScheduler::instanceMemoryMb(const models::ModelInfo &model) const
{
    return static_cast<std::int64_t>(
               std::ceil(model.sizeMb * config_.modelMemoryFactor)) +
           config_.runtimeMemoryMb;
}

namespace {

/** Descending powers-of-two batch ladder capped by the function/model. */
std::vector<int>
batchLadder(const models::ModelInfo &model, int max_batch)
{
    int cap = std::min(max_batch, model.maxBatch);
    std::vector<int> batches;
    for (int b = 1; b <= cap; b *= 2)
        batches.push_back(b);
    std::sort(batches.rbegin(), batches.rend()); // largest first
    return batches;
}

} // namespace

std::size_t
GreedyScheduler::prewarm(const models::ModelInfo &model, int max_batch) const
{
    return predictor_.prewarm(model, batchLadder(model, max_batch),
                              config_.cpuChoices, config_.gpuChoices,
                              instanceMemoryMb(model));
}

std::vector<CandidateConfig>
GreedyScheduler::availableConfigs(const models::ModelInfo &model, int batch,
                                  double residual_rps, sim::Tick slo) const
{
    obs::ProfScope cop_scope(profiler_, obs::Phase::CopSolve);
    std::vector<CandidateConfig> feasible;
    std::int64_t memory = instanceMemoryMb(model);
    for (std::int64_t cpu : config_.cpuChoices) {
        for (std::int64_t gpu : config_.gpuChoices) {
            cluster::Resources res{cpu, gpu, memory};
            sim::Tick exec = predictor_.predict(model, batch, res);
            if (!execFeasible(exec, slo, batch))
                continue;
            RpsBounds bounds = rpsBounds(exec, slo, batch);
            // For b > 1 the batch must saturate before the waiting
            // timeout: the residual rate has to reach r_low.
            if (batch > 1 && residual_rps < bounds.low)
                continue;
            CandidateConfig candidate;
            candidate.config =
                cluster::InstanceConfig{batch, res};
            candidate.execPredicted = exec;
            candidate.bounds = bounds;
            feasible.push_back(candidate);
        }
    }
    return feasible;
}

double
GreedyScheduler::efficiencyFromAvail(const CandidateConfig &candidate,
                                     double cost, double weighted_avail,
                                     double norm,
                                     double residual_rps) const
{
    sim::simAssert(cost > 0.0, "zero-cost instance config");

    double usable = config_.uncappedEfficiency
                        ? candidate.bounds.up
                        : std::min(candidate.bounds.up, residual_rps);
    double rps_per_resource = usable / cost;
    double numerator = norm > 0.0 ? rps_per_resource / norm
                                  : rps_per_resource;

    // Snug fits are rewarded, but the boost is floored: otherwise any
    // configuration that exactly fills a server's remainder would beat
    // every genuinely efficient one once the cluster fills up.
    double min_fragment = config_.noFragmentFloor ? 1e-9 : 0.05;
    double fragment =
        std::max(1.0 - cost / weighted_avail, min_fragment);
    return numerator / fragment;
}

double
GreedyScheduler::efficiency(const CandidateConfig &candidate,
                            const cluster::Server &server, double norm,
                            double residual_rps) const
{
    const cluster::Resources &req = candidate.config.resources;
    if (!server.canFit(req))
        return -1.0;
    return efficiencyFromAvail(candidate, req.weighted(config_.beta),
                               server.weightedAvailable(config_.beta),
                               norm, residual_rps);
}

namespace {

/** One pooled candidate of the fast path. */
struct PoolEntry
{
    CandidateConfig cand;
    /** Memoized resources.weighted(beta). */
    double weightedCost = 0.0;
    /** Index into the descending batch ladder (0 = largest batch). */
    int batchOrdinal = 0;
    /**
     * Residual-saturation gate key: r_low for b > 1, 0 for b = 1
     * (single-request instances never wait on saturation).
     */
    double gateKey = 0.0;
    /** Cleared once the shrinking residual crosses gateKey. */
    bool admissible = true;
};

} // namespace

std::vector<LaunchPlan>
GreedyScheduler::schedule(const models::ModelInfo &model,
                          double residual_rps, sim::Tick slo, int max_batch,
                          cluster::Cluster &cluster,
                          SpreadContext *spread) const
{
    obs::ProfScope schedule_scope(profiler_, obs::Phase::Schedule);
    ++decisions_;
    std::vector<LaunchPlan> plans;
    std::vector<int> batches = batchLadder(model, max_batch);

    // Build the candidate pool ONCE: the feasible (b, c, g) set depends
    // only on (model, batch, slo). The residual-saturation gate — the one
    // residual-dependent part of AvailableConfig — is deferred to a
    // threshold cut below. Pool order matches the naive rebuild (batches
    // descending, then CPU-major / GPU-minor), which pins tie-breaking.
    std::vector<PoolEntry> pool;
    std::int64_t memory = instanceMemoryMb(model);
    {
        // The COP solve of the fast path: every predictor composition
        // happens in this block (the per-placement loop below reuses the
        // pool). Nested inside the Schedule scope by design.
        obs::ProfScope cop_scope(profiler_, obs::Phase::CopSolve);
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            int b = batches[bi];
            for (std::int64_t cpu : config_.cpuChoices) {
                for (std::int64_t gpu : config_.gpuChoices) {
                    cluster::Resources res{cpu, gpu, memory};
                    sim::Tick exec = predictor_.predict(model, b, res);
                    if (!execFeasible(exec, slo, b))
                        continue;
                    PoolEntry entry;
                    entry.cand.config = cluster::InstanceConfig{b, res};
                    entry.cand.execPredicted = exec;
                    entry.cand.bounds = rpsBounds(exec, slo, b);
                    entry.weightedCost = res.weighted(config_.beta);
                    entry.batchOrdinal = static_cast<int>(bi);
                    entry.gateKey =
                        b > 1 ? entry.cand.bounds.low : 0.0;
                    pool.push_back(entry);
                }
            }
        }
    }
    if (pool.empty())
        return plans; // SLO unsatisfiable on the whole config grid

    // Indices sorted by gate key: the residual only ever shrinks, so the
    // admissible set is cut from the top instead of rebuilt.
    std::vector<std::size_t> by_gate(pool.size());
    std::iota(by_gate.begin(), by_gate.end(), std::size_t{0});
    std::stable_sort(by_gate.begin(), by_gate.end(),
                     [&](std::size_t a, std::size_t b) {
                         return pool[a].gateKey < pool[b].gateKey;
                     });
    std::size_t cut = pool.size(); // by_gate[0, cut) is admissible

    const cluster::CapacityIndex &index = cluster.capacityIndex();
    // Spread is live only when the caller asked for it AND the cluster
    // actually has domains; otherwise the base forEachClass argmax runs
    // and the pass is bit-identical to the pre-topology scheduler.
    const bool spread_on =
        spread != nullptr && spread->weight > 0.0 && index.domainsEnabled();

    while (residual_rps > 1e-9) {
        while (cut > 0 && pool[by_gate[cut - 1]].gateKey > residual_rps) {
            pool[by_gate[cut - 1]].admissible = false;
            --cut;
        }
        if (cut == 0)
            break; // residual too small to saturate any config

        // Paper-literal rule: commit to the largest batchsize with any
        // admissible configuration. The pool is ordinal-sorted, so the
        // first admissible entry carries the minimal ordinal.
        int ordinal_limit = std::numeric_limits<int>::max();
        if (config_.largestBatchFirst) {
            for (const PoolEntry &entry : pool) {
                if (entry.admissible) {
                    ordinal_limit = entry.batchOrdinal;
                    break;
                }
            }
        }
        auto considered = [&](const PoolEntry &entry) {
            return entry.admissible && entry.batchOrdinal <= ordinal_limit;
        };

        const PoolEntry *best_entry = nullptr;
        cluster::ServerId best_server = cluster::kNoServer;
        if (config_.throughputOnly) {
            // RS ablation: max-throughput config, first-fit placement.
            for (const PoolEntry &entry : pool) {
                if (!considered(entry))
                    continue;
                if (best_entry &&
                    entry.cand.bounds.up <= best_entry->cand.bounds.up)
                    continue;
                cluster::ServerId server =
                    cluster.firstFit(entry.cand.config.resources);
                if (server != cluster::kNoServer) {
                    best_entry = &entry;
                    best_server = server;
                }
            }
        } else {
            // Normalize the RPS/resource numerator over the pool.
            double norm = 0.0;
            for (const PoolEntry &entry : pool) {
                if (!considered(entry))
                    continue;
                double usable =
                    std::min(entry.cand.bounds.up, residual_rps);
                norm = std::max(norm, usable / entry.weightedCost);
            }
            // argmax e_ij, one evaluation per capacity class. Ties
            // replicate the naive candidate-major/server-minor scan:
            // strictly-greater e across candidates (earlier candidate
            // wins), lowest server id within a candidate.
            double best_e = -1.0;
            for (const PoolEntry &entry : pool) {
                if (!considered(entry))
                    continue;
                const cluster::Resources &req =
                    entry.cand.config.resources;
                double cand_e = -1.0;
                cluster::ServerId cand_server = cluster::kNoServer;
                auto consider = [&](double e, cluster::ServerId min_id) {
                    if (e > cand_e ||
                        (e == cand_e && min_id < cand_server)) {
                        cand_e = e;
                        cand_server = min_id;
                    }
                };
                if (spread_on) {
                    // Domain-bucketed argmax: servers in one (class,
                    // rack) bucket share availability AND penalty, so
                    // one evaluation per bucket reproduces the naive
                    // per-server scan exactly.
                    index.forEachClassDomain(
                        config_.beta,
                        [&](const cluster::Resources &avail,
                            double weighted_avail, cluster::DomainId,
                            cluster::ServerId min_id, std::size_t) {
                            if (!req.fitsIn(avail))
                                return;
                            double e = efficiencyFromAvail(
                                entry.cand, entry.weightedCost,
                                weighted_avail, norm, residual_rps);
                            e /= spread->penalty(
                                cluster.serverDomain(min_id));
                            consider(e, min_id);
                        });
                } else {
                    index.forEachClass(
                        config_.beta,
                        [&](const cluster::Resources &avail,
                            double weighted_avail,
                            cluster::ServerId min_id, std::size_t) {
                            if (!req.fitsIn(avail))
                                return;
                            double e = efficiencyFromAvail(
                                entry.cand, entry.weightedCost,
                                weighted_avail, norm, residual_rps);
                            consider(e, min_id);
                        });
                }
                if (cand_e > best_e) {
                    best_e = cand_e;
                    best_entry = &entry;
                    best_server = cand_server;
                }
            }
        }
        if (!best_entry)
            break; // cluster exhausted

        bool ok = cluster.allocate(best_server,
                                   best_entry->cand.config.resources);
        sim::simAssert(ok, "allocation failed after fit check");

        LaunchPlan plan;
        plan.config = best_entry->cand.config;
        plan.server = best_server;
        plan.execPredicted = best_entry->cand.execPredicted;
        plan.bounds = best_entry->cand.bounds;
        plans.push_back(plan);

        if (spread_on)
            spread->add(cluster.serverDomain(best_server));
        residual_rps -= best_entry->cand.bounds.up;
    }
    return plans;
}

std::vector<LaunchPlan>
GreedyScheduler::scheduleNaive(const models::ModelInfo &model,
                               double residual_rps, sim::Tick slo,
                               int max_batch,
                               cluster::Cluster &cluster,
                               SpreadContext *spread) const
{
    obs::ProfScope schedule_scope(profiler_, obs::Phase::Schedule);
    ++decisions_;
    std::vector<LaunchPlan> plans;
    std::vector<int> batches = batchLadder(model, max_batch);

    while (residual_rps > 1e-9) {
        // Candidate pool: every feasible (b, c, g), largest batchsizes
        // first. The paper's Algorithm 1 commits to the largest feasible
        // batchsize outright; on our execution surface that rule
        // over-provisions (a fat-GPU large-batch config is often feasible
        // yet far costlier per usable RPS), so the batchsize competes
        // through the same usable-RPS efficiency metric as the resources.
        // The residual-saturation check still gates large batches, which
        // reproduces the mixed {1, 2, 4, 8} usage of Fig. 13a.
        std::vector<CandidateConfig> candidates;
        for (int b : batches) {
            auto batch_cands = availableConfigs(model, b, residual_rps, slo);
            candidates.insert(candidates.end(), batch_cands.begin(),
                              batch_cands.end());
            if (config_.largestBatchFirst && !candidates.empty())
                break; // paper-literal rule: commit to this batchsize
        }
        if (candidates.empty())
            break; // SLO unsatisfiable at this rate

        const CandidateConfig *best_cand = nullptr;
        cluster::ServerId best_server = cluster::kNoServer;
        if (config_.throughputOnly) {
            // RS ablation: max-throughput config, first-fit placement.
            for (const auto &cand : candidates) {
                if (best_cand && cand.bounds.up <= best_cand->bounds.up)
                    continue;
                cluster::ServerId server =
                    cluster.firstFit(cand.config.resources);
                if (server != cluster::kNoServer) {
                    best_cand = &cand;
                    best_server = server;
                }
            }
        } else {
            // Normalize the RPS/resource numerator over the pool.
            double norm = 0.0;
            for (const auto &cand : candidates) {
                double usable = std::min(cand.bounds.up, residual_rps);
                norm = std::max(norm,
                                usable / cand.config.resources.weighted(
                                             config_.beta));
            }
            // argmax e_ij over candidates x servers.
            const bool spread_on = spread != nullptr &&
                                   spread->weight > 0.0 &&
                                   cluster.capacityIndex().domainsEnabled();
            double best_e = -1.0;
            for (const auto &cand : candidates) {
                for (const auto &server : cluster.servers()) {
                    double e =
                        efficiency(cand, server, norm, residual_rps);
                    if (spread_on && e >= 0.0)
                        e /= spread->penalty(
                            cluster.serverDomain(server.id()));
                    if (e > best_e) {
                        best_e = e;
                        best_cand = &cand;
                        best_server = server.id();
                    }
                }
            }
        }
        if (!best_cand)
            break; // cluster exhausted

        bool ok =
            cluster.allocate(best_server, best_cand->config.resources);
        sim::simAssert(ok, "allocation failed after fit check");

        LaunchPlan plan;
        plan.config = best_cand->config;
        plan.server = best_server;
        plan.execPredicted = best_cand->execPredicted;
        plan.bounds = best_cand->bounds;
        plans.push_back(plan);

        if (spread != nullptr && spread->weight > 0.0)
            spread->add(cluster.serverDomain(best_server));
        residual_rps -= best_cand->bounds.up;
    }
    return plans;
}

std::vector<LaunchPlan>
uniformSchedule(const CandidateConfig &config, double residual_rps,
                cluster::Cluster &cluster, bool best_fit, double beta,
                std::int64_t memory_mb)
{
    std::vector<LaunchPlan> plans;
    cluster::Resources req = config.config.resources;
    req.memoryMb = memory_mb;
    while (residual_rps > 1e-9) {
        // Both probes are answered by the capacity index: best-fit is the
        // smallest weighted availability that still fits (BATCH+RS).
        cluster::ServerId target = best_fit
                                       ? cluster.bestFit(req, beta)
                                       : cluster.firstFit(req);
        if (target == cluster::kNoServer)
            break;
        bool ok = cluster.allocate(target, req);
        sim::simAssert(ok, "allocation failed after fit check");

        LaunchPlan plan;
        plan.config = config.config;
        plan.config.resources = req;
        plan.server = target;
        plan.execPredicted = config.execPredicted;
        plan.bounds = config.bounds;
        plans.push_back(plan);
        residual_rps -= config.bounds.up;
    }
    return plans;
}

} // namespace infless::core
