#include "core/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace infless::core {

GreedyScheduler::GreedyScheduler(const profiler::CopPredictor &predictor,
                                 SchedulerConfig config)
    : predictor_(predictor), config_(std::move(config))
{
    sim::simAssert(!config_.cpuChoices.empty(), "no CPU choices");
    sim::simAssert(!config_.gpuChoices.empty(), "no GPU choices");
    sim::simAssert(config_.beta > 0.0, "beta must be positive");
}

std::int64_t
GreedyScheduler::instanceMemoryMb(const models::ModelInfo &model) const
{
    return static_cast<std::int64_t>(
               std::ceil(model.sizeMb * config_.modelMemoryFactor)) +
           config_.runtimeMemoryMb;
}

std::vector<CandidateConfig>
GreedyScheduler::availableConfigs(const models::ModelInfo &model, int batch,
                                  double residual_rps, sim::Tick slo) const
{
    std::vector<CandidateConfig> feasible;
    std::int64_t memory = instanceMemoryMb(model);
    for (std::int64_t cpu : config_.cpuChoices) {
        for (std::int64_t gpu : config_.gpuChoices) {
            cluster::Resources res{cpu, gpu, memory};
            sim::Tick exec = predictor_.predict(model, batch, res);
            if (!execFeasible(exec, slo, batch))
                continue;
            RpsBounds bounds = rpsBounds(exec, slo, batch);
            // For b > 1 the batch must saturate before the waiting
            // timeout: the residual rate has to reach r_low.
            if (batch > 1 && residual_rps < bounds.low)
                continue;
            CandidateConfig candidate;
            candidate.config =
                cluster::InstanceConfig{batch, res};
            candidate.execPredicted = exec;
            candidate.bounds = bounds;
            feasible.push_back(candidate);
        }
    }
    return feasible;
}

double
GreedyScheduler::efficiency(const CandidateConfig &candidate,
                            const cluster::Server &server, double norm,
                            double residual_rps) const
{
    const cluster::Resources &req = candidate.config.resources;
    if (!server.canFit(req))
        return -1.0;

    double cost = req.weighted(config_.beta);
    double avail = server.available().weighted(config_.beta);
    sim::simAssert(cost > 0.0, "zero-cost instance config");

    double usable = config_.uncappedEfficiency
                        ? candidate.bounds.up
                        : std::min(candidate.bounds.up, residual_rps);
    double rps_per_resource = usable / cost;
    double numerator = norm > 0.0 ? rps_per_resource / norm
                                  : rps_per_resource;

    // Snug fits are rewarded, but the boost is floored: otherwise any
    // configuration that exactly fills a server's remainder would beat
    // every genuinely efficient one once the cluster fills up.
    double min_fragment = config_.noFragmentFloor ? 1e-9 : 0.05;
    double fragment = std::max(1.0 - cost / avail, min_fragment);
    return numerator / fragment;
}

std::vector<LaunchPlan>
GreedyScheduler::schedule(const models::ModelInfo &model,
                          double residual_rps, sim::Tick slo, int max_batch,
                          cluster::Cluster &cluster) const
{
    std::vector<LaunchPlan> plans;
    int cap = std::min(max_batch, model.maxBatch);
    std::vector<int> batches;
    for (int b = 1; b <= cap; b *= 2)
        batches.push_back(b);
    std::sort(batches.rbegin(), batches.rend()); // largest first

    while (residual_rps > 1e-9) {
        // Candidate pool: every feasible (b, c, g), largest batchsizes
        // first. The paper's Algorithm 1 commits to the largest feasible
        // batchsize outright; on our execution surface that rule
        // over-provisions (a fat-GPU large-batch config is often feasible
        // yet far costlier per usable RPS), so the batchsize competes
        // through the same usable-RPS efficiency metric as the resources.
        // The residual-saturation check still gates large batches, which
        // reproduces the mixed {1, 2, 4, 8} usage of Fig. 13a.
        std::vector<CandidateConfig> candidates;
        for (int b : batches) {
            auto batch_cands = availableConfigs(model, b, residual_rps, slo);
            candidates.insert(candidates.end(), batch_cands.begin(),
                              batch_cands.end());
            if (config_.largestBatchFirst && !candidates.empty())
                break; // paper-literal rule: commit to this batchsize
        }
        if (candidates.empty())
            break; // SLO unsatisfiable at this rate

        const CandidateConfig *best_cand = nullptr;
        cluster::ServerId best_server = cluster::kNoServer;
        if (config_.throughputOnly) {
            // RS ablation: max-throughput config, first-fit placement.
            for (const auto &cand : candidates) {
                if (best_cand && cand.bounds.up <= best_cand->bounds.up)
                    continue;
                cluster::ServerId server =
                    cluster.firstFit(cand.config.resources);
                if (server != cluster::kNoServer) {
                    best_cand = &cand;
                    best_server = server;
                }
            }
        } else {
            // Normalize the RPS/resource numerator over the pool.
            double norm = 0.0;
            for (const auto &cand : candidates) {
                double usable = std::min(cand.bounds.up, residual_rps);
                norm = std::max(norm,
                                usable / cand.config.resources.weighted(
                                             config_.beta));
            }
            // argmax e_ij over candidates x servers.
            double best_e = -1.0;
            for (const auto &cand : candidates) {
                for (const auto &server : cluster.servers()) {
                    double e =
                        efficiency(cand, server, norm, residual_rps);
                    if (e > best_e) {
                        best_e = e;
                        best_cand = &cand;
                        best_server = server.id();
                    }
                }
            }
        }
        if (!best_cand)
            break; // cluster exhausted

        bool ok =
            cluster.allocate(best_server, best_cand->config.resources);
        sim::simAssert(ok, "allocation failed after fit check");

        LaunchPlan plan;
        plan.config = best_cand->config;
        plan.server = best_server;
        plan.execPredicted = best_cand->execPredicted;
        plan.bounds = best_cand->bounds;
        plans.push_back(plan);

        residual_rps -= best_cand->bounds.up;
    }
    return plans;
}

std::vector<LaunchPlan>
uniformSchedule(const CandidateConfig &config, double residual_rps,
                cluster::Cluster &cluster, bool best_fit, double beta,
                std::int64_t memory_mb)
{
    std::vector<LaunchPlan> plans;
    cluster::Resources req = config.config.resources;
    req.memoryMb = memory_mb;
    while (residual_rps > 1e-9) {
        cluster::ServerId target = cluster::kNoServer;
        if (best_fit) {
            // Smallest weighted availability that still fits (BATCH+RS).
            double best_avail = std::numeric_limits<double>::max();
            for (const auto &server : cluster.servers()) {
                if (!server.canFit(req))
                    continue;
                double avail = server.available().weighted(beta);
                if (avail < best_avail) {
                    best_avail = avail;
                    target = server.id();
                }
            }
        } else {
            target = cluster.firstFit(req);
        }
        if (target == cluster::kNoServer)
            break;
        bool ok = cluster.allocate(target, req);
        sim::simAssert(ok, "allocation failed after fit check");

        LaunchPlan plan;
        plan.config = config.config;
        plan.config.resources = req;
        plan.server = target;
        plan.execPredicted = config.execPredicted;
        plan.bounds = config.bounds;
        plans.push_back(plan);
        residual_rps -= config.bounds.up;
    }
    return plans;
}

} // namespace infless::core
