/**
 * @file
 * Greedy instance scheduler — Algorithm 1 of §3.4.
 *
 * Given the residual request rate of a function, the scheduler explores
 * batchsizes from largest to smallest (batching contributes the most to
 * throughput), enumerates the feasible (b, c, g) configurations via the
 * COP predictor (AvailableConfig), and places each new instance on the
 * server maximizing the resource-efficiency metric of Eq. 10:
 *
 *   e_ij = normalized(r_up / (beta*c + g)) / (1 - (beta*c+g)/(beta*C_j+G_j))
 *
 * i.e. throughput per weighted resource, boosted when the instance fills
 * the server's remaining capacity snugly (small fragment left behind).
 */

#ifndef INFLESS_CORE_SCHEDULER_HH
#define INFLESS_CORE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/instance.hh"
#include "core/rps_bounds.hh"
#include "models/model_zoo.hh"
#include "obs/prof_scope.hh"
#include "profiler/cop.hh"
#include "sim/time.hh"

namespace infless::core {

/** Scheduler tunables. */
struct SchedulerConfig
{
    /** CPU allocation choices, millicores. */
    std::vector<std::int64_t> cpuChoices = {500, 1000, 2000, 4000};
    /** GPU allocation choices, SM percent (0 = CPU-only instance). */
    std::vector<std::int64_t> gpuChoices = {0, 5, 10, 20, 30, 50};
    /** CPU<->GPU conversion factor (Eq. 2/10). */
    double beta = cluster::kDefaultBeta;
    /** Fixed per-instance memory overhead beyond the model itself, MiB. */
    std::int64_t runtimeMemoryMb = 300;
    /** Model memory inflation factor (weights + activation workspace). */
    double modelMemoryFactor = 1.25;
    /**
     * Fig. 11's RS ablation: when set, ignore the e_ij efficiency metric
     * and pick the configuration with the maximum throughput, placed
     * first-fit.
     */
    bool throughputOnly = false;

    // Ablation switches for the deviations documented in DESIGN.md 5.
    // Setting all three restores the paper's literal Algorithm 1.

    /** Commit to the largest batchsize with any feasible configuration
     *  instead of pooling candidates across batchsizes. */
    bool largestBatchFirst = false;
    /** Use the raw r_up in the e_ij numerator instead of capping it at
     *  the residual rate. */
    bool uncappedEfficiency = false;
    /** Let the fragmentation denominator approach zero for snug fits
     *  instead of flooring it. */
    bool noFragmentFloor = false;

    /**
     * Soft anti-affinity spread weight. When positive (and the cluster
     * has failure domains assigned), every candidate placement's e_ij is
     * divided by 1 + spreadWeight * (instances the function already has
     * in that zone + in that rack), so new instances prefer untouched
     * domains — without ever refusing a placement the base metric would
     * have made (the penalty reorders, capacity still decides). 0 (the
     * default) is bit-identical to the pre-topology scheduler.
     */
    double spreadWeight = 0.0;
};

/**
 * Anti-affinity state for one function's placement pass: how many of
 * its instances already live in each zone/rack. The scheduler updates
 * the counts as it places, so one pass spreads its own launches too.
 */
struct SpreadContext
{
    /** Penalty weight (from SchedulerConfig::spreadWeight). */
    double weight = 0.0;
    /** Existing instances per zone, indexed by zone id. */
    std::vector<int> zoneCount;
    /** Existing instances per rack, indexed by global rack id. */
    std::vector<int> rackCount;

    /** Count one placement in @p domain. */
    void
    add(const cluster::FailureDomain &domain)
    {
        if (!domain.assigned())
            return;
        if (zoneCount.size() <= static_cast<std::size_t>(domain.zone))
            zoneCount.resize(static_cast<std::size_t>(domain.zone) + 1, 0);
        if (rackCount.size() <= static_cast<std::size_t>(domain.rack))
            rackCount.resize(static_cast<std::size_t>(domain.rack) + 1, 0);
        ++zoneCount[static_cast<std::size_t>(domain.zone)];
        ++rackCount[static_cast<std::size_t>(domain.rack)];
    }

    /** The divisor applied to e_ij for a server in @p domain. */
    double
    penalty(const cluster::FailureDomain &domain) const
    {
        if (!domain.assigned())
            return 1.0;
        int zone = static_cast<std::size_t>(domain.zone) < zoneCount.size()
                       ? zoneCount[static_cast<std::size_t>(domain.zone)]
                       : 0;
        int rack = static_cast<std::size_t>(domain.rack) < rackCount.size()
                       ? rackCount[static_cast<std::size_t>(domain.rack)]
                       : 0;
        return 1.0 + weight * static_cast<double>(zone + rack);
    }
};

/** One feasible configuration from AvailableConfig. */
struct CandidateConfig
{
    cluster::InstanceConfig config;
    sim::Tick execPredicted = 0;
    RpsBounds bounds;
};

/** One placement decision produced by Schedule(). */
struct LaunchPlan
{
    cluster::InstanceConfig config;
    cluster::ServerId server = cluster::kNoServer;
    sim::Tick execPredicted = 0;
    RpsBounds bounds;
};

/**
 * The INFless scheduling algorithm.
 */
class GreedyScheduler
{
  public:
    GreedyScheduler(const profiler::CopPredictor &predictor,
                    SchedulerConfig config = {});

    const SchedulerConfig &config() const { return config_; }

    /**
     * Attach a wall-clock overhead profiler: schedule()/scheduleNaive()
     * record under Phase::Schedule and the candidate-pool enumeration
     * under Phase::CopSolve (nested inside the schedule scope). Null or
     * disabled profilers cost one branch per call.
     */
    void setProfiler(obs::OverheadProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Memory an instance of @p model reserves. */
    std::int64_t instanceMemoryMb(const models::ModelInfo &model) const;

    /**
     * Scheduling passes run so far (schedule() + scheduleNaive() calls).
     * The scale bench divides this by wall time for decisions/sec.
     */
    std::uint64_t decisions() const { return decisions_; }

    /**
     * Warm the COP memo for @p model over this scheduler's full
     * (batch ladder x config grid) so subsequent schedule() calls never
     * take a first-touch composition miss.
     *
     * @return Number of predictor cache entries filled.
     */
    std::size_t prewarm(const models::ModelInfo &model,
                        int max_batch) const;

    /**
     * AvailableConfig (Algorithm 1, lines 16-27): all (b=batch, c, g)
     * whose predicted execution time admits the SLO and, for b > 1, whose
     * r_low the residual rate can saturate.
     */
    std::vector<CandidateConfig>
    availableConfigs(const models::ModelInfo &model, int batch,
                     double residual_rps, sim::Tick slo) const;

    /**
     * Eq. 10 efficiency of placing @p candidate on @p server.
     *
     * The RPS numerator is capped at @p residual_rps: capacity beyond the
     * rate the instance will actually receive is over-provisioning, not
     * efficiency (Fig. 14). Pass infinity to reproduce the uncapped
     * formula.
     *
     * @param norm Normalization divisor for the RPS/resource numerator
     *        (max over the candidate set).
     * @return Negative when the instance does not fit.
     */
    double efficiency(const CandidateConfig &candidate,
                      const cluster::Server &server, double norm,
                      double residual_rps) const;

    /**
     * Algorithm 1: plan (and allocate on @p cluster) instances covering
     * @p residual_rps for one function.
     *
     * Fast-path implementation: the feasible (b, c, g) pool is built once
     * per call (it depends only on model, batch and SLO), candidates keep
     * a memoized weighted cost and are gated against the shrinking
     * residual by a pre-sorted r_low threshold cut, and the argmax over
     * e_ij is evaluated once per capacity-index class instead of once per
     * server. Guaranteed to produce a LaunchPlan sequence bit-identical
     * to scheduleNaive() (the equivalence is pinned by
     * tests/core/scheduler_equivalence_test.cc).
     *
     * Allocations are committed into the cluster as plans are made; the
     * caller launches the corresponding instances (or releases the
     * resources if it chooses not to).
     *
     * @param max_batch Function-level batch cap.
     * @param spread Optional anti-affinity state; null (or zero weight,
     *        or a cluster without domains) reproduces the base metric
     *        bit-for-bit. Mutated: placements made by this call are
     *        counted so the pass spreads its own launches.
     * @return The launch plans; may cover less than the residual when the
     *         cluster runs out of room.
     */
    std::vector<LaunchPlan> schedule(const models::ModelInfo &model,
                                     double residual_rps, sim::Tick slo,
                                     int max_batch,
                                     cluster::Cluster &cluster,
                                     SpreadContext *spread = nullptr) const;

    /**
     * Reference implementation of schedule(): rebuilds the candidate pool
     * and scans every server for every placement, O(placements x batches
     * x configs x servers). Kept as the oracle for the equivalence test
     * and the before/after series of bench_fig17_scale.
     */
    std::vector<LaunchPlan> scheduleNaive(const models::ModelInfo &model,
                                          double residual_rps,
                                          sim::Tick slo, int max_batch,
                                          cluster::Cluster &cluster,
                                          SpreadContext *spread =
                                              nullptr) const;

  private:
    /** Eq. 10 on precomputed scalars (fit already checked). */
    double efficiencyFromAvail(const CandidateConfig &candidate,
                               double cost, double weighted_avail,
                               double norm, double residual_rps) const;

    const profiler::CopPredictor &predictor_;
    SchedulerConfig config_;
    /** Optional overhead profiler (not owned; may be null). */
    obs::OverheadProfiler *profiler_ = nullptr;
    /** Scheduling passes run (schedule() is const; the count is not
     *  part of the scheduler's logical state). */
    mutable std::uint64_t decisions_ = 0;
};

/**
 * Uniform-scaling scheduler used by the baselines: one fixed candidate
 * list (no per-instance adaptation), first-fit placement.
 */
std::vector<LaunchPlan>
uniformSchedule(const CandidateConfig &config, double residual_rps,
                cluster::Cluster &cluster, bool best_fit, double beta,
                std::int64_t memory_mb);

} // namespace infless::core

#endif // INFLESS_CORE_SCHEDULER_HH
