#include "core/sharded_platform.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "sim/logging.hh"

namespace infless::core {

namespace {

/** Distinct substream keys off the run seed (arbitrary constants). */
constexpr std::uint64_t kCellSeedKey = 0xCE11'0000ULL;
constexpr std::uint64_t kRouterSeedKey = 0xF00D'D1CEULL;
constexpr std::uint64_t kWorkloadSeedKey = 0x3AFE'57A7ULL;

} // namespace

ShardedPlatform::ShardedPlatform(std::size_t num_servers,
                                 PlatformOptions opts, CellOptions cell_opts)
    : numServers_(num_servers), cellOpts_(cell_opts),
      beta_(opts.scheduler.beta),
      membership_(num_servers, cell_opts.cells),
      rebalancer_(cell_opts.rebalance),
      workloadRng_(sim::hashCombine(opts.seed, kWorkloadSeedKey))
{
    sim::simAssert(cellOpts_.windowTicks > 0, "window must be positive");
    // partitionServers clamps cells > servers to one server per cell;
    // everything below sizes off the membership map, not the request.
    std::size_t cells = membership_.cellCount();
    cells_.reserve(cells);
    for (std::size_t c = 0; c < cells; ++c) {
        PlatformOptions cell_opts_c = opts;
        // The single-cell platform keeps the caller's seed untouched so
        // cells=1 reproduces a flat Platform bit for bit.
        if (cells > 1) {
            cell_opts_c.seed =
                sim::hashCombine(opts.seed, kCellSeedKey + c);
            // Correlated outages are a FLEET property: the root stream
            // below drives them; a per-cell stream would sample local
            // zones with per-cell seeds and splinter the schedule.
            cell_opts_c.faults.domainOutageMtbfSec = 0.0;
            cell_opts_c.faults.domainOutageAt = sim::kTickNever;
        }
        cells_.push_back(std::make_unique<Platform>(
            membership_.size(c), std::move(cell_opts_c)));
    }
    topology_ = opts.topology;
    if (!delegated() &&
        (opts.topology.enabled() || opts.faults.grayEnabled())) {
        if (opts.faults.grayEnabled()) {
            grayByGlobal_.resize(numServers_, 1.0);
            for (std::size_t g = 0; g < numServers_; ++g)
                grayByGlobal_[g] = faults::grayExecMultiplier(
                    opts.faults, opts.seed,
                    static_cast<cluster::ServerId>(g));
        }
        // Each cell self-assigned domains and gray multipliers from its
        // LOCAL ids and per-cell seed; both are global-id properties, so
        // re-derive them from the root view.
        for (std::size_t c = 0; c < cells; ++c) {
            for (cluster::ServerId g : membership_.members(c)) {
                cluster::ServerId local = membership_.localId(g);
                cells_[c]->assignServerDomain(local, g);
                if (!grayByGlobal_.empty())
                    cells_[c]->setGrayMultiplier(
                        local,
                        grayByGlobal_[static_cast<std::size_t>(g)]);
            }
        }
    }
    if (!delegated() && opts.faults.domainOutagesEnabled()) {
        domainStream_ = std::make_unique<faults::DomainOutageStream>(
            opts.faults, opts.seed, opts.topology.zones);
        pendingOutage_ = domainStream_->next();
    }
    router_ = std::make_unique<cluster::CellRouter>(
        cells, sim::hashCombine(opts.seed, kRouterSeedKey));
    lastDropStat_.assign(cells, 0);
    routedTotal_.assign(cells, 0);
    lastEvents_.assign(cells, 0);
    if (!delegated()) {
        std::size_t threads = cellOpts_.threads != 0
                                  ? cellOpts_.threads
                                  : sim::WorkerPool::defaultThreads();
        pool_ = std::make_unique<sim::WorkerPool>(
            std::min(threads, cells));
        mergedSlo_.configure(opts.obs.slo);
        mergedSlo_.setCellCount(cells);
    }
}

ShardedPlatform::~ShardedPlatform() = default;

FunctionId
ShardedPlatform::deploy(const FunctionSpec &spec)
{
    FunctionId fn = cells_[0]->deploy(spec);
    for (std::size_t c = 1; c < cells_.size(); ++c) {
        FunctionId other = cells_[c]->deploy(spec);
        sim::simAssert(other == fn, "cells disagree on function id");
    }
    if (!delegated())
        mergedSlo_.registerFunction(fn, spec.sloTicks);
    return fn;
}

void
ShardedPlatform::injectTrace(FunctionId fn, workload::ArrivalTrace trace)
{
    if (delegated()) {
        cells_[0]->injectTrace(fn, std::move(trace));
        return;
    }
    pending_.push_back(PendingFeed{fn, std::move(trace), 0});
}

void
ShardedPlatform::injectRateSeries(FunctionId fn,
                                  const workload::RateSeries &series)
{
    if (delegated()) {
        cells_[0]->injectRateSeries(fn, series);
        return;
    }
    sim::Rng rng =
        workloadRng_.fork(static_cast<std::uint64_t>(fn) + 0x77);
    injectTrace(fn, workload::ArrivalTrace::fromRateSeries(series, rng));
}

void
ShardedPlatform::pinFunction(FunctionId fn, std::size_t cell)
{
    if (delegated())
        return; // one cell: everything is already "pinned"
    sim::simAssert(cell < cells_.size(), "pin to nonexistent cell ",
                   cell);
    pins_[fn] = cell;
}

void
ShardedPlatform::run(sim::Tick until)
{
    endTime_ = until;
    if (delegated()) {
        cells_[0]->run(until);
        return;
    }
    sim::simAssert(until >= cursor_, "run() must move time forward");
    do {
        sim::Tick w_end = std::min(cursor_ + cellOpts_.windowTicks, until);
        barrier(w_end, until);
        pool_->parallelFor(cells_.size(), [this, w_end](std::size_t c) {
            cells_[c]->run(w_end);
        });
        // Serial in cell order — the same determinism anchor as the
        // barrier — and after every window (including the last) so the
        // cluster health view is complete when run() returns.
        absorbSloHealth();
        cursor_ = w_end;
    } while (cursor_ < until);
    mergedDirty_ = true;
}

void
ShardedPlatform::scheduleServerCrash(cluster::ServerId id, sim::Tick at)
{
    if (delegated()) {
        Platform *p = cells_[0].get();
        p->simulation().at(std::max(at, p->simulation().now()),
                           [p, id] { p->injectServerCrash(id); });
        return;
    }
    faultCommands_.push_back(FaultCommand{id, at, true});
}

void
ShardedPlatform::scheduleServerRecovery(cluster::ServerId id, sim::Tick at)
{
    if (delegated()) {
        Platform *p = cells_[0].get();
        p->simulation().at(std::max(at, p->simulation().now()),
                           [p, id] { p->injectServerRecovery(id); });
        return;
    }
    faultCommands_.push_back(FaultCommand{id, at, false});
}

std::pair<std::size_t, cluster::ServerId>
ShardedPlatform::locate(cluster::ServerId global) const
{
    // The membership map tracks migrations, so commands queued against a
    // global id land in whichever cell owns the server *now*.
    return {membership_.cellOf(global), membership_.localId(global)};
}

// ---------------------------------------------------------------------------
// Barrier work (serial, cell order — the determinism anchor)
// ---------------------------------------------------------------------------

void
ShardedPlatform::barrier(sim::Tick window_end, sim::Tick until)
{
    // Rebalance first so the digest refresh, fault lookups and routing
    // all see post-migration ownership. With rebalancing disabled,
    // applyRebalance returns without touching anything and the barrier
    // is byte-identical to the static-partition control plane.
    applyRebalance();
    refreshRouter();
    expandDomainOutages(cursor_);
    applyFaultCommands(cursor_);
    routeArrivals(window_end, until);
}

void
ShardedPlatform::applyRebalance()
{
    if (!cellOpts_.rebalance.enabled)
        return;
    // Load signals are deterministic window aggregates — events executed,
    // queue depth, in-flight, live instances — never wall clock, so the
    // plan is identical at every worker-thread count.
    std::vector<cluster::CellLoad> loads(cells_.size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        const Platform &p = *cells_[c];
        std::uint64_t events = p.simulation().events().executed();
        loads[c].eventsDelta = events - lastEvents_[c];
        lastEvents_[c] = events;
        loads[c].queueDepth = p.queuedRequests();
        loads[c].inFlight = p.inFlightRequests();
        loads[c].liveInstances = p.liveInstanceCount();
        loads[c].servers = membership_.size(c);
    }
    auto orders = rebalancer_.plan(loads);
    imbalanceHistory_.push_back(rebalancer_.lastImbalance());
    std::int64_t applied = 0;
    for (const auto &order : orders)
        applied += static_cast<std::int64_t>(applyMigration(order));
    migrationHistory_.push_back(applied);
    migrationsTotal_ += applied;
    if (applied > 0)
        mergedDirty_ = true;
}

std::size_t
ShardedPlatform::applyMigration(const cluster::MigrationOrder &order)
{
    Platform &donor = *cells_[order.from];
    Platform &receiver = *cells_[order.to];

    // Snapshot the donor's members: migrate() edits the list in place.
    const std::vector<cluster::ServerId> members =
        membership_.members(order.from);

    // Idle servers move immediately — no allocations means no instances,
    // queues, in-flight batches or timers, so the hand-off is a pure
    // capacity transfer. Ascending global id keeps selection
    // deterministic.
    std::size_t moved = 0;
    for (cluster::ServerId g : members) {
        if (moved == order.count)
            break;
        cluster::ServerId local = membership_.localId(g);
        if (!donor.serverIdle(local))
            continue;
        cluster::Resources cap = donor.releaseServer(local);
        cluster::ServerId new_local = receiver.adoptServer(cap);
        // Domain and gray affliction are properties of the MACHINE,
        // keyed by its global id: they follow it across cells.
        receiver.assignServerDomain(new_local, g);
        if (!grayByGlobal_.empty())
            receiver.setGrayMultiplier(
                new_local, grayByGlobal_[static_cast<std::size_t>(g)]);
        membership_.migrate(g, order.to, new_local);
        ++moved;
    }

    // Shortfall: drain-and-move. Put the first still-busy servers on the
    // fast-reap drain path now; once empty they qualify as idle donors
    // at a later barrier (if the imbalance persists).
    if (moved < order.count) {
        std::size_t need = order.count - moved;
        for (cluster::ServerId g : members) {
            if (need == 0)
                break;
            if (membership_.cellOf(g) != order.from)
                continue; // migrated above
            cluster::ServerId local = membership_.localId(g);
            const cluster::Server &s = donor.cluster().server(local);
            if (s.isDown() || s.isRetired() || s.allocationCount() == 0)
                continue;
            donor.drainServer(local);
            --need;
        }
    }

    if (moved > 0) {
        // Both cells' digests (and the routed-since-refresh correction
        // counted against them) describe pre-migration capacity.
        router_->invalidate(order.from);
        router_->invalidate(order.to);
    }
    return moved;
}

void
ShardedPlatform::refreshRouter()
{
    std::vector<cluster::CellDigest> digests(cells_.size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        const Platform &p = *cells_[c];
        cluster::CellDigest &d = digests[c];
        d.weightedAvail = p.cluster().totalAvailable().weighted(beta_);
        d.queueDepth = p.queuedRequests();
        // Drop pressure: rejections since the previous barrier. Routing
        // away from a shedding cell is the cross-cell face of reactive
        // scale-out — spillover lands where capacity remains.
        const metrics::RunMetrics &m = p.totalMetrics();
        std::int64_t drop_stat =
            m.drops() + m.sheds() + m.breakerSheds() + m.limiterSheds();
        d.dropPressure = drop_stat - lastDropStat_[c];
        lastDropStat_[c] = drop_stat;
    }
    router_->refresh(digests);
}

void
ShardedPlatform::routeArrivals(sim::Tick window_end, sim::Tick until)
{
    // The last window of a run() is closed ([cursor, until]) because the
    // engines execute events at exactly `until`; interior windows are
    // half-open so a boundary arrival is injected into the window that
    // executes it.
    bool final_window = window_end == until;
    std::vector<std::pair<sim::Tick, std::size_t>> window_arrivals;
    for (std::size_t f = 0; f < pending_.size(); ++f) {
        PendingFeed &feed = pending_[f];
        const auto &ticks = feed.trace.arrivals();
        while (feed.cursor < ticks.size() &&
               (ticks[feed.cursor] < window_end ||
                (final_window && ticks[feed.cursor] == window_end))) {
            window_arrivals.emplace_back(ticks[feed.cursor], f);
            ++feed.cursor;
        }
    }
    if (window_arrivals.empty())
        return;
    // Global arrival order; ties keep feed-injection order (the pairs
    // were pushed feed-major and stable_sort preserves that).
    std::stable_sort(window_arrivals.begin(), window_arrivals.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<std::map<FunctionId, std::vector<sim::Tick>>> routed(
        cells_.size());
    for (const auto &[tick, feed_idx] : window_arrivals) {
        FunctionId fn = pending_[feed_idx].fn;
        // Pinned functions bypass the router (and draw no router
        // randomness): affinity traffic goes where it must, and only
        // rebalancing can bring capacity to it.
        auto pin = pins_.find(fn);
        std::size_t cell =
            pin != pins_.end() ? pin->second : router_->route();
        routed[cell][fn].push_back(tick);
        ++routedTotal_[cell];
    }
    for (std::size_t c = 0; c < cells_.size(); ++c)
        for (auto &[fn, ticks] : routed[c])
            cells_[c]->injectTrace(
                fn, workload::ArrivalTrace(std::move(ticks)));
    // Fully consumed feeds are dead weight; drop them front-compacted so
    // feed order (the tie-break) is preserved.
    std::size_t keep = 0;
    for (std::size_t f = 0; f < pending_.size(); ++f) {
        if (pending_[f].cursor >= pending_[f].trace.size())
            continue;
        if (keep != f)
            pending_[keep] = std::move(pending_[f]);
        ++keep;
    }
    pending_.resize(keep);
}

void
ShardedPlatform::absorbSloHealth()
{
    if (!mergedSlo_.enabled())
        return;
    for (std::size_t c = 0; c < cells_.size(); ++c)
        mergedSlo_.absorb(c, cells_[c]->sloMonitor());
}

void
ShardedPlatform::expandDomainOutages(sim::Tick barrier_tick)
{
    if (!domainStream_)
        return;
    while (pendingOutage_.valid() && pendingOutage_.at <= barrier_tick) {
        const faults::DomainOutageEvent ev = pendingOutage_;
        // One note per outage — counter, DomainOutage trace instant and
        // flight trigger land on cell 0 (the merged metrics sum cells,
        // so noting everywhere would multiply the count). The member
        // crashes ride the regular command path so the owning cells
        // tear down instances exactly like any injected crash.
        cells_[0]->noteDomainOutage(ev.zone, ev.at);
        cells_[0]->noteDomainRepair(ev.zone, ev.repairAt);
        for (std::size_t g = 0; g < numServers_; ++g) {
            auto id = static_cast<cluster::ServerId>(g);
            if (topology_.domainOf(id).zone != ev.zone)
                continue;
            faultCommands_.push_back(FaultCommand{id, ev.at, true});
            faultCommands_.push_back(
                FaultCommand{id, ev.repairAt, false});
        }
        pendingOutage_ = domainStream_->next();
    }
}

void
ShardedPlatform::applyFaultCommands(sim::Tick barrier_tick)
{
    std::size_t keep = 0;
    for (std::size_t i = 0; i < faultCommands_.size(); ++i) {
        const FaultCommand &cmd = faultCommands_[i];
        if (cmd.at > barrier_tick) {
            faultCommands_[keep++] = cmd;
            continue;
        }
        auto [cell, local] = locate(cmd.server);
        if (cmd.down)
            cells_[cell]->injectServerCrash(local);
        else
            cells_[cell]->injectServerRecovery(local);
    }
    faultCommands_.resize(keep);
}

// ---------------------------------------------------------------------------
// Merged introspection
// ---------------------------------------------------------------------------

void
ShardedPlatform::rebuildMerged() const
{
    merged_ = metrics::RunMetrics();
    mergedFn_.assign(functionCount(), metrics::RunMetrics());
    for (const auto &cell : cells_) {
        merged_.mergeShard(cell->totalMetrics(), endTime_);
        for (std::size_t fn = 0; fn < mergedFn_.size(); ++fn)
            mergedFn_[fn].mergeShard(
                cell->functionMetrics(static_cast<FunctionId>(fn)),
                endTime_);
    }
    mergedDirty_ = false;
}

const metrics::RunMetrics &
ShardedPlatform::totalMetrics() const
{
    if (delegated())
        return cells_[0]->totalMetrics();
    if (mergedDirty_)
        rebuildMerged();
    return merged_;
}

const metrics::RunMetrics &
ShardedPlatform::functionMetrics(FunctionId fn) const
{
    if (delegated())
        return cells_[0]->functionMetrics(fn);
    if (mergedDirty_)
        rebuildMerged();
    return mergedFn_[static_cast<std::size_t>(fn)];
}

const obs::SloHealthCore &
ShardedPlatform::sloHealth() const
{
    if (delegated())
        return cells_[0]->sloMonitor();
    return mergedSlo_;
}

const obs::FlightRecorder &
ShardedPlatform::flightRecorder() const
{
    std::size_t best = 0;
    for (std::size_t c = 1; c < cells_.size(); ++c) {
        const obs::FlightRecorder &fr = cells_[c]->flightRecorder();
        const obs::FlightRecorder &cur = cells_[best]->flightRecorder();
        if (fr.triggered() &&
            (!cur.triggered() || fr.triggerAt() < cur.triggerAt()))
            best = c;
    }
    return cells_[best]->flightRecorder();
}

OverloadSnapshot
ShardedPlatform::overloadSnapshot(FunctionId fn) const
{
    if (delegated())
        return cells_[0]->overloadSnapshot(fn);
    auto severity = [](overload::BreakerState s) {
        switch (s) {
          case overload::BreakerState::Open:
            return 2;
          case overload::BreakerState::HalfOpen:
            return 1;
          case overload::BreakerState::Closed:
            break;
        }
        return 0;
    };
    OverloadSnapshot snap;
    snap.limiterMinRtt = sim::kTickNever;
    double gradient_sum = 0.0;
    for (const auto &cell : cells_) {
        OverloadSnapshot s = cell->overloadSnapshot(fn);
        if (severity(s.breakerState) > severity(snap.breakerState))
            snap.breakerState = s.breakerState;
        snap.brownoutActive = snap.brownoutActive || s.brownoutActive;
        snap.retryTokens += s.retryTokens;
        snap.sheds += s.sheds;
        snap.breakerSheds += s.breakerSheds;
        snap.queueEvictions += s.queueEvictions;
        snap.retryBudgetExhausted += s.retryBudgetExhausted;
        snap.limit += s.limit;
        snap.limiterInFlight += s.limiterInFlight;
        if (s.limiterMinRtt > 0)
            snap.limiterMinRtt = std::min(snap.limiterMinRtt,
                                          s.limiterMinRtt);
        gradient_sum += s.limiterGradient;
        snap.limiterSheds += s.limiterSheds;
        snap.limiterBackoffs += s.limiterBackoffs;
    }
    if (snap.limiterMinRtt == sim::kTickNever)
        snap.limiterMinRtt = 0; // no cell has sampled yet
    snap.limiterGradient =
        gradient_sum / static_cast<double>(cells_.size());
    return snap;
}

std::uint64_t
ShardedPlatform::eventsExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &cell : cells_)
        total += cell->simulation().events().executed();
    return total;
}

std::uint64_t
ShardedPlatform::schedulerDecisions() const
{
    std::uint64_t total = 0;
    for (const auto &cell : cells_)
        total += cell->schedulerDecisions();
    return total;
}

std::int64_t
ShardedPlatform::queuedRequests() const
{
    std::int64_t total = 0;
    for (const auto &cell : cells_)
        total += cell->queuedRequests();
    return total;
}

std::int64_t
ShardedPlatform::inFlightRequests() const
{
    std::int64_t total = 0;
    for (const auto &cell : cells_)
        total += cell->inFlightRequests();
    return total;
}

int
ShardedPlatform::liveInstanceCount() const
{
    int total = 0;
    for (const auto &cell : cells_)
        total += cell->liveInstanceCount();
    return total;
}

} // namespace infless::core
