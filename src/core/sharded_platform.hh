/**
 * @file
 * Cell-partitioned control plane for very large fleets.
 *
 * One flat Platform serializes every scheduling decision, timer and
 * metric update of the whole cluster through a single event queue; at
 * 100k servers that queue is the bottleneck. ShardedPlatform splits the
 * fleet into independent *cells* — each a full Platform over a
 * contiguous server slice with its own CapacityIndex, EventQueue and
 * metrics shard — fronted by a power-of-two-choices router over
 * per-cell load digests.
 *
 * Time synchronization is conservative: cells advance in lockstep
 * windows, and everything that crosses a cell boundary — router digest
 * refreshes, newly routed arrivals, queued crash/recovery commands,
 * server migrations between cells (CellRebalancer) — is exchanged only
 * at the window barriers. Within a window each cell touches nothing but
 * its own state, so the cells run concurrently on a WorkerPool and the
 * run is byte-identical for every thread count.
 *
 * The partition seeds contiguous, but it is not frozen: when one cell
 * runs persistently hot (skewed/pinned traffic the router cannot
 * steer), the rebalancer migrates idle servers from the coldest cells
 * into the straggler at barriers, bounded per window, with the
 * CellMembership map keeping global ids stable throughout.
 *
 * Determinism contract:
 *  - cells=1 delegates every call to the inner flat Platform (traces
 *    injected upfront, one run) and is bit-identical to using Platform
 *    directly.
 *  - multi-cell runs depend only on (seed, cells, windowTicks, call
 *    sequence): all barrier work runs serially in cell order and the
 *    router draws from its own RNG stream.
 */

#ifndef INFLESS_CORE_SHARDED_PLATFORM_HH
#define INFLESS_CORE_SHARDED_PLATFORM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cell_partition.hh"
#include "cluster/cell_rebalancer.hh"
#include "cluster/cell_router.hh"
#include "core/platform.hh"
#include "sim/worker_pool.hh"

namespace infless::core {

/** Sharding configuration. */
struct CellOptions
{
    /** Number of cells; 1 = delegate to a single flat Platform. */
    std::size_t cells = 1;
    /**
     * Lockstep window length = digest refresh epoch. Shorter windows
     * give the router a fresher view at the cost of more barriers; the
     * default matches the reactive-scale-out backoff so spillover
     * signals propagate within one backoff period.
     */
    sim::Tick windowTicks = 250 * sim::kTicksPerMs;
    /** Worker threads for the per-cell engines; 0 = WorkerPool default
     *  (INFLESS_CELL_THREADS, else hardware concurrency), clamped to
     *  the cell count. */
    std::size_t threads = 0;
    /**
     * Slow-timescale server migration between cells (off by default;
     * disabled is byte-identical to not having the subsystem). Decisions
     * consume only deterministic per-window load signals, so enabling it
     * keeps runs byte-identical across worker-thread counts.
     */
    cluster::RebalanceConfig rebalance;
};

/**
 * A cluster of scheduling cells behind one Platform-shaped facade.
 */
class ShardedPlatform
{
  public:
    /**
     * @param num_servers Total fleet size, split into near-equal
     *        contiguous slices (one per cell).
     */
    ShardedPlatform(std::size_t num_servers, PlatformOptions opts = {},
                    CellOptions cell_opts = {});
    ~ShardedPlatform();

    ShardedPlatform(const ShardedPlatform &) = delete;
    ShardedPlatform &operator=(const ShardedPlatform &) = delete;

    // Deployment and workload ----------------------------------------------

    /** Deploy a function into every cell; returns its (shared) id. */
    FunctionId deploy(const FunctionSpec &spec);

    /**
     * Inject a pre-materialized arrival trace. With one cell this goes
     * straight to the flat platform; with several the arrivals are
     * routed window by window as the run reaches them.
     */
    void injectTrace(FunctionId fn, workload::ArrivalTrace trace);

    /** Materialize and inject a rate series (Poisson arrivals). */
    void injectRateSeries(FunctionId fn,
                          const workload::RateSeries &series);

    /**
     * Pin a function's arrivals to one cell: they bypass the
     * power-of-two-choices router entirely. Models affinity traffic
     * (data locality, regulatory placement, sticky sessions) that the
     * router cannot steer — the workload class only rebalancing, not
     * routing, can absorb. No-op with a single cell.
     */
    void pinFunction(FunctionId fn, std::size_t cell);

    /**
     * Advance the whole cluster to an absolute tick.
     *
     * Multi-cell: loops lockstep windows — apply any rebalance plan,
     * refresh router digests, apply queued fault commands, route the
     * window's arrivals, then run every cell to the window end on the
     * worker pool.
     */
    void run(sim::Tick until);

    // Fault control plane --------------------------------------------------

    /**
     * Queue a crash of global server @p id at tick @p at; applied at
     * the first window barrier at or after @p at (conservative sync —
     * never mid-window). Commands beyond the current run() horizon
     * stay queued for the next run().
     */
    void scheduleServerCrash(cluster::ServerId id, sim::Tick at);

    /** Queue a recovery of global server @p id at tick @p at. */
    void scheduleServerRecovery(cluster::ServerId id, sim::Tick at);

    // Introspection --------------------------------------------------------

    std::size_t cellCount() const { return cells_.size(); }
    const Platform &cell(std::size_t i) const { return *cells_[i]; }
    const cluster::CellRouter &router() const { return *router_; }

    /** The dynamic global-id <-> (cell, local) ownership map. */
    const cluster::CellMembership &membership() const
    {
        return membership_;
    }

    /** Servers cell @p i currently owns. */
    std::size_t cellServers(std::size_t i) const
    {
        return membership_.size(i);
    }

    /** The straggler detector (state + lifetime order count). */
    const cluster::CellRebalancer &rebalancer() const
    {
        return rebalancer_;
    }

    /** Servers actually migrated over the run (executed, not ordered —
     *  drain-deferred moves count once they happen). */
    std::int64_t cellMigrations() const { return migrationsTotal_; }

    /** Imbalance ratio observed at each rebalance barrier, in order. */
    const std::vector<double> &imbalanceHistory() const
    {
        return imbalanceHistory_;
    }

    /** Servers migrated at each rebalance barrier, in order. */
    const std::vector<std::int64_t> &migrationHistory() const
    {
        return migrationHistory_;
    }

    std::size_t totalServers() const { return numServers_; }
    sim::Tick endTime() const { return endTime_; }
    std::size_t functionCount() const { return cells_[0]->functionCount(); }

    /**
     * Cross-cell SLO health: cluster windows merged serially in cell
     * order after every lockstep window, so burn rates, alerts and
     * attribution describe fleet-wide budget and are byte-identical at
     * every worker-thread count. cells=1 delegates to the flat monitor.
     */
    const obs::SloHealthCore &sloHealth() const;

    /**
     * The flight recorder whose dump best explains the run: the
     * earliest-triggered cell's (ties to the lowest cell index), or
     * cell 0's when nothing triggered.
     */
    const obs::FlightRecorder &flightRecorder() const;

    /** Aggregate metrics over all cells (cells=1: the flat metrics). */
    const metrics::RunMetrics &totalMetrics() const;

    /** Merged metrics of one function across cells. */
    const metrics::RunMetrics &functionMetrics(FunctionId fn) const;

    /**
     * Cross-cell overload state of one function. Counters, retry tokens,
     * the concurrency limit and the in-flight count sum over cells (the
     * limits are per-function-per-cell, so the sum is the fleet-wide
     * allowance); the minRTT baseline takes the min over cells that have
     * sampled, the gradient the mean; the breaker state reports the most
     * severe cell and brownout is active if any cell is degraded.
     * cells=1 delegates to the flat platform's snapshot.
     */
    OverloadSnapshot overloadSnapshot(FunctionId fn) const;

    /** Events executed across every cell's engine. */
    std::uint64_t eventsExecuted() const;

    /** Scheduling passes run across every cell's scheduler. */
    std::uint64_t schedulerDecisions() const;

    /** Requests waiting in batch queues across all cells. */
    std::int64_t queuedRequests() const;

    /** Admitted-but-unsettled requests across all cells. */
    std::int64_t inFlightRequests() const;

    /** Live instances across all cells. */
    int liveInstanceCount() const;

    /** Requests routed to cell @p i over the whole run. */
    std::int64_t routedTo(std::size_t i) const { return routedTotal_[i]; }

  private:
    /** One injected trace awaiting routing (multi-cell only). */
    struct PendingFeed
    {
        FunctionId fn;
        workload::ArrivalTrace trace;
        std::size_t cursor = 0;
    };

    /** A queued cross-cell fault command. */
    struct FaultCommand
    {
        cluster::ServerId server;
        sim::Tick at;
        bool down;
    };

    bool delegated() const { return cells_.size() == 1; }

    /** Map a global server id to (cell, local id). */
    std::pair<std::size_t, cluster::ServerId>
    locate(cluster::ServerId global) const;

    /** Serial barrier work: rebalance, digests, fault commands,
     *  routing. */
    void barrier(sim::Tick window_end, sim::Tick until);
    void applyRebalance();
    /** Execute one migration order; returns servers actually moved. */
    std::size_t applyMigration(const cluster::MigrationOrder &order);
    void refreshRouter();
    void routeArrivals(sim::Tick window_end, sim::Tick until);
    void applyFaultCommands(sim::Tick barrier_tick);
    /** Expand due correlated outages into per-server fault commands. */
    void expandDomainOutages(sim::Tick barrier_tick);
    /** Serially absorb every cell's newly closed SLO windows. */
    void absorbSloHealth();
    void rebuildMerged() const;

    std::size_t numServers_ = 0;
    CellOptions cellOpts_;
    double beta_;
    cluster::CellMembership membership_;
    cluster::CellRebalancer rebalancer_;
    std::vector<std::unique_ptr<Platform>> cells_;
    std::unique_ptr<cluster::CellRouter> router_;
    std::unique_ptr<sim::WorkerPool> pool_;
    /** Workload materialization stream (multi-cell injectRateSeries). */
    sim::Rng workloadRng_;

    std::vector<PendingFeed> pending_;
    std::vector<FaultCommand> faultCommands_;
    /** Fleet topology, for expanding zone outages to member servers and
     *  re-deriving domains from global ids after migrations. */
    cluster::TopologyConfig topology_;
    /**
     * Root-seeded correlated-outage schedule (multi-cell only). The
     * per-cell injectors have their domain-outage fields cleared, so the
     * fleet sees exactly ONE schedule — identical to the flat platform's
     * — however many cells partition it.
     */
    std::unique_ptr<faults::DomainOutageStream> domainStream_;
    faults::DomainOutageEvent pendingOutage_;
    /** Gray exec multiplier per GLOBAL id (empty = gray disabled);
     *  reapplied to the receiving cell after every migration. */
    std::vector<double> grayByGlobal_;
    /** Pinned functions: fn -> cell (arrivals bypass the router). */
    std::map<FunctionId, std::size_t> pins_;
    /** drops+sheds baseline per cell for the digest's pressure delta. */
    std::vector<std::int64_t> lastDropStat_;
    std::vector<std::int64_t> routedTotal_;
    /** events-executed baseline per cell for the load signal's delta. */
    std::vector<std::uint64_t> lastEvents_;
    /** Servers moved over the run, and the per-barrier series. */
    std::int64_t migrationsTotal_ = 0;
    std::vector<double> imbalanceHistory_;
    std::vector<std::int64_t> migrationHistory_;

    sim::Tick cursor_ = 0;
    sim::Tick endTime_ = 0;

    /** Cluster-level SLO window merge (multi-cell only). */
    obs::SloHealthMerge mergedSlo_;

    /** Lazily rebuilt cross-cell merges (multi-cell only). */
    mutable metrics::RunMetrics merged_;
    mutable std::vector<metrics::RunMetrics> mergedFn_;
    mutable bool mergedDirty_ = true;
};

} // namespace infless::core

#endif // INFLESS_CORE_SHARDED_PLATFORM_HH
