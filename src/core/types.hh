/**
 * @file
 * Shared core types: function specs and request records.
 */

#ifndef INFLESS_CORE_TYPES_HH
#define INFLESS_CORE_TYPES_HH

#include <cstdint>
#include <string>

#include "sim/time.hh"

namespace infless::core {

/** Index of a deployed function within a platform. */
using FunctionId = std::int32_t;

/** Sentinel for "no function". */
constexpr FunctionId kNoFunction = -1;

/**
 * What a developer declares when deploying an inference function — the
 * template of Fig. 5: the model and a latency SLO. Everything else
 * (batchsize, resources, scaling) is the platform's job.
 */
struct FunctionSpec
{
    /** Function name (unique per platform). */
    std::string name;
    /** Model-zoo model backing the function. */
    std::string model;
    /** End-to-end latency SLO. */
    sim::Tick sloTicks = 200 * sim::kTicksPerMs;
    /** Largest batchsize the platform may use (paper caps at 32). */
    int maxBatch = 32;
};

/** Index of a deployed function chain within a platform. */
using ChainId = std::int32_t;

/** Sentinel for "not part of a chain". */
constexpr ChainId kNoChain = -1;

/** How a chain's end-to-end SLO is divided among its stages. */
enum class SloSplit
{
    /** Each stage gets a share proportional to its predicted execution
     *  time (slow stages get more budget). */
    Proportional,
    /** Every stage gets an equal share. */
    Equal
};

/**
 * An inference function chain (the paper's §7 future work): stages
 * execute in sequence, each stage's output feeding the next, under one
 * end-to-end latency SLO.
 */
struct ChainSpec
{
    std::string name;
    /** Stage models, in execution order. */
    std::vector<std::string> models;
    /** End-to-end latency SLO across all stages. */
    sim::Tick sloTicks = 400 * sim::kTicksPerMs;
    /** Stage-budget policy. */
    SloSplit split = SloSplit::Proportional;
    /** Largest batchsize any stage may use. */
    int maxBatch = 32;
};

/**
 * Per-request bookkeeping kept by the platform from arrival to
 * completion.
 */
struct RequestRecord
{
    FunctionId function = kNoFunction;
    sim::Tick arrival = 0;

    /** Chain membership (kNoChain for plain function requests). */
    ChainId chain = kNoChain;
    /** Stage index within the chain. */
    int stage = 0;
    /** Arrival time at the head of the chain (end-to-end latency base). */
    sim::Tick rootArrival = 0;
    /** Latency parts accumulated over completed stages. */
    sim::Tick coldAccum = 0;
    sim::Tick queueAccum = 0;
    sim::Tick execAccum = 0;
    sim::Tick batchAccum = 0;

    /** Re-dispatches already consumed after failures (retry budget). */
    int retries = 0;
    /** Whether the request was ever re-dispatched (failover accounting:
     *  set on retry, cleared when the completion is counted). */
    bool retried = false;
    /**
     * Whether this request holds a slot in its function's adaptive
     * concurrency limiter. Set when the ingress gate acquires, cleared
     * exactly once on the terminal paths (completion or drop), so
     * crash retries re-entering routing never double-acquire.
     */
    bool limiterHeld = false;
};

} // namespace infless::core

#endif // INFLESS_CORE_TYPES_HH
