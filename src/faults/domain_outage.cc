#include "faults/domain_outage.hh"

#include <algorithm>

#include "faults/fault_injector.hh"
#include "sim/logging.hh"

namespace infless::faults {

namespace {

// Substreams of the fault RNG family (base key kFaultStreamKey =
// 0xFA17'AB1E'0000'0001 in fault_injector.cc): +3 drives the domain
// outage schedule, +4 keys gray-failure membership. Both must stay
// disjoint from the startup (+0), straggler (+1) and per-server crash
// (+2) streams so enabling one class never shifts another.
constexpr std::uint64_t kDomainOutageStreamKey = 0xFA17'AB1E'0000'0004ULL;
constexpr std::uint64_t kGrayStreamKey = 0xFA17'AB1E'0000'0005ULL;

} // namespace

DomainOutageStream::DomainOutageStream(const FaultProfile &profile,
                                       std::uint64_t seed,
                                       std::size_t num_zones)
    : rng_(sim::hashCombine(seed, kDomainOutageStreamKey)),
      numZones_(num_zones), mtbfSec_(profile.domainOutageMtbfSec),
      mttrSec_(profile.domainOutageMttrSec),
      scriptedAt_(profile.domainOutageAt),
      scriptedZone_(profile.domainOutageTarget),
      horizon_(profile.crashHorizon),
      scriptedPending_(profile.domainOutageAt != sim::kTickNever)
{
    sim::simAssert(!profile.domainOutagesEnabled() || num_zones > 0,
                   "domain outages need a topology with zones");
    sim::simAssert(mttrSec_ > 0.0, "domain outages need a positive MTTR");
}

DomainOutageEvent
DomainOutageStream::next()
{
    DomainOutageEvent ev;
    if (numZones_ == 0)
        return ev;
    if (scriptedPending_) {
        // The scripted one-shot is fully deterministic: fixed start,
        // fixed repair after exactly the MTTR (no draw), so bench
        // scenarios can line modes up against the same outage window.
        scriptedPending_ = false;
        if (scriptedAt_ <= horizon_) {
            ev.at = scriptedAt_;
            ev.zone = static_cast<cluster::DomainId>(
                static_cast<std::size_t>(
                    std::max<cluster::DomainId>(scriptedZone_, 0)) %
                numZones_);
            ev.repairAt =
                ev.at + std::max<sim::Tick>(1, sim::secToTicks(mttrSec_));
            cursor_ = ev.repairAt;
            return ev;
        }
    }
    if (mtbfSec_ <= 0.0)
        return ev; // no stochastic outages configured
    double gap_sec = rng_.exponential(1.0 / mtbfSec_);
    sim::Tick at =
        cursor_ + std::max<sim::Tick>(1, sim::secToTicks(gap_sec));
    if (at > horizon_)
        return ev; // past the horizon: the outage process ends
    ev.at = at;
    ev.zone = static_cast<cluster::DomainId>(rng_.uniformInt(
        0, static_cast<std::int64_t>(numZones_) - 1));
    double repair_sec = rng_.exponential(1.0 / mttrSec_);
    ev.repairAt =
        at + std::max<sim::Tick>(1, sim::secToTicks(repair_sec));
    cursor_ = ev.repairAt;
    return ev;
}

double
grayExecMultiplier(const FaultProfile &profile, std::uint64_t seed,
                   cluster::ServerId global_id)
{
    if (!profile.grayEnabled() || global_id < 0)
        return 1.0;
    sim::Rng rng(sim::hashCombine(
        sim::hashCombine(seed, kGrayStreamKey),
        static_cast<std::uint64_t>(global_id)));
    return rng.uniform() < profile.grayFraction ? profile.grayFactor
                                                : 1.0;
}

} // namespace infless::faults
