/**
 * @file
 * Correlated failure-domain outages and persistent gray failures.
 *
 * Two fault classes the i.i.d. per-server model (fault_injector.hh)
 * cannot express:
 *
 *  - **Domain outages**: every server in one zone crashes at once (PDU
 *    trip, cooling loss, switch failure) and the zone repairs together.
 *    The outage *schedule* is a pure function of (profile, seed), drawn
 *    from its own RNG substream by DomainOutageStream — so the flat
 *    platform and the sharded platform (which expands outages into
 *    per-cell fault commands at window barriers) produce the identical
 *    schedule, and per-server crash streams are never perturbed.
 *  - **Gray failures**: a seeded subset of servers serves every batch
 *    slower by a lasting multiplier, without ever crashing. Membership
 *    is a pure function of (profile, seed, global server id): no events
 *    are scheduled and no stream is consumed, mirroring the
 *    mispredicted-profile fault (profile_error.hh).
 */

#ifndef INFLESS_FAULTS_DOMAIN_OUTAGE_HH
#define INFLESS_FAULTS_DOMAIN_OUTAGE_HH

#include <cstddef>
#include <cstdint>

#include "cluster/topology.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace infless::faults {

struct FaultProfile;

/** One correlated outage: a zone dies at @p at, repairs at @p repairAt. */
struct DomainOutageEvent
{
    sim::Tick at = sim::kTickNever;
    cluster::DomainId zone = cluster::kNoDomain;
    sim::Tick repairAt = sim::kTickNever;

    bool valid() const { return at != sim::kTickNever; }
};

/**
 * The deterministic sequence of domain outages for one run.
 *
 * Consumes a dedicated substream of the fault RNG (never the per-server
 * crash streams). Emits the scripted one-shot outage first (if
 * configured), then stochastic outages with exponential inter-outage
 * gaps and uniformly sampled victim zones. Outages are sequential —
 * the next begins only after the previous repairs — and the crash
 * horizon caps new outages exactly like per-server crashes.
 */
class DomainOutageStream
{
  public:
    /**
     * @param profile Fault surface (domain-outage fields).
     * @param seed Run seed — the ROOT seed, not a per-cell derivation,
     *        so every sharding of the same run sees the same schedule.
     * @param num_zones Topology zone count (victim sample space).
     */
    DomainOutageStream(const FaultProfile &profile, std::uint64_t seed,
                       std::size_t num_zones);

    /**
     * Advance to the next outage. Returns an invalid event once the
     * horizon is passed (or when the stream was never enabled).
     */
    DomainOutageEvent next();

  private:
    sim::Rng rng_;
    std::size_t numZones_;
    double mtbfSec_;
    double mttrSec_;
    sim::Tick scriptedAt_;
    cluster::DomainId scriptedZone_;
    sim::Tick horizon_;
    /** End of the previous outage (stochastic gaps start here). */
    sim::Tick cursor_ = 0;
    bool scriptedPending_;
};

/**
 * Gray-failure membership and severity for one server: the lasting
 * exec-time multiplier (1.0 for healthy servers). Pure function of
 * (profile, seed, global id) — schedules nothing, draws from no shared
 * stream — so enabling it perturbs no other stochastic component, and
 * a migrated server keeps its affliction.
 */
double grayExecMultiplier(const FaultProfile &profile, std::uint64_t seed,
                          cluster::ServerId global_id);

} // namespace infless::faults

#endif // INFLESS_FAULTS_DOMAIN_OUTAGE_HH
