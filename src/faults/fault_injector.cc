#include "faults/fault_injector.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace infless::faults {

namespace {

/** Stream key separating the fault RNG from every other seed derivation
 *  (workload feeds use small per-function keys off the root stream). */
constexpr std::uint64_t kFaultStreamKey = 0xFA17'AB1E'0000'0001ULL;

} // namespace

FaultInjector::FaultInjector(sim::Simulation &sim,
                             const FaultProfile &profile,
                             std::uint64_t seed, std::size_t num_servers,
                             std::size_t num_zones)
    : sim_(sim), profile_(profile), seed_(seed),
      startupRng_(sim::hashCombine(seed, kFaultStreamKey)),
      stragglerRng_(sim::hashCombine(seed, kFaultStreamKey + 1))
{
    sim::simAssert(!profile_.crashesEnabled() ||
                       profile_.serverMttrSec > 0.0,
                   "server crashes need a positive MTTR");
    sim::simAssert(profile_.startupFailureProb >= 0.0 &&
                       profile_.startupFailureProb < 1.0 + 1e-12,
                   "startup failure probability out of [0,1]");
    sim::simAssert(profile_.stragglerProb >= 0.0 &&
                       profile_.stragglerProb <= 1.0,
                   "straggler probability out of [0,1]");
    sim::simAssert(profile_.stragglerFactor >= 1.0,
                   "straggler factor must be >= 1");
    serverRng_.reserve(num_servers);
    for (std::size_t s = 0; s < num_servers; ++s)
        serverRng_.push_back(serverStream(s));
    if (profile_.domainOutagesEnabled())
        domainStream_ = std::make_unique<DomainOutageStream>(
            profile_, seed, num_zones);
}

sim::Rng
FaultInjector::serverStream(std::uint64_t server) const
{
    return sim::Rng(
        sim::hashCombine(sim::hashCombine(seed_, kFaultStreamKey + 2),
                         server));
}

void
FaultInjector::start(Hooks hooks)
{
    hooks_ = std::move(hooks);
    started_ = true;
    if (domainStream_)
        scheduleNextDomainOutage();
    if (!profile_.crashesEnabled())
        return;
    for (std::size_t s = 0; s < serverRng_.size(); ++s)
        scheduleCrash(s);
}

void
FaultInjector::addServer(cluster::ServerId id)
{
    sim::simAssert(id >= 0 && static_cast<std::size_t>(id) ==
                                  serverRng_.size(),
                   "fault surface must grow contiguously (got server ",
                   id, ", expected ", serverRng_.size(), ")");
    serverRng_.push_back(serverStream(static_cast<std::uint64_t>(id)));
    if (started_ && profile_.crashesEnabled())
        scheduleCrash(static_cast<std::size_t>(id));
}

void
FaultInjector::scheduleCrash(std::size_t server)
{
    double gap_sec =
        serverRng_[server].exponential(1.0 / profile_.serverMtbfSec);
    sim::Tick when =
        sim_.now() + std::max<sim::Tick>(1, sim::secToTicks(gap_sec));
    if (when > profile_.crashHorizon)
        return; // past the horizon: this server's crash process ends
    sim_.atFixed(when, [this, server] { crashServer(server); });
}

void
FaultInjector::crashServer(std::size_t server)
{
    ++crashes_;
    auto id = static_cast<cluster::ServerId>(server);
    if (hooks_.serverCrash)
        hooks_.serverCrash(id);

    double repair_sec =
        serverRng_[server].exponential(1.0 / profile_.serverMttrSec);
    sim::Tick repair = std::max<sim::Tick>(1, sim::secToTicks(repair_sec));
    sim::logInfo("fault: server ", id, " crashed at t=",
                 sim::ticksToSec(sim_.now()), "s, repair in ",
                 sim::ticksToSec(repair), "s");
    sim_.afterFixed(repair, [this, server, id] {
        ++recoveries_;
        sim::logInfo("fault: server ", id, " recovered at t=",
                     sim::ticksToSec(sim_.now()), "s");
        if (hooks_.serverRecover)
            hooks_.serverRecover(id);
        scheduleCrash(server);
    });
}

void
FaultInjector::scheduleNextDomainOutage()
{
    DomainOutageEvent ev = domainStream_->next();
    if (!ev.valid())
        return; // horizon passed: the outage process ends
    sim::Tick at = std::max(ev.at, sim_.now() + 1);
    sim::Tick repair_at = std::max(ev.repairAt, at + 1);
    sim_.atFixed(at, [this, ev, repair_at] {
        ++domainOutages_;
        sim::logInfo("fault: zone ", ev.zone, " outage at t=",
                     sim::ticksToSec(sim_.now()), "s, repair at t=",
                     sim::ticksToSec(repair_at), "s");
        if (hooks_.domainOutage)
            hooks_.domainOutage(ev.zone);
        sim_.atFixed(repair_at, [this, ev] {
            ++domainRepairs_;
            sim::logInfo("fault: zone ", ev.zone, " repaired at t=",
                         sim::ticksToSec(sim_.now()), "s");
            if (hooks_.domainRepair)
                hooks_.domainRepair(ev.zone);
            // Outages are sequential: the next gap starts at repair.
            scheduleNextDomainOutage();
        });
    });
}

bool
FaultInjector::startupFails()
{
    if (profile_.startupFailureProb <= 0.0)
        return false;
    bool fails = startupRng_.bernoulli(profile_.startupFailureProb);
    if (fails)
        ++startupFailures_;
    return fails;
}

sim::Tick
FaultInjector::stretchExec(sim::Tick exec_time)
{
    if (!profile_.stragglersEnabled())
        return exec_time;
    if (!stragglerRng_.bernoulli(profile_.stragglerProb))
        return exec_time;
    ++stragglers_;
    return static_cast<sim::Tick>(static_cast<double>(exec_time) *
                                  profile_.stragglerFactor);
}

} // namespace infless::faults
