/**
 * @file
 * Deterministic fault injection for the simulated cluster.
 *
 * Real deployments of the paper's platform (OpenFaaS on Kubernetes) lose
 * nodes and containers continuously; this module reproduces that failure
 * surface inside the simulation. Three fault classes are modeled:
 *
 *  - **Server crash/recovery**: each server fails after an exponential
 *    MTBF draw and repairs after an exponential MTTR draw, forever (or
 *    until `crashHorizon`). The control-plane reaction — killing resident
 *    instances, releasing resources, failing over requests — lives in
 *    `core::Platform`; the injector only schedules the events and invokes
 *    hooks.
 *  - **Container startup failures**: each cold start aborts with
 *    probability `startupFailureProb` and re-enters the cold-start path,
 *    paying the full penalty again.
 *  - **Transient stragglers**: each batch execution is stretched by
 *    `stragglerFactor` with probability `stragglerProb` (a slow replica,
 *    noisy neighbor or thermal event).
 *
 * All randomness comes from a dedicated RNG stream derived directly from
 * the run seed — never from the simulation's root stream — so enabling or
 * reconfiguring faults cannot perturb workload arrival times or any other
 * stochastic component. With a disabled profile the injector schedules no
 * events and draws nothing: a zero-rate run is bit-identical to a run
 * without the subsystem.
 */

#ifndef INFLESS_FAULTS_FAULT_INJECTOR_HH
#define INFLESS_FAULTS_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/server.hh"
#include "cluster/topology.hh"
#include "faults/domain_outage.hh"
#include "faults/profile_error.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace infless::faults {

/** Everything tunable about the injected failure surface. */
struct FaultProfile
{
    /** Mean time between failures of one server, seconds (0 = never). */
    double serverMtbfSec = 0.0;
    /** Mean time to repair a crashed server, seconds. */
    double serverMttrSec = 300.0;
    /** Probability one cold-start attempt aborts and must restart. */
    double startupFailureProb = 0.0;
    /** Probability one batch execution is a straggler. */
    double stragglerProb = 0.0;
    /** Execution-time multiplier applied to straggler batches. */
    double stragglerFactor = 1.0;
    /**
     * No new crashes after this tick (recoveries still complete). Bench
     * runs set this to the trace end so every lost request can finish
     * its retry chain inside the drain grace period.
     */
    sim::Tick crashHorizon = sim::kTickNever;
    /**
     * Mispredicted-profile fault: seeded multiplicative error on the
     * latency surface the controllers see (scheduler, dispatcher,
     * static admission), never the one execution prices batches with.
     * Unlike the event faults above it schedules nothing and draws no
     * randomness, so it is deliberately excluded from enabled() — the
     * platform wires it into the predictor directly.
     */
    ProfileErrorConfig profileError;

    // Correlated domain outages (require a topology with zones) -------------

    /** Mean time between zone-wide outages, seconds (0 = never). */
    double domainOutageMtbfSec = 0.0;
    /** Mean time to repair a zone outage, seconds. */
    double domainOutageMttrSec = 600.0;
    /**
     * Scripted one-shot outage: the zone @p domainOutageTarget dies at
     * exactly this tick and repairs after exactly domainOutageMttrSec
     * (no draw). kTickNever disables. Bench scenarios use this to line
     * every mode up against the same outage window.
     */
    sim::Tick domainOutageAt = sim::kTickNever;
    /** Victim zone of the scripted outage (wrapped into [0, zones)). */
    std::int32_t domainOutageTarget = 0;

    // Persistent gray failures ----------------------------------------------

    /**
     * Gray-failure mode: each server is gray with this probability
     * (seeded by global id) and then serves EVERY batch grayFactor
     * slower, for the whole run — distinct from the transient per-batch
     * stragglers above. Like profileError this is a pure function of
     * the seed: it schedules nothing and draws from no shared stream,
     * so it is excluded from enabled() and wired directly by the
     * platform (grayExecMultiplier in domain_outage.hh).
     */
    double grayFraction = 0.0;
    /** Execution-time multiplier applied to gray servers. */
    double grayFactor = 1.0;

    bool crashesEnabled() const { return serverMtbfSec > 0.0; }

    bool
    stragglersEnabled() const
    {
        return stragglerProb > 0.0 && stragglerFactor != 1.0;
    }

    bool
    domainOutagesEnabled() const
    {
        return domainOutageMtbfSec > 0.0 ||
               domainOutageAt != sim::kTickNever;
    }

    bool
    grayEnabled() const
    {
        return grayFraction > 0.0 && grayFactor != 1.0;
    }

    /** Whether any event-scheduling fault class is active. */
    bool
    enabled() const
    {
        return crashesEnabled() || startupFailureProb > 0.0 ||
               stragglersEnabled() || domainOutagesEnabled();
    }
};

/**
 * Schedules failure events through the simulation's event queue and
 * answers per-launch/per-batch fault draws.
 */
class FaultInjector
{
  public:
    /** Control-plane reactions to cluster-level fault events. */
    struct Hooks
    {
        std::function<void(cluster::ServerId)> serverCrash;
        std::function<void(cluster::ServerId)> serverRecover;
        /** A whole zone dies at once (correlated outage). */
        std::function<void(cluster::DomainId)> domainOutage;
        /** The zone repairs together. */
        std::function<void(cluster::DomainId)> domainRepair;
    };

    /**
     * @param sim Simulation whose clock/event queue drives the faults.
     * @param profile Failure surface configuration.
     * @param seed Run seed; the fault stream is derived from it directly
     *        (not forked from the simulation RNG), so the workload
     *        streams are untouched.
     * @param num_servers Cluster size (one crash process per server).
     * @param num_zones Topology zone count; 0 disables domain outages
     *        (required > 0 when the profile configures them).
     */
    FaultInjector(sim::Simulation &sim, const FaultProfile &profile,
                  std::uint64_t seed, std::size_t num_servers,
                  std::size_t num_zones = 0);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install hooks and schedule the initial per-server crash events. */
    void start(Hooks hooks);

    /**
     * Extend the fault surface to a server adopted after construction
     * (cell migration / fleet growth). The new server gets its own
     * crash stream keyed by its id — existing servers' schedules are
     * untouched, because every per-server stream is seeded from the id,
     * never from draw order. Ids must arrive contiguously (they are
     * append-only in Cluster).
     */
    void addServer(cluster::ServerId id);

    const FaultProfile &profile() const { return profile_; }

    bool enabled() const { return profile_.enabled(); }

    /** Draw: does this cold-start attempt abort? */
    bool startupFails();

    /**
     * Draw the straggler stretch for one batch: returns @p exec_time
     * multiplied by the straggler factor when the straggler draw hits,
     * unchanged otherwise.
     */
    sim::Tick stretchExec(sim::Tick exec_time);

    // Accounting -----------------------------------------------------------

    std::int64_t crashesScheduled() const { return crashes_; }
    std::int64_t recoveriesScheduled() const { return recoveries_; }
    std::int64_t startupFailureDraws() const { return startupFailures_; }
    std::int64_t stragglerDraws() const { return stragglers_; }
    std::int64_t domainOutagesScheduled() const { return domainOutages_; }
    std::int64_t domainRepairsScheduled() const { return domainRepairs_; }

  private:
    void scheduleCrash(std::size_t server);
    void crashServer(std::size_t server);
    void scheduleNextDomainOutage();

    /** Build the id-keyed crash stream for @p server. */
    sim::Rng serverStream(std::uint64_t server) const;

    sim::Simulation &sim_;
    FaultProfile profile_;
    Hooks hooks_;
    std::uint64_t seed_;
    bool started_ = false;

    /** Per-server crash/repair timing streams (each seeded from the
     *  server *id*, so one server's history — or the fleet growing —
     *  never shifts another's). */
    std::vector<sim::Rng> serverRng_;
    sim::Rng startupRng_;
    sim::Rng stragglerRng_;
    /** Domain-outage schedule; null when disabled. */
    std::unique_ptr<DomainOutageStream> domainStream_;

    std::int64_t crashes_ = 0;
    std::int64_t recoveries_ = 0;
    std::int64_t startupFailures_ = 0;
    std::int64_t stragglers_ = 0;
    std::int64_t domainOutages_ = 0;
    std::int64_t domainRepairs_ = 0;
};

} // namespace infless::faults

#endif // INFLESS_FAULTS_FAULT_INJECTOR_HH
