#include "faults/profile_error.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace infless::faults {

namespace {

/** Stream key separating the profile-error hashes from every other
 *  seed-derived stream (cells, router, workload, faults). */
constexpr std::uint64_t kProfileErrorKey = 0x9F0F'11E5'0E44'0000ULL;

} // namespace

double
profileErrorMultiplier(const ProfileErrorConfig &config,
                       std::uint64_t seed, std::uint64_t model_key)
{
    sim::simAssert(config.factor > 0.0,
                   "profile-error factor must be positive");
    sim::simAssert(config.jitter >= 0.0,
                   "profile-error jitter must be non-negative");
    if (!config.enabled())
        return 1.0;
    double mult = config.factor;
    if (config.jitter > 0.0) {
        std::uint64_t h = sim::hashCombine(
            sim::hashCombine(seed, kProfileErrorKey), model_key);
        // 53-bit mantissa fill -> u uniform in [0, 1), mapped to [-1, 1].
        double unit = static_cast<double>(h >> 11) *
                      (1.0 / 9007199254740992.0);
        mult *= std::exp((2.0 * unit - 1.0) * config.jitter);
    }
    return mult;
}

} // namespace infless::faults
