/**
 * @file
 * Mispredicted-profile fault: a lying latency model.
 *
 * INFless's controllers steer by the operation-level latency profile
 * (OpProfileDb composed through CopPredictor): the scheduler prices
 * candidate configurations with it, the dispatcher derives target-rate
 * windows from it, and static admission compares its predicted sojourn
 * against the SLO slack. Production profiles drift — different
 * hardware, contention, framework upgrades — and nothing in the
 * feedforward plane notices.
 *
 * This fault injects exactly that failure: a seeded multiplicative
 * error applied to the latency surface the *controllers* see, while
 * execution keeps pricing batches from the untouched ground-truth
 * surface (Platform::startBatch goes through ExecModel::trueTicks,
 * never through the predictor). factor < 1 is the dangerous direction —
 * an optimistic profiler makes the scheduler under-provision and static
 * admission over-admit; factor > 1 makes admission shed servable load.
 *
 * Deterministic: the per-model multiplier is a pure hash of
 * (seed, factor, jitter, model key). No RNG stream is consumed, so
 * enabling the fault never shifts workload arrival randomness, and a
 * factor of 1 with zero jitter is bit-identical to no fault at all
 * (the platform skips installing the distortion entirely).
 */

#ifndef INFLESS_FAULTS_PROFILE_ERROR_HH
#define INFLESS_FAULTS_PROFILE_ERROR_HH

#include <cstdint>

namespace infless::faults {

/** Configuration of the profiler-error surface (part of FaultProfile). */
struct ProfileErrorConfig
{
    /** Multiplier applied to every controller-visible prediction.
     *  1.0 = faithful profiler (fault disabled when jitter is 0 too). */
    double factor = 1.0;
    /**
     * Seeded per-model log-uniform spread around `factor`: each model's
     * multiplier is factor * exp(u * jitter) with u in [-1, 1] drawn
     * from a hash of (seed, model key). 0 = every model off by the same
     * ratio.
     */
    double jitter = 0.0;

    bool
    enabled() const
    {
        return factor != 1.0 || jitter != 0.0;
    }
};

/**
 * The deterministic per-model multiplier. @p model_key is the model's
 * stable identity (ModelInfo::noiseKey); @p seed is the run seed.
 */
double profileErrorMultiplier(const ProfileErrorConfig &config,
                              std::uint64_t seed,
                              std::uint64_t model_key);

} // namespace infless::faults

#endif // INFLESS_FAULTS_PROFILE_ERROR_HH
