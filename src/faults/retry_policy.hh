/**
 * @file
 * Failover retry policy: bounded attempts with capped exponential
 * backoff.
 *
 * When a server crash loses a request (in the batch queue or mid-batch),
 * the control plane may re-dispatch it instead of dropping it. The policy
 * bounds how often and how eagerly: each request gets at most
 * `maxAttempts` dispatch attempts in total, and the k-th retry waits
 * `initialBackoff * multiplier^(k-1)` ticks, capped at `maxBackoff` —
 * the standard gateway retry discipline (jitter is unnecessary here: the
 * simulator's determinism *is* the point).
 */

#ifndef INFLESS_FAULTS_RETRY_POLICY_HH
#define INFLESS_FAULTS_RETRY_POLICY_HH

#include <algorithm>

#include "sim/time.hh"

namespace infless::faults {

/** Re-dispatch discipline for requests lost to a failure. */
struct RetryPolicy
{
    /** Total dispatch attempts per request (1 = never retry). */
    int maxAttempts = 3;
    /** Backoff before the first retry. */
    sim::Tick initialBackoff = 10 * sim::kTicksPerMs;
    /** Upper bound on any single backoff. */
    sim::Tick maxBackoff = 2 * sim::kTicksPerSec;
    /** Growth factor between consecutive backoffs. */
    double multiplier = 2.0;

    /** Whether lost requests are re-dispatched at all. */
    bool retriesEnabled() const { return maxAttempts > 1; }

    /** A policy that drops lost requests immediately (no failover). */
    static RetryPolicy
    none()
    {
        RetryPolicy p;
        p.maxAttempts = 1;
        return p;
    }

    /**
     * Backoff before retry number @p retry (1-based): capped exponential,
     * never less than one tick so a retry cannot race the crash handler
     * that scheduled it.
     */
    sim::Tick
    backoff(int retry) const
    {
        double delay = static_cast<double>(initialBackoff);
        const double cap = static_cast<double>(maxBackoff);
        for (int i = 1; i < retry; ++i) {
            delay *= multiplier;
            if (delay >= cap)
                break;
        }
        // Saturate before the integer cast: with a large maxBackoff and
        // enough attempts, `delay` can exceed Tick range (or reach inf),
        // and converting such a double is undefined behavior. The
        // negated comparison also catches NaN from degenerate configs.
        if (!(delay < cap))
            return std::max<sim::Tick>(1, maxBackoff);
        auto ticks = static_cast<sim::Tick>(delay);
        return std::clamp<sim::Tick>(ticks, 1, maxBackoff);
    }
};

} // namespace infless::faults

#endif // INFLESS_FAULTS_RETRY_POLICY_HH
