#include "health/outlier_ejector.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace infless::health {

OutlierEjector::OutlierEjector(HealthConfig config)
    : config_(config)
{
    sim::simAssert(config_.evalPeriod > 0,
                   "health evaluation period must be positive");
    sim::simAssert(config_.emaAlpha > 0.0 && config_.emaAlpha <= 1.0,
                   "health EMA alpha out of (0,1]");
    sim::simAssert(config_.ratioThreshold >= 1.0,
                   "health ratio threshold must be >= 1");
    sim::simAssert(config_.maxEjectFraction >= 0.0 &&
                       config_.maxEjectFraction < 1.0,
                   "max ejection fraction out of [0,1)");
}

void
OutlierEjector::ensureServers(std::size_t num_servers)
{
    if (stats_.size() < num_servers)
        stats_.resize(num_servers);
}

void
OutlierEjector::recordExec(cluster::ServerId id, sim::Tick base_exec,
                           sim::Tick actual_exec)
{
    if (id < 0 || static_cast<std::size_t>(id) >= stats_.size() ||
        base_exec <= 0)
        return;
    ServerStats &s = stats_[static_cast<std::size_t>(id)];
    s.ratioSum += static_cast<double>(actual_exec) /
                  static_cast<double>(base_exec);
    ++s.ratioCount;
    ++s.lifetimeSamples;
}

void
OutlierEjector::recordSuccess(cluster::ServerId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= stats_.size())
        return;
    ++stats_[static_cast<std::size_t>(id)].successes;
}

void
OutlierEjector::recordFailure(cluster::ServerId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= stats_.size())
        return;
    ++stats_[static_cast<std::size_t>(id)].failures;
}

OutlierEjector::Actions
OutlierEjector::evaluate(
    sim::Tick now,
    const std::function<bool(cluster::ServerId)> &eligible,
    std::size_t live_servers)
{
    Actions actions;

    // Fold this window into the EMAs, then reset the window.
    for (ServerStats &s : stats_) {
        if (s.ratioCount > 0) {
            double window = s.ratioSum / static_cast<double>(s.ratioCount);
            s.ema = s.ema < 0.0 ? window
                                : config_.emaAlpha * window +
                                      (1.0 - config_.emaAlpha) * s.ema;
        }
        s.ratioSum = 0.0;
        s.ratioCount = 0;
    }

    // Probation expiry first: re-admitted servers return with fresh
    // stats, so one bad history never dooms a repaired machine.
    for (std::size_t i = 0; i < stats_.size(); ++i) {
        ServerStats &s = stats_[i];
        if (s.state != ServerHealth::Ejected ||
            now - s.ejectedAt < config_.probation)
            continue;
        s = ServerStats{}; // Healthy, unobserved
        --ejected_;
        ++readmissions_;
        actions.readmit.push_back(static_cast<cluster::ServerId>(i));
    }

    // Fleet median of the smoothed ratios over judgeable peers (the
    // comparison baseline a gray minority cannot drag with it).
    std::vector<double> emas;
    emas.reserve(stats_.size());
    for (std::size_t i = 0; i < stats_.size(); ++i) {
        const ServerStats &s = stats_[i];
        if (s.state == ServerHealth::Healthy && s.ema >= 0.0 &&
            eligible(static_cast<cluster::ServerId>(i)))
            emas.push_back(s.ema);
    }
    if (emas.empty()) {
        // Clear the outcome windows even when nobody is judgeable.
        for (ServerStats &s : stats_) {
            s.successes = 0;
            s.failures = 0;
        }
        return actions;
    }
    std::vector<double> sorted = emas;
    std::nth_element(sorted.begin(),
                     sorted.begin() +
                         static_cast<std::ptrdiff_t>(sorted.size() / 2),
                     sorted.end());
    double median = sorted[sorted.size() / 2];

    // Candidate outliers, scored by how far past the gate they are. The
    // success-rate rule catches servers that fail work outright (crash
    // loops the latency ratio never sees).
    struct Candidate
    {
        cluster::ServerId id;
        double badness;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < stats_.size(); ++i) {
        ServerStats &s = stats_[i];
        auto id = static_cast<cluster::ServerId>(i);
        if (s.state != ServerHealth::Healthy || !eligible(id))
            continue;
        double badness = 0.0;
        if (s.ema >= 0.0 && s.lifetimeSamples >= config_.minSamples &&
            median > 0.0 && s.ema > config_.ratioThreshold * median)
            badness = s.ema / median;
        std::int64_t outcomes = s.successes + s.failures;
        if (outcomes >= config_.minSamples) {
            double rate = static_cast<double>(s.successes) /
                          static_cast<double>(outcomes);
            if (rate < config_.minSuccessRate)
                badness += 1.0 - rate;
        }
        if (badness > 0.0)
            candidates.push_back({id, badness});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.badness != b.badness)
                      return a.badness > b.badness; // worst first
                  return a.id < b.id;
              });

    // Max-ejection-fraction guard: a fleet-wide slowdown must never
    // quarantine the cluster out from under the workload.
    auto max_ejected = static_cast<std::size_t>(
        std::floor(config_.maxEjectFraction *
                   static_cast<double>(live_servers)));
    for (const Candidate &c : candidates) {
        if (ejected_ >= max_ejected)
            break;
        ServerStats &s = stats_[static_cast<std::size_t>(c.id)];
        s.state = ServerHealth::Ejected;
        s.ejectedAt = now;
        ++ejected_;
        ++ejections_;
        actions.eject.push_back(c.id);
    }

    // Outcome windows reset every evaluation (success rate is a
    // windowed signal; the latency ratio carries history via the EMA).
    for (ServerStats &s : stats_) {
        s.successes = 0;
        s.failures = 0;
    }
    return actions;
}

ServerHealth
OutlierEjector::state(cluster::ServerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= stats_.size())
        return ServerHealth::Healthy;
    return stats_[static_cast<std::size_t>(id)].state;
}

double
OutlierEjector::emaRatio(cluster::ServerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= stats_.size())
        return 1.0;
    double ema = stats_[static_cast<std::size_t>(id)].ema;
    return ema < 0.0 ? 1.0 : ema;
}

} // namespace infless::health
