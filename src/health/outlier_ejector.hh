/**
 * @file
 * Per-server rolling health scoring and Envoy-style outlier ejection.
 *
 * Gray failures (domain_outage.hh) never trip the crash path: the
 * server stays up and silently serves 3-10x slower, dragging tail
 * latency and SLO attainment down. The health module closes the loop:
 * every batch execution feeds a serving-latency ratio (actual / healthy
 * predicted time for the SAME model and instance config, so
 * heterogeneous configs compare fairly) and a success/failure outcome
 * into per-server accumulators; a periodic evaluation smooths the ratio
 * with an EMA, compares each server against the fleet median, and
 * quarantines statistical outliers out of CapacityIndex candidacy
 * (drain-first, like rebalancing donors — in-flight work finishes).
 *
 * Safety valves, both Envoy-inspired: a max-ejection-fraction guard (a
 * fleet-wide slowdown must not eject everything and amplify the
 * incident) and probation-based re-admission (an ejected server returns
 * after a fixed quarantine with fresh stats; if it is still degraded it
 * re-ejects on the evidence it accumulates anew).
 *
 * The ejector is passive and deterministic: it draws no randomness and
 * schedules no events itself — the owning Platform calls evaluate() on
 * its own periodic event and applies the returned actions. All state is
 * per-cell under ShardedPlatform, so results are byte-identical across
 * worker-thread counts by construction. Disabled (the default), the
 * module records nothing and the run is bit-identical to one without it.
 */

#ifndef INFLESS_HEALTH_OUTLIER_EJECTOR_HH
#define INFLESS_HEALTH_OUTLIER_EJECTOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/server.hh"
#include "sim/time.hh"

namespace infless::health {

/** Health-scoring and ejection tunables. */
struct HealthConfig
{
    /** Master switch; off = no sampling, no events, bit-identical runs. */
    bool enabled = false;
    /** Evaluation cadence. */
    sim::Tick evalPeriod = 5 * sim::kTicksPerSec;
    /** EMA smoothing applied to each evaluation window's mean ratio. */
    double emaAlpha = 0.3;
    /** Minimum lifetime exec samples before a server can be judged. */
    std::int64_t minSamples = 20;
    /** Eject when the EMA latency ratio exceeds median * this factor. */
    double ratioThreshold = 2.0;
    /** Eject when the window success rate drops below this (with at
     *  least minSamples outcomes in the window). */
    double minSuccessRate = 0.5;
    /** Never quarantine more than this fraction of live servers. */
    double maxEjectFraction = 0.2;
    /** Quarantine duration before re-admission with fresh stats. */
    sim::Tick probation = 60 * sim::kTicksPerSec;
};

/** Health lifecycle of one server. */
enum class ServerHealth
{
    Healthy,
    Ejected
};

/**
 * Rolling per-server health state plus the ejection decision procedure.
 */
class OutlierEjector
{
  public:
    explicit OutlierEjector(HealthConfig config);

    const HealthConfig &config() const { return config_; }

    /** Grow the tracked fleet to @p num_servers (append-only ids). */
    void ensureServers(std::size_t num_servers);

    /** Feed one batch execution: @p base_exec is the healthy predicted
     *  time for this model + instance config, @p actual_exec what the
     *  simulation actually charged (gray multiplier, stragglers). */
    void recordExec(cluster::ServerId id, sim::Tick base_exec,
                    sim::Tick actual_exec);

    /** Feed one successful batch completion. */
    void recordSuccess(cluster::ServerId id);

    /** Feed one failed batch (crash-killed, dead-lettered). */
    void recordFailure(cluster::ServerId id);

    /** What one evaluation decided; the owner applies the transitions. */
    struct Actions
    {
        /** Servers to quarantine + drain, worst-first. */
        std::vector<cluster::ServerId> eject;
        /** Servers whose probation expired — re-admit. */
        std::vector<cluster::ServerId> readmit;
    };

    /**
     * Run one evaluation at @p now: fold the window accumulators into
     * the EMAs, pick ejection candidates vs the fleet median, apply the
     * max-ejection-fraction guard against @p live_servers, and expire
     * probations.
     *
     * @param eligible Whether a server may be ejected right now (the
     *        platform excludes down/retired servers — crashed machines
     *        are already out of the pool).
     */
    Actions evaluate(
        sim::Tick now,
        const std::function<bool(cluster::ServerId)> &eligible,
        std::size_t live_servers);

    // Introspection ----------------------------------------------------------

    ServerHealth state(cluster::ServerId id) const;

    /** Smoothed latency ratio (1.0 when unobserved). */
    double emaRatio(cluster::ServerId id) const;

    /** Servers currently ejected. */
    std::size_t ejectedCount() const { return ejected_; }

    std::int64_t ejections() const { return ejections_; }
    std::int64_t readmissions() const { return readmissions_; }

  private:
    struct ServerStats
    {
        /** Window accumulators, reset each evaluation. */
        double ratioSum = 0.0;
        std::int64_t ratioCount = 0;
        std::int64_t successes = 0;
        std::int64_t failures = 0;
        /** Lifetime samples since (re-)admission. */
        std::int64_t lifetimeSamples = 0;
        /** Smoothed latency ratio; < 0 == never observed. */
        double ema = -1.0;
        ServerHealth state = ServerHealth::Healthy;
        sim::Tick ejectedAt = 0;
    };

    HealthConfig config_;
    std::vector<ServerStats> stats_;
    std::size_t ejected_ = 0;
    std::int64_t ejections_ = 0;
    std::int64_t readmissions_ = 0;
};

} // namespace infless::health

#endif // INFLESS_HEALTH_OUTLIER_EJECTOR_HH
