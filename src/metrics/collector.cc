#include "metrics/collector.hh"

namespace infless::metrics {

RunMetrics::RunMetrics() = default;

void
RunMetrics::recordArrival(sim::Tick)
{
    ++arrivals_;
}

void
RunMetrics::recordCompletion(sim::Tick, const LatencyBreakdown &parts,
                             sim::Tick slo)
{
    ++completions_;
    latency_.record(parts.total());
    queueTime_.record(parts.queue);
    execTime_.record(parts.exec);
    coldTime_.record(parts.coldStart);
    batchTime_.record(parts.batchWait);
    if (slo > 0 && parts.total() > slo)
        ++sloViolations_;
}

void
RunMetrics::recordDrop(sim::Tick)
{
    ++drops_;
}

void
RunMetrics::recordLaunch(bool cold)
{
    if (cold)
        ++coldLaunches_;
    else
        ++warmLaunches_;
}

void
RunMetrics::recordBatch(int fill)
{
    ++batches_;
    batchFillSum_ += fill;
}

void
RunMetrics::recordAllocation(sim::Tick now, const cluster::Resources &alloc)
{
    cpuCores_.update(now, alloc.cpuCores());
    gpuDevices_.update(now, alloc.gpuDevices());
    memoryMb_.update(now, static_cast<double>(alloc.memoryMb));
}

void
RunMetrics::recordInstanceCount(sim::Tick now, int count)
{
    instances_.update(now, static_cast<double>(count));
}

void
RunMetrics::recordServerCrash(sim::Tick)
{
    ++serverCrashes_;
}

void
RunMetrics::recordServerRecovery(sim::Tick restore_ticks)
{
    ++serverRecoveries_;
    restoreTicksSum_ += restore_ticks;
}

void
RunMetrics::recordStartupFailure()
{
    ++startupFailures_;
}

void
RunMetrics::recordRetry(sim::Tick)
{
    ++retries_;
}

void
RunMetrics::recordFailover()
{
    ++failovers_;
}

void
RunMetrics::recordLostBatch(int requests)
{
    lostBatch_ += requests;
}

void
RunMetrics::recordShed(sim::Tick)
{
    ++sheds_;
}

void
RunMetrics::recordBreakerShed(sim::Tick)
{
    ++breakerSheds_;
}

void
RunMetrics::recordQueueEviction()
{
    ++queueEvictions_;
}

void
RunMetrics::recordRetryBudgetExhausted()
{
    ++retryBudgetExhausted_;
}

void
RunMetrics::recordBreakerOpen()
{
    ++breakerOpens_;
}

void
RunMetrics::recordBreakerClose()
{
    ++breakerCloses_;
}

void
RunMetrics::recordBrownoutEntry()
{
    ++brownoutEntries_;
}

void
RunMetrics::recordBrownoutExit()
{
    ++brownoutExits_;
}

void
RunMetrics::recordLimiterShed(sim::Tick)
{
    ++limiterSheds_;
}

void
RunMetrics::recordLimiterBackoff()
{
    ++limiterBackoffs_;
}

void
RunMetrics::recordCellMigration()
{
    ++cellMigrations_;
}

void
RunMetrics::recordHealthEjection()
{
    ++healthEjections_;
}

void
RunMetrics::recordHealthReadmission()
{
    ++healthReadmissions_;
}

void
RunMetrics::recordGrayDetection()
{
    ++grayDetections_;
}

void
RunMetrics::recordDomainOutage()
{
    ++domainOutages_;
}

sim::Tick
RunMetrics::meanRestoreTicks() const
{
    return serverRecoveries_ == 0 ? 0
                                  : restoreTicksSum_ / serverRecoveries_;
}

void
RunMetrics::recordExecCache(std::uint64_t hits, std::uint64_t misses)
{
    execCacheHits_ = hits;
    execCacheMisses_ = misses;
}

double
RunMetrics::execCacheHitRate() const
{
    std::uint64_t total = execCacheHits_ + execCacheMisses_;
    return total == 0 ? 0.0
                      : static_cast<double>(execCacheHits_) /
                            static_cast<double>(total);
}

double
RunMetrics::meanBatchFill() const
{
    return batches_ == 0 ? 0.0
                         : static_cast<double>(batchFillSum_) /
                               static_cast<double>(batches_);
}

double
RunMetrics::sloViolationRate() const
{
    std::int64_t finished = completions_ + drops_;
    if (finished == 0)
        return 0.0;
    return static_cast<double>(sloViolations_ + drops_) /
           static_cast<double>(finished);
}

double
RunMetrics::coldLaunchRate() const
{
    std::int64_t total = launches();
    return total == 0 ? 0.0
                      : static_cast<double>(coldLaunches_) /
                            static_cast<double>(total);
}

double
RunMetrics::throughputRps(sim::Tick duration) const
{
    if (duration <= 0)
        return 0.0;
    return static_cast<double>(completions_) / sim::ticksToSec(duration);
}

double
RunMetrics::cpuCoreSeconds(sim::Tick now) const
{
    return cpuCores_.integralUntil(now) / sim::kTicksPerSec;
}

double
RunMetrics::gpuDeviceSeconds(sim::Tick now) const
{
    return gpuDevices_.integralUntil(now) / sim::kTicksPerSec;
}

double
RunMetrics::meanCpuCores(sim::Tick now) const
{
    return cpuCores_.meanUntil(now);
}

double
RunMetrics::meanGpuDevices(sim::Tick now) const
{
    return gpuDevices_.meanUntil(now);
}

double
RunMetrics::meanInstances(sim::Tick now) const
{
    return instances_.meanUntil(now);
}

double
RunMetrics::memoryGbSeconds(sim::Tick now) const
{
    return memoryMb_.integralUntil(now) / sim::kTicksPerSec / 1024.0;
}

double
RunMetrics::throughputPerResource(sim::Tick duration, double beta) const
{
    double weighted_seconds =
        beta * cpuCoreSeconds(duration) + gpuDeviceSeconds(duration);
    if (weighted_seconds <= 0.0)
        return 0.0;
    // completions / weighted-resource-seconds: requests served per unit of
    // (beta-weighted) resource-time occupied.
    return static_cast<double>(completions_) / weighted_seconds;
}

void
RunMetrics::mergeCounters(const RunMetrics &other)
{
    arrivals_ += other.arrivals_;
    completions_ += other.completions_;
    drops_ += other.drops_;
    sloViolations_ += other.sloViolations_;
    coldLaunches_ += other.coldLaunches_;
    warmLaunches_ += other.warmLaunches_;
    batches_ += other.batches_;
    batchFillSum_ += other.batchFillSum_;
    serverCrashes_ += other.serverCrashes_;
    serverRecoveries_ += other.serverRecoveries_;
    startupFailures_ += other.startupFailures_;
    retries_ += other.retries_;
    failovers_ += other.failovers_;
    lostBatch_ += other.lostBatch_;
    sheds_ += other.sheds_;
    breakerSheds_ += other.breakerSheds_;
    queueEvictions_ += other.queueEvictions_;
    retryBudgetExhausted_ += other.retryBudgetExhausted_;
    breakerOpens_ += other.breakerOpens_;
    breakerCloses_ += other.breakerCloses_;
    brownoutEntries_ += other.brownoutEntries_;
    brownoutExits_ += other.brownoutExits_;
    limiterSheds_ += other.limiterSheds_;
    limiterBackoffs_ += other.limiterBackoffs_;
    cellMigrations_ += other.cellMigrations_;
    healthEjections_ += other.healthEjections_;
    healthReadmissions_ += other.healthReadmissions_;
    grayDetections_ += other.grayDetections_;
    domainOutages_ += other.domainOutages_;
    restoreTicksSum_ += other.restoreTicksSum_;
    latency_.merge(other.latency_);
    queueTime_.merge(other.queueTime_);
    execTime_.merge(other.execTime_);
    coldTime_.merge(other.coldTime_);
    batchTime_.merge(other.batchTime_);
}

void
RunMetrics::mergeShard(const RunMetrics &other, sim::Tick now)
{
    mergeCounters(other);
    cpuCores_.merge(other.cpuCores_, now);
    gpuDevices_.merge(other.gpuDevices_, now);
    memoryMb_.merge(other.memoryMb_, now);
    instances_.merge(other.instances_, now);
    execCacheHits_ += other.execCacheHits_;
    execCacheMisses_ += other.execCacheMisses_;
}

} // namespace infless::metrics
