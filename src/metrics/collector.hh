/**
 * @file
 * Per-run metric aggregation.
 *
 * Every quantity the paper's evaluation reports — throughput per occupied
 * resource, SLO violation rate, cold-start rate, latency breakdown,
 * resource-seconds — derives from one RunMetrics filled in by the
 * platform while the simulation runs.
 */

#ifndef INFLESS_METRICS_COLLECTOR_HH
#define INFLESS_METRICS_COLLECTOR_HH

#include <cstdint>
#include <map>
#include <string>

#include "cluster/resources.hh"
#include "metrics/stats.hh"
#include "sim/time.hh"

namespace infless::metrics {

/** Latency decomposition of one completed request (Fig. 15b/c). */
struct LatencyBreakdown
{
    sim::Tick coldStart = 0; ///< instance startup the request waited for
    sim::Tick queue = 0;     ///< time waiting in the batch queue
    sim::Tick exec = 0;      ///< batch execution time
    /** Portion of @ref queue spent blocked behind the instance's running
     *  batch (the batching tax, a refinement — NOT a fourth addend). */
    sim::Tick batchWait = 0;

    sim::Tick total() const { return coldStart + queue + exec; }
};

/**
 * Aggregated counters and distributions for one run (or one function).
 */
class RunMetrics
{
  public:
    RunMetrics();

    /** A request entered the system. */
    void recordArrival(sim::Tick now);

    /** A request finished; @p slo of 0 disables violation accounting. */
    void recordCompletion(sim::Tick now, const LatencyBreakdown &parts,
                          sim::Tick slo);

    /** A request was dropped (queue overrun). */
    void recordDrop(sim::Tick now);

    /** An instance launch happened; @p cold tells whether it paid a cold
     *  start. */
    void recordLaunch(bool cold);

    /** A batch of @p fill requests started executing. */
    void recordBatch(int fill);

    /** The total allocated resources changed to @p allocated at @p now. */
    void recordAllocation(sim::Tick now, const cluster::Resources &alloc);

    /** The live instance count changed. */
    void recordInstanceCount(sim::Tick now, int count);

    // Failure accounting (fault injection) --------------------------------

    /** A server crashed. */
    void recordServerCrash(sim::Tick now);

    /** A crashed server recovered after @p restore_ticks of downtime. */
    void recordServerRecovery(sim::Tick restore_ticks);

    /** A cold-start attempt aborted and restarted. */
    void recordStartupFailure();

    /** A lost request was re-dispatched (one retry attempt). */
    void recordRetry(sim::Tick now);

    /** A retried request completed (successful failover). */
    void recordFailover();

    /** @p requests were mid-batch on an instance killed by a crash. */
    void recordLostBatch(int requests);

    // Overload control plane ----------------------------------------------

    /** Admission control shed a request at ingress (fail-fast). */
    void recordShed(sim::Tick now);

    /** An open/half-open circuit breaker shed a request at ingress. */
    void recordBreakerShed(sim::Tick now);

    /** The oldest queued request was evicted for a newcomer. */
    void recordQueueEviction();

    /** A failover was denied because the retry budget ran dry. */
    void recordRetryBudgetExhausted();

    /** A circuit breaker tripped open. */
    void recordBreakerOpen();

    /** A circuit breaker closed again after successful probes. */
    void recordBreakerClose();

    /** A function entered brownout (degraded-SLO) mode. */
    void recordBrownoutEntry();

    /** A function left brownout mode. */
    void recordBrownoutExit();

    /** The adaptive concurrency limiter shed a request at ingress. */
    void recordLimiterShed(sim::Tick now);

    /** The adaptive limiter backed its limit off (timeout/drop signal). */
    void recordLimiterBackoff();

    // Sharded control plane -----------------------------------------------

    /** A server migrated between cells at a window barrier. */
    void recordCellMigration();

    // Health / failure domains --------------------------------------------

    /** The outlier ejector quarantined a degraded server. */
    void recordHealthEjection();
    /** A quarantined server finished probation and was re-admitted. */
    void recordHealthReadmission();
    /** An ejected server turned out to be ground-truth gray. */
    void recordGrayDetection();
    /** A correlated failure-domain outage hit. */
    void recordDomainOutage();

    // Latency-surface cache (simulation engine) ---------------------------

    /** Snapshot the exec-model memo's hit/miss counters (absolute values;
     *  re-recording overwrites, so repeated run() calls stay correct). */
    void recordExecCache(std::uint64_t hits, std::uint64_t misses);

    // Raw counters -------------------------------------------------------

    std::int64_t arrivals() const { return arrivals_; }
    std::int64_t completions() const { return completions_; }
    std::int64_t drops() const { return drops_; }
    std::int64_t sloViolations() const { return sloViolations_; }
    std::int64_t coldLaunches() const { return coldLaunches_; }
    std::int64_t warmLaunches() const { return warmLaunches_; }
    std::int64_t launches() const { return coldLaunches_ + warmLaunches_; }
    std::int64_t batches() const { return batches_; }
    std::int64_t serverCrashes() const { return serverCrashes_; }
    std::int64_t serverRecoveries() const { return serverRecoveries_; }
    std::int64_t startupFailures() const { return startupFailures_; }
    std::int64_t retries() const { return retries_; }
    std::int64_t failovers() const { return failovers_; }
    std::int64_t lostBatchRequests() const { return lostBatch_; }
    std::int64_t sheds() const { return sheds_; }
    std::int64_t breakerSheds() const { return breakerSheds_; }
    std::int64_t queueEvictions() const { return queueEvictions_; }
    std::int64_t retryBudgetExhausted() const
    {
        return retryBudgetExhausted_;
    }
    std::int64_t breakerOpens() const { return breakerOpens_; }
    std::int64_t breakerCloses() const { return breakerCloses_; }
    std::int64_t brownoutEntries() const { return brownoutEntries_; }
    std::int64_t brownoutExits() const { return brownoutExits_; }
    std::int64_t limiterSheds() const { return limiterSheds_; }
    std::int64_t limiterBackoffs() const { return limiterBackoffs_; }
    std::int64_t cellMigrations() const { return cellMigrations_; }
    std::int64_t healthEjections() const { return healthEjections_; }
    std::int64_t healthReadmissions() const { return healthReadmissions_; }
    std::int64_t grayDetections() const { return grayDetections_; }
    std::int64_t domainOutages() const { return domainOutages_; }
    std::uint64_t execCacheHits() const { return execCacheHits_; }
    std::uint64_t execCacheMisses() const { return execCacheMisses_; }

    /** Fraction of exec-model pricings served from the memo. */
    double execCacheHitRate() const;

    /** Mean crash-to-recovery time (time to restore capacity); 0 when no
     *  recovery has completed. */
    sim::Tick meanRestoreTicks() const;

    const LatencyHistogram &latency() const { return latency_; }
    const LatencyHistogram &queueTime() const { return queueTime_; }
    const LatencyHistogram &execTime() const { return execTime_; }
    const LatencyHistogram &coldTime() const { return coldTime_; }
    const LatencyHistogram &batchTime() const { return batchTime_; }

    /** Mean batch fill (served requests per executed batch). */
    double meanBatchFill() const;

    // Derived quantities --------------------------------------------------

    /** Fraction of completed requests that missed their SLO (drops count
     *  as violations too). */
    double sloViolationRate() const;

    /** Fraction of instance launches that were cold. */
    double coldLaunchRate() const;

    /** Completed requests per second of simulated time. */
    double throughputRps(sim::Tick duration) const;

    /** Allocated CPU integral in core-seconds up to @p now. */
    double cpuCoreSeconds(sim::Tick now) const;

    /** Allocated GPU integral in device-seconds up to @p now. */
    double gpuDeviceSeconds(sim::Tick now) const;

    /** Time-averaged CPU cores allocated. */
    double meanCpuCores(sim::Tick now) const;

    /** Time-averaged GPU devices allocated. */
    double meanGpuDevices(sim::Tick now) const;

    /** Time-averaged live instances. */
    double meanInstances(sim::Tick now) const;

    /** Allocated memory integral in GB-seconds (Fig. 3a's metric). */
    double memoryGbSeconds(sim::Tick now) const;

    /**
     * The paper's normalized throughput: completed RPS divided by the
     * weighted resources occupied (Fig. 12, Fig. 18).
     */
    double throughputPerResource(sim::Tick duration, double beta) const;

    /** Merge counters of another collector (per-function -> total). */
    void mergeCounters(const RunMetrics &other);

    /**
     * Absorb a sibling cell's shard completely: counters, histograms,
     * the time-weighted resource/instance signals (summed — cells
     * partition the fleet) and the exec-cache tallies. Both shards'
     * signals are closed at @p now, the common end of the run.
     */
    void mergeShard(const RunMetrics &other, sim::Tick now);

  private:
    std::int64_t arrivals_ = 0;
    std::int64_t completions_ = 0;
    std::int64_t drops_ = 0;
    std::int64_t sloViolations_ = 0;
    std::int64_t coldLaunches_ = 0;
    std::int64_t warmLaunches_ = 0;
    std::int64_t batches_ = 0;
    std::int64_t batchFillSum_ = 0;
    std::int64_t serverCrashes_ = 0;
    std::int64_t serverRecoveries_ = 0;
    std::int64_t startupFailures_ = 0;
    std::int64_t retries_ = 0;
    std::int64_t failovers_ = 0;
    std::int64_t lostBatch_ = 0;
    std::int64_t sheds_ = 0;
    std::int64_t breakerSheds_ = 0;
    std::int64_t queueEvictions_ = 0;
    std::int64_t retryBudgetExhausted_ = 0;
    std::int64_t breakerOpens_ = 0;
    std::int64_t breakerCloses_ = 0;
    std::int64_t brownoutEntries_ = 0;
    std::int64_t brownoutExits_ = 0;
    std::int64_t limiterSheds_ = 0;
    std::int64_t limiterBackoffs_ = 0;
    std::int64_t cellMigrations_ = 0;
    std::int64_t healthEjections_ = 0;
    std::int64_t healthReadmissions_ = 0;
    std::int64_t grayDetections_ = 0;
    std::int64_t domainOutages_ = 0;
    sim::Tick restoreTicksSum_ = 0;
    std::uint64_t execCacheHits_ = 0;
    std::uint64_t execCacheMisses_ = 0;

    LatencyHistogram latency_;
    LatencyHistogram queueTime_;
    LatencyHistogram execTime_;
    LatencyHistogram coldTime_;
    LatencyHistogram batchTime_;

    TimeWeightedMean cpuCores_;
    TimeWeightedMean gpuDevices_;
    TimeWeightedMean memoryMb_;
    TimeWeightedMean instances_;
};

} // namespace infless::metrics

#endif // INFLESS_METRICS_COLLECTOR_HH
