#include "metrics/cost_model.hh"

namespace infless::metrics {

CostReport
costFromAverages(const std::string &system, double mean_cpus,
                 double mean_gpus, double rps, const PriceSheet &prices)
{
    CostReport report;
    report.system = system;
    if (rps <= 0.0)
        return report;
    report.cpusPer100Rps = mean_cpus / (rps / 100.0);
    report.gpusPer100Rps = mean_gpus / (rps / 100.0);
    double dollars_per_second = mean_cpus * prices.cpuPerCoreHour / 3600.0 +
                                mean_gpus * prices.gpuPerHour / 3600.0;
    report.costPerRequest = dollars_per_second / rps;
    return report;
}

CostReport
computeCost(const std::string &system, const RunMetrics &metrics,
            sim::Tick duration, const PriceSheet &prices)
{
    double rps = metrics.throughputRps(duration);
    return costFromAverages(system, metrics.meanCpuCores(duration),
                            metrics.meanGpuDevices(duration), rps, prices);
}

} // namespace infless::metrics
