/**
 * @file
 * Monetary cost model (Table 4).
 *
 * The paper prices CPU at the AWS r5.2xlarge rate ($0.034 per core-hour)
 * and a 2080Ti GPU at $2.5/hour (transformed from the Tesla P100 price of
 * p3.2xlarge), then reports CPUs and GPUs consumed per 100 RPS of served
 * load and the resulting cost per request.
 */

#ifndef INFLESS_METRICS_COST_MODEL_HH
#define INFLESS_METRICS_COST_MODEL_HH

#include <string>

#include "metrics/collector.hh"
#include "sim/time.hh"

namespace infless::metrics {

/** Hourly prices. */
struct PriceSheet
{
    double cpuPerCoreHour = 0.034;
    double gpuPerHour = 2.5;
};

/** One row of Table 4. */
struct CostReport
{
    std::string system;
    double cpusPer100Rps = 0.0;
    double gpusPer100Rps = 0.0;
    double costPerRequest = 0.0;
};

/**
 * Derive a Table 4 row from run metrics.
 *
 * @param metrics Aggregate metrics of a finished run.
 * @param duration Run length.
 * @param prices Price sheet.
 */
CostReport computeCost(const std::string &system, const RunMetrics &metrics,
                       sim::Tick duration, const PriceSheet &prices = {});

/**
 * Cost per request from direct resource averages (for analytic baselines
 * like always-on EC2 provisioning).
 *
 * @param mean_cpus Average CPU cores held.
 * @param mean_gpus Average GPU devices held.
 * @param rps Served request rate.
 */
CostReport costFromAverages(const std::string &system, double mean_cpus,
                            double mean_gpus, double rps,
                            const PriceSheet &prices = {});

} // namespace infless::metrics

#endif // INFLESS_METRICS_COST_MODEL_HH
