#include "metrics/report.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace infless::metrics {

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
fmtSci(double value, int precision)
{
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << value;
    return os.str();
}

std::string
fmtPercent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    sim::simAssert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    sim::simAssert(cells.size() == headers_.size(),
                   "row arity ", cells.size(), " != header arity ",
                   headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
printHeading(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace infless::metrics
