/**
 * @file
 * Plain-text table and series printers used by the bench binaries to
 * emit the paper's rows and figure series.
 */

#ifndef INFLESS_METRICS_REPORT_HH
#define INFLESS_METRICS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace infless::metrics {

/** Format a double with @p precision fractional digits. */
std::string fmt(double value, int precision = 2);

/** Format a double in scientific notation (for Table 4 costs). */
std::string fmtSci(double value, int precision = 2);

/** Format a percentage with one fractional digit. */
std::string fmtPercent(double fraction, int precision = 1);

/**
 * Fixed-width text table.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section heading ("== Figure 12(a) ... =="). */
void printHeading(std::ostream &os, const std::string &title);

} // namespace infless::metrics

#endif // INFLESS_METRICS_REPORT_HH
