#include "metrics/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace infless::metrics {

LatencyHistogram::LatencyHistogram(double growth, sim::Tick max_value)
    : growth_(growth), logGrowth_(std::log(growth)), maxValue_(max_value)
{
    sim::simAssert(growth > 1.0, "growth factor must exceed 1");
    sim::simAssert(max_value > 0, "max value must be positive");
    std::size_t buckets =
        bucketOf(max_value) + 2; // +1 index headroom, +1 overflow
    buckets_.assign(buckets, 0);
}

std::size_t
LatencyHistogram::bucketOf(sim::Tick value) const
{
    if (value <= 1)
        return 0;
    double idx = std::log(static_cast<double>(value)) / logGrowth_;
    return static_cast<std::size_t>(idx) + 1;
}

sim::Tick
LatencyHistogram::bucketUpperEdge(std::size_t bucket) const
{
    if (bucket == 0)
        return 1;
    return static_cast<sim::Tick>(
        std::ceil(std::pow(growth_, static_cast<double>(bucket))));
}

void
LatencyHistogram::record(sim::Tick value)
{
    value = std::clamp<sim::Tick>(value, 0, maxValue_);
    std::size_t bucket = std::min(bucketOf(value), buckets_.size() - 1);
    ++buckets_[bucket];
    ++count_;
    sum_ += static_cast<double>(value);
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

double
LatencyHistogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

sim::Tick
LatencyHistogram::percentile(double p) const
{
    sim::simAssert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (count_ == 0)
        return 0;
    auto target = static_cast<std::int64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    target = std::max<std::int64_t>(1, target);
    std::int64_t seen = 0;
    for (std::size_t bucket = 0; bucket < buckets_.size(); ++bucket) {
        seen += buckets_[bucket];
        if (seen >= target)
            return std::min(bucketUpperEdge(bucket), max_);
    }
    return max_;
}

double
LatencyHistogram::fractionAbove(sim::Tick threshold) const
{
    if (count_ == 0)
        return 0.0;
    std::size_t cutoff = std::min(bucketOf(threshold), buckets_.size() - 1);
    // Buckets strictly above the threshold's bucket definitely exceed it;
    // the threshold's own bucket is ambiguous and counted conservatively
    // as "not above" only if the threshold is its upper edge.
    std::int64_t above = 0;
    for (std::size_t bucket = cutoff + 1; bucket < buckets_.size();
         ++bucket) {
        above += buckets_[bucket];
    }
    return static_cast<double>(above) / static_cast<double>(count_);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    // Equal bucket counts alone are not enough: different (growth, max)
    // pairs can coincidentally size identically yet bin differently.
    sim::simAssert(growth_ == other.growth_,
                   "merging histograms with mismatched growth factors");
    sim::simAssert(maxValue_ == other.maxValue_,
                   "merging histograms with mismatched max values");
    sim::simAssert(buckets_.size() == other.buckets_.size(),
                   "merging incompatible histograms");
    for (std::size_t bucket = 0; bucket < buckets_.size(); ++bucket)
        buckets_[bucket] += other.buckets_[bucket];
    if (other.count_ > 0) {
        if (count_ == 0) {
            min_ = other.min_;
            max_ = other.max_;
        } else {
            min_ = std::min(min_, other.min_);
            max_ = std::max(max_, other.max_);
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
TimeWeightedMean::update(sim::Tick now, double value)
{
    if (!started_) {
        started_ = true;
        start_ = last_ = now;
        value_ = value;
        return;
    }
    sim::simAssert(now >= last_, "time went backwards in stats");
    integral_ += value_ * static_cast<double>(now - last_);
    last_ = now;
    value_ = value;
}

double
TimeWeightedMean::meanUntil(sim::Tick now) const
{
    if (!started_ || now <= start_)
        return 0.0;
    double integral = integralUntil(now);
    return integral / static_cast<double>(now - start_);
}

double
TimeWeightedMean::integralUntil(sim::Tick now) const
{
    if (!started_)
        return 0.0;
    double integral = integral_;
    if (now > last_)
        integral += value_ * static_cast<double>(now - last_);
    return integral;
}

void
TimeWeightedMean::merge(const TimeWeightedMean &other, sim::Tick now)
{
    if (!other.started_)
        return;
    if (!started_) {
        *this = other;
        // Close the adopted window at the merge point so later merges
        // into this shard integrate from a consistent last_.
        update(now, value_);
        return;
    }
    sim::simAssert(now >= last_ && now >= other.last_,
                   "merge point precedes a shard's last update");
    integral_ = integralUntil(now) + other.integralUntil(now);
    value_ += other.value_;
    start_ = std::min(start_, other.start_);
    last_ = now;
}

} // namespace infless::metrics
