/**
 * @file
 * Streaming statistics primitives: counters and latency histograms with
 * percentile queries.
 */

#ifndef INFLESS_METRICS_STATS_HH
#define INFLESS_METRICS_STATS_HH

#include <cstdint>
#include <vector>

#include "sim/time.hh"

namespace infless::metrics {

/**
 * Log-bucketed histogram for latency-like quantities.
 *
 * Buckets grow geometrically, giving a bounded relative quantile error
 * (~5%) over a microsecond-to-hour range with a few hundred buckets.
 */
class LatencyHistogram
{
  public:
    /**
     * @param growth Bucket width growth factor.
     * @param max_value Largest representable value; larger samples clamp.
     */
    explicit LatencyHistogram(double growth = 1.1,
                              sim::Tick max_value = sim::kTicksPerHour);

    /** Record one sample (negative samples clamp to zero). */
    void record(sim::Tick value);

    std::int64_t count() const { return count_; }
    sim::Tick min() const { return count_ ? min_ : 0; }
    sim::Tick max() const { return count_ ? max_ : 0; }
    double mean() const;

    /**
     * Approximate percentile (p in [0, 100]); 0 when empty.
     */
    sim::Tick percentile(double p) const;

    /** Fraction of samples strictly greater than @p threshold. */
    double fractionAbove(sim::Tick threshold) const;

    /** Merge another histogram with identical parameters. */
    void merge(const LatencyHistogram &other);

    // Raw bucket access (Prometheus-native histogram export) --------------

    /** Sum of all recorded samples (after clamping). */
    double sum() const { return sum_; }

    /** Number of buckets (the last one is the overflow bucket). */
    std::size_t bucketCount() const { return buckets_.size(); }

    /** Samples recorded into bucket @p bucket. */
    std::int64_t bucketSamples(std::size_t bucket) const
    {
        return buckets_[bucket];
    }

    /** Inclusive upper bound of bucket @p bucket (its `le` edge). */
    sim::Tick bucketUpperBound(std::size_t bucket) const
    {
        return bucketUpperEdge(bucket);
    }

  private:
    std::size_t bucketOf(sim::Tick value) const;
    sim::Tick bucketUpperEdge(std::size_t bucket) const;

    double growth_;
    double logGrowth_;
    sim::Tick maxValue_;
    std::vector<std::int64_t> buckets_;
    std::int64_t count_ = 0;
    double sum_ = 0.0;
    sim::Tick min_ = 0;
    sim::Tick max_ = 0;
};

/**
 * Time-weighted average of a piecewise-constant signal (e.g. instance
 * count or allocated resources over time).
 */
class TimeWeightedMean
{
  public:
    /** Observe the signal changing to @p value at time @p now. */
    void update(sim::Tick now, double value);

    /** Close the window at @p now and return the time-weighted mean. */
    double meanUntil(sim::Tick now) const;

    /** Last recorded value. */
    double current() const { return value_; }

    /** Integral of the signal so far (up to the last update). */
    double integral() const { return integral_; }

    /** Integral up to @p now including the running segment. */
    double integralUntil(sim::Tick now) const;

    /**
     * Absorb a sibling shard's signal: afterwards this mean tracks the
     * SUM of the two signals (cells partition the fleet, so cluster-wide
     * instance counts and allocations are the sum over cells). Both
     * shards are closed at @p now; the merged window starts at the
     * earlier of the two starts.
     */
    void merge(const TimeWeightedMean &other, sim::Tick now);

  private:
    sim::Tick start_ = 0;
    sim::Tick last_ = 0;
    double value_ = 0.0;
    double integral_ = 0.0;
    bool started_ = false;
};

} // namespace infless::metrics

#endif // INFLESS_METRICS_STATS_HH
