#include "metrics/timeline.hh"

#include <ostream>

#include "sim/logging.hh"

namespace infless::metrics {

TimelineSampler::TimelineSampler(sim::Simulation &sim, sim::Tick period)
    : sim_(sim)
{
    sim::simAssert(period > 0, "sampling period must be positive");
    handle_ = sim_.every(period, [this] { sample(); });
}

TimelineSampler::~TimelineSampler()
{
    stop();
}

void
TimelineSampler::stop()
{
    if (handle_)
        handle_->stop();
}

void
TimelineSampler::track(const std::string &name, Probe probe)
{
    sim::simAssert(!probes_.count(name), "duplicate series: ", name);
    sim::simAssert(times_.empty(),
                   "track() must precede the first sample");
    names_.push_back(name);
    probes_[name] = std::move(probe);
    values_[name] = {};
}

void
TimelineSampler::trackCounter(const std::string &name, Probe probe)
{
    track(name, std::move(probe));
    counterLast_[name] = 0.0;
}

void
TimelineSampler::sample()
{
    times_.push_back(sim_.now());
    for (const auto &name : names_) {
        double v = probes_[name]();
        auto counter = counterLast_.find(name);
        if (counter != counterLast_.end()) {
            double delta = v - counter->second;
            // A cumulative counter that moved backwards was reset
            // (subsystem restart): treat the new value as a fresh ramp
            // from zero rather than reporting a negative spike.
            if (delta < 0.0)
                delta = v;
            counter->second = v;
            v = delta;
        }
        values_[name].push_back(v);
    }
}

const std::vector<double> &
TimelineSampler::series(const std::string &name) const
{
    auto it = values_.find(name);
    sim::simAssert(it != values_.end(), "unknown series: ", name);
    return it->second;
}

void
TimelineSampler::writeCsv(std::ostream &os) const
{
    os << "time_sec";
    for (const auto &name : names_)
        os << ',' << name;
    os << '\n';
    for (std::size_t row = 0; row < times_.size(); ++row) {
        os << sim::ticksToSec(times_[row]);
        for (const auto &name : names_)
            os << ',' << values_.at(name)[row];
        os << '\n';
    }
}

void
TimelineSampler::writeJson(std::ostream &os) const
{
    os << "{\n  \"time_sec\": [";
    for (std::size_t i = 0; i < times_.size(); ++i)
        os << (i ? ", " : "") << sim::ticksToSec(times_[i]);
    os << "],\n  \"series\": {";
    bool first = true;
    for (const auto &name : names_) {
        os << (first ? "\n" : ",\n") << "    \"" << name << "\": [";
        const std::vector<double> &vals = values_.at(name);
        for (std::size_t i = 0; i < vals.size(); ++i)
            os << (i ? ", " : "") << vals[i];
        os << "]";
        first = false;
    }
    os << "\n  }\n}\n";
}

} // namespace infless::metrics
