/**
 * @file
 * Periodic time-series sampling of platform state.
 *
 * Figures like Fig. 14 (provisioning over time) need per-interval
 * snapshots of running quantities. A TimelineSampler attaches a sampling
 * callback to a simulation's periodic scheduler and collects named
 * series, which can then be printed or exported as CSV.
 */

#ifndef INFLESS_METRICS_TIMELINE_HH
#define INFLESS_METRICS_TIMELINE_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/time.hh"

namespace infless::metrics {

/**
 * Collects named time series by sampling callbacks on a fixed period.
 */
class TimelineSampler
{
  public:
    /** A sampling callback returning the series' current value. */
    using Probe = std::function<double()>;

    /**
     * @param sim Simulation whose clock drives the sampling.
     * @param period Sampling interval.
     */
    TimelineSampler(sim::Simulation &sim, sim::Tick period);

    ~TimelineSampler();

    TimelineSampler(const TimelineSampler &) = delete;
    TimelineSampler &operator=(const TimelineSampler &) = delete;

    /**
     * Register a series; @p probe is invoked at every sampling tick.
     * Must be called before the first sample fires.
     */
    void track(const std::string &name, Probe probe);

    /**
     * Register a counter series: @p probe returns a cumulative count and
     * the stored sample is the *delta* since the previous sample (the
     * first sample stores the counter as-is, i.e. the delta from zero).
     * A counter observed moving backwards (subsystem reset) restarts the
     * ramp: that interval stores the new cumulative value, never a
     * negative delta. This is how drop or retry bursts become visible in
     * the timeline — a cumulative counter plotted directly just ramps
     * monotonically. Must be called before the first sample fires; a
     * name already registered (by track() or trackCounter()) panics.
     */
    void trackCounter(const std::string &name, Probe probe);

    /** Sampling timestamps so far. */
    const std::vector<sim::Tick> &times() const { return times_; }

    /** Values of one series; panics on unknown names. */
    const std::vector<double> &series(const std::string &name) const;

    /** Registered series names, in registration order. */
    const std::vector<std::string> &names() const { return names_; }

    /** Number of samples taken. */
    std::size_t sampleCount() const { return times_.size(); }

    /**
     * Write all series as CSV: a time_sec column followed by one column
     * per series.
     */
    void writeCsv(std::ostream &os) const;

    /**
     * Write all series as one JSON document:
     * `{"time_sec": [...], "series": {"name": [...], ...}}`.
     */
    void writeJson(std::ostream &os) const;

    /** Stop sampling (also happens on destruction). */
    void stop();

  private:
    void sample();

    sim::Simulation &sim_;
    std::vector<std::string> names_;
    std::map<std::string, Probe> probes_;
    /** Series registered via trackCounter: previous cumulative value. */
    std::map<std::string, double> counterLast_;
    std::map<std::string, std::vector<double>> values_;
    std::vector<sim::Tick> times_;
    std::shared_ptr<sim::Simulation::Periodic> handle_;
};

} // namespace infless::metrics

#endif // INFLESS_METRICS_TIMELINE_HH
