#include "models/dag.hh"

#include <algorithm>
#include <queue>

#include "sim/logging.hh"

namespace infless::models {

NodeId
Dag::addNode(const OpNode &node)
{
    nodes_.push_back(node);
    succ_.emplace_back();
    pred_.emplace_back();
    return static_cast<NodeId>(nodes_.size() - 1);
}

void
Dag::addEdge(NodeId from, NodeId to)
{
    sim::simAssert(from >= 0 && static_cast<std::size_t>(from) < size(),
                   "bad edge source ", from);
    sim::simAssert(to >= 0 && static_cast<std::size_t>(to) < size(),
                   "bad edge target ", to);
    sim::simAssert(from != to, "self edge on node ", from);
    succ_[static_cast<std::size_t>(from)].push_back(to);
    pred_[static_cast<std::size_t>(to)].push_back(from);
}

const OpNode &
Dag::node(NodeId id) const
{
    sim::simAssert(id >= 0 && static_cast<std::size_t>(id) < size(),
                   "bad node id ", id);
    return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<NodeId> &
Dag::successors(NodeId id) const
{
    sim::simAssert(id >= 0 && static_cast<std::size_t>(id) < size(),
                   "bad node id ", id);
    return succ_[static_cast<std::size_t>(id)];
}

std::vector<NodeId>
Dag::topoOrder() const
{
    std::vector<int> indegree(size(), 0);
    for (std::size_t v = 0; v < size(); ++v)
        indegree[v] = static_cast<int>(pred_[v].size());

    std::queue<NodeId> ready;
    for (std::size_t v = 0; v < size(); ++v) {
        if (indegree[v] == 0)
            ready.push(static_cast<NodeId>(v));
    }

    std::vector<NodeId> order;
    order.reserve(size());
    while (!ready.empty()) {
        NodeId v = ready.front();
        ready.pop();
        order.push_back(v);
        for (NodeId w : succ_[static_cast<std::size_t>(v)]) {
            if (--indegree[static_cast<std::size_t>(w)] == 0)
                ready.push(w);
        }
    }
    sim::simAssert(order.size() == size(), "operator graph has a cycle");
    return order;
}

bool
Dag::isAcyclic() const
{
    std::vector<int> indegree(size(), 0);
    for (std::size_t v = 0; v < size(); ++v)
        indegree[v] = static_cast<int>(pred_[v].size());
    std::queue<NodeId> ready;
    for (std::size_t v = 0; v < size(); ++v) {
        if (indegree[v] == 0)
            ready.push(static_cast<NodeId>(v));
    }
    std::size_t seen = 0;
    while (!ready.empty()) {
        NodeId v = ready.front();
        ready.pop();
        ++seen;
        for (NodeId w : succ_[static_cast<std::size_t>(v)]) {
            if (--indegree[static_cast<std::size_t>(w)] == 0)
                ready.push(w);
        }
    }
    return seen == size();
}

double
Dag::criticalPath(const NodeWeight &weight) const
{
    if (empty())
        return 0.0;
    std::vector<double> finish(size(), 0.0);
    double best = 0.0;
    for (NodeId v : topoOrder()) {
        auto vi = static_cast<std::size_t>(v);
        double start = 0.0;
        for (NodeId p : pred_[vi])
            start = std::max(start, finish[static_cast<std::size_t>(p)]);
        finish[vi] = start + weight(nodes_[vi]);
        best = std::max(best, finish[vi]);
    }
    return best;
}

double
Dag::totalWork(const NodeWeight &weight) const
{
    double total = 0.0;
    for (const auto &n : nodes_)
        total += weight(n);
    return total;
}

std::map<OpKind, int>
Dag::opCounts() const
{
    std::map<OpKind, int> counts;
    for (const auto &n : nodes_)
        ++counts[n.kind];
    return counts;
}

std::map<OpKind, double>
Dag::workByKind(const NodeWeight &weight) const
{
    std::map<OpKind, double> work;
    for (const auto &n : nodes_)
        work[n.kind] += weight(n);
    return work;
}

int
Dag::distinctOps() const
{
    return static_cast<int>(opCounts().size());
}

double
Dag::totalGflops() const
{
    return totalWork([](const OpNode &n) { return n.gflopsPerSample; });
}

double
Dag::branchOverlap() const
{
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    double total = totalWork(weight);
    if (total <= 0.0)
        return 0.0;
    return 1.0 - criticalPath(weight) / total;
}

void
Dag::scaleGflopsTo(double gflops)
{
    double total = totalGflops();
    sim::simAssert(total > 0.0, "cannot scale an all-zero graph");
    double factor = gflops / total;
    for (auto &n : nodes_)
        n.gflopsPerSample *= factor;
}

NodeId
DagBuilder::chain(const OpNode &node)
{
    NodeId id = dag_.addNode(node);
    if (tail_ >= 0)
        dag_.addEdge(tail_, id);
    tail_ = id;
    return id;
}

NodeId
DagBuilder::parallel(const std::vector<std::vector<OpNode>> &branches,
                     const OpNode &join)
{
    sim::simAssert(!branches.empty(), "parallel() needs branches");
    NodeId fork = tail_;
    NodeId join_id = dag_.addNode(join);
    for (const auto &branch : branches) {
        NodeId prev = fork;
        for (const auto &op : branch) {
            NodeId id = dag_.addNode(op);
            if (prev >= 0)
                dag_.addEdge(prev, id);
            prev = id;
        }
        if (prev >= 0 && prev != fork) {
            dag_.addEdge(prev, join_id);
        } else if (fork >= 0) {
            // Empty branch: direct fork -> join shortcut (residual link).
            dag_.addEdge(fork, join_id);
        }
    }
    tail_ = join_id;
    return join_id;
}

} // namespace infless::models
