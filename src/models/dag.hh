/**
 * @file
 * Operator task graph (DAG).
 *
 * COP (§3.3) estimates a model's latency by decomposing its graph into
 * sequence chains (time = sum) and parallel branches (time = max). Both
 * rules are the single-source longest path of the DAG under per-node
 * weights, which is what criticalPath() computes.
 */

#ifndef INFLESS_MODELS_DAG_HH
#define INFLESS_MODELS_DAG_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "models/operator.hh"

namespace infless::models {

/** Node index within a Dag. */
using NodeId = std::int32_t;

/**
 * A directed acyclic graph of operator calls.
 */
class Dag
{
  public:
    /** Weight function mapping a node to a scalar (e.g. execution time). */
    using NodeWeight = std::function<double(const OpNode &)>;

    /** Add a node; returns its id. */
    NodeId addNode(const OpNode &node);

    /** Add a dependency edge @p from -> @p to. Panics on bad ids. */
    void addEdge(NodeId from, NodeId to);

    std::size_t size() const { return nodes_.size(); }
    bool empty() const { return nodes_.empty(); }

    const OpNode &node(NodeId id) const;
    const std::vector<OpNode> &nodes() const { return nodes_; }

    /** Successors of a node. */
    const std::vector<NodeId> &successors(NodeId id) const;

    /**
     * Topological order of all nodes; panics if the graph has a cycle.
     */
    std::vector<NodeId> topoOrder() const;

    /** True when the edge relation is acyclic. */
    bool isAcyclic() const;

    /**
     * Longest path under @p weight — the chain-sum / branch-max
     * composition rule of COP.
     */
    double criticalPath(const NodeWeight &weight) const;

    /** Sum of weights over all nodes (fully serialized execution). */
    double totalWork(const NodeWeight &weight) const;

    /** Number of calls per operator kind. */
    std::map<OpKind, int> opCounts() const;

    /** Total per-kind weight (e.g. GFLOPs by kind, for Fig. 7). */
    std::map<OpKind, double> workByKind(const NodeWeight &weight) const;

    /** Number of distinct operator kinds used. */
    int distinctOps() const;

    /** Sum of gflopsPerSample over all nodes. */
    double totalGflops() const;

    /**
     * How much branch parallelism the graph has: 1 - critical/total under
     * GFLOPs weights. Zero for a pure chain; larger for graphs with more
     * overlapping execution paths (used to spread the prediction-noise
     * model, matching LSTM-2365's higher COP error in Fig. 8).
     */
    double branchOverlap() const;

    /** Uniformly scale all node GFLOPs so the total equals @p gflops. */
    void scaleGflopsTo(double gflops);

  private:
    std::vector<OpNode> nodes_;
    std::vector<std::vector<NodeId>> succ_;
    std::vector<std::vector<NodeId>> pred_;
};

/**
 * Convenience builder that grows a DAG as a main chain with optional
 * parallel branch groups, the two structures COP decomposes into.
 */
class DagBuilder
{
  public:
    /** Append @p node after the current tail; returns its id. */
    NodeId chain(const OpNode &node);

    /**
     * Append a group of parallel branches between the current tail and a
     * new join node. Each inner vector is one branch (a chain).
     *
     * @param branches Per-branch op sequences; must be non-empty.
     * @param join Node that joins the branches (e.g. ConcatV2 or Sum).
     * @return Id of the join node, which becomes the new tail.
     */
    NodeId parallel(const std::vector<std::vector<OpNode>> &branches,
                    const OpNode &join);

    /** Take the finished graph. */
    Dag build() { return std::move(dag_); }

    Dag &dag() { return dag_; }

  private:
    Dag dag_;
    NodeId tail_ = -1;
};

} // namespace infless::models

#endif // INFLESS_MODELS_DAG_HH
