#include "models/exec_model.hh"

#include <algorithm>
#include <cmath>

#include "models/model_zoo.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace infless::models {

namespace {

/** Amdahl speedup over @p cores with parallel fraction @p p. Fractional
 *  core quotas below 1.0 slow the parallel part proportionally. */
double
amdahlSpeedup(double cores, double p)
{
    return 1.0 / ((1.0 - p) + p / cores);
}

} // namespace

double
ExecModel::gpuBatchUtil(int batch) const
{
    sim::simAssert(batch >= 1, "batch must be >= 1");
    double u0 = params_.gpuUtilBase;
    double scale = params_.gpuUtilBatchScale;
    return u0 + (1.0 - u0) * (1.0 - std::exp(-(batch - 1) / scale));
}

double
ExecModel::opMicros(const OpNode &op, int batch,
                    const cluster::Resources &res) const
{
    sim::simAssert(batch >= 1, "batch must be >= 1");
    const OpTraits &traits = opTraits(op.kind);
    double batch_gflops = batch * op.gflopsPerSample;

    bool on_gpu = res.gpuSmPercent > 0 && traits.gpuEfficiency > 0.0;
    if (on_gpu) {
        double throughput = params_.gpuGflopsFull * res.gpuDevices() *
                            gpuBatchUtil(batch) * traits.gpuEfficiency;
        sim::simAssert(throughput > 0.0, "zero GPU throughput");
        return static_cast<double>(traits.gpuOverhead) +
               batch_gflops / throughput * 1e6;
    }

    double cores = std::max(res.cpuCores(), params_.minCpuCores);
    double throughput = params_.cpuGflopsPerCore *
                        amdahlSpeedup(cores, traits.cpuParallelFraction);
    sim::simAssert(throughput > 0.0, "zero CPU throughput");
    return static_cast<double>(traits.cpuOverhead) +
           batch_gflops / throughput * 1e6;
}

sim::Tick
ExecModel::opTicks(const OpNode &op, int batch,
                   const cluster::Resources &res) const
{
    return static_cast<sim::Tick>(std::llround(opMicros(op, batch, res)));
}

double
ExecModel::composedMicros(const Dag &dag, int batch,
                          const cluster::Resources &res) const
{
    double path = dag.criticalPath(
        [&](const OpNode &op) { return opMicros(op, batch, res); });
    return path + params_.batchDispatchUs;
}

double
ExecModel::deviation(const ModelInfo &model, int batch,
                     const cluster::Resources &res) const
{
    // A deterministic pseudo-random draw keyed by (model, b, c, g): the
    // same configuration always deviates identically, as a real testbed's
    // systematic effects would, but the profiler cannot see it through
    // per-operator measurements alone.
    std::uint64_t key = model.noiseKey;
    key = sim::hashCombine(key, static_cast<std::uint64_t>(batch));
    key = sim::hashCombine(
        key, static_cast<std::uint64_t>(res.cpuMillicores));
    key = sim::hashCombine(
        key, static_cast<std::uint64_t>(res.gpuSmPercent) + 0x1234567ULL);
    double unit = static_cast<double>(key >> 11) * 0x1.0p-53; // [0, 1)
    double centered = 2.0 * unit - 1.0;                       // [-1, 1)

    // Branch-heavy graphs overlap execution paths; their composition rule
    // is less exact, so their deviation spread is larger (Fig. 8: LSTM-2365
    // errs most).
    double overlap = model.dag.branchOverlap();
    double spread = params_.noiseAmplitude * (0.5 + 1.3 * overlap);
    return 1.0 + centered * spread;
}

sim::Tick
ExecModel::trueTicks(const ModelInfo &model, int batch,
                     const cluster::Resources &res) const
{
    double micros =
        composedMicros(model.dag, batch, res) * deviation(model, batch, res);
    return std::max<sim::Tick>(1, static_cast<sim::Tick>(std::llround(micros)));
}

} // namespace infless::models
