/**
 * @file
 * Analytic execution-time model (the simulator's ground truth).
 *
 * The paper evaluates on real hardware; here an analytic roofline-style
 * surface substitutes for it (see DESIGN.md). The surface reproduces the
 * three behaviours every INFless experiment depends on:
 *
 *  1. GPU batching is sub-linear: per-batch kernel-launch overheads
 *     amortize and SM utilization rises with batchsize, so
 *     throughput/resource grows with b.
 *  2. CPU batching is ~linear: batch b costs b times as long, so batching
 *     on CPU-only instances buys little (Fig. 2b).
 *  3. Large models on small CPU quotas cannot meet 200 ms (Fig. 2a).
 *
 * Offline profiling "measures" exact per-operator times from this model;
 * the ground truth a running batch is charged adds a deterministic
 * deviation that grows with the model's branch overlap, so COP's
 * composition error behaves like Fig. 8.
 */

#ifndef INFLESS_MODELS_EXEC_MODEL_HH
#define INFLESS_MODELS_EXEC_MODEL_HH

#include "cluster/resources.hh"
#include "models/dag.hh"
#include "models/model_zoo_fwd.hh"
#include "models/operator.hh"
#include "sim/time.hh"

namespace infless::models {

/** Tunables of the execution-time surface. */
struct ExecParams
{
    /**
     * Effective GFLOPS per CPU core, framework overheads included
     * (Xeon Silver 4215 under TensorFlow).
     */
    double cpuGflopsPerCore = 7.0;

    /** Effective GFLOPS of one whole GPU (RTX 2080Ti under TF Serving). */
    double gpuGflopsFull = 6'200.0;

    /** GPU utilization reached at batchsize 1. */
    double gpuUtilBase = 0.22;

    /** Batch scale over which utilization approaches 1 (exponential). */
    double gpuUtilBatchScale = 5.0;

    /** Smallest effective CPU share (quota throttling floor). */
    double minCpuCores = 0.05;

    /** Fixed per-batch dispatch cost (request unmarshal + queue pop). */
    double batchDispatchUs = 150.0;

    /**
     * Amplitude of the deterministic ground-truth deviation from the COP
     * composition (relative). Chosen so the mean absolute prediction error
     * lands under 10% as in Fig. 8.
     */
    double noiseAmplitude = 0.12;
};

/**
 * Computes operator, graph and whole-model execution times.
 */
class ExecModel
{
  public:
    ExecModel() = default;
    explicit ExecModel(const ExecParams &params) : params_(params) {}

    const ExecParams &params() const { return params_; }

    /**
     * GPU utilization factor at batchsize @p batch.
     */
    double gpuBatchUtil(int batch) const;

    /**
     * Idealized execution time of one operator call on a batch, in
     * microseconds. This is what offline operator profiling records.
     *
     * Operators with non-zero gpuEfficiency run on the GPU when the
     * instance holds any SM share; everything else uses the CPU quota.
     */
    double opMicros(const OpNode &op, int batch,
                    const cluster::Resources &res) const;

    /** opMicros() rounded to ticks. */
    sim::Tick opTicks(const OpNode &op, int batch,
                      const cluster::Resources &res) const;

    /**
     * COP composition over a graph with exact operator times: longest
     * path (chain = sum, branches = max), plus batch dispatch overhead.
     * Returned in microseconds.
     */
    double composedMicros(const Dag &dag, int batch,
                          const cluster::Resources &res) const;

    /**
     * Ground-truth batch execution time for a model: composition times a
     * deterministic per-(model, b, c, g) deviation. This is the latency
     * the simulator charges when the batch actually runs.
     */
    sim::Tick trueTicks(const ModelInfo &model, int batch,
                        const cluster::Resources &res) const;

    /** The deviation factor applied by trueTicks (for tests/analysis). */
    double deviation(const ModelInfo &model, int batch,
                     const cluster::Resources &res) const;

  private:
    ExecParams params_;
};

} // namespace infless::models

#endif // INFLESS_MODELS_EXEC_MODEL_HH
