#include "models/latency_cache.hh"

#include <limits>

#include "models/model_zoo.hh"
#include "sim/rng.hh"

namespace infless::models {

namespace {

/** Initial table capacity (power of two). */
constexpr std::size_t kInitialLines = 64;

/** Grow when the table passes this load factor. */
constexpr double kMaxLoad = 0.5;

std::uint64_t
probeHash(std::uint64_t model_key, std::int64_t cpu, std::int64_t gpu)
{
    return sim::hashCombine(
        sim::hashCombine(model_key, static_cast<std::uint64_t>(cpu)),
        static_cast<std::uint64_t>(gpu));
}

} // namespace

LatencyCache::LatencyCache() : lines_(kInitialLines) {}

LatencyCache::Line &
LatencyCache::findLine(std::uint64_t model_key, std::int64_t cpu,
                       std::int64_t gpu)
{
    std::size_t mask = lines_.size() - 1;
    std::size_t idx = probeHash(model_key, cpu, gpu) & mask;
    for (;;) {
        Line &line = lines_[idx];
        if (!line.used) {
            line.used = true;
            line.modelKey = model_key;
            line.cpu = cpu;
            line.gpu = gpu;
            ++usedLines_;
            if (static_cast<double>(usedLines_) >
                kMaxLoad * static_cast<double>(lines_.size())) {
                grow();
                return findLine(model_key, cpu, gpu);
            }
            return line;
        }
        if (line.modelKey == model_key && line.cpu == cpu &&
            line.gpu == gpu) {
            return line;
        }
        idx = (idx + 1) & mask;
    }
}

void
LatencyCache::grow()
{
    std::vector<Line> old = std::move(lines_);
    lines_.assign(old.size() * 2, Line{});
    std::size_t mask = lines_.size() - 1;
    for (Line &line : old) {
        if (!line.used)
            continue;
        std::size_t idx =
            probeHash(line.modelKey, line.cpu, line.gpu) & mask;
        while (lines_[idx].used)
            idx = (idx + 1) & mask;
        lines_[idx] = std::move(line);
    }
}

double &
LatencyCache::cellFor(std::uint64_t model_key, std::int64_t cpu,
                      std::int64_t gpu, int batch)
{
    Line &line = findLine(model_key, cpu, gpu);
    auto slot = static_cast<std::size_t>(batch);
    if (line.byBatch.size() <= slot) {
        line.byBatch.resize(slot + 1,
                            std::numeric_limits<double>::quiet_NaN());
    }
    return line.byBatch[slot];
}

sim::Tick
LatencyCache::trueTicks(const ExecModel &exec, const ModelInfo &model,
                        int batch, const cluster::Resources &res)
{
    double ticks =
        memo(model.noiseKey, res.cpuMillicores, res.gpuSmPercent, batch,
             [&] {
                 return static_cast<double>(
                     exec.trueTicks(model, batch, res));
             });
    return static_cast<sim::Tick>(ticks);
}

double
LatencyCache::composedMicros(const ExecModel &exec, const ModelInfo &model,
                             int batch, const cluster::Resources &res)
{
    // Distinct key stream from trueTicks is unnecessary: a cache instance
    // memoizes one function only (see file header), enforced by usage.
    return memo(model.noiseKey, res.cpuMillicores, res.gpuSmPercent,
                batch,
                [&] { return exec.composedMicros(model.dag, batch, res); });
}

} // namespace infless::models
