/**
 * @file
 * Memoized latency surface.
 *
 * ExecModel::trueTicks / composedMicros and COP raw predictions are pure
 * functions of (model, batch, cpu millicores, gpu SM percent) — memory
 * never enters the surface — and resource configurations are drawn from a
 * small discrete menu. The simulator prices the same few hundred points
 * millions of times per run, so each consumer (Platform's ground-truth
 * charging, CopPredictor's composition, the Lambda baseline) keeps a
 * LatencyCache in front of the computation:
 *
 *  - an open-addressing hash table maps the quantized configuration
 *    (model key, cpu, gpu) to a cache line — no per-lookup allocation,
 *    exact key comparison (no silent hash-collision aliasing);
 *  - each line holds a flat array indexed by batchsize, so the batch
 *    ladder the scheduler walks is a single pointer chase plus an array
 *    load.
 *
 * A cache instance memoizes exactly one pure function; consumers own one
 * instance per function they cache. Hit/miss counters are exported
 * through metrics::RunMetrics (see Platform::run).
 */

#ifndef INFLESS_MODELS_LATENCY_CACHE_HH
#define INFLESS_MODELS_LATENCY_CACHE_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/resources.hh"
#include "models/exec_model.hh"
#include "models/model_zoo_fwd.hh"
#include "sim/time.hh"

namespace infless::models {

/** Lookup counters of one LatencyCache. */
struct LatencyCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * Per-(model, config) memo table over the batch dimension.
 */
class LatencyCache
{
  public:
    LatencyCache();

    /**
     * Memoized value for (model_key, cpu, gpu, batch); on a miss @p
     * compute() supplies the value, which is cached verbatim — lookups
     * are bit-identical to direct computation.
     */
    template <typename Fn>
    double
    memo(std::uint64_t model_key, std::int64_t cpu_millicores,
         std::int64_t gpu_sm_percent, int batch, Fn &&compute)
    {
        double &cell =
            cellFor(model_key, cpu_millicores, gpu_sm_percent, batch);
        if (!std::isnan(cell)) {
            ++stats_.hits;
            return cell;
        }
        ++stats_.misses;
        cell = compute();
        ++values_;
        return cell;
    }

    /** Cached ExecModel::trueTicks (ground-truth batch pricing). */
    sim::Tick trueTicks(const ExecModel &exec, const ModelInfo &model,
                        int batch, const cluster::Resources &res);

    /** Cached ExecModel::composedMicros over a model's graph. */
    double composedMicros(const ExecModel &exec, const ModelInfo &model,
                          int batch, const cluster::Resources &res);

    const LatencyCacheStats &stats() const { return stats_; }

    /** Distinct (model, config) lines resident. */
    std::size_t configCount() const { return usedLines_; }

    /** Memoized values resident (across all lines and batches). */
    std::size_t size() const { return values_; }

  private:
    /** One (model, config) class: latencies indexed by batchsize. */
    struct Line
    {
        std::uint64_t modelKey = 0;
        std::int64_t cpu = 0;
        std::int64_t gpu = 0;
        bool used = false;
        /** NaN = not yet computed; grows on demand. */
        std::vector<double> byBatch;
    };

    /** Locate (inserting if absent) the value cell for a key. */
    double &cellFor(std::uint64_t model_key, std::int64_t cpu,
                    std::int64_t gpu, int batch);

    Line &findLine(std::uint64_t model_key, std::int64_t cpu,
                   std::int64_t gpu);

    void grow();

    /** Open-addressing table, power-of-two capacity, linear probing. */
    std::vector<Line> lines_;
    std::size_t usedLines_ = 0;
    std::size_t values_ = 0;
    LatencyCacheStats stats_;
};

} // namespace infless::models

#endif // INFLESS_MODELS_LATENCY_CACHE_HH
