#include "models/model_zoo.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace infless::models {

namespace {

/** Shorthand node constructor (relative weight; scaled afterwards). */
OpNode
op(OpKind kind, double weight)
{
    return OpNode{kind, weight};
}

/** Stable hash of a model name for the deviation key. */
std::uint64_t
nameKey(const std::string &name)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (unsigned char c : name)
        h = sim::hashCombine(h, c);
    return h;
}

/** ResNet-50: 53 convolutions across 16 bottleneck blocks; Conv2D takes
 *  >95% of execution time over 8 distinct operator kinds (Fig. 7b). */
Dag
buildResNet50()
{
    DagBuilder b;
    b.chain(op(OpKind::Conv2D, 1.2));
    b.chain(op(OpKind::BatchNorm, 0.005));
    b.chain(op(OpKind::Relu, 0.003));
    b.chain(op(OpKind::Pooling, 0.01));
    for (int block = 0; block < 16; ++block) {
        bool downsample = block % 4 == 0;
        std::vector<OpNode> main = {
            op(OpKind::Conv2D, 0.6),  op(OpKind::BatchNorm, 0.005),
            op(OpKind::Relu, 0.003),  op(OpKind::Conv2D, 1.0),
            op(OpKind::BatchNorm, 0.005), op(OpKind::Relu, 0.003),
            op(OpKind::Conv2D, 0.6),  op(OpKind::BatchNorm, 0.005),
        };
        std::vector<OpNode> shortcut;
        if (downsample) {
            shortcut = {op(OpKind::Conv2D, 0.5),
                        op(OpKind::BatchNorm, 0.005)};
        }
        b.parallel({main, shortcut}, op(OpKind::Sum, 0.004));
        b.chain(op(OpKind::Relu, 0.003));
    }
    b.chain(op(OpKind::Pooling, 0.01));
    b.chain(op(OpKind::BiasAdd, 0.002));
    b.chain(op(OpKind::MatMul, 0.08));
    b.chain(op(OpKind::Softmax, 0.002));
    return b.build();
}

/** ResNet-20: the small CIFAR-style residual net of Fig. 3a. */
Dag
buildResNet20()
{
    DagBuilder b;
    b.chain(op(OpKind::Conv2D, 1.0));
    b.chain(op(OpKind::BatchNorm, 0.01));
    b.chain(op(OpKind::Relu, 0.005));
    for (int block = 0; block < 9; ++block) {
        std::vector<OpNode> main = {
            op(OpKind::Conv2D, 1.0), op(OpKind::BatchNorm, 0.01),
            op(OpKind::Relu, 0.005), op(OpKind::Conv2D, 1.0),
            op(OpKind::BatchNorm, 0.01),
        };
        std::vector<OpNode> shortcut;
        if (block % 3 == 0)
            shortcut = {op(OpKind::Conv2D, 0.4)};
        b.parallel({main, shortcut}, op(OpKind::Sum, 0.008));
        b.chain(op(OpKind::Relu, 0.005));
    }
    b.chain(op(OpKind::Pooling, 0.01));
    b.chain(op(OpKind::MatMul, 0.05));
    b.chain(op(OpKind::Softmax, 0.004));
    return b.build();
}

/** LSTM-2365: 81 MatMul calls; (Fused)MatMul ~76% of time (Fig. 7a).
 *  The four gates of each cell compute in parallel branches, giving this
 *  graph the highest branch overlap in the zoo — and hence the highest
 *  COP prediction error, as in Fig. 8. */
Dag
buildLstm2365()
{
    DagBuilder b;
    b.chain(op(OpKind::Embedding, 0.01));
    b.chain(op(OpKind::Reshape, 0.05));
    for (int step = 0; step < 20; ++step) {
        std::vector<std::vector<OpNode>> gates = {
            {op(OpKind::MatMul, 1.0), op(OpKind::Sigmoid, 0.15)},
            {op(OpKind::MatMul, 1.0), op(OpKind::Sigmoid, 0.15)},
            {op(OpKind::MatMul, 1.0), op(OpKind::Sigmoid, 0.15)},
            {op(OpKind::MatMul, 1.0), op(OpKind::Tanh, 0.15)},
        };
        b.parallel(gates, op(OpKind::ConcatV2, 0.25));
        b.chain(op(OpKind::Mul, 0.3));
        b.chain(op(OpKind::Sum, 0.2));
    }
    b.chain(op(OpKind::FusedMatMul, 2.0));
    b.chain(op(OpKind::FusedMatMul, 2.0));
    b.chain(op(OpKind::MatMul, 1.0)); // 81st MatMul (output projection)
    b.chain(op(OpKind::BiasAdd, 0.05));
    b.chain(op(OpKind::Softmax, 0.5));
    return b.build();
}

/** BERT-v1: 12 transformer layers. */
Dag
buildBert()
{
    DagBuilder b;
    b.chain(op(OpKind::Embedding, 0.01));
    b.chain(op(OpKind::LayerNorm, 0.02));
    for (int layer = 0; layer < 12; ++layer) {
        std::vector<std::vector<OpNode>> attn = {
            {op(OpKind::Attention, 4.0)},
            {}, // residual shortcut
        };
        b.parallel(attn, op(OpKind::Sum, 0.01));
        b.chain(op(OpKind::LayerNorm, 0.02));
        std::vector<std::vector<OpNode>> ffn = {
            {op(OpKind::FusedMatMul, 8.0), op(OpKind::Relu, 0.02),
             op(OpKind::MatMul, 8.0)},
            {}, // residual shortcut
        };
        b.parallel(ffn, op(OpKind::Sum, 0.01));
        b.chain(op(OpKind::LayerNorm, 0.02));
    }
    b.chain(op(OpKind::MatMul, 1.0));
    b.chain(op(OpKind::Tanh, 0.02));
    b.chain(op(OpKind::Softmax, 0.01));
    return b.build();
}

/** VGGNet: a deep convolution chain; no branch structure at all. */
Dag
buildVgg()
{
    DagBuilder b;
    for (int conv = 0; conv < 13; ++conv) {
        b.chain(op(OpKind::Conv2D, 1.0));
        b.chain(op(OpKind::Relu, 0.004));
        if (conv == 1 || conv == 3 || conv == 6 || conv == 9 || conv == 12)
            b.chain(op(OpKind::Pooling, 0.01));
    }
    b.chain(op(OpKind::MatMul, 0.5));
    b.chain(op(OpKind::Relu, 0.004));
    b.chain(op(OpKind::MatMul, 0.3));
    b.chain(op(OpKind::Relu, 0.004));
    b.chain(op(OpKind::MatMul, 0.1));
    b.chain(op(OpKind::Softmax, 0.004));
    return b.build();
}

/** SSD: convolution backbone plus six parallel detection heads. */
Dag
buildSsd()
{
    DagBuilder b;
    for (int conv = 0; conv < 10; ++conv) {
        b.chain(op(OpKind::Conv2D, 1.0));
        b.chain(op(OpKind::Relu, 0.005));
        if (conv % 3 == 2)
            b.chain(op(OpKind::Pooling, 0.01));
    }
    std::vector<std::vector<OpNode>> heads;
    for (int head = 0; head < 6; ++head) {
        heads.push_back({op(OpKind::Conv2D, 0.25),
                         op(OpKind::Conv2D, 0.2),
                         op(OpKind::Reshape, 0.002)});
    }
    b.parallel(heads, op(OpKind::ConcatV2, 0.02));
    b.chain(op(OpKind::Softmax, 0.01));
    return b.build();
}

/** DSSM-2365: two embedding towers joined by a similarity head. The
 *  evaluation section refers to the same Q&A matcher as DSSM-2389. */
Dag
buildDssm()
{
    DagBuilder b;
    std::vector<std::vector<OpNode>> towers = {
        {op(OpKind::Embedding, 0.01), op(OpKind::MatMul, 1.0),
         op(OpKind::Tanh, 0.05), op(OpKind::MatMul, 0.8),
         op(OpKind::Tanh, 0.05)},
        {op(OpKind::Embedding, 0.01), op(OpKind::MatMul, 1.0),
         op(OpKind::Tanh, 0.05), op(OpKind::MatMul, 0.8),
         op(OpKind::Tanh, 0.05)},
    };
    b.parallel(towers, op(OpKind::Mul, 0.05));
    b.chain(op(OpKind::Sum, 0.02));
    b.chain(op(OpKind::MatMul, 0.3));
    b.chain(op(OpKind::Softmax, 0.02));
    return b.build();
}

/** DeepSpeech: convolution front-end plus bidirectional recurrent core. */
Dag
buildDeepSpeech()
{
    DagBuilder b;
    b.chain(op(OpKind::Conv2D, 1.0));
    b.chain(op(OpKind::Relu, 0.01));
    b.chain(op(OpKind::Conv2D, 1.0));
    b.chain(op(OpKind::Relu, 0.01));
    for (int layer = 0; layer < 5; ++layer) {
        std::vector<std::vector<OpNode>> directions = {
            {op(OpKind::MatMul, 1.0), op(OpKind::Relu, 0.01)},
            {op(OpKind::MatMul, 1.0), op(OpKind::Relu, 0.01)},
        };
        b.parallel(directions, op(OpKind::ConcatV2, 0.02));
    }
    b.chain(op(OpKind::MatMul, 0.6));
    b.chain(op(OpKind::Softmax, 0.02));
    return b.build();
}

/** MobileNet: depthwise-separable convolution chain. */
Dag
buildMobileNet()
{
    DagBuilder b;
    b.chain(op(OpKind::Conv2D, 0.8));
    for (int block = 0; block < 13; ++block) {
        b.chain(op(OpKind::DepthwiseConv2D, 0.25));
        b.chain(op(OpKind::BatchNorm, 0.01));
        b.chain(op(OpKind::Relu, 0.005));
        b.chain(op(OpKind::Conv2D, 0.75));
        b.chain(op(OpKind::BatchNorm, 0.01));
        b.chain(op(OpKind::Relu, 0.005));
    }
    b.chain(op(OpKind::Pooling, 0.01));
    b.chain(op(OpKind::MatMul, 0.1));
    b.chain(op(OpKind::Softmax, 0.005));
    return b.build();
}

/** TextCNN-69: embedding into three parallel convolution widths. */
Dag
buildTextCnn()
{
    DagBuilder b;
    b.chain(op(OpKind::Embedding, 0.01));
    std::vector<std::vector<OpNode>> widths;
    for (int width = 0; width < 3; ++width) {
        widths.push_back({op(OpKind::Conv2D, 1.0), op(OpKind::Relu, 0.01),
                          op(OpKind::Pooling, 0.02)});
    }
    b.parallel(widths, op(OpKind::ConcatV2, 0.03));
    b.chain(op(OpKind::MatMul, 0.4));
    b.chain(op(OpKind::Softmax, 0.01));
    return b.build();
}

/** MNIST: a two-layer perceptron; the smallest model in the zoo. */
Dag
buildMnist()
{
    DagBuilder b;
    b.chain(op(OpKind::MatMul, 1.0));
    b.chain(op(OpKind::Relu, 0.05));
    b.chain(op(OpKind::MatMul, 0.3));
    b.chain(op(OpKind::Softmax, 0.02));
    return b.build();
}

ModelInfo
makeModel(std::string name, double size_mb, double gflops,
          std::string domain, Dag dag)
{
    dag.scaleGflopsTo(gflops);
    ModelInfo info;
    info.name = name;
    info.sizeMb = size_mb;
    info.gflops = gflops;
    info.domain = std::move(domain);
    info.dag = std::move(dag);
    info.noiseKey = nameKey(name);
    return info;
}

} // namespace

std::vector<int>
ModelInfo::batchSizesDescending() const
{
    std::vector<int> sizes;
    for (int b = 1; b <= maxBatch; b *= 2)
        sizes.push_back(b);
    std::reverse(sizes.begin(), sizes.end());
    return sizes;
}

ModelZoo::ModelZoo()
{
    // Table 1, largest first.
    models_.push_back(makeModel("Bert-v1", 391, 22.2,
                                "Language processing", buildBert()));
    models_.push_back(makeModel("ResNet-50", 98, 3.89,
                                "Image classification", buildResNet50()));
    models_.push_back(makeModel("VGGNet", 69, 5.55,
                                "Feature localisation", buildVgg()));
    models_.push_back(makeModel("LSTM-2365", 39, 0.10, "Text Q&A system",
                                buildLstm2365()));
    models_.push_back(makeModel("ResNet-20", 36, 1.55,
                                "Image classification", buildResNet20()));
    models_.push_back(
        makeModel("SSD", 29, 2.02, "Object detection", buildSsd()));
    models_.push_back(makeModel("DSSM-2365", 25, 0.13, "Text Q&A system",
                                buildDssm()));
    models_.push_back(makeModel("DeepSpeech", 17, 1.60,
                                "Speech recognition", buildDeepSpeech()));
    models_.push_back(makeModel("MobileNet", 17, 0.05, "Mobile network",
                                buildMobileNet()));
    models_.push_back(makeModel("TextCNN-69", 11, 0.53,
                                "Text classification", buildTextCnn()));
    models_.push_back(
        makeModel("MNIST", 0.072, 0.01, "Number recognition", buildMnist()));
}

const ModelInfo &
ModelZoo::get(const std::string &name) const
{
    // The paper refers to the DSSM matcher both as DSSM-2365 (Table 1) and
    // DSSM-2389 (§5.1); accept both.
    const std::string &key = (name == "DSSM-2389") ? "DSSM-2365" : name;
    for (const auto &m : models_) {
        if (m.name == key)
            return m;
    }
    sim::fatal("unknown model: ", name);
}

bool
ModelZoo::has(const std::string &name) const
{
    const std::string &key = (name == "DSSM-2389") ? "DSSM-2365" : name;
    return std::any_of(models_.begin(), models_.end(),
                       [&](const ModelInfo &m) { return m.name == key; });
}

const ModelZoo &
ModelZoo::shared()
{
    static const ModelZoo zoo;
    return zoo;
}

std::vector<std::string>
ModelZoo::osvtModels()
{
    return {"SSD", "MobileNet", "ResNet-50"};
}

std::vector<std::string>
ModelZoo::qaRobotModels()
{
    return {"TextCNN-69", "LSTM-2365", "DSSM-2365"};
}

} // namespace infless::models
