/**
 * @file
 * The 11-model zoo of Table 1.
 *
 * Each model carries the network size, per-sample GFLOPs and an operator
 * DAG whose call mix matches the paper's characterization (Fig. 7):
 * ResNet-50 spends >95% of its time in Conv2D across 8 distinct operator
 * kinds; LSTM-2365 calls MatMul 81 times and spends ~76% of its time in
 * (Fused)MatMul.
 */

#ifndef INFLESS_MODELS_MODEL_ZOO_HH
#define INFLESS_MODELS_MODEL_ZOO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "models/dag.hh"

namespace infless::models {

/**
 * Static description of one inference model.
 */
struct ModelInfo
{
    std::string name;
    /** Serialized network size in MiB (Table 1 "Network Size"). */
    double sizeMb = 0.0;
    /** Per-sample inference work (Table 1 "GFLOPs"). */
    double gflops = 0.0;
    /** Maximum allowable batchsize (2^max; the paper caps at 32). */
    int maxBatch = 32;
    /** Application domain (Table 1 "Description"). */
    std::string domain;
    /** Operator task graph. */
    Dag dag;
    /** Stable key seeding the deterministic ground-truth deviation. */
    std::uint64_t noiseKey = 0;

    /** Feasible batchsizes {1, 2, 4, ..., maxBatch}, descending. */
    std::vector<int> batchSizesDescending() const;
};

/**
 * Registry of the Table 1 models.
 */
class ModelZoo
{
  public:
    /** Builds all 11 models. */
    ModelZoo();

    /** Look a model up by name; panics if unknown. */
    const ModelInfo &get(const std::string &name) const;

    /** True if @p name is a known model. */
    bool has(const std::string &name) const;

    /** All models, largest first (Table 1 order). */
    const std::vector<ModelInfo> &all() const { return models_; }

    /** Process-wide shared zoo. */
    static const ModelZoo &shared();

    /** Models of the OSVT application (object detection pipeline). */
    static std::vector<std::string> osvtModels();

    /** Models of the Q&A robot application. */
    static std::vector<std::string> qaRobotModels();

  private:
    std::vector<ModelInfo> models_;
};

} // namespace infless::models

#endif // INFLESS_MODELS_MODEL_ZOO_HH
