/**
 * @file
 * Forward declarations for the model zoo.
 */

#ifndef INFLESS_MODELS_MODEL_ZOO_FWD_HH
#define INFLESS_MODELS_MODEL_ZOO_FWD_HH

namespace infless::models {

struct ModelInfo;
class ModelZoo;

} // namespace infless::models

#endif // INFLESS_MODELS_MODEL_ZOO_FWD_HH
