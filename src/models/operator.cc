#include "models/operator.hh"

#include <array>

#include "sim/logging.hh"

namespace infless::models {

namespace {

using sim::msToTicks;

// Traits table. Overheads are microsecond-scale dispatch costs; the
// GPU launch overhead dominates for tiny kernels, which is why batching
// pays off disproportionately on accelerators.
constexpr std::array<OpTraits, kNumOpKinds> kTraits = {{
    // name            cpuPar  gpuEff  cpuOvh  gpuOvh
    {"MatMul",          0.92,   0.85,   8,      18},
    {"FusedMatMul",     0.92,   0.90,   8,      16},
    {"Conv2D",          0.93,   0.95,   10,     20},
    {"DepthwiseConv2D", 0.85,   0.55,   10,     20},
    {"BiasAdd",         0.75,   0.40,   3,      8},
    {"Relu",            0.80,   0.40,   2,      8},
    {"Sigmoid",         0.78,   0.40,   2,      8},
    {"Tanh",            0.78,   0.40,   2,      8},
    {"Softmax",         0.70,   0.35,   4,      10},
    {"Pooling",         0.82,   0.50,   4,      10},
    {"BatchNorm",       0.80,   0.45,   4,      10},
    {"LayerNorm",       0.78,   0.45,   4,      10},
    {"ConcatV2",        0.60,   0.30,   4,      10},
    {"Mul",             0.75,   0.40,   2,      8},
    {"Sum",             0.70,   0.35,   2,      8},
    {"Embedding",       0.50,   0.00,   6,      0},
    {"Attention",       0.90,   0.85,   12,     24},
    {"Reshape",         0.10,   0.00,   2,      0},
    {"Pad",             0.40,   0.25,   3,      8},
    {"Identity",        0.10,   0.00,   1,      0},
}};

} // namespace

const OpTraits &
opTraits(OpKind kind)
{
    auto idx = static_cast<std::size_t>(kind);
    sim::simAssert(idx < kTraits.size(), "bad OpKind ", idx);
    return kTraits[idx];
}

OpKind
opKindFromName(const std::string &name)
{
    for (int i = 0; i < kNumOpKinds; ++i) {
        auto kind = static_cast<OpKind>(i);
        if (name == opTraits(kind).name)
            return kind;
    }
    sim::panic("unknown operator name: ", name);
}

} // namespace infless::models
