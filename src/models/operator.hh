/**
 * @file
 * DNN operator taxonomy.
 *
 * Inference functions decompose into a small shared set of operators
 * (Observation 6: the paper's 11 models contain >1,000 operator calls but
 * only 71 distinct operators, and a handful dominate execution time).
 * Each operator kind carries the traits the execution model needs: how well
 * it parallelizes on CPU, how efficiently it maps to a GPU, and its
 * per-call dispatch overheads.
 */

#ifndef INFLESS_MODELS_OPERATOR_HH
#define INFLESS_MODELS_OPERATOR_HH

#include <cstdint>
#include <string>

#include "sim/time.hh"

namespace infless::models {

/** The operator kinds used by the model zoo (subset of the paper's 71). */
enum class OpKind : std::uint8_t
{
    MatMul,
    FusedMatMul,
    Conv2D,
    DepthwiseConv2D,
    BiasAdd,
    Relu,
    Sigmoid,
    Tanh,
    Softmax,
    Pooling,
    BatchNorm,
    LayerNorm,
    ConcatV2,
    Mul,
    Sum,
    Embedding,
    Attention,
    Reshape,
    Pad,
    Identity,

    NumKinds
};

/** Number of distinct operator kinds. */
constexpr int kNumOpKinds = static_cast<int>(OpKind::NumKinds);

/**
 * Per-kind characteristics feeding the execution-time model.
 */
struct OpTraits
{
    /** Canonical TensorFlow-style name. */
    const char *name;

    /**
     * Amdahl parallel fraction on CPU. Dense math is highly parallel;
     * element-wise glue less so.
     */
    double cpuParallelFraction;

    /**
     * Relative efficiency on a GPU (fraction of device peak the operator
     * reaches at full batch utilization). Zero means the operator stays on
     * the CPU even in a GPU-equipped instance.
     */
    double gpuEfficiency;

    /** Per-call dispatch overhead when executed on CPU. */
    sim::Tick cpuOverhead;

    /** Per-call kernel-launch overhead when executed on GPU. */
    sim::Tick gpuOverhead;
};

/** Look up the traits of an operator kind. */
const OpTraits &opTraits(OpKind kind);

/** Canonical name of an operator kind. */
inline const char *
opName(OpKind kind)
{
    return opTraits(kind).name;
}

/** Parse an operator name back to its kind; panics on unknown names. */
OpKind opKindFromName(const std::string &name);

/**
 * One operator call inside a model graph.
 *
 * gflopsPerSample is the work of a single inference sample; a batch of b
 * samples does b times that work.
 */
struct OpNode
{
    OpKind kind = OpKind::Identity;
    double gflopsPerSample = 0.0;
};

} // namespace infless::models

#endif // INFLESS_MODELS_OPERATOR_HH
