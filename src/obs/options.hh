/**
 * @file
 * Observability knobs bundled into PlatformOptions.
 */

#ifndef INFLESS_OBS_OPTIONS_HH
#define INFLESS_OBS_OPTIONS_HH

#include "obs/slo_monitor.hh"
#include "obs/trace_recorder.hh"

namespace infless::obs {

/** Per-run observability configuration (all off by default). */
struct ObsOptions
{
    /** Request-lifecycle tracing (sample rate 0 = off). */
    TraceConfig trace;
    /** Wall-clock profiling of controller decisions. */
    bool profiling = false;
    /** Windowed SLO attainment / burn-rate monitoring. */
    SloMonitorConfig slo;
    /** Anomaly-triggered flight recorder (always-on span ring). */
    FlightConfig flight;
};

} // namespace infless::obs

#endif // INFLESS_OBS_OPTIONS_HH
