#include "obs/prof_scope.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace infless::obs {

namespace {

/** Largest representable decision time: one minute of wall clock, in
 *  nanoseconds (longer decisions clamp to the top bucket). */
constexpr sim::Tick kMaxDecisionNs = 60'000'000'000LL;

} // namespace

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Schedule:
        return "scheduler";
      case Phase::CopSolve:
        return "cop";
      case Phase::Autoscaler:
        return "autoscaler";
      case Phase::ColdStartPolicy:
        return "coldstart_policy";
    }
    return "?";
}

OverheadProfiler::OverheadProfiler()
{
    for (auto &h : hist_)
        h = metrics::LatencyHistogram(1.1, kMaxDecisionNs);
}

void
OverheadProfiler::record(Phase phase, std::int64_t nanos)
{
    auto i = static_cast<std::size_t>(phase);
    sim::simAssert(i < kPhaseCount, "bad phase ", i);
    hist_[i].record(std::max<std::int64_t>(0, nanos));
    totalNs_[i] += static_cast<double>(std::max<std::int64_t>(0, nanos));
}

PhaseStats
OverheadProfiler::stats(Phase phase) const
{
    auto i = static_cast<std::size_t>(phase);
    sim::simAssert(i < kPhaseCount, "bad phase ", i);
    const metrics::LatencyHistogram &h = hist_[i];
    PhaseStats s;
    s.count = static_cast<std::uint64_t>(h.count());
    if (s.count == 0)
        return s;
    s.totalUs = totalNs_[i] / 1e3;
    s.meanUs = h.mean() / 1e3;
    s.p50Us = static_cast<double>(h.percentile(50.0)) / 1e3;
    s.p99Us = static_cast<double>(h.percentile(99.0)) / 1e3;
    s.minUs = static_cast<double>(h.min()) / 1e3;
    s.maxUs = static_cast<double>(h.max()) / 1e3;
    return s;
}

} // namespace infless::obs
