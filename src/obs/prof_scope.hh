/**
 * @file
 * Controller profiling scopes (observability pillar 2).
 *
 * The paper's §5 reports scheduling overhead as a one-off measurement;
 * here it is a standing, exported quantity. An OverheadProfiler keeps
 * one wall-clock histogram per controller phase (Algorithm 1 scheduling,
 * COP candidate solves, the autoscaler tick, keep-alive policy
 * decisions), and a ProfScope is the RAII guard that times one decision
 * on the host's steady clock — real time, entirely outside simulated
 * time, so profiling can never perturb a run's simulation outputs.
 *
 * A disabled profiler (the default) costs one branch per scope; no clock
 * is read. Phases may nest (an autoscaler tick contains schedule calls,
 * which contain COP solves): each scope reports its own inclusive time.
 */

#ifndef INFLESS_OBS_PROF_SCOPE_HH
#define INFLESS_OBS_PROF_SCOPE_HH

#include <array>
#include <chrono>
#include <cstdint>

#include "metrics/stats.hh"

namespace infless::obs {

/** Controller phases with dedicated overhead histograms. */
enum class Phase : std::uint8_t
{
    Schedule,        ///< GreedyScheduler::schedule / scheduleNaive
    CopSolve,        ///< COP candidate-pool enumeration
    Autoscaler,      ///< the periodic scaler tick (inclusive)
    ColdStartPolicy, ///< keep-alive policy decide() calls
};

/** Number of phases (array sizing). */
inline constexpr std::size_t kPhaseCount = 4;

/** Export/display name of a phase. */
const char *phaseName(Phase phase);

/** Summary of one phase's overhead distribution (wall-clock micros). */
struct PhaseStats
{
    std::uint64_t count = 0;
    double totalUs = 0.0;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double minUs = 0.0;
    double maxUs = 0.0;
};

/**
 * Per-phase wall-clock overhead aggregation.
 */
class OverheadProfiler
{
  public:
    OverheadProfiler();

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Record one timed decision (nanoseconds of wall clock). */
    void record(Phase phase, std::int64_t nanos);

    /** Summary of one phase (micros; zeros when nothing recorded). */
    PhaseStats stats(Phase phase) const;

  private:
    bool enabled_ = false;
    /** Histograms store nanoseconds; the log bucketing gives ~5%
     *  relative quantile error from sub-microsecond decisions up. */
    std::array<metrics::LatencyHistogram, kPhaseCount> hist_;
    std::array<double, kPhaseCount> totalNs_{};
};

/**
 * RAII guard timing one controller decision into a profiler phase.
 *
 * Null or disabled profiler: no clock read, a single branch.
 */
class ProfScope
{
  public:
    ProfScope(OverheadProfiler *profiler, Phase phase)
        : profiler_(profiler && profiler->enabled() ? profiler : nullptr),
          phase_(phase)
    {
        if (profiler_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ProfScope()
    {
        if (!profiler_)
            return;
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
        profiler_->record(phase_, ns);
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    OverheadProfiler *profiler_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace infless::obs

#endif // INFLESS_OBS_PROF_SCOPE_HH
