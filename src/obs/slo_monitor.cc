#include "obs/slo_monitor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace infless::obs {

namespace {

/** Static empty row set for queries about unregistered functions. */
const std::vector<WindowRow> &emptyRows()
{
    static const std::vector<WindowRow> kEmpty;
    return kEmpty;
}

} // namespace

void WindowRow::add(const WindowRow &other)
{
    completions += other.completions;
    violations += other.violations;
    drops += other.drops;
    coldSum += other.coldSum;
    queueSum += other.queueSum;
    batchSum += other.batchSum;
    execSum += other.execSum;
}

const char *alertKindName(AlertKind kind)
{
    switch (kind) {
    case AlertKind::FastBurn: return "fast_burn";
    case AlertKind::SlowBurn: return "slow_burn";
    }
    return "unknown";
}

const char *alertEdgeName(AlertEdge edge)
{
    switch (edge) {
    case AlertEdge::Firing: return "firing";
    case AlertEdge::Cleared: return "cleared";
    }
    return "unknown";
}

// SloHealthCore --------------------------------------------------------------

void SloHealthCore::configure(const SloMonitorConfig &config)
{
    sim::simAssert(config.windowTicks > 0, "SLO window must be positive");
    sim::simAssert(config.errorBudget > 0.0,
                   "SLO error budget must be positive");
    sim::simAssert(config.fast.windows > 0 && config.slow.windows > 0,
                   "burn rules must span at least one window");
    config_ = config;
}

void SloHealthCore::registerFunction(std::int32_t fn, sim::Tick slo)
{
    if (!config_.enabled) {
        return;
    }
    auto [it, inserted] = fns_.try_emplace(fn);
    if (inserted) {
        it->second.slo = slo;
    }
}

void SloHealthCore::setAlertCallback(AlertCallback callback)
{
    callback_ = std::move(callback);
}

bool SloHealthCore::firing(std::int32_t fn, AlertKind kind) const
{
    auto it = fns_.find(fn);
    if (it == fns_.end()) {
        return false;
    }
    return kind == AlertKind::FastBurn ? it->second.fast.firing
                                       : it->second.slow.firing;
}

double SloHealthCore::burnRate(std::int32_t fn, AlertKind kind) const
{
    auto it = fns_.find(fn);
    if (it == fns_.end()) {
        return 0.0;
    }
    return kind == AlertKind::FastBurn ? it->second.fast.lastBurn
                                       : it->second.slow.lastBurn;
}

const std::vector<WindowRow> &SloHealthCore::closed(std::int32_t fn) const
{
    auto it = fns_.find(fn);
    return it == fns_.end() ? emptyRows() : it->second.closed;
}

std::vector<std::int32_t> SloHealthCore::functions() const
{
    std::vector<std::int32_t> ids;
    ids.reserve(fns_.size());
    for (const auto &[fn, health] : fns_) {
        ids.push_back(fn);
    }
    return ids;
}

sim::Tick SloHealthCore::sloOf(std::int32_t fn) const
{
    auto it = fns_.find(fn);
    return it == fns_.end() ? 0 : it->second.slo;
}

SloHealthCore::FnHealth &SloHealthCore::health(std::int32_t fn)
{
    return fns_[fn];
}

const SloHealthCore::FnHealth &SloHealthCore::health(std::int32_t fn) const
{
    auto it = fns_.find(fn);
    sim::simAssert(it != fns_.end(), "querying unregistered function ", fn);
    return it->second;
}

void SloHealthCore::closeWindow(std::int32_t fn, const WindowRow &row)
{
    FnHealth &f = fns_[fn];
    f.closed.push_back(row);
    WindowRow &stored = f.closed.back();
    stored.burn =
        stored.finished() > 0
            ? (double(stored.violations + stored.drops) /
               double(stored.finished())) / config_.errorBudget
            : 0.0;
    sim::Tick at = stored.start + config_.windowTicks;
    stepRule(fn, f, AlertKind::FastBurn, config_.fast, f.fast, at);
    stepRule(fn, f, AlertKind::SlowBurn, config_.slow, f.slow, at);
}

void SloHealthCore::stepRule(std::int32_t fn, FnHealth &f, AlertKind kind,
                             const BurnRule &rule, RuleState &state,
                             sim::Tick at)
{
    // Burn over the rule's span: pooled violation+drop fraction over the
    // last `rule.windows` closed windows, divided by the error budget.
    std::size_t span =
        std::min<std::size_t>(std::size_t(rule.windows), f.closed.size());
    std::int64_t finished = 0;
    std::int64_t bad = 0;
    std::int64_t completions = 0;
    double cold = 0.0, queue = 0.0, batch = 0.0, exec = 0.0;
    for (std::size_t i = f.closed.size() - span; i < f.closed.size(); ++i) {
        const WindowRow &w = f.closed[i];
        finished += w.finished();
        bad += w.violations + w.drops;
        completions += w.completions;
        cold += w.coldSum;
        queue += w.queueSum;
        batch += w.batchSum;
        exec += w.execSum;
    }
    double burn =
        finished > 0 ? (double(bad) / double(finished)) / config_.errorBudget
                     : 0.0;
    state.lastBurn = burn;

    auto emit = [&](AlertEdge edge) {
        SloAlert alert;
        alert.function = fn;
        alert.kind = kind;
        alert.edge = edge;
        alert.at = at;
        alert.burnRate = burn;
        if (completions > 0) {
            alert.meanCold = cold / double(completions);
            alert.meanQueue = queue / double(completions);
            alert.meanBatch = batch / double(completions);
            alert.meanExec = exec / double(completions);
        }
        alerts_.push_back(alert);
        if (edge == AlertEdge::Firing) {
            ++fired_;
        }
        if (callback_) {
            callback_(alert);
        }
    };

    if (!state.firing) {
        // minSamples gates firing only: a rule may not page off a handful
        // of requests, but once firing it clears on quiet windows too.
        bool can_fire = std::size_t(rule.windows) <= f.closed.size() &&
                        finished >= config_.minSamples;
        if (can_fire && burn >= rule.threshold) {
            state.firing = true;
            state.clearStreak = 0;
            emit(AlertEdge::Firing);
        }
        return;
    }
    if (burn < rule.threshold) {
        if (++state.clearStreak >= config_.clearWindows) {
            state.firing = false;
            state.clearStreak = 0;
            emit(AlertEdge::Cleared);
        }
    } else {
        state.clearStreak = 0;
    }
}

// SloMonitor -----------------------------------------------------------------

SloMonitor::FnOpen &SloMonitor::openState(std::int32_t fn)
{
    // Default FnOpen starts window 0 at tick 0: every registered function
    // closes exactly floor(now / windowTicks) windows after advanceTo(now),
    // the invariant the sharded merge cursor depends on.
    return open_[fn];
}

void SloMonitor::rollTo(std::int32_t fn, sim::Tick t)
{
    FnOpen &st = openState(fn);
    sim::Tick w = config_.windowTicks;
    while (st.open.start + w <= t) {
        sim::Tick next = st.open.start + w;
        closeWindow(fn, st.open);
        st.ring.push_back(std::move(st.hists));
        while (st.ring.size() >
               std::size_t(std::max(config_.ringWindows, 1))) {
            st.ring.pop_front();
        }
        st.hists = WindowHists();
        st.open = WindowRow{};
        st.open.start = next;
    }
}

void SloMonitor::recordCompletion(std::int32_t fn, sim::Tick at,
                                  sim::Tick total, sim::Tick cold,
                                  sim::Tick queue, sim::Tick batch,
                                  sim::Tick exec)
{
    if (!config_.enabled || fns_.find(fn) == fns_.end()) {
        return;
    }
    rollTo(fn, at);
    FnOpen &st = openState(fn);
    ++st.open.completions;
    sim::Tick slo = fns_[fn].slo;
    if (slo > 0 && total > slo) {
        ++st.open.violations;
    }
    st.open.coldSum += double(cold);
    st.open.queueSum += double(queue);
    st.open.batchSum += double(batch);
    st.open.execSum += double(exec);
    st.hists.latency.record(total);
    st.hists.cold.record(cold);
    st.hists.queue.record(queue);
    st.hists.batch.record(batch);
    st.hists.exec.record(exec);
}

void SloMonitor::recordDrop(std::int32_t fn, sim::Tick at)
{
    if (!config_.enabled || fns_.find(fn) == fns_.end()) {
        return;
    }
    rollTo(fn, at);
    ++openState(fn).open.drops;
}

void SloMonitor::advanceTo(sim::Tick now)
{
    if (!config_.enabled) {
        return;
    }
    // A completion at exactly t = k*W belongs to window k, so window
    // k-1 (ending at t) is closeable: roll every function to `now`.
    for (const auto &[fn, health] : fns_) {
        rollTo(fn, now);
    }
}

SloMonitor::WindowHists SloMonitor::recentHistograms(std::int32_t fn) const
{
    WindowHists merged;
    auto it = open_.find(fn);
    if (it == open_.end()) {
        return merged;
    }
    for (const WindowHists &w : it->second.ring) {
        merged.latency.merge(w.latency);
        merged.cold.merge(w.cold);
        merged.queue.merge(w.queue);
        merged.batch.merge(w.batch);
        merged.exec.merge(w.exec);
    }
    merged.latency.merge(it->second.hists.latency);
    merged.cold.merge(it->second.hists.cold);
    merged.queue.merge(it->second.hists.queue);
    merged.batch.merge(it->second.hists.batch);
    merged.exec.merge(it->second.hists.exec);
    return merged;
}

std::size_t SloMonitor::ringDepth(std::int32_t fn) const
{
    auto it = open_.find(fn);
    return it == open_.end() ? 0 : it->second.ring.size();
}

// SloHealthMerge -------------------------------------------------------------

void SloHealthMerge::setCellCount(std::size_t cells)
{
    sim::simAssert(cells > 0, "merge needs at least one cell");
    sim::simAssert(cursor_.empty(), "cell count fixed before first absorb");
    cursor_.assign(cells, 0);
}

void SloHealthMerge::absorb(std::size_t cell, const SloMonitor &monitor)
{
    if (!config_.enabled) {
        return;
    }
    sim::simAssert(cell < cursor_.size(), "absorb from unknown cell ", cell);

    // Pull this cell's newly closed windows into the pending merge rows.
    // Every cell closes window k at start k*windowTicks (origin 0), so a
    // closed-row index doubles as the cluster window index.
    std::size_t cell_closed = cursor_[cell];
    for (std::int32_t fn : monitor.functions()) {
        const std::vector<WindowRow> &rows = monitor.closed(fn);
        registerFunction(fn, monitor.sloOf(fn));
        std::vector<WindowRow> &pend = pending_[fn];
        for (std::size_t i = cursor_[cell]; i < rows.size(); ++i) {
            std::size_t window =
                std::size_t(rows[i].start / config_.windowTicks);
            if (window < evaluated_) {
                continue;
            }
            std::size_t slot = window - evaluated_;
            if (pend.size() <= slot) {
                std::size_t old = pend.size();
                pend.resize(slot + 1);
                for (std::size_t s = old; s < pend.size(); ++s) {
                    pend[s].start =
                        sim::Tick(evaluated_ + s) * config_.windowTicks;
                }
            }
            pend[slot].add(rows[i]);
        }
        cell_closed = std::max(cell_closed, rows.size());
    }
    cursor_[cell] = cell_closed;

    // Finalize every cluster window all cells have now passed, in
    // ascending-function order (deterministic regardless of thread count:
    // absorb itself runs serially in cell order at barriers).
    std::size_t min_cursor = cursor_[0];
    for (std::size_t c = 1; c < cursor_.size(); ++c) {
        min_cursor = std::min(min_cursor, cursor_[c]);
    }
    while (evaluated_ < min_cursor) {
        for (auto &[fn, pend] : pending_) {
            WindowRow row;
            if (!pend.empty()) {
                row = pend.front();
                pend.erase(pend.begin());
            } else {
                row.start = sim::Tick(evaluated_) * config_.windowTicks;
            }
            closeWindow(fn, row);
        }
        ++evaluated_;
    }
}

} // namespace infless::obs
