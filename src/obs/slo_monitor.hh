/**
 * @file
 * SLO health engine (observability pillar 4): windowed attainment and
 * burn-rate tracking with multi-window alert rules.
 *
 * An SloMonitor watches every completion and drop of each function over
 * fixed, sim-clock-aligned windows (origin 0, deterministic for a given
 * configuration — never wall clock). Each closed window yields a
 * WindowRow of attainment counters plus a latency-attribution split
 * (cold-start / queue-wait / batch-wait / exec) and a ring of per-window
 * metrics::LatencyHistogram evidence for the last few windows.
 *
 * Alerting follows the multi-window multi-burn-rate discipline of
 * production SLO monitoring: burn rate = observed violation fraction
 * divided by the error budget, evaluated over a short span with a high
 * threshold (fast — pages on acute overload within seconds) and a long
 * span with a low threshold (slow — catches sustained budget bleed).
 * Both rules carry hysteresis: an alert clears only after clearWindows
 * consecutive below-threshold windows.
 *
 * Determinism doctrine (matching tracing in PR 4): the monitor schedules
 * no events and draws no randomness, so an enabled monitor leaves every
 * simulation output bit-identical to a disabled one, and the disabled
 * config is bit-identical to not having the subsystem. Under a sharded
 * control plane each cell owns a monitor; SloHealthMerge absorbs closed
 * windows serially in cell order at window barriers, so the cluster view
 * is byte-identical at every worker-thread count.
 */

#ifndef INFLESS_OBS_SLO_MONITOR_HH
#define INFLESS_OBS_SLO_MONITOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "metrics/stats.hh"
#include "sim/time.hh"

namespace infless::obs {

/** One burn-rate alert rule: fire when the burn rate over the last
 *  @p windows closed windows reaches @p threshold. */
struct BurnRule
{
    /** Burn-rate threshold (1.0 = burning budget exactly at rate). */
    double threshold = 1.0;
    /** Number of monitor windows the rule spans. */
    int windows = 1;
};

/** SLO monitor knobs (part of ObsOptions; disabled by default). */
struct SloMonitorConfig
{
    bool enabled = false;
    /** Window length (sim ticks); windows align to tick 0. */
    sim::Tick windowTicks = sim::kTicksPerSec;
    /** Per-window histogram ring depth (flight-style recent evidence). */
    int ringWindows = 16;
    /** Allowed violation fraction (burn rate 1.0 = exactly this). */
    double errorBudget = 0.01;
    /** Fast rule: high threshold over a short span (acute overload). */
    BurnRule fast{14.4, 2};
    /** Slow rule: low threshold over a long span (sustained bleed). */
    BurnRule slow{6.0, 12};
    /** Consecutive below-threshold windows required to clear an alert. */
    int clearWindows = 2;
    /** Minimum finished requests in a rule's span before it may fire
     *  (idle functions never page). */
    std::int64_t minSamples = 20;
};

/** Attainment counters and attribution sums of one closed window. */
struct WindowRow
{
    /** Window start tick (window covers [start, start + windowTicks)). */
    sim::Tick start = 0;
    std::int64_t completions = 0;
    /** Completions whose end-to-end latency exceeded the SLO. */
    std::int64_t violations = 0;
    std::int64_t drops = 0;
    /** Attribution sums over the window's completions (ticks). */
    double coldSum = 0.0;
    double queueSum = 0.0;
    double batchSum = 0.0;
    double execSum = 0.0;
    /** Single-window burn rate, filled when the window closes. */
    double burn = 0.0;

    /** Finished requests (burn-rate denominator). */
    std::int64_t finished() const { return completions + drops; }

    /** Sum a sibling shard's window into this one (counters + sums). */
    void add(const WindowRow &other);
};

/** Which rule an alert belongs to. */
enum class AlertKind : std::uint8_t
{
    FastBurn,
    SlowBurn
};

/** Whether the alert edge raised or cleared the rule. */
enum class AlertEdge : std::uint8_t
{
    Firing,
    Cleared
};

const char *alertKindName(AlertKind kind);
const char *alertEdgeName(AlertEdge edge);

/** One structured alert event (a rule edge at a window close). */
struct SloAlert
{
    std::int32_t function = -1;
    AlertKind kind = AlertKind::FastBurn;
    AlertEdge edge = AlertEdge::Firing;
    /** Window-close tick the edge happened at. */
    sim::Tick at = 0;
    /** Burn rate over the rule's span at that instant. */
    double burnRate = 0.0;
    /** Mean attribution (ticks per completion) over the rule's span —
     *  the "why" behind the degradation. */
    double meanCold = 0.0;
    double meanQueue = 0.0;
    double meanBatch = 0.0;
    double meanExec = 0.0;
};

/**
 * Shared guts of the flat monitor and the cross-cell merge: per-function
 * closed-window history, rule state, and the alert log.
 */
class SloHealthCore
{
  public:
    using AlertCallback = std::function<void(const SloAlert &)>;

    void configure(const SloMonitorConfig &config);
    bool enabled() const { return config_.enabled; }
    const SloMonitorConfig &config() const { return config_; }

    /** Register a function and its SLO (before any traffic). */
    void registerFunction(std::int32_t fn, sim::Tick slo);

    /** Invoked synchronously on every alert edge (flight-dump hook). */
    void setAlertCallback(AlertCallback callback);

    // Queries ---------------------------------------------------------------

    /** Every alert edge emitted so far, in emission order. */
    const std::vector<SloAlert> &alerts() const { return alerts_; }

    /** Firing edges emitted (the alerts-total counter). */
    std::int64_t alertsFired() const { return fired_; }

    /** Whether @p fn's rule of @p kind is currently firing. */
    bool firing(std::int32_t fn, AlertKind kind) const;

    /** Burn rate of @p fn's rule span at the last closed window. */
    double burnRate(std::int32_t fn, AlertKind kind) const;

    /** Closed windows of @p fn, oldest first. */
    const std::vector<WindowRow> &closed(std::int32_t fn) const;

    /** Registered function ids, ascending. */
    std::vector<std::int32_t> functions() const;

    /** The SLO @p fn registered with. */
    sim::Tick sloOf(std::int32_t fn) const;

  protected:
    /** Hysteresis state of one rule. */
    struct RuleState
    {
        bool firing = false;
        int clearStreak = 0;
        double lastBurn = 0.0;
    };

    struct FnHealth
    {
        sim::Tick slo = 0;
        std::vector<WindowRow> closed;
        RuleState fast;
        RuleState slow;
    };

    /** Append a closed window and evaluate both rules at its end. */
    void closeWindow(std::int32_t fn, const WindowRow &row);

    FnHealth &health(std::int32_t fn);
    const FnHealth &health(std::int32_t fn) const;

    /** Deterministic iteration: function ids ascend. */
    std::map<std::int32_t, FnHealth> fns_;
    SloMonitorConfig config_;

  private:
    void stepRule(std::int32_t fn, FnHealth &f, AlertKind kind,
                  const BurnRule &rule, RuleState &state, sim::Tick at);

    std::vector<SloAlert> alerts_;
    std::int64_t fired_ = 0;
    AlertCallback callback_;
};

/**
 * Per-platform (or per-cell) SLO monitor: feeds completions and drops
 * into the open window of each function and closes windows as the sim
 * clock passes their ends.
 */
class SloMonitor : public SloHealthCore
{
  public:
    /** Per-window histogram evidence (ring of the last ringWindows). */
    struct WindowHists
    {
        metrics::LatencyHistogram latency;
        metrics::LatencyHistogram cold;
        metrics::LatencyHistogram queue;
        metrics::LatencyHistogram batch;
        metrics::LatencyHistogram exec;
    };

    /**
     * Record one completion. @p queue excludes @p batch (the four
     * components plus nothing else sum to @p total).
     */
    void recordCompletion(std::int32_t fn, sim::Tick at, sim::Tick total,
                          sim::Tick cold, sim::Tick queue, sim::Tick batch,
                          sim::Tick exec);

    /** Record one drop (burns budget like a violation). */
    void recordDrop(std::int32_t fn, sim::Tick at);

    /** Close every window ending at or before @p now (all functions). */
    void advanceTo(sim::Tick now);

    /** Merge of the per-window histogram ring (recent evidence). */
    WindowHists recentHistograms(std::int32_t fn) const;

    /** Windows currently held in @p fn's histogram ring. */
    std::size_t ringDepth(std::int32_t fn) const;

  private:
    struct FnOpen
    {
        WindowRow open;
        WindowHists hists;
        std::deque<WindowHists> ring;
    };

    /** Close windows of one function until its open window contains
     *  @p t (or starts after the last closed end when rolling idle). */
    void rollTo(std::int32_t fn, sim::Tick t);
    FnOpen &openState(std::int32_t fn);

    std::map<std::int32_t, FnOpen> open_;
};

/**
 * Cluster-level merge of per-cell monitors (ShardedPlatform). absorb()
 * runs serially in cell order at window barriers; a cluster window is
 * evaluated once every cell has closed it, so alerts reflect fleet-wide
 * burn (a hot cell diluted by cold ones may not page — by design, the
 * cluster budget is what the rules protect).
 */
class SloHealthMerge : public SloHealthCore
{
  public:
    /** Fix the number of contributing cells (before any absorb). */
    void setCellCount(std::size_t cells);

    /** Pull cell @p cell's newly closed windows; evaluates any cluster
     *  windows all cells have now closed. */
    void absorb(std::size_t cell, const SloMonitor &monitor);

  private:
    /** Windows absorbed per cell (uniform across functions). */
    std::vector<std::size_t> cursor_;
    /** Partially merged rows for windows not yet closed by every cell,
     *  indexed [fn][window - evaluated_]. */
    std::map<std::int32_t, std::vector<WindowRow>> pending_;
    /** Cluster windows already finalized (uniform across functions). */
    std::size_t evaluated_ = 0;
};

} // namespace infless::obs

#endif // INFLESS_OBS_SLO_MONITOR_HH
