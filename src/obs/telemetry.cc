#include "obs/telemetry.hh"

#include <cmath>
#include <ostream>

#include "sim/time.hh"

namespace infless::obs {

namespace {

/** JSON/Prometheus-safe number: NaN/inf are not valid JSON literals. */
double
finite(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

double
ticksToMsD(sim::Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sim::kTicksPerMs);
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

} // namespace

void
TelemetryRegistry::setRun(const std::string &benchmark, std::uint64_t seed,
                          double duration_sec)
{
    benchmark_ = benchmark;
    seed_ = seed;
    durationSec_ = duration_sec;
}

void
TelemetryRegistry::counter(const std::string &name, double value,
                           const std::string &help)
{
    scalars_.push_back(Scalar{name, help, finite(value), true});
}

void
TelemetryRegistry::gauge(const std::string &name, double value,
                         const std::string &help)
{
    scalars_.push_back(Scalar{name, help, finite(value), false});
}

void
TelemetryRegistry::histogram(const std::string &name, std::uint64_t count,
                             double mean, double p50, double p99,
                             double min, double max,
                             const std::string &help)
{
    Histogram h;
    h.name = name;
    h.help = help;
    h.unit = "us";
    h.count = count;
    h.mean = finite(mean);
    h.p50 = finite(p50);
    h.p99 = finite(p99);
    h.min = finite(min);
    h.max = finite(max);
    histograms_.push_back(std::move(h));
}

void
TelemetryRegistry::latencyHistogram(const std::string &name,
                                    const metrics::LatencyHistogram &hist,
                                    const std::string &help)
{
    Histogram h;
    h.name = name;
    h.help = help;
    h.unit = "ms";
    h.count = static_cast<std::uint64_t>(hist.count());
    h.mean = finite(hist.mean() /
                    static_cast<double>(sim::kTicksPerMs));
    h.p50 = ticksToMsD(hist.percentile(50.0));
    h.p99 = ticksToMsD(hist.percentile(99.0));
    h.min = ticksToMsD(hist.min());
    h.max = ticksToMsD(hist.max());
    // Native bucket data: cumulative counts at the log-bucket upper
    // edges, skipping empty buckets to keep the exposition compact (the
    // cumulative counts are unaffected — Prometheus interpolates).
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.bucketCount(); ++b) {
        std::int64_t samples = hist.bucketSamples(b);
        if (samples == 0)
            continue;
        cumulative += static_cast<std::uint64_t>(samples);
        h.bucketLe.push_back(ticksToMsD(hist.bucketUpperBound(b)));
        h.bucketCumulative.push_back(cumulative);
    }
    h.sum = finite(hist.sum() / static_cast<double>(sim::kTicksPerMs));
    histograms_.push_back(std::move(h));
}

void
TelemetryRegistry::addRunMetrics(const metrics::RunMetrics &m)
{
    counter("arrivals_total", static_cast<double>(m.arrivals()),
            "Requests that entered the system");
    counter("completions_total", static_cast<double>(m.completions()),
            "Requests completed");
    counter("drops_total", static_cast<double>(m.drops()),
            "Requests dropped");
    counter("slo_violations_total",
            static_cast<double>(m.sloViolations()),
            "Completions that missed their SLO");
    counter("cold_launches_total", static_cast<double>(m.coldLaunches()),
            "Instance launches paying a cold start");
    counter("warm_launches_total", static_cast<double>(m.warmLaunches()),
            "Instance launches from the pre-warmed pool");
    counter("batches_total", static_cast<double>(m.batches()),
            "Batches executed");
    counter("server_crashes_total",
            static_cast<double>(m.serverCrashes()),
            "Injected server crashes");
    counter("server_recoveries_total",
            static_cast<double>(m.serverRecoveries()),
            "Crashed servers restored");
    counter("startup_failures_total",
            static_cast<double>(m.startupFailures()),
            "Aborted cold-start attempts");
    counter("retries_total", static_cast<double>(m.retries()),
            "Crash-lost requests re-dispatched");
    counter("failovers_total", static_cast<double>(m.failovers()),
            "Retried requests that completed");
    counter("lost_batch_requests_total",
            static_cast<double>(m.lostBatchRequests()),
            "Requests mid-batch on crash-killed instances");
    counter("exec_cache_hits_total",
            static_cast<double>(m.execCacheHits()),
            "Latency-cache pricings served from the memo");
    counter("exec_cache_misses_total",
            static_cast<double>(m.execCacheMisses()),
            "Latency-cache pricings computed from the surface");
    counter("sheds_total", static_cast<double>(m.sheds()),
            "Requests shed by deadline-aware admission control");
    counter("breaker_sheds_total", static_cast<double>(m.breakerSheds()),
            "Requests shed by an open circuit breaker");
    counter("queue_evictions_total",
            static_cast<double>(m.queueEvictions()),
            "Queued requests evicted to seat fresher arrivals");
    counter("retry_budget_exhausted_total",
            static_cast<double>(m.retryBudgetExhausted()),
            "Retries denied by an empty retry budget");
    counter("breaker_opens_total", static_cast<double>(m.breakerOpens()),
            "Circuit breaker open transitions");
    counter("breaker_closes_total",
            static_cast<double>(m.breakerCloses()),
            "Circuit breaker close transitions");
    counter("brownout_entries_total",
            static_cast<double>(m.brownoutEntries()),
            "Functions entering degraded (brownout) mode");
    counter("brownout_exits_total",
            static_cast<double>(m.brownoutExits()),
            "Functions leaving degraded (brownout) mode");
    counter("limiter_sheds_total", static_cast<double>(m.limiterSheds()),
            "Requests shed by the adaptive concurrency limiter");
    counter("limiter_backoffs_total",
            static_cast<double>(m.limiterBackoffs()),
            "Adaptive-limit multiplicative decreases (timeout/drop)");
    counter("cell_migrations_total",
            static_cast<double>(m.cellMigrations()),
            "Servers migrated between cells at window barriers");
    counter("health_ejections_total",
            static_cast<double>(m.healthEjections()),
            "Servers quarantined by the outlier ejector");
    counter("health_readmissions_total",
            static_cast<double>(m.healthReadmissions()),
            "Quarantined servers re-admitted after probation");
    counter("gray_detections_total",
            static_cast<double>(m.grayDetections()),
            "Ejected servers that were ground-truth gray failures");
    counter("domain_outages_total",
            static_cast<double>(m.domainOutages()),
            "Correlated failure-domain outages injected");

    gauge("slo_violation_rate", m.sloViolationRate(),
          "Fraction of requests violating the SLO (drops included)");
    gauge("cold_launch_rate", m.coldLaunchRate(),
          "Fraction of launches that were cold");
    gauge("mean_batch_fill", m.meanBatchFill(),
          "Mean requests per executed batch");
    gauge("exec_cache_hit_rate", m.execCacheHitRate(),
          "Latency-cache hit fraction");
    if (durationSec_ > 0.0) {
        gauge("throughput_rps",
              static_cast<double>(m.completions()) / durationSec_,
              "Completions per second of simulated time");
    }

    latencyHistogram("latency_ms", m.latency(),
                     "End-to-end request latency");
    latencyHistogram("queue_ms", m.queueTime(),
                     "Batch-queue waiting time");
    latencyHistogram("exec_ms", m.execTime(), "Batch execution time");
    latencyHistogram("cold_ms", m.coldTime(),
                     "Cold-start time requests waited through");
    latencyHistogram("batch_ms", m.batchTime(),
                     "Batch-formation wait inside the queue time");
}

void
TelemetryRegistry::addOverheads(const OverheadProfiler &profiler)
{
    constexpr Phase kPhases[] = {Phase::Schedule, Phase::CopSolve,
                                 Phase::Autoscaler,
                                 Phase::ColdStartPolicy};
    for (Phase phase : kPhases) {
        PhaseStats s = profiler.stats(phase);
        histogram(std::string("overhead_") + phaseName(phase) + "_us",
                  s.count, s.meanUs, s.p50Us, s.p99Us, s.minUs, s.maxUs,
                  std::string("Wall-clock overhead of the ") +
                      phaseName(phase) + " controller phase");
    }
}

void
TelemetryRegistry::addTimeline(const metrics::TimelineSampler &timeline)
{
    for (const std::string &name : timeline.names()) {
        Series s;
        s.name = name;
        s.timesSec.reserve(timeline.times().size());
        for (sim::Tick t : timeline.times())
            s.timesSec.push_back(sim::ticksToSec(t));
        s.values = timeline.series(name);
        series_.push_back(std::move(s));
    }
}

void
TelemetryRegistry::writeJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"schema_version\": " << kTelemetrySchemaVersion << ",\n"
       << "  \"benchmark\": \"";
    jsonEscape(os, benchmark_);
    os << "\",\n"
       << "  \"seed\": " << seed_ << ",\n"
       << "  \"duration_sec\": " << finite(durationSec_) << ",\n"
       << "  \"truncated\": " << (truncated_ ? "true" : "false") << ",\n";

    os << "  \"counters\": {";
    bool first = true;
    for (const Scalar &s : scalars_) {
        if (!s.isCounter)
            continue;
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscape(os, s.name);
        os << "\": " << s.value;
        first = false;
    }
    os << "\n  },\n";

    os << "  \"gauges\": {";
    first = true;
    for (const Scalar &s : scalars_) {
        if (s.isCounter)
            continue;
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscape(os, s.name);
        os << "\": " << s.value;
        first = false;
    }
    os << "\n  },\n";

    os << "  \"histograms\": {";
    first = true;
    for (const Histogram &h : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscape(os, h.name);
        os << "\": {\"count\": " << h.count << ", \"unit\": \"" << h.unit
           << "\", \"mean\": " << h.mean << ", \"p50\": " << h.p50
           << ", \"p99\": " << h.p99 << ", \"min\": " << h.min
           << ", \"max\": " << h.max << "}";
        first = false;
    }
    os << "\n  },\n";

    os << "  \"timelines\": {";
    first = true;
    for (const Series &s : series_) {
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscape(os, s.name);
        os << "\": {\"time_sec\": [";
        for (std::size_t i = 0; i < s.timesSec.size(); ++i)
            os << (i ? ", " : "") << s.timesSec[i];
        os << "], \"values\": [";
        for (std::size_t i = 0; i < s.values.size(); ++i)
            os << (i ? ", " : "") << finite(s.values[i]);
        os << "]}";
        first = false;
    }
    os << "\n  }\n}\n";
}

namespace {

/** Prometheus metric names allow [a-zA-Z0-9_:] only. */
std::string
promName(const std::string &name)
{
    std::string out = "infless_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
promLine(std::ostream &os, const std::string &name,
         const std::string &help, const std::string &type, double value)
{
    if (!help.empty())
        os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
    os << name << " " << value << "\n";
}

} // namespace

void
TelemetryRegistry::writePrometheus(std::ostream &os) const
{
    os << "# INFless telemetry exposition (schema v"
       << kTelemetrySchemaVersion << ", benchmark " << benchmark_
       << ", seed " << seed_ << ")\n";
    promLine(os, "infless_run_duration_seconds", "Simulated run length",
             "gauge", finite(durationSec_));
    promLine(os, "infless_run_truncated",
             "1 when the event drain hit the safety valve", "gauge",
             truncated_ ? 1.0 : 0.0);
    for (const Scalar &s : scalars_) {
        promLine(os, promName(s.name), s.help,
                 s.isCounter ? "counter" : "gauge", s.value);
    }
    for (const Histogram &h : histograms_) {
        std::string base = promName(h.name);
        if (!h.help.empty())
            os << "# HELP " << base << " " << h.help << " (" << h.unit
               << ")\n";
        os << "# TYPE " << base << " summary\n";
        os << base << "_count " << h.count << "\n";
        os << base << "_mean " << h.mean << "\n";
        os << base << "_p50 " << h.p50 << "\n";
        os << base << "_p99 " << h.p99 << "\n";
        os << base << "_min " << h.min << "\n";
        os << base << "_max " << h.max << "\n";
        if (h.bucketLe.empty())
            continue;
        // Native histogram exposition alongside the summary: cumulative
        // `le` buckets (ms) Prometheus can histogram_quantile() over.
        std::string native = base + "_hist";
        if (!h.help.empty())
            os << "# HELP " << native << " " << h.help << " (" << h.unit
               << ", native buckets)\n";
        os << "# TYPE " << native << " histogram\n";
        for (std::size_t b = 0; b < h.bucketLe.size(); ++b)
            os << native << "_bucket{le=\"" << h.bucketLe[b] << "\"} "
               << h.bucketCumulative[b] << "\n";
        os << native << "_bucket{le=\"+Inf\"} " << h.count << "\n";
        os << native << "_sum " << h.sum << "\n";
        os << native << "_count " << h.count << "\n";
    }
}

} // namespace infless::obs
