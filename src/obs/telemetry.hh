/**
 * @file
 * Unified telemetry export (observability pillar 3).
 *
 * A TelemetryRegistry gathers everything one run produces — RunMetrics
 * counters and latency distributions, the exec-model cache hit/miss
 * tallies, fault counters, controller overhead histograms and optional
 * timeline series — into two machine-readable exports:
 *
 *  - telemetry.json: schema-versioned JSON (kTelemetrySchemaVersion
 *    gates consumers against silent layout drift);
 *  - metrics.prom: Prometheus text exposition, one sample per line,
 *    suitable for node_exporter-style scraping of batch results.
 *
 * The registry is a passive sink: callers push values, then write. It
 * holds no references into the platform, so it outlives the run it
 * describes.
 */

#ifndef INFLESS_OBS_TELEMETRY_HH
#define INFLESS_OBS_TELEMETRY_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/collector.hh"
#include "metrics/timeline.hh"
#include "obs/prof_scope.hh"

namespace infless::obs {

/** Bump on any breaking change to the telemetry.json layout. */
inline constexpr int kTelemetrySchemaVersion = 1;

/**
 * Accumulates a run's metrics and writes the unified exports.
 */
class TelemetryRegistry
{
  public:
    /** Identify the run (benchmark name, seed, simulated duration). */
    void setRun(const std::string &benchmark, std::uint64_t seed,
                double duration_sec);

    /** Mark the run's event drain as truncated (partial metrics). */
    void setTruncated(bool truncated) { truncated_ = truncated; }

    /** Add a monotonically increasing counter. */
    void counter(const std::string &name, double value,
                 const std::string &help = "");

    /** Add a point-in-time gauge. */
    void gauge(const std::string &name, double value,
               const std::string &help = "");

    /** Add a pre-summarized distribution (all values in one unit). */
    void histogram(const std::string &name, std::uint64_t count,
                   double mean, double p50, double p99, double min,
                   double max, const std::string &help = "");

    /** Summarize a latency histogram (ticks), exported in milliseconds. */
    void latencyHistogram(const std::string &name,
                          const metrics::LatencyHistogram &hist,
                          const std::string &help = "");

    /** Pull every counter/rate/distribution out of a RunMetrics. */
    void addRunMetrics(const metrics::RunMetrics &metrics);

    /** One overhead histogram per profiler phase (wall-clock micros);
     *  all phases are exported even when empty, so consumers can rely
     *  on the keys being present. */
    void addOverheads(const OverheadProfiler &profiler);

    /** Attach a sampled timeline's series. */
    void addTimeline(const metrics::TimelineSampler &timeline);

    /** Write the schema-versioned JSON document. */
    void writeJson(std::ostream &os) const;

    /** Write the Prometheus text exposition. */
    void writePrometheus(std::ostream &os) const;

  private:
    struct Scalar
    {
        std::string name;
        std::string help;
        double value = 0.0;
        bool isCounter = false;
    };

    struct Histogram
    {
        std::string name;
        std::string help;
        std::string unit;
        std::uint64_t count = 0;
        double mean = 0.0;
        double p50 = 0.0;
        double p99 = 0.0;
        double min = 0.0;
        double max = 0.0;
        /** Native-histogram bucket data (latencyHistogram only):
         *  cumulative counts at ascending `le` upper bounds (ms). */
        std::vector<double> bucketLe;
        std::vector<std::uint64_t> bucketCumulative;
        double sum = 0.0;
    };

    struct Series
    {
        std::string name;
        std::vector<double> timesSec;
        std::vector<double> values;
    };

    std::string benchmark_ = "unnamed";
    std::uint64_t seed_ = 0;
    double durationSec_ = 0.0;
    bool truncated_ = false;
    std::vector<Scalar> scalars_;
    std::vector<Histogram> histograms_;
    std::vector<Series> series_;
};

} // namespace infless::obs

#endif // INFLESS_OBS_TELEMETRY_HH
