#include "obs/trace_recorder.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace infless::obs {

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Arrival:
        return "arrival";
      case SpanKind::ColdStart:
        return "cold_start";
      case SpanKind::Queue:
        return "queue";
      case SpanKind::Exec:
        return "exec";
      case SpanKind::Complete:
        return "complete";
      case SpanKind::Drop:
        return "drop";
      case SpanKind::Retry:
        return "retry";
      case SpanKind::ServerCrash:
        return "server_crash";
      case SpanKind::ServerRecovery:
        return "server_recovery";
      case SpanKind::Shed:
        return "shed";
      case SpanKind::BreakerOpen:
        return "breaker_open";
      case SpanKind::BreakerHalfOpen:
        return "breaker_half_open";
      case SpanKind::BreakerClose:
        return "breaker_close";
      case SpanKind::BrownoutEnter:
        return "brownout_enter";
      case SpanKind::BrownoutExit:
        return "brownout_exit";
      case SpanKind::LimiterShed:
        return "limiter_shed";
      case SpanKind::CellMigration:
        return "cell_migration";
      case SpanKind::BatchWait:
        return "batch_wait";
      case SpanKind::FlightDump:
        return "flight_dump";
      case SpanKind::HealthEjection:
        return "health_ejection";
      case SpanKind::HealthReadmission:
        return "health_readmission";
      case SpanKind::DomainOutage:
        return "domain_outage";
      case SpanKind::DomainRepair:
        return "domain_repair";
    }
    return "?";
}

const char *
flightTriggerName(FlightTrigger trigger)
{
    switch (trigger) {
      case FlightTrigger::None:
        return "none";
      case FlightTrigger::SloFastBurn:
        return "slo_fast_burn";
      case FlightTrigger::SloSlowBurn:
        return "slo_slow_burn";
      case FlightTrigger::BreakerOpen:
        return "breaker_open";
      case FlightTrigger::ServerCrash:
        return "server_crash";
      case FlightTrigger::Manual:
        return "manual";
      case FlightTrigger::DomainOutage:
        return "domain_outage";
    }
    return "?";
}

void
TraceRecorder::configure(const TraceConfig &config)
{
    sim::simAssert(config.sampleRate >= 0.0 && config.sampleRate <= 1.0,
                   "trace sample rate out of [0, 1]: ", config.sampleRate);
    ring_.clear();
    head_ = 0;
    overwritten_ = 0;
    recorded_ = 0;
    if (config.sampleRate <= 0.0) {
        threshold_ = 0;
        capacity_ = 0;
        ring_.shrink_to_fit();
        return;
    }
    sim::simAssert(config.capacity > 0, "trace ring capacity must be > 0");
    capacity_ = config.capacity;
    threshold_ = static_cast<std::uint64_t>(
        std::llround(config.sampleRate * 4294967296.0)); // rate * 2^32
    ring_.reserve(capacity_);
}

bool
TraceRecorder::sampled(std::int64_t request) const
{
    if (threshold_ == 0)
        return false;
    // Salted hash of the request index; the low 32 bits against the
    // rate-scaled threshold give a deterministic Bernoulli(rate).
    std::uint64_t h = sim::hashCombine(
        static_cast<std::uint64_t>(request), 0x0B5E'CAB1'E000'0001ULL);
    return (h & 0xffffffffULL) < threshold_;
}

void
TraceRecorder::append(const SpanRecord &rec)
{
    ++recorded_;
    if (ring_.size() < capacity_) {
        ring_.push_back(rec);
        return;
    }
    ring_[head_] = rec;
    head_ = (head_ + 1) % capacity_;
    ++overwritten_;
}

void
TraceRecorder::record(SpanKind kind, std::int64_t request,
                      std::int32_t function, std::int32_t server,
                      std::int64_t instance, sim::Tick start,
                      sim::Tick duration)
{
    if (threshold_ == 0)
        return;
    SpanRecord rec;
    rec.kind = kind;
    rec.request = request;
    rec.function = function;
    rec.server = server;
    rec.instance = instance;
    rec.start = start;
    rec.duration = duration;
    append(rec);
}

void
TraceRecorder::clusterEvent(SpanKind kind, std::int32_t server,
                            sim::Tick at)
{
    if (threshold_ == 0)
        return;
    SpanRecord rec;
    rec.kind = kind;
    rec.server = server;
    rec.start = at;
    append(rec);
}

std::vector<SpanRecord>
TraceRecorder::snapshot() const
{
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    // Once full, head_ points at the oldest record.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

namespace {

/** Track row of a span: servers are pids, instances are tids. Pid 1 is
 *  the gateway (spans with no placement yet); server s maps to s + 2 so
 *  every pid stays positive, which some trace viewers require. */
int
pidOf(const SpanRecord &rec)
{
    return rec.server < 0 ? 1 : rec.server + 2;
}

int
tidOf(const SpanRecord &rec)
{
    return rec.instance < 0 ? 0 : static_cast<int>(rec.instance % 100000) + 1;
}

bool
isInstant(SpanKind kind)
{
    switch (kind) {
      case SpanKind::ColdStart:
      case SpanKind::Queue:
      case SpanKind::Exec:
      case SpanKind::BatchWait:
        return false;
      default:
        return true;
    }
}

bool
isClusterEvent(SpanKind kind)
{
    return kind == SpanKind::ServerCrash ||
           kind == SpanKind::ServerRecovery ||
           kind == SpanKind::CellMigration ||
           kind == SpanKind::HealthEjection ||
           kind == SpanKind::HealthReadmission ||
           kind == SpanKind::DomainOutage ||
           kind == SpanKind::DomainRepair;
}

/** Function-level overload control transitions: process-scoped markers
 *  (like faults) but categorized separately and tagged with the
 *  function id. */
bool
isOverloadEvent(SpanKind kind)
{
    switch (kind) {
      case SpanKind::BreakerOpen:
      case SpanKind::BreakerHalfOpen:
      case SpanKind::BreakerClose:
      case SpanKind::BrownoutEnter:
      case SpanKind::BrownoutExit:
        return true;
      default:
        return false;
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<SpanRecord> &spans)
{
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Process-name metadata rows: one per track (gateway + seen servers).
    std::set<int> pids;
    for (const SpanRecord &rec : spans)
        pids.insert(pidOf(rec));
    for (int pid : pids) {
        sep();
        os << "{\"ph\": \"M\", \"pid\": " << pid
           << ", \"name\": \"process_name\", \"args\": {\"name\": \"";
        if (pid == 1)
            os << "gateway";
        else
            os << "server " << pid - 2;
        os << "\"}}";
    }

    for (const SpanRecord &rec : spans) {
        sep();
        const char *name = spanKindName(rec.kind);
        if (rec.kind == SpanKind::FlightDump) {
            // Dump marker: a process-scoped instant on the gateway track
            // at the trigger instant, so the incident moment is findable
            // by name in Perfetto.
            os << "{\"ph\": \"i\", \"s\": \"p\", \"cat\": \"flight\", "
               << "\"name\": \"" << name << "\", \"pid\": 1, \"tid\": 0, "
               << "\"ts\": " << rec.start
               << ", \"args\": {\"trigger\": " << rec.request << "}}";
            continue;
        }
        if (isClusterEvent(rec.kind)) {
            // Process-scoped instant: draws a marker across the server's
            // whole track in Perfetto.
            os << "{\"ph\": \"i\", \"s\": \"p\", \"cat\": \"fault\", "
               << "\"name\": \"" << name << "\", \"pid\": " << pidOf(rec)
               << ", \"tid\": 0, \"ts\": " << rec.start << "}";
            continue;
        }
        if (isOverloadEvent(rec.kind)) {
            os << "{\"ph\": \"i\", \"s\": \"p\", \"cat\": \"overload\", "
               << "\"name\": \"" << name << "\", \"pid\": " << pidOf(rec)
               << ", \"tid\": 0, \"ts\": " << rec.start
               << ", \"args\": {\"function\": " << rec.function << "}}";
            continue;
        }
        if (isInstant(rec.kind)) {
            os << "{\"ph\": \"i\", \"s\": \"t\", \"cat\": \"request\", "
               << "\"name\": \"" << name << "\", \"pid\": " << pidOf(rec)
               << ", \"tid\": " << tidOf(rec) << ", \"ts\": " << rec.start
               << ", \"args\": {\"request\": " << rec.request
               << ", \"function\": " << rec.function << "}}";
            continue;
        }
        // Ticks are microseconds, the trace-event native unit: ts and
        // dur pass through unconverted.
        os << "{\"ph\": \"X\", \"cat\": \"request\", \"name\": \"" << name
           << "\", \"pid\": " << pidOf(rec) << ", \"tid\": " << tidOf(rec)
           << ", \"ts\": " << rec.start << ", \"dur\": " << rec.duration
           << ", \"args\": {\"request\": " << rec.request
           << ", \"function\": " << rec.function << "}}";
    }
    os << "\n]\n}\n";
}

void
TraceRecorder::writeChromeTrace(std::ostream &os) const
{
    obs::writeChromeTrace(os, snapshot());
}

void
FlightRecorder::configure(const FlightConfig &config)
{
    TraceConfig tc;
    tc.sampleRate = config.enabled ? 1.0 : 0.0;
    tc.capacity = config.capacity;
    ring_.configure(tc);
    trigger_ = FlightTrigger::None;
    triggerAt_ = 0;
    triggerCount_ = 0;
    dump_.clear();
}

void
FlightRecorder::trigger(FlightTrigger why, sim::Tick at)
{
    if (!ring_.enabled() || why == FlightTrigger::None)
        return;
    ++triggerCount_;
    if (trigger_ != FlightTrigger::None)
        return; // dump already frozen at the first incident
    trigger_ = why;
    triggerAt_ = at;
    dump_ = ring_.snapshot();
    SpanRecord marker;
    marker.kind = SpanKind::FlightDump;
    marker.start = at;
    marker.request = static_cast<std::int64_t>(why);
    dump_.push_back(marker);
}

void
FlightRecorder::writeChromeTrace(std::ostream &os) const
{
    if (trigger_ != FlightTrigger::None) {
        obs::writeChromeTrace(os, dump_);
        return;
    }
    obs::writeChromeTrace(os, ring_.snapshot());
}

} // namespace infless::obs
