/**
 * @file
 * Request-lifecycle tracing (observability pillar 1).
 *
 * A TraceRecorder keeps a ring buffer of fixed-size span records emitted
 * by the platform on each traced request's arrival -> queue -> cold-start
 * -> batch-exec -> complete/drop/retry path, plus cluster-level instant
 * events (server crash/recovery). The store is allocation-light: one
 * vector reserved up-front, 48-byte POD records, no per-span heap
 * traffic, and no interaction with simulated time — recording never
 * schedules events or draws randomness, so a traced run is bit-identical
 * to an untraced one in every simulation output.
 *
 * Sampling is deterministic: a request is traced iff a hash of its index
 * falls under the configured rate threshold, so the same run traces the
 * same requests at any capacity and the decision costs one multiply-free
 * hash, not an RNG draw.
 *
 * Export is Chrome trace-event JSON (writeChromeTrace), loadable in
 * Perfetto / chrome://tracing: servers become process rows, instances
 * become thread rows, lifecycle stages are complete ("ph":"X") spans and
 * faults are instant ("ph":"i") events.
 */

#ifndef INFLESS_OBS_TRACE_RECORDER_HH
#define INFLESS_OBS_TRACE_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/time.hh"

namespace infless::obs {

/** Lifecycle stage (or cluster event) a span record describes. */
enum class SpanKind : std::uint8_t
{
    Arrival,        ///< request entered the gateway (instant)
    ColdStart,      ///< startup latency the request waited through (span)
    Queue,          ///< waiting in an instance's batch queue (span)
    Exec,           ///< batch execution (span)
    Complete,       ///< request finished (instant)
    Drop,           ///< request dropped (instant)
    Retry,          ///< crash-lost request re-dispatched (instant)
    ServerCrash,    ///< injected server failure (cluster instant)
    ServerRecovery, ///< crashed server rejoined (cluster instant)
    Shed,            ///< overload control shed the request (instant)
    BreakerOpen,     ///< circuit breaker tripped open (function instant)
    BreakerHalfOpen, ///< breaker started probing (function instant)
    BreakerClose,    ///< breaker closed after probes (function instant)
    BrownoutEnter,   ///< function entered degraded mode (instant)
    BrownoutExit,    ///< function left degraded mode (instant)
    LimiterShed,     ///< adaptive limiter shed the request (instant)
    CellMigration,   ///< server migrated between cells (cluster instant)
    BatchWait,       ///< waiting for the running batch to drain (span)
    FlightDump,      ///< flight recorder dumped at this instant (marker)
    HealthEjection,  ///< outlier ejector quarantined a server (instant)
    HealthReadmission, ///< probation expired, server re-admitted (instant)
    DomainOutage,    ///< a failure domain died at once (cluster instant)
    DomainRepair,    ///< the failure domain repaired (cluster instant)
};

/** Display name of a span kind (trace-event "name" field). */
const char *spanKindName(SpanKind kind);

/** One ring-buffer entry; POD, 48 bytes. */
struct SpanRecord
{
    sim::Tick start = 0;        ///< span start (ticks = microseconds)
    sim::Tick duration = 0;     ///< 0 for instant events
    std::int64_t request = -1;  ///< request index (-1 for cluster events)
    std::int64_t instance = -1; ///< instance id (-1 = gateway/none)
    std::int32_t function = -1; ///< function id (-1 for cluster events)
    std::int32_t server = -1;   ///< server id (-1 = gateway/none)
    SpanKind kind = SpanKind::Arrival;
};

/** Tracing knobs (part of PlatformOptions). */
struct TraceConfig
{
    /**
     * Fraction of requests traced, [0, 1]. 0 disables tracing entirely
     * (the default: no storage is reserved and every emit call is a
     * single branch).
     */
    double sampleRate = 0.0;
    /** Ring capacity in span records; oldest records are overwritten. */
    std::size_t capacity = 1 << 16;
};

/**
 * Ring-buffered span store with deterministic hash-based sampling.
 */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /** (Re)configure; clears any recorded spans. */
    void configure(const TraceConfig &config);

    /** Whether any recording can happen (sample rate > 0). */
    bool enabled() const { return threshold_ != 0; }

    /**
     * Deterministic sampling decision for a request index. Stable across
     * runs and platforms: depends only on the index and the rate.
     */
    bool sampled(std::int64_t request) const;

    /** enabled() && sampled(): the emit-site guard. */
    bool
    wants(std::int64_t request) const
    {
        return threshold_ != 0 && sampled(request);
    }

    /** Record one request-lifecycle span (caller checks wants()). */
    void record(SpanKind kind, std::int64_t request, std::int32_t function,
                std::int32_t server, std::int64_t instance, sim::Tick start,
                sim::Tick duration);

    /** Record a cluster-level instant event (crash/recovery). */
    void clusterEvent(SpanKind kind, std::int32_t server, sim::Tick at);

    /** Spans currently held (<= capacity). */
    std::size_t size() const { return ring_.size(); }

    /** Spans overwritten after the ring filled. */
    std::uint64_t overwritten() const { return overwritten_; }

    /** Spans recorded over the recorder's lifetime. */
    std::uint64_t recorded() const { return recorded_; }

    /** Held spans in recording order (oldest first). */
    std::vector<SpanRecord> snapshot() const;

    /**
     * Write the held spans as Chrome trace-event JSON. Servers map to
     * pids (server + 2; pid 1 is the gateway), instances to tids, and
     * each pid gets a process_name metadata record.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    void append(const SpanRecord &rec);

    std::vector<SpanRecord> ring_;
    /** Next overwrite position once the ring is full. */
    std::size_t head_ = 0;
    std::size_t capacity_ = 0;
    /** sampled() cutoff: hash32(request) < threshold_. 0 = disabled,
     *  2^32 = trace everything. */
    std::uint64_t threshold_ = 0;
    std::uint64_t overwritten_ = 0;
    std::uint64_t recorded_ = 0;
};

/** Write arbitrary spans as Chrome trace-event JSON (the exporter behind
 *  TraceRecorder::writeChromeTrace and the flight recorder's dumps). */
void writeChromeTrace(std::ostream &os, const std::vector<SpanRecord> &spans);

/** What tripped a flight dump. */
enum class FlightTrigger : std::uint8_t
{
    None,        ///< no dump yet
    SloFastBurn, ///< fast burn-rate alert fired
    SloSlowBurn, ///< slow burn-rate alert fired
    BreakerOpen,  ///< a circuit breaker opened
    ServerCrash,  ///< a server crash was injected
    Manual,       ///< explicit trigger (tests / operators)
    DomainOutage  ///< a correlated failure-domain outage hit
};

const char *flightTriggerName(FlightTrigger trigger);

/** Flight-recorder knobs (part of ObsOptions; disabled by default). */
struct FlightConfig
{
    bool enabled = false;
    /** Ring capacity in span records — the "last N seconds" of evidence.
     *  At 48 B/record the default holds 16k spans in ~768 KiB. */
    std::size_t capacity = 1 << 14;
};

/**
 * Always-on bounded span ring that freezes a snapshot at the first
 * anomaly (observability pillar 5).
 *
 * Unlike the sampling TraceRecorder, a flight recorder keeps EVERY span
 * in a small ring: steady-state cost is one ring write per span and zero
 * allocation, and no up-front sampling guess is needed. When an anomaly
 * trigger arrives (SLO burn alert, breaker open, server crash) the
 * current ring is copied into a frozen dump — the seconds leading up to
 * the incident — and later triggers only bump a counter, so the dump
 * always shows the FIRST incident, not the last. Like its host recorder
 * it never touches simulated time: enabling it is bit-identical in every
 * simulation output.
 */
class FlightRecorder
{
  public:
    void configure(const FlightConfig &config);
    bool enabled() const { return ring_.enabled(); }

    /** Record one span (caller checks enabled()). */
    void
    record(SpanKind kind, std::int64_t request, std::int32_t function,
           std::int32_t server, std::int64_t instance, sim::Tick start,
           sim::Tick duration)
    {
        ring_.record(kind, request, function, server, instance, start,
                     duration);
    }

    /** Record a cluster-level instant event. */
    void
    clusterEvent(SpanKind kind, std::int32_t server, sim::Tick at)
    {
        ring_.clusterEvent(kind, server, at);
    }

    /** Note an anomaly at @p at; the first call freezes the dump. */
    void trigger(FlightTrigger why, sim::Tick at);

    /** Whether a dump has been frozen. */
    bool triggered() const { return trigger_ != FlightTrigger::None; }

    /** First trigger cause (None until triggered). */
    FlightTrigger triggerCause() const { return trigger_; }

    /** Tick of the first trigger (meaningful once triggered). */
    sim::Tick triggerAt() const { return triggerAt_; }

    /** Triggers observed in total (including post-freeze ones). */
    std::uint64_t triggerCount() const { return triggerCount_; }

    /** The frozen dump (empty until triggered), oldest span first; ends
     *  with a FlightDump marker at the trigger instant. */
    const std::vector<SpanRecord> &dump() const { return dump_; }

    /** Spans recorded over the recorder's lifetime. */
    std::uint64_t recorded() const { return ring_.recorded(); }

    /** Write the frozen dump (or, untriggered, the live ring) as Chrome
     *  trace-event JSON. */
    void writeChromeTrace(std::ostream &os) const;

  private:
    /** Sampling recorder pinned to rate 1.0: reuses the ring mechanics,
     *  every span passes the threshold. */
    TraceRecorder ring_;
    FlightTrigger trigger_ = FlightTrigger::None;
    sim::Tick triggerAt_ = 0;
    std::uint64_t triggerCount_ = 0;
    std::vector<SpanRecord> dump_;
};

} // namespace infless::obs

#endif // INFLESS_OBS_TRACE_RECORDER_HH
