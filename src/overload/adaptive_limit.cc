#include "overload/adaptive_limit.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace infless::overload {

GradientLimit::GradientLimit(const AdaptiveLimitConfig &config)
    : config_(config),
      limit_(std::clamp(config.initialLimit, config.minLimit,
                        config.maxLimit))
{
    sim::simAssert(config_.minLimit >= 1.0, "minLimit must be >= 1");
    sim::simAssert(config_.maxLimit >= config_.minLimit,
                   "maxLimit must be >= minLimit");
    sim::simAssert(config_.probeInterval > 0,
                   "probeInterval must be positive");
    sim::simAssert(
        config_.rttSmoothing > 0.0 && config_.rttSmoothing <= 1.0,
        "rttSmoothing must be in (0, 1]");
    sim::simAssert(config_.smoothing > 0.0 && config_.smoothing <= 1.0,
                   "smoothing must be in (0, 1]");
    sim::simAssert(config_.minGradient > 0.0 &&
                       config_.minGradient <= config_.maxGradient,
                   "gradient clamp must satisfy 0 < min <= max");
    sim::simAssert(
        config_.backoffRatio > 0.0 && config_.backoffRatio < 1.0,
        "backoffRatio must be in (0, 1)");
}

void
GradientLimit::advanceProbeEpoch(sim::Tick now)
{
    if (now - epochStart_ < config_.probeInterval)
        return;
    // Re-probe: adopt the best RTT seen during the closing epoch as the
    // new baseline. An epoch with no samples keeps the old baseline —
    // silence is not evidence the floor moved.
    if (epochMin_ != sim::kTickNever)
        minRtt_ = epochMin_;
    epochMin_ = sim::kTickNever;
    epochStart_ = now;
}

bool
GradientLimit::onSample(sim::Tick now, sim::Tick rtt, bool timeout,
                        std::int64_t in_flight)
{
    rtt = std::max<sim::Tick>(1, rtt);
    ++samples_;
    if (!started_) {
        started_ = true;
        epochStart_ = now;
        minRtt_ = rtt;
        sampleRtt_ = static_cast<double>(rtt);
    } else {
        sampleRtt_ = (1.0 - config_.rttSmoothing) * sampleRtt_ +
                     config_.rttSmoothing * static_cast<double>(rtt);
    }
    // The baseline tracks the min of the *smoothed* RTT, not of raw
    // samples. Batching platforms hold requests back on purpose (the
    // queue waits out its slack to fill a batch), so a single lucky
    // unbatched request can probe an RTT the steady state can never
    // reproduce; anchoring on it would read the deliberate batching
    // plateau as permanent congestion and pin the limit at its floor.
    // Typical-vs-typical keeps the gradient at ~1 when the plateau is
    // stable and <1 only when latency rises beyond it.
    epochMin_ = std::min(
        epochMin_,
        std::max<sim::Tick>(1, static_cast<sim::Tick>(sampleRtt_)));
    advanceProbeEpoch(now);

    if (timeout) {
        // A completion past the SLO is congestion evidence of the same
        // kind as a drop: decrease multiplicatively rather than trust
        // the (already saturated) gradient to walk the limit down.
        return backoff(now);
    }
    if (config_.growthFreeze &&
        now - lastBackoff_ < config_.backoffCooldown) {
        // Optional: growth freezes for one cooldown after a decrease,
        // so the healthy majority's sqrt headroom cannot regrow each
        // backoff cut while violations are still streaming in (see the
        // config comment for the goodput tradeoff).
        return false;
    }

    gradient_ = std::clamp(static_cast<double>(minRtt_) / sampleRtt_,
                           config_.minGradient, config_.maxGradient);
    double estimate = limit_ * gradient_ + std::sqrt(limit_);
    if (estimate > limit_ &&
        static_cast<double>(in_flight) <
            config_.growthUtilization * limit_) {
        // App-limited: the current limit is not even being used, so a
        // healthy sample is no evidence that *more* concurrency is safe.
        return false;
    }
    limit_ = std::clamp((1.0 - config_.smoothing) * limit_ +
                            config_.smoothing * estimate,
                        config_.minLimit, config_.maxLimit);
    return false;
}

bool
GradientLimit::onDrop(sim::Tick now)
{
    return backoff(now);
}

bool
GradientLimit::backoff(sim::Tick now)
{
    if (now - lastBackoff_ < config_.backoffCooldown)
        return false;
    lastBackoff_ = now;
    ++backoffs_;
    limit_ = std::max(config_.minLimit, limit_ * config_.backoffRatio);
    return true;
}

} // namespace infless::overload
