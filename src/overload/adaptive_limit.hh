/**
 * @file
 * Adaptive concurrency limiting (Netflix/Envoy gradient discipline).
 *
 * PR 5's admission control is feedforward: it sheds when a *predicted*
 * sojourn exceeds the SLO slack, so every error in the profiled latency
 * surface flows straight into shed decisions. The adaptive limiter is
 * the feedback counterpart: it never consults the profile at all.
 * `GradientLimit` estimates a safe concurrency from observed latencies —
 * a periodically re-probed minRTT baseline against a smoothed sample
 * RTT, with square-root headroom for exploration and multiplicative
 * decrease on timeout/drop feedback — and `ConcurrencyStrategy`
 * enforces that estimate at ingress with a plain in-flight counter.
 * Because the inputs are measured completions, the limiter converges on
 * the *real* capacity even when the profiler lies (the
 * mispredicted-profile fault in src/faults/profile_error.hh).
 *
 * Everything is sim-clock-only and deterministic: no RNG, no wall
 * clock, no events scheduled. State is a pure function of the
 * (now, rtt/drop) sequence fed in, so per-cell limiters preserve the
 * byte-identity-across-threads contract of ShardedPlatform.
 */

#ifndef INFLESS_OVERLOAD_ADAPTIVE_LIMIT_HH
#define INFLESS_OVERLOAD_ADAPTIVE_LIMIT_HH

#include <algorithm>
#include <cstdint>

#include "sim/time.hh"

namespace infless::overload {

/** Gradient-limiter tunables (AdmissionMode::Adaptive). */
struct AdaptiveLimitConfig
{
    /** Floor of the concurrency estimate; the limiter always lets at
     *  least this many requests in flight so it can keep sampling. */
    double minLimit = 4.0;
    /** Ceiling of the concurrency estimate. */
    double maxLimit = 4096.0;
    /** Starting estimate before any feedback has arrived. */
    double initialLimit = 32.0;
    /** minRTT baseline re-probe period: every interval the baseline is
     *  replaced by the best *smoothed* RTT observed during the interval
     *  (typical-vs-typical — a single lucky unbatched request must not
     *  anchor the floor on a latency the batching steady state can never
     *  reproduce), so an ancient floor from a colder epoch cannot pin
     *  the gradient. */
    sim::Tick probeInterval = 5 * sim::kTicksPerSec;
    /** EMA weight of a new sample in the smoothed sample RTT. */
    double rttSmoothing = 0.2;
    /** EMA weight of a fresh estimate in the published limit (damps
     *  per-sample jitter; 1.0 = jump straight to the new estimate). */
    double smoothing = 0.3;
    /**
     * Gradient clamp. The default floor of 1.0 makes the gradient a
     * growth-only signal: on a deadline-batching platform, below-SLO
     * latency is shaped by the batching policy and fleet size (queues
     * deliberately wait out their slack to fill batches, and an
     * over-provisioned fleet probes RTTs the right-sized one can never
     * reproduce), so latency drift below the SLO is not congestion
     * evidence and must not shrink the limit. Decrease comes from the
     * explicit timeout/drop feedback instead. Deployments whose latency
     * *is* monotone in congestion can lower the floor to re-enable
     * gradient-driven decrease. The ceiling keeps one lucky window from
     * doubling the limit.
     */
    double minGradient = 1.0;
    double maxGradient = 1.5;
    /**
     * Growth requires evidence: the limit only rises while in-flight
     * occupancy is at least this fraction of it. Without the gate an
     * uncontended limiter walks to maxLimit and every burst onset
     * over-admits by the accumulated headroom before feedback returns
     * (one full RTT later). 0 disables the gate.
     */
    double growthUtilization = 0.5;
    /**
     * Enforcement requires evidence: the ingress gate only rejects once
     * the estimator has consumed this many latency samples. Before that
     * the limit is a prior, not feedback — rejecting on it would shed
     * the very load the first fleet is being built for (cold starts are
     * provisioning, not congestion), and a gate that engages mid-burst
     * with an unlearned limit sheds requests the still-warming fleet
     * was about to absorb. Requests admitted during warmup still take
     * in-flight slots when one is free, so the estimator keeps
     * learning; only the reject branch is disarmed. The default is
     * sized to outlast the backlog drain that follows first warm
     * capacity (samples flow only from slot-holders, so a quota of N
     * is N slot-holder round-trips, not N arrivals).
     */
    std::int64_t warmupSamples = 256;
    /** Multiplicative decrease applied on timeout/drop feedback. */
    double backoffRatio = 0.9;
    /** At most one multiplicative decrease per cooldown, so a burst of
     *  simultaneous drops (one lost batch) counts as one signal, not
     *  compounding to backoffRatio^N. */
    sim::Tick backoffCooldown = 100 * sim::kTicksPerMs;
    /**
     * Freeze growth for one backoffCooldown after each decrease.
     * Violations and healthy completions interleave while a queue
     * drains, and without the freeze the healthy majority's sqrt
     * headroom regrows everything each backoff cut — on a hopelessly
     * saturated fixture the limit can never descend to the binding
     * point. Off by default: on a fixture whose deadline queue already
     * drops precisely the requests that cannot meet the SLO, letting
     * the limit crash below queue capacity trades goodput for ingress
     * sheds (measured ~0.3% SLO-goodput loss at 2x overload). Enable
     * it when the limiter must actually bind — chronically
     * under-provisioned functions where relabeling queue drops as
     * cheap ingress sheds is the point.
     */
    bool growthFreeze = false;
};

/**
 * The estimator half (SNIPPETS Snippet 3's `Limit`): consumes latency
 * samples and drop signals, publishes a concurrency limit.
 *
 *   gradient = clamp(minRTT / sampleRTT, minGradient, maxGradient)
 *   estimate = limit * gradient + sqrt(limit)
 *   limit    = (1 - smoothing) * limit + smoothing * estimate
 *
 * The sqrt(limit) headroom keeps the limit growing while latency holds
 * at the baseline (gradient ~= 1), so the limiter explores upward — but
 * only while the current limit is actually being used (the
 * growthUtilization gate), so an idle limiter cannot bank unearned
 * headroom. Decrease comes from timeout/drop feedback (and, when
 * minGradient < 1, from the gradient itself).
 */
class GradientLimit
{
  public:
    GradientLimit() : GradientLimit(AdaptiveLimitConfig{}) {}

    explicit GradientLimit(const AdaptiveLimitConfig &config);

    /**
     * Feed one completion's observed latency. @p timeout marks a
     * completion past the (effective) SLO: it still feeds the RTT
     * estimate but triggers multiplicative decrease instead of a
     * gradient update. @p in_flight is the concurrent occupancy at
     * completion time (the growth-utilization gate's evidence).
     *
     * @return true when a multiplicative decrease fired (for metrics).
     */
    bool onSample(sim::Tick now, sim::Tick rtt, bool timeout,
                  std::int64_t in_flight);

    /** Feed a drop of an admitted request (queue overrun, crash with
     *  dry budget, eviction). @return true when a decrease fired. */
    bool onDrop(sim::Tick now);

    /** Current concurrency limit estimate. */
    double limit() const { return limit_; }

    /** Current minRTT baseline (0 until the first sample). */
    sim::Tick minRtt() const { return minRtt_; }

    /** Last computed (clamped) gradient; 1 until the first sample. */
    double gradient() const { return gradient_; }

    /** Multiplicative decreases applied so far. */
    std::int64_t backoffs() const { return backoffs_; }

    /** Latency samples consumed so far. */
    std::int64_t samples() const { return samples_; }

    /** True once the estimator has consumed warmupSamples samples and
     *  the limit is feedback rather than a prior (see config). */
    bool warmedUp() const { return samples_ >= config_.warmupSamples; }

    const AdaptiveLimitConfig &config() const { return config_; }

  private:
    /** Rate-limited multiplicative decrease; true when it fired. */
    bool backoff(sim::Tick now);
    void advanceProbeEpoch(sim::Tick now);

    AdaptiveLimitConfig config_;
    double limit_;
    double gradient_ = 1.0;
    /** Smoothed sample RTT (EMA); 0 until the first sample. */
    double sampleRtt_ = 0.0;
    /** Baseline: best smoothed RTT of the previous probe epoch. */
    sim::Tick minRtt_ = 0;
    /** Best smoothed RTT inside the current probe epoch. */
    sim::Tick epochMin_ = sim::kTickNever;
    sim::Tick epochStart_ = 0;
    bool started_ = false;
    sim::Tick lastBackoff_ = -sim::kTicksPerHour;
    std::int64_t backoffs_ = 0;
    std::int64_t samples_ = 0;
};

/**
 * The enforcement half (Snippet 3's `Strategy`): a per-function
 * in-flight counter gated against the published limit at ingress.
 * Acquire on admission, release exactly once on the terminal paths
 * (completion or drop) — the platform tracks the held flag per request
 * so retries and chain stages never double-acquire.
 */
class ConcurrencyStrategy
{
  public:
    /** Admit when in-flight < floor(limit) (>= 1 always probes). */
    bool tryAcquire(double limit)
    {
        auto cap = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(limit));
        if (inFlight_ >= cap)
            return false;
        ++inFlight_;
        return true;
    }

    /** Release one admitted request (terminal completion or drop). */
    void release()
    {
        if (inFlight_ > 0)
            --inFlight_;
    }

    std::int64_t inFlight() const { return inFlight_; }

  private:
    std::int64_t inFlight_ = 0;
};

/** The per-function pair the platform holds. */
struct AdaptiveLimiter
{
    AdaptiveLimiter() = default;

    explicit AdaptiveLimiter(const AdaptiveLimitConfig &config)
        : limit(config)
    {
    }

    GradientLimit limit;
    ConcurrencyStrategy strategy;
};

} // namespace infless::overload

#endif // INFLESS_OVERLOAD_ADAPTIVE_LIMIT_HH
