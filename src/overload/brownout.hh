/**
 * @file
 * Brownout controller: under sustained overload, trade latency for
 * throughput within a degraded-SLO envelope and prioritize scale-out.
 */

#ifndef INFLESS_OVERLOAD_BROWNOUT_HH
#define INFLESS_OVERLOAD_BROWNOUT_HH

#include <cstdint>

#include "overload/rolling_rate.hh"
#include "sim/time.hh"

namespace infless::overload {

struct BrownoutConfig
{
    bool enabled = false;
    /** Sliding window over which overload pressure is measured. */
    sim::Tick window = 5 * sim::kTicksPerSec;
    int windowBuckets = 10;
    /** Pressure fraction (drops + sheds + violations over all
     *  outcomes) at/above which brownout engages. */
    double enterThreshold = 0.15;
    /** Pressure fraction at/below which brownout may disengage. */
    double exitThreshold = 0.05;
    /** Minimum outcomes in the window before entering. */
    int minSamples = 50;
    /** Minimum time browned-out before the exit test applies
     *  (hysteresis against flapping). */
    sim::Tick minHold = 10 * sim::kTicksPerSec;
    /** Admitted requests may run this multiple of the nominal SLO
     *  while browned out (relaxed batching slack). */
    double degradedSloMultiplier = 2.0;
};

/**
 * Deterministic enter/exit hysteresis over a rolling overload signal.
 *
 * Entry is evaluated on every recorded outcome; exit needs a periodic
 * update() as well (the autoscaler tick) so a function whose traffic
 * vanished entirely still recovers once the hold expires.
 */
class BrownoutController
{
  public:
    BrownoutController() : BrownoutController(BrownoutConfig{}) {}

    explicit BrownoutController(const BrownoutConfig &config)
        : config_(config), window_(config.window, config.windowBuckets)
    {
    }

    /** Feed one outcome; true = drop, shed, or SLO violation. */
    void record(sim::Tick now, bool overloaded)
    {
        if (!config_.enabled)
            return;
        window_.record(now, overloaded);
        update(now);
    }

    /** Re-evaluate enter/exit at @p now (call from the scaler tick). */
    void update(sim::Tick now)
    {
        if (!config_.enabled)
            return;
        if (!active_) {
            if (window_.samples(now) >= config_.minSamples &&
                window_.failureRate(now) >= config_.enterThreshold) {
                active_ = true;
                enteredAt_ = now;
                ++entries_;
            }
            return;
        }
        if (now - enteredAt_ >= config_.minHold &&
            window_.failureRate(now) <= config_.exitThreshold) {
            active_ = false;
            ++exits_;
        }
    }

    bool active() const { return active_; }

    /** Whether the deadline stretch applies right now: browned out AND
     *  the pressure window is still hot. During the tail of the hold
     *  (pressure gone, hold not yet expired) batching reverts to the
     *  nominal deadline, otherwise every timeout-driven batch in the
     *  lull would violate the nominal SLO for no throughput gain. */
    bool relaxing(sim::Tick now) const
    {
        return active_ &&
               window_.failureRate(now) > config_.exitThreshold;
    }

    /** Current SLO stretch: degraded multiplier while active, else 1. */
    double sloMultiplier() const
    {
        return active_ ? config_.degradedSloMultiplier : 1.0;
    }

    std::int64_t entries() const { return entries_; }
    std::int64_t exits() const { return exits_; }

  private:
    BrownoutConfig config_;
    RollingRate window_;
    bool active_ = false;
    sim::Tick enteredAt_ = 0;
    std::int64_t entries_ = 0;
    std::int64_t exits_ = 0;
};

} // namespace infless::overload

#endif // INFLESS_OVERLOAD_BROWNOUT_HH
