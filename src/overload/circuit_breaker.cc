#include "overload/circuit_breaker.hh"

#include <cmath>

#include "sim/rng.hh"

namespace infless::overload {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half_open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig &config)
    : config_(config), window_(config.window, config.windowBuckets)
{
}

bool
CircuitBreaker::probeSampled(std::int64_t request) const
{
    // Same discipline as trace sampling: salted hash of the request
    // index, low 32 bits against a rate-scaled threshold. Deterministic
    // and RNG-free, so enabling the breaker perturbs no random stream.
    auto threshold = static_cast<std::uint64_t>(
        std::llround(config_.probeFraction * 4294967296.0));
    std::uint64_t h = sim::hashCombine(
        static_cast<std::uint64_t>(request), 0x0B5E'CAB1'E000'0002ULL);
    return (h & 0xffffffffULL) < threshold;
}

void
CircuitBreaker::transitionTo(BreakerState next, sim::Tick now)
{
    transitions_.push_back({now, state_, next});
    state_ = next;
    if (next == BreakerState::Open) {
        openedAt_ = now;
    } else if (next == BreakerState::HalfOpen) {
        halfOpenOk_ = 0;
        // Probe outcomes start from a clean slate: the failures that
        // tripped the breaker must not instantly re-trip it.
        window_.reset();
    } else {
        window_.reset();
    }
}

bool
CircuitBreaker::allow(sim::Tick now, std::int64_t request)
{
    if (!config_.enabled)
        return true;
    if (state_ == BreakerState::Open) {
        if (now - openedAt_ < config_.openDuration)
            return false;
        transitionTo(BreakerState::HalfOpen, now);
    }
    if (state_ == BreakerState::HalfOpen)
        return probeSampled(request);
    return true;
}

void
CircuitBreaker::record(sim::Tick now, bool failure)
{
    if (!config_.enabled)
        return;
    window_.record(now, failure);
    if (state_ == BreakerState::HalfOpen) {
        if (failure) {
            transitionTo(BreakerState::Open, now);
        } else if (++halfOpenOk_ >= config_.halfOpenSuccesses) {
            transitionTo(BreakerState::Closed, now);
        }
        return;
    }
    if (state_ == BreakerState::Closed &&
        window_.samples(now) >= config_.minSamples &&
        window_.failureRate(now) >= config_.openThreshold)
        transitionTo(BreakerState::Open, now);
}

} // namespace infless::overload
