/**
 * @file
 * Per-function circuit breaker: closed -> open -> half-open state
 * machine driven by the rolling drop/violation rate of admitted
 * requests.
 */

#ifndef INFLESS_OVERLOAD_CIRCUIT_BREAKER_HH
#define INFLESS_OVERLOAD_CIRCUIT_BREAKER_HH

#include <cstdint>
#include <vector>

#include "overload/rolling_rate.hh"
#include "sim/time.hh"

namespace infless::overload {

enum class BreakerState : std::uint8_t
{
    Closed,  ///< Normal operation; every request is admitted.
    Open,    ///< Shedding at ingress until the cool-down elapses.
    HalfOpen ///< Sampled probes admitted; the rest shed.
};

const char *breakerStateName(BreakerState state);

struct BreakerConfig
{
    bool enabled = false;
    /** Sliding window over which the failure rate is measured. */
    sim::Tick window = 5 * sim::kTicksPerSec;
    int windowBuckets = 10;
    /** Failure fraction at/above which the breaker trips. */
    double openThreshold = 0.5;
    /** Minimum outcomes in the window before the breaker may trip. */
    int minSamples = 20;
    /** Cool-down in the open state before probing resumes. */
    sim::Tick openDuration = 2 * sim::kTicksPerSec;
    /** Fraction of requests admitted as probes while half-open. */
    double probeFraction = 0.1;
    /** Consecutive probe successes required to close again. */
    int halfOpenSuccesses = 5;
};

/** One state transition, for observability. */
struct BreakerTransition
{
    sim::Tick at = 0;
    BreakerState from = BreakerState::Closed;
    BreakerState to = BreakerState::Closed;
};

/**
 * Deterministic circuit breaker. Outcomes of *admitted* requests
 * (completion within SLO = success, violation or drop = failure) feed
 * the rolling window; sheds themselves never do, so an open breaker
 * can recover once its probes succeed.
 *
 * Half-open probe selection reuses the trace-sampling discipline: a
 * salted hash of the request index against a fixed threshold, so probe
 * choice is a pure function of the request and never consumes RNG.
 */
class CircuitBreaker
{
  public:
    CircuitBreaker() : CircuitBreaker(BreakerConfig{}) {}

    explicit CircuitBreaker(const BreakerConfig &config);

    /**
     * Gate one ingress request. Advances open -> half-open when the
     * cool-down has elapsed. Returns true when the request may proceed.
     */
    bool allow(sim::Tick now, std::int64_t request);

    /** Feed the outcome of an admitted request. */
    void record(sim::Tick now, bool failure);

    BreakerState state() const { return state_; }
    sim::Tick openedAt() const { return openedAt_; }
    const std::vector<BreakerTransition> &transitions() const
    {
        return transitions_;
    }

  private:
    void transitionTo(BreakerState next, sim::Tick now);
    bool probeSampled(std::int64_t request) const;

    BreakerConfig config_;
    RollingRate window_;
    BreakerState state_ = BreakerState::Closed;
    sim::Tick openedAt_ = 0;
    int halfOpenOk_ = 0;
    std::vector<BreakerTransition> transitions_;
};

} // namespace infless::overload

#endif // INFLESS_OVERLOAD_CIRCUIT_BREAKER_HH
