/**
 * @file
 * Overload control plane configuration: deadline-aware admission,
 * bounded queues, circuit breakers, retry budgets, and brownout.
 *
 * Everything here is off by default; a default-constructed
 * OverloadConfig leaves the platform bit-identical to a build without
 * the subsystem (pinned by ZeroOverloadConfigIsBitIdentical).
 */

#ifndef INFLESS_OVERLOAD_OVERLOAD_HH
#define INFLESS_OVERLOAD_OVERLOAD_HH

#include <cstddef>

#include "overload/brownout.hh"
#include "overload/circuit_breaker.hh"
#include "overload/retry_budget.hh"

namespace infless::overload {

/** Deadline-aware admission control at platform ingress. */
struct AdmissionConfig
{
    bool enabled = false;
    /** Admit while predicted sojourn <= slackFactor x (effective SLO).
     *  Values > 1 admit optimistically, < 1 shed conservatively. */
    double slackFactor = 1.0;
};

/** Bounded per-instance queues. */
struct QueueConfig
{
    /** Queue depth cap in requests; 0 = legacy bound (one full batch). */
    std::size_t depthCap = 0;
    /** When the whole fleet is full, evict the oldest queued request
     *  (it has burned the most slack) to make room for the newcomer. */
    bool evictOldest = false;
};

/** Aggregate switchboard carried by PlatformOptions. */
struct OverloadConfig
{
    AdmissionConfig admission;
    QueueConfig queue;
    BreakerConfig breaker;
    RetryBudgetConfig retryBudget;
    BrownoutConfig brownout;

    /** The full defense stack with default tuning (bench/tests). The
     *  depth cap stays at the legacy one-batch bound and brownout keeps
     *  the nominal deadline: deeper queues and stretched deadlines trade
     *  SLO-compatible sojourns for buffering, which only pays off when
     *  the operator accepts a degraded envelope (see the bench demo
     *  config). Brownout still prioritizes scale-out (full-residual
     *  claims) while engaged. */
    static OverloadConfig fullStack()
    {
        OverloadConfig cfg;
        cfg.admission.enabled = true;
        cfg.queue.evictOldest = true;
        cfg.breaker.enabled = true;
        cfg.retryBudget.enabled = true;
        cfg.brownout.enabled = true;
        cfg.brownout.degradedSloMultiplier = 1.0;
        return cfg;
    }
};

} // namespace infless::overload

#endif // INFLESS_OVERLOAD_OVERLOAD_HH
