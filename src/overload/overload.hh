/**
 * @file
 * Overload control plane configuration: deadline-aware admission,
 * bounded queues, circuit breakers, retry budgets, and brownout.
 *
 * Everything here is off by default; a default-constructed
 * OverloadConfig leaves the platform bit-identical to a build without
 * the subsystem (pinned by ZeroOverloadConfigIsBitIdentical).
 */

#ifndef INFLESS_OVERLOAD_OVERLOAD_HH
#define INFLESS_OVERLOAD_OVERLOAD_HH

#include <cstddef>
#include <cstdint>

#include "overload/adaptive_limit.hh"
#include "overload/brownout.hh"
#include "overload/circuit_breaker.hh"
#include "overload/retry_budget.hh"

namespace infless::overload {

/**
 * Ingress admission discipline.
 *
 *  - None: every request proceeds to routing.
 *  - Static: feedforward — shed when the *predicted* queue+exec sojourn
 *    (from the profiled latency surface) exceeds the SLO slack. Exact
 *    when the profile is faithful; inherits every profiler error.
 *  - Adaptive: feedback — a gradient concurrency limiter driven purely
 *    by observed completion latencies and drops (adaptive_limit.hh);
 *    survives a lying latency model at the cost of convergence time.
 */
enum class AdmissionMode : std::uint8_t
{
    None,
    Static,
    Adaptive
};

inline const char *
admissionModeName(AdmissionMode mode)
{
    switch (mode) {
      case AdmissionMode::None:
        return "none";
      case AdmissionMode::Static:
        return "static";
      case AdmissionMode::Adaptive:
        return "adaptive";
    }
    return "?";
}

/** Deadline-aware admission control at platform ingress. */
struct AdmissionConfig
{
    bool enabled = false;
    /** Admit while predicted sojourn <= slackFactor x (effective SLO).
     *  Values > 1 admit optimistically, < 1 shed conservatively. */
    double slackFactor = 1.0;
};

/** Bounded per-instance queues. */
struct QueueConfig
{
    /** Queue depth cap in requests; 0 = legacy bound (one full batch). */
    std::size_t depthCap = 0;
    /** When the whole fleet is full, evict the oldest queued request
     *  (it has burned the most slack) to make room for the newcomer. */
    bool evictOldest = false;
};

/** Aggregate switchboard carried by PlatformOptions. */
struct OverloadConfig
{
    /** Ingress discipline selector. None defers to the legacy
     *  `admission.enabled` switch (which maps to Static), so PR 5
     *  configs keep their meaning. */
    AdmissionMode mode = AdmissionMode::None;
    AdmissionConfig admission;
    AdaptiveLimitConfig adaptive;
    QueueConfig queue;
    BreakerConfig breaker;
    RetryBudgetConfig retryBudget;
    BrownoutConfig brownout;

    /** Effective ingress discipline after legacy-switch mapping. */
    AdmissionMode
    admissionMode() const
    {
        if (mode != AdmissionMode::None)
            return mode;
        return admission.enabled ? AdmissionMode::Static
                                 : AdmissionMode::None;
    }

    /** The full defense stack with default tuning (bench/tests). The
     *  depth cap stays at the legacy one-batch bound and brownout keeps
     *  the nominal deadline: deeper queues and stretched deadlines trade
     *  SLO-compatible sojourns for buffering, which only pays off when
     *  the operator accepts a degraded envelope (see the bench demo
     *  config). Brownout still prioritizes scale-out (full-residual
     *  claims) while engaged. */
    static OverloadConfig fullStack()
    {
        OverloadConfig cfg;
        cfg.admission.enabled = true;
        cfg.queue.evictOldest = true;
        cfg.breaker.enabled = true;
        cfg.retryBudget.enabled = true;
        cfg.brownout.enabled = true;
        cfg.brownout.degradedSloMultiplier = 1.0;
        return cfg;
    }
};

} // namespace infless::overload

#endif // INFLESS_OVERLOAD_OVERLOAD_HH
