/**
 * @file
 * Per-function retry budget: a token bucket capping failover
 * re-dispatches, refilled by successful completions.
 */

#ifndef INFLESS_OVERLOAD_RETRY_BUDGET_HH
#define INFLESS_OVERLOAD_RETRY_BUDGET_HH

#include <algorithm>

namespace infless::overload {

struct RetryBudgetConfig
{
    bool enabled = false;
    /** Bucket capacity = maximum burst of back-to-back retries. */
    double burst = 20.0;
    /** Tokens earned per successful completion (0.1 = one retry per
     *  ten successes at steady state). */
    double refillPerSuccess = 0.1;
};

/**
 * Token bucket tying retry capacity to recent success: a healthy
 * function can always afford its occasional failover, while a cluster
 * that stops completing work quickly runs out of tokens and fails
 * crashed requests fast instead of storming the survivors.
 *
 * Refill is success-driven rather than time-driven, so the budget is a
 * pure function of the request outcome sequence (deterministic).
 */
class RetryBudget
{
  public:
    RetryBudget() = default;

    explicit RetryBudget(const RetryBudgetConfig &config)
        : config_(config), tokens_(config.burst)
    {
    }

    /** Spend one token; false = budget exhausted, caller must drop. */
    bool tryConsume()
    {
        if (!config_.enabled)
            return true;
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    /** Credit one successful completion. */
    void onSuccess()
    {
        tokens_ = std::min(config_.burst,
                           tokens_ + config_.refillPerSuccess);
    }

    double tokens() const { return tokens_; }

  private:
    RetryBudgetConfig config_;
    double tokens_ = 0.0;
};

} // namespace infless::overload

#endif // INFLESS_OVERLOAD_RETRY_BUDGET_HH
