/**
 * @file
 * Bucketed sliding-window failure-rate estimator shared by the circuit
 * breaker and the brownout controller.
 */

#ifndef INFLESS_OVERLOAD_ROLLING_RATE_HH
#define INFLESS_OVERLOAD_ROLLING_RATE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.hh"

namespace infless::overload {

/**
 * Success/failure counts over a sliding window of simulated time.
 *
 * The window is a ring of fixed-width buckets; each slot remembers the
 * absolute bucket index it currently holds so reads can skip stale
 * slots without mutating anything. Purely deterministic: state depends
 * only on the (now, failure) sequence fed in.
 */
class RollingRate
{
  public:
    RollingRate() : RollingRate(sim::kTicksPerSec, 8) {}

    RollingRate(sim::Tick window, int buckets)
        : bucketWidth_(std::max<sim::Tick>(
              1, window / std::max(1, buckets))),
          slots_(static_cast<std::size_t>(std::max(1, buckets)))
    {
    }

    /** Record one outcome at @p now. */
    void record(sim::Tick now, bool failure)
    {
        std::int64_t index = bucketIndex(now);
        Slot &slot = slots_[static_cast<std::size_t>(index) %
                            slots_.size()];
        if (slot.index != index)
            slot = Slot{0, 0, index};
        slot.total += 1;
        if (failure)
            slot.failures += 1;
    }

    /** Outcomes inside the window ending at @p now. */
    std::int64_t samples(sim::Tick now) const
    {
        std::int64_t total = 0;
        forEachLive(now, [&](const Slot &s) { total += s.total; });
        return total;
    }

    /** Failure fraction inside the window ending at @p now (0 if empty). */
    double failureRate(sim::Tick now) const
    {
        std::int64_t total = 0;
        std::int64_t failures = 0;
        forEachLive(now, [&](const Slot &s) {
            total += s.total;
            failures += s.failures;
        });
        return total > 0 ? static_cast<double>(failures) /
                               static_cast<double>(total)
                         : 0.0;
    }

    void reset()
    {
        for (Slot &slot : slots_)
            slot = Slot{};
    }

  private:
    struct Slot
    {
        std::int64_t total = 0;
        std::int64_t failures = 0;
        std::int64_t index = -1; ///< Absolute bucket index; -1 = empty.
    };

    std::int64_t bucketIndex(sim::Tick now) const
    {
        return static_cast<std::int64_t>(std::max<sim::Tick>(0, now) /
                                         bucketWidth_);
    }

    template <typename Fn>
    void forEachLive(sim::Tick now, Fn &&fn) const
    {
        std::int64_t current = bucketIndex(now);
        std::int64_t oldest =
            current - static_cast<std::int64_t>(slots_.size()) + 1;
        for (const Slot &slot : slots_)
            if (slot.index >= oldest && slot.index <= current)
                fn(slot);
    }

    sim::Tick bucketWidth_;
    std::vector<Slot> slots_;
};

} // namespace infless::overload

#endif // INFLESS_OVERLOAD_ROLLING_RATE_HH
