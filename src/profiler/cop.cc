#include "profiler/cop.hh"

#include <cmath>

#include "sim/logging.hh"

namespace infless::profiler {

CopPredictor::CopPredictor(OpProfileDb &db, CopOptions options)
    : db_(db), options_(options)
{
    sim::simAssert(options_.safetyOffset >= 0.0,
                   "safety offset must be non-negative");
}

std::size_t
CopPredictor::prewarm(const models::ModelInfo &model,
                      const std::vector<int> &batches,
                      const std::vector<std::int64_t> &cpu_choices,
                      const std::vector<std::int64_t> &gpu_choices,
                      std::int64_t memory_mb) const
{
    std::size_t before = memo_.size();
    for (int b : batches) {
        for (std::int64_t cpu : cpu_choices) {
            for (std::int64_t gpu : gpu_choices)
                rawMicros(model, b, cluster::Resources{cpu, gpu, memory_mb});
        }
    }
    return memo_.size() - before;
}

void
CopPredictor::setDistortion(
    std::function<double(std::uint64_t)> multiplier)
{
    distortion_ = std::move(multiplier);
    distortionMemo_.clear();
}

double
CopPredictor::distortionFor(const models::ModelInfo &model) const
{
    auto it = distortionMemo_.find(model.noiseKey);
    if (it != distortionMemo_.end())
        return it->second;
    double mult = distortion_(model.noiseKey);
    sim::simAssert(mult > 0.0,
                   "profile distortion must stay positive");
    distortionMemo_.emplace(model.noiseKey, mult);
    return mult;
}

double
CopPredictor::rawMicros(const models::ModelInfo &model, int batch,
                        const cluster::Resources &res) const
{
    double raw = memo_.memo(
        model.noiseKey, res.cpuMillicores, res.gpuSmPercent, batch, [&] {
            double path =
                model.dag.criticalPath([&](const models::OpNode &op) {
                    return db_.lookupMicros(op, batch, res);
                });
            // The per-batch dispatch cost is a platform constant the
            // profiler measures once; it composes additively.
            return path + db_.truth().params().batchDispatchUs;
        });
    // The mispredicted-profile fault scales what the controllers see;
    // the memo keeps the faithful composition so the distortion can be
    // swapped without re-pricing. No distortion installed = the exact
    // code path (and bits) of a faithful profiler.
    if (distortion_)
        raw *= distortionFor(model);
    return raw;
}

sim::Tick
CopPredictor::predict(const models::ModelInfo &model, int batch,
                      const cluster::Resources &res) const
{
    double micros = rawMicros(model, batch, res) *
                    (1.0 + options_.safetyOffset);
    return std::max<sim::Tick>(
        1, static_cast<sim::Tick>(std::llround(micros)));
}

double
CopPredictor::predictionError(const models::ExecModel &truth,
                              const models::ModelInfo &model, int batch,
                              const cluster::Resources &res) const
{
    double predicted = rawMicros(model, batch, res);
    double actual =
        static_cast<double>(truth.trueTicks(model, batch, res));
    sim::simAssert(actual > 0.0, "non-positive ground truth latency");
    return std::abs(predicted - actual) / actual;
}

} // namespace infless::profiler
