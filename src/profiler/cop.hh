/**
 * @file
 * Combined Operator Profiling (COP) latency predictor — §3.3.
 *
 * A model's batch execution time is estimated by composing its operators'
 * profiled times over the task graph: sequence chains sum, parallel
 * branches take the max. Predictions are inflated by a safety offset
 * (10% by default) to absorb the composition error before they reach the
 * scheduler.
 */

#ifndef INFLESS_PROFILER_COP_HH
#define INFLESS_PROFILER_COP_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/resources.hh"
#include "models/exec_model.hh"
#include "models/latency_cache.hh"
#include "models/model_zoo.hh"
#include "profiler/op_profile_db.hh"
#include "sim/time.hh"

namespace infless::profiler {

/** Predictor tunables. */
struct CopOptions
{
    /**
     * Relative inflation applied to raw predictions. The paper uses 0.10;
     * the OP1.5 / OP2 ablations of Fig. 11 use 0.50 / 1.00.
     */
    double safetyOffset = 0.10;
};

/**
 * The latency predictor used by the scheduler: t_exec = f(b, c, g).
 */
class CopPredictor
{
  public:
    /**
     * @param db Profile database the composition reads from.
     * @param options Safety-offset configuration.
     */
    CopPredictor(OpProfileDb &db, CopOptions options = {});

    const CopOptions &options() const { return options_; }

    /**
     * Raw composed estimate (no safety offset), in microseconds.
     */
    double rawMicros(const models::ModelInfo &model, int batch,
                     const cluster::Resources &res) const;

    /**
     * Scheduler-facing prediction with the safety offset applied.
     */
    sim::Tick predict(const models::ModelInfo &model, int batch,
                      const cluster::Resources &res) const;

    /**
     * Fill the memo for every (batch, cpu, gpu) combination up front so
     * scheduling loops never take a composition miss. The memo is shared
     * across batches — one prewarm keeps it hot for the whole ladder.
     *
     * @return Number of combinations composed (cache misses filled).
     */
    std::size_t prewarm(const models::ModelInfo &model,
                        const std::vector<int> &batches,
                        const std::vector<std::int64_t> &cpu_choices,
                        const std::vector<std::int64_t> &gpu_choices,
                        std::int64_t memory_mb) const;

    /** Number of memoized raw predictions. */
    std::size_t memoSize() const { return memo_.size(); }

    /** Hit/miss counters of the prediction memo. */
    const models::LatencyCacheStats &cacheStats() const
    {
        return memo_.stats();
    }

    /**
     * Relative prediction error |pred - truth| / truth of the *raw*
     * estimate against the ground truth surface (Fig. 8's metric).
     */
    double predictionError(const models::ExecModel &truth,
                           const models::ModelInfo &model, int batch,
                           const cluster::Resources &res) const;

    /**
     * Install a per-model multiplicative distortion of the profiled
     * surface (the mispredicted-profile fault: a lying profiler).
     * Every rawMicros/predict result is scaled by
     * @p multiplier(model key); the ground-truth ExecModel is
     * untouched, so only the controllers are deceived. Passing an
     * empty function removes the distortion. The multiplier must be a
     * pure function of the key (it is memoized per model).
     */
    void setDistortion(
        std::function<double(std::uint64_t)> multiplier);

    /** Whether a distortion is installed. */
    bool distorted() const { return static_cast<bool>(distortion_); }

  private:
    double distortionFor(const models::ModelInfo &model) const;

    OpProfileDb &db_;
    CopOptions options_;
    /** Mispredicted-profile fault hook (empty = faithful profiler). */
    std::function<double(std::uint64_t)> distortion_;
    /** Per-model multiplier memo (the hook may hash+exp per call). */
    mutable std::unordered_map<std::uint64_t, double> distortionMemo_;
    /** Memo of raw predictions over (model, b, c, g); the scheduler
     *  queries the same configurations thousands of times. Exact-keyed
     *  (no hash-collision aliasing) with a flat per-batch array. */
    mutable models::LatencyCache memo_;
};

} // namespace infless::profiler

#endif // INFLESS_PROFILER_COP_HH
