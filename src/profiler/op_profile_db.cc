#include "profiler/op_profile_db.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace infless::profiler {

namespace {

/** Nearest element of a sorted grid. */
std::int64_t
snapTo(const std::vector<std::int64_t> &grid, std::int64_t value)
{
    sim::simAssert(!grid.empty(), "empty profile grid dimension");
    std::int64_t best = grid.front();
    std::int64_t best_dist = std::llabs(value - best);
    for (std::int64_t g : grid) {
        std::int64_t dist = std::llabs(value - g);
        if (dist < best_dist) {
            best = g;
            best_dist = dist;
        }
    }
    return best;
}

} // namespace

OpProfileDb::OpProfileDb(const models::ExecModel &truth, ProfileGrid grid)
    : truth_(truth), grid_(std::move(grid))
{
    sim::simAssert(!grid_.cpuMillicores.empty() &&
                       !grid_.gpuSmPercent.empty() &&
                       !grid_.batchSizes.empty(),
                   "profile grid must be non-empty in every dimension");
}

int
OpProfileDb::gflopsBucket(double gflops)
{
    if (gflops <= 0.0)
        return -1000;
    // Quarter-octave buckets: fine enough that linear rescaling inside a
    // bucket stays below a percent of error.
    return static_cast<int>(std::lround(std::log2(gflops) * 4.0));
}

double
OpProfileDb::bucketGflops(int bucket)
{
    if (bucket == -1000)
        return 0.0;
    return std::exp2(bucket / 4.0);
}

cluster::Resources
OpProfileDb::snapResources(const cluster::Resources &res) const
{
    cluster::Resources snapped;
    snapped.cpuMillicores = snapTo(grid_.cpuMillicores, res.cpuMillicores);
    snapped.gpuSmPercent =
        res.gpuSmPercent == 0
            ? 0
            : snapTo(grid_.gpuSmPercent, res.gpuSmPercent);
    snapped.memoryMb = res.memoryMb;
    return snapped;
}

int
OpProfileDb::snapBatch(int batch) const
{
    int best = grid_.batchSizes.front();
    for (int b : grid_.batchSizes) {
        if (std::abs(b - batch) < std::abs(best - batch))
            best = b;
    }
    return best;
}

double
OpProfileDb::lookupMicros(const models::OpNode &op, int batch,
                          const cluster::Resources &res)
{
    cluster::Resources snapped = snapResources(res);
    snapped.memoryMb = 0; // memory does not shape operator latency here
    int b = snapBatch(batch);
    int gbucket = gflopsBucket(op.gflopsPerSample);

    // Pack (kind, gbucket, b, cpu, gpu) into one word.
    std::uint64_t packed = static_cast<std::uint64_t>(op.kind);
    packed = packed * 4096 + static_cast<std::uint64_t>(gbucket + 2000);
    packed = packed * 128 + static_cast<std::uint64_t>(b);
    packed = packed * 65536 +
             static_cast<std::uint64_t>(snapped.cpuMillicores / 5);
    packed = packed * 256 + static_cast<std::uint64_t>(snapped.gpuSmPercent);
    Key key{packed};

    auto it = cache_.find(key);
    double measured;
    if (it != cache_.end()) {
        measured = it->second;
    } else {
        models::OpNode probe{op.kind, bucketGflops(gbucket)};
        measured = truth_.opMicros(probe, b, snapped);
        cache_.emplace(key, measured);
    }

    // Interpolate linearly in the work ratio, as a profile table would.
    double bucket_work = bucketGflops(gbucket);
    if (bucket_work <= 0.0 || op.gflopsPerSample <= 0.0)
        return measured;
    double ratio = op.gflopsPerSample / bucket_work;
    return measured * ratio;
}

} // namespace infless::profiler
