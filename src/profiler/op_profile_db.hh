/**
 * @file
 * Operator profile database.
 *
 * §3.3: each operator's profile is the 5-tuple <p, b, c, g, t> — input
 * size, batchsize, CPU resources, GPU resources, execution time — sampled
 * at discrete values of each dimension. Profiling every model offline
 * would be prohibitive; profiling the shared operator set once is cheap.
 *
 * In this reproduction, "measuring" an operator means evaluating the
 * ground-truth execution surface at a snapped grid point; predictions for
 * off-grid requests interpolate from the nearest profile, which is one of
 * COP's real error sources.
 */

#ifndef INFLESS_PROFILER_OP_PROFILE_DB_HH
#define INFLESS_PROFILER_OP_PROFILE_DB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/resources.hh"
#include "models/exec_model.hh"
#include "models/operator.hh"

namespace infless::profiler {

/**
 * Grid definition for the discrete profile dimensions.
 */
struct ProfileGrid
{
    /** CPU allocations profiled, in millicores. */
    std::vector<std::int64_t> cpuMillicores = {125,  250,  500,  750,
                                               1000, 1500, 2000, 3000,
                                               4000, 6000, 8000, 16000};
    /** GPU SM shares profiled, in percent. */
    std::vector<std::int64_t> gpuSmPercent = {0,  5,  10, 15, 20, 25,
                                              30, 40, 50, 75, 100};
    /** Batchsizes profiled (powers of two, as in §3.3). */
    std::vector<int> batchSizes = {1, 2, 4, 8, 16, 32, 64};
};

/**
 * Memoized store of measured operator execution times.
 */
class OpProfileDb
{
  public:
    /**
     * @param truth The execution surface profiling measures against.
     * @param grid Discrete dimensions to snap onto.
     */
    explicit OpProfileDb(const models::ExecModel &truth,
                         ProfileGrid grid = {});

    /**
     * Measured (memoized) execution time of one operator call, in
     * microseconds, with the operator's work and the resource request
     * snapped onto the profile grid and the result rescaled linearly in
     * the work ratio — the interpolation a real profile table performs.
     */
    double lookupMicros(const models::OpNode &op, int batch,
                        const cluster::Resources &res);

    /** Snap a resource vector to the profiled grid. */
    cluster::Resources snapResources(const cluster::Resources &res) const;

    /** Snap a batchsize to the profiled grid. */
    int snapBatch(int batch) const;

    /** Number of distinct profiles measured so far. */
    std::size_t size() const { return cache_.size(); }

    /** The execution surface this database profiles. */
    const models::ExecModel &truth() const { return truth_; }

    const ProfileGrid &grid() const { return grid_; }

  private:
    struct Key
    {
        std::uint64_t packed;
        bool operator==(const Key &o) const { return packed == o.packed; }
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return std::hash<std::uint64_t>()(k.packed);
        }
    };

    /** Quantize gflops-per-sample into a log-spaced bucket index. */
    static int gflopsBucket(double gflops);

    /** Representative gflops value of a bucket. */
    static double bucketGflops(int bucket);

    const models::ExecModel &truth_;
    ProfileGrid grid_;
    std::unordered_map<Key, double, KeyHash> cache_;
};

} // namespace infless::profiler

#endif // INFLESS_PROFILER_OP_PROFILE_DB_HH
