#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace infless::sim {

std::size_t
EventQueue::runAll(std::size_t max_events)
{
    truncated_ = false;
    std::size_t count = 0;
    while (count < max_events && popAndRun())
        ++count;
    if (count >= max_events && !empty()) {
        truncated_ = true;
        warn("event queue drain truncated after ", max_events,
             " events with ", pending_,
             " still pending (runaway self-rescheduling?)");
    }
    return count;
}

} // namespace infless::sim
