#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace infless::sim {

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now_) {
        panic("scheduling into the past: when=", when, " now=", now_);
    }
    EventId id = nextId_++;
    heap_.push(Entry{when, priority, id, std::move(cb)});
    live_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    return live_.erase(id) > 0;
}

void
EventQueue::skipDead()
{
    while (!heap_.empty() && !live_.count(heap_.top().id))
        heap_.pop();
}

bool
EventQueue::popAndRun()
{
    skipDead();
    if (heap_.empty())
        return false;
    Entry top = heap_.top();
    heap_.pop();
    live_.erase(top.id);
    now_ = top.when;
    ++executed_;
    top.cb();
    return true;
}

bool
EventQueue::runNext()
{
    return popAndRun();
}

std::size_t
EventQueue::runUntil(Tick until)
{
    std::size_t count = 0;
    for (;;) {
        skipDead();
        if (heap_.empty() || heap_.top().when > until)
            break;
        if (!popAndRun())
            break;
        ++count;
    }
    if (until > now_)
        now_ = until;
    return count;
}

std::size_t
EventQueue::runAll(std::size_t max_events)
{
    std::size_t count = 0;
    while (count < max_events && popAndRun())
        ++count;
    if (count >= max_events) {
        panic("event queue failed to drain after ", max_events, " events");
    }
    return count;
}

} // namespace infless::sim
