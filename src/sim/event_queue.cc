#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace infless::sim {

EventId
EventQueue::push(Tick when, Callback cb, int priority, bool cancellable)
{
    if (when < now_) {
        panic("scheduling into the past: when=", when, " now=", now_);
    }
    EventId id = nextId_++;
    heap_.push_back(Entry{when, priority, id, cancellable, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return id;
}

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    EventId id = push(when, std::move(cb), priority, true);
    live_.insert(id);
    return id;
}

EventId
EventQueue::scheduleFixed(Tick when, Callback cb, int priority)
{
    EventId id = push(when, std::move(cb), priority, false);
    ++fixedPending_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    return live_.erase(id) > 0;
}

void
EventQueue::skipDead()
{
    // Fixed entries are always live; only cancellable ones need the hash
    // probe, and only when some cancellable event has ever been dropped.
    while (!heap_.empty() && heap_.front().cancellable &&
           !live_.count(heap_.front().id)) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
    }
}

bool
EventQueue::popAndRun()
{
    skipDead();
    if (heap_.empty())
        return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry top = std::move(heap_.back());
    heap_.pop_back();
    if (top.cancellable)
        live_.erase(top.id);
    else
        --fixedPending_;
    now_ = top.when;
    ++executed_;
    top.cb();
    return true;
}

bool
EventQueue::runNext()
{
    return popAndRun();
}

std::size_t
EventQueue::runUntil(Tick until)
{
    std::size_t count = 0;
    for (;;) {
        skipDead();
        if (heap_.empty() || heap_.front().when > until)
            break;
        if (!popAndRun())
            break;
        ++count;
    }
    if (until > now_)
        now_ = until;
    return count;
}

std::size_t
EventQueue::runAll(std::size_t max_events)
{
    std::size_t count = 0;
    while (count < max_events && popAndRun())
        ++count;
    if (count >= max_events) {
        panic("event queue failed to drain after ", max_events, " events");
    }
    return count;
}

} // namespace infless::sim
