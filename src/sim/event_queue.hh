/**
 * @file
 * Discrete-event queue.
 *
 * Events execute in (time, priority, insertion-order) order, giving fully
 * deterministic simulations. Cancellation is O(1) via a live-id set; the
 * heap discards dead entries lazily. Events known to never be cancelled
 * (arrivals, completions, periodic ticks — the bulk of a long drain) take
 * a fast path via scheduleFixed() that skips the live-id hash entirely.
 */

#ifndef INFLESS_SIM_EVENT_QUEUE_HH
#define INFLESS_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace infless::sim {

/** Opaque handle identifying a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel returned for "no event". */
constexpr EventId kNoEvent = 0;

/**
 * Priority queue of timed callbacks driving the simulation clock.
 *
 * The clock only moves forward when events run; scheduling into the past
 * panics.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() { heap_.reserve(kDefaultReserve); }

    /** Pre-size the heap for an expected number of in-flight events. */
    void reserve(std::size_t n) { heap_.reserve(n); }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to invoke.
     * @param priority Lower values run first among same-tick events.
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb, int priority = 0);

    /**
     * Fast-path schedule for events that will never be cancelled: the
     * entry bypasses the live-id hash on insert, pop and dead-entry
     * skipping. cancel() on the returned id is a no-op returning false.
     */
    EventId scheduleFixed(Tick when, Callback cb, int priority = 0);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was still pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Whether any live events remain. */
    bool empty() const { return live_.empty() && fixedPending_ == 0; }

    /** Number of live (non-cancelled, not-yet-run) events. */
    std::size_t pending() const { return live_.size() + fixedPending_; }

    /**
     * Run the next event, advancing the clock to its timestamp.
     *
     * @return false if no event was available.
     */
    bool runNext();

    /**
     * Run all events with timestamps <= @p until, then advance the clock to
     * @p until.
     *
     * @return Number of events executed.
     */
    std::size_t runUntil(Tick until);

    /**
     * Drain the queue completely.
     *
     * @param max_events Safety valve against runaway self-rescheduling.
     * @return Number of events executed.
     */
    std::size_t runAll(std::size_t max_events = 500'000'000);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    /** Initial heap capacity; avoids growth reallocations early on. */
    static constexpr std::size_t kDefaultReserve = 1024;

    struct Entry
    {
        Tick when;
        int priority;
        EventId id;
        /** false = scheduleFixed() fast path, not tracked in live_. */
        bool cancellable;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    EventId push(Tick when, Callback cb, int priority, bool cancellable);

    /** Drop heap entries whose ids are no longer live. */
    void skipDead();

    bool popAndRun();

    /** Binary heap (std::push_heap/pop_heap) — front is the next event. */
    std::vector<Entry> heap_;
    std::unordered_set<EventId> live_;
    std::size_t fixedPending_ = 0;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace infless::sim

#endif // INFLESS_SIM_EVENT_QUEUE_HH
