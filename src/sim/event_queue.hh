/**
 * @file
 * Discrete-event queue.
 *
 * Events execute in (time, priority, insertion-order) order, giving fully
 * deterministic simulations. The engine is built for throughput: the
 * priority queue is a 4-ary implicit heap of small POD entries (sift
 * operations are plain 32-byte copies at a quarter of the binary-heap
 * depth, never callable moves), callbacks are constructed directly into a
 * generation-tagged slot vector with inline small-buffer storage (no heap
 * allocation and no relocation for the platform's hot-path lambdas), and
 * cancellation is an O(1) generation bump — no hash table anywhere on the
 * drain path. The 4-ary arity is invisible to semantics: the
 * (when, priority, seq) key is a strict total order, so any conforming
 * heap pops the identical sequence.
 *
 * scheduleFixed() marks events known to never be cancelled (arrivals,
 * completions, periodic ticks — the bulk of a long drain); their ids
 * refuse cancel() outright.
 */

#ifndef INFLESS_SIM_EVENT_QUEUE_HH
#define INFLESS_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace infless::sim {

/** Opaque handle identifying a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel returned for "no event". */
constexpr EventId kNoEvent = 0;

/**
 * Priority queue of timed callbacks driving the simulation clock.
 *
 * The clock only moves forward when events run; scheduling into the past
 * panics.
 */
class EventQueue
{
  public:
    /** Inline capacity sized for the platform's largest hot-path capture
     *  (the 64-byte batch-completion closure). */
    static constexpr std::size_t kInlineCallbackBytes = 64;

    using Callback = InlineFunction<void(), kInlineCallbackBytes>;

    EventQueue()
    {
        heap_.reserve(kDefaultReserve);
        slots_.reserve(kDefaultReserve);
    }

    /** Pre-size the internal storage for an expected number of in-flight
     *  events. */
    void
    reserve(std::size_t n)
    {
        heap_.reserve(n);
        slots_.reserve(n);
    }

    /**
     * Schedule @p f to run at absolute time @p when.
     *
     * The callable is constructed directly into its storage slot —
     * passing a lambda never materializes an intermediate Callback.
     *
     * @param when Absolute tick; must be >= now().
     * @param f Callable to invoke.
     * @param priority Lower values run first among same-tick events.
     * @return Handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Tick when, F &&f, int priority = 0)
    {
        SlotRef ref = push(when, std::forward<F>(f), priority);
        // slot+1 keeps every id distinct from kNoEvent even at
        // generation 0 (wraparound); the generation detects stale ids on
        // slot reuse.
        return (static_cast<EventId>(ref.slot + 1) << 32) | ref.gen;
    }

    /**
     * Fast-path schedule for events that will never be cancelled:
     * cancel() on the returned id is a no-op returning false.
     */
    template <typename F>
    EventId
    scheduleFixed(Tick when, F &&f, int priority = 0)
    {
        SlotRef ref = push(when, std::forward<F>(f), priority);
        return kFixedBit | (static_cast<EventId>(ref.slot + 1) << 32) |
               ref.gen;
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was still pending and is now cancelled.
     */
    bool
    cancel(EventId id)
    {
        if (id == kNoEvent || (id & kFixedBit) != 0)
            return false;
        std::uint32_t slot_idx = static_cast<std::uint32_t>(id >> 32) - 1;
        auto gen = static_cast<std::uint32_t>(id & 0xffffffffULL);
        if (slot_idx >= slots_.size() || slots_[slot_idx].gen != gen)
            return false;
        freeSlot(slot_idx);
        --pending_;
        ++cancellations_;
        // The entry stays in the heap (lazy deletion), but once dead
        // entries outnumber live ones a bulk compaction pays for itself:
        // timer-heavy runs cancel most of what they schedule, and
        // halving the heap halves every subsequent sift.
        ++deadInHeap_;
        if (deadInHeap_ * 2 > heap_.size() && heap_.size() >= kCompactMin)
            compact();
        return true;
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Whether any live events remain. */
    bool empty() const { return pending_ == 0; }

    /** Number of live (non-cancelled, not-yet-run) events. */
    std::size_t pending() const { return pending_; }

    /**
     * Run the next event, advancing the clock to its timestamp.
     *
     * @return false if no event was available.
     */
    bool runNext() { return popAndRun(); }

    /**
     * Run all events with timestamps <= @p until, then advance the clock to
     * @p until.
     *
     * @return Number of events executed.
     */
    std::size_t
    runUntil(Tick until)
    {
        std::size_t count = 0;
        for (;;) {
            skipDead();
            if (heap_.empty() || heap_.front().when > until)
                break;
            if (!popAndRun())
                break;
            ++count;
        }
        if (until > now_)
            now_ = until;
        return count;
    }

    /**
     * Drain the queue completely.
     *
     * If the queue is still non-empty after @p max_events (runaway
     * self-rescheduling), the drain stops, a warning is logged, and
     * truncated() reports true until the next runAll(). A drain of
     * exactly @p max_events that empties the queue is a clean drain.
     *
     * @param max_events Safety valve against runaway self-rescheduling.
     * @return Number of events executed.
     */
    std::size_t runAll(std::size_t max_events = 500'000'000);

    /** Whether the last runAll() stopped at max_events with events still
     *  pending (distinguishes truncation from a clean drain). */
    bool truncated() const { return truncated_; }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    // Cancellation/compaction statistics -----------------------------------
    // Measured since the queue's first use; exported through the
    // telemetry registry so timer-heavy runs can see how much of their
    // scheduling work is churn.

    /** Successful cancel() calls over the queue's lifetime. */
    std::uint64_t cancellations() const { return cancellations_; }

    /** Bulk dead-entry compactions run over the queue's lifetime. */
    std::uint64_t compactions() const { return compactions_; }

    /** Cancelled entries currently occupying heap space. */
    std::size_t deadEntries() const { return deadInHeap_; }

    /** Fraction of the heap occupied by cancelled entries (0 when the
     *  heap is empty). */
    double
    deadEntryRatio() const
    {
        return heap_.empty() ? 0.0
                             : static_cast<double>(deadInHeap_) /
                                   static_cast<double>(heap_.size());
    }

  private:
    /** Initial capacity; avoids growth reallocations early on. */
    static constexpr std::size_t kDefaultReserve = 1024;

    /** Minimum heap size before bulk compaction kicks in; below this the
     *  lazy per-pop skip is cheaper than a rebuild. */
    static constexpr std::size_t kCompactMin = 64;

    /** EventIds of fixed events carry this bit; cancel() rejects them
     *  without touching any state. */
    static constexpr EventId kFixedBit = 1ULL << 63;

    /**
     * POD heap entry: the callback stays in its slot, so heap sifts move
     * 32 trivially-copyable bytes instead of type-erased callables.
     */
    struct Entry
    {
        Tick when;
        int priority;
        /** Monotonic insertion counter — the same total-order tie-break
         *  the id provided in the legacy queue. */
        std::uint64_t seq;
        std::uint32_t slot;
        /** Slot generation at schedule time; a mismatch at pop means the
         *  event was cancelled (lazy deletion). */
        std::uint32_t gen;
    };

    /** Callback storage; gen bumps on every cancel/run, invalidating any
     *  outstanding heap entries and EventIds for this slot. */
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 1;
    };

    /** Identity of a freshly filled slot (for EventId construction). */
    struct SlotRef
    {
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** Strict total order: does @p a execute before @p b? */
    static bool
    before(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    /** 4-ary sift of the entry at @p i toward the root. */
    void
    siftUp(std::size_t i)
    {
        Entry e = heap_[i];
        while (i > 0) {
            std::size_t parent = (i - 1) >> 2;
            if (!before(e, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    /** 4-ary sift of the entry at @p i toward the leaves. */
    void
    siftDown(std::size_t i)
    {
        Entry e = heap_[i];
        std::size_t n = heap_.size();
        for (;;) {
            std::size_t first = 4 * i + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            std::size_t last = first + 4 < n ? first + 4 : n;
            for (std::size_t c = first + 1; c < last; ++c) {
                if (before(heap_[c], heap_[best]))
                    best = c;
            }
            if (!before(heap_[best], e))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = e;
    }

    /** Drop the root entry (after copying it out). */
    void
    popRoot()
    {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }

    template <typename F>
    SlotRef
    push(Tick when, F &&f, int priority)
    {
        if (when < now_) {
            panic("scheduling into the past: when=", when, " now=", now_);
        }
        std::uint32_t slot_idx;
        if (!freeSlots_.empty()) {
            slot_idx = freeSlots_.back();
            freeSlots_.pop_back();
        } else {
            slot_idx = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        Slot &slot = slots_[slot_idx];
        if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
            slot.cb = std::forward<F>(f);
        } else {
            slot.cb.emplace(std::forward<F>(f));
        }
        heap_.push_back(
            Entry{when, priority, nextSeq_++, slot_idx, slot.gen});
        siftUp(heap_.size() - 1);
        ++pending_;
        return SlotRef{slot_idx, slot.gen};
    }

    /** Drop heap entries whose slot generation moved on (cancelled). */
    void
    skipDead()
    {
        while (!heap_.empty() &&
               slots_[heap_.front().slot].gen != heap_.front().gen) {
            popRoot();
            --deadInHeap_;
        }
    }

    /**
     * Remove every dead entry from the heap in one pass, then rebuild the
     * heap bottom-up (Floyd). Removing dead entries cannot change the pop
     * order of the live ones: (when, priority, seq) is a strict total
     * order, so the live pop sequence is a property of the *set* of live
     * entries, not of heap shape.
     */
    void
    compact()
    {
        ++compactions_;
        std::size_t kept = 0;
        for (const Entry &e : heap_) {
            if (slots_[e.slot].gen == e.gen)
                heap_[kept++] = e;
        }
        heap_.resize(kept);
        deadInHeap_ = 0;
        if (kept > 1) {
            for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;)
                siftDown(i);
        }
    }

    bool
    popAndRun()
    {
        skipDead();
        if (heap_.empty())
            return false;
        Entry top = heap_.front();
        popRoot();
        // Move the callback out before running it: the callback may
        // schedule new events and reallocate slots_.
        Callback cb = std::move(slots_[top.slot].cb);
        freeSlot(top.slot);
        --pending_;
        now_ = top.when;
        ++executed_;
        cb();
        return true;
    }

    /** Release @p slot_idx back to the free list, invalidating ids. */
    void
    freeSlot(std::uint32_t slot_idx)
    {
        Slot &slot = slots_[slot_idx];
        slot.cb.reset();
        ++slot.gen; // invalidates outstanding ids and heap entries
        freeSlots_.push_back(slot_idx);
    }

    /** 4-ary implicit heap — front is the next event. */
    std::vector<Entry> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::size_t pending_ = 0;
    /** Cancelled entries still occupying heap space (lazy deletion). */
    std::size_t deadInHeap_ = 0;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t cancellations_ = 0;
    std::uint64_t compactions_ = 0;
    bool truncated_ = false;
};

} // namespace infless::sim

#endif // INFLESS_SIM_EVENT_QUEUE_HH
