/**
 * @file
 * Small-buffer-optimized move-only callable.
 *
 * The event queue schedules millions of short-lived callbacks per run;
 * std::function heap-allocates every capture larger than its ~16-byte
 * internal buffer, which makes the allocator the hottest symbol of a long
 * drain. InlineFunction stores captures up to Capacity bytes inline (the
 * platform's largest hot-path lambda — the batch-completion closure — is
 * 64 bytes) and falls back to the heap only beyond that, so the common
 * case allocates nothing.
 *
 * Move-only on purpose: event callbacks are consumed exactly once, and
 * copyability would forbid move-only captures.
 */

#ifndef INFLESS_SIM_INLINE_FUNCTION_HH
#define INFLESS_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace infless::sim {

template <typename Signature, std::size_t Capacity = 64>
class InlineFunction;

/**
 * Move-only type-erased callable with an inline small-object buffer.
 *
 * @tparam R Return type, @tparam Args argument types.
 * @tparam Capacity Inline storage size in bytes; callables at most this
 *         large (and no more aligned than std::max_align_t, and nothrow
 *         move-constructible) are stored without heap allocation.
 */
template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    /** Whether callables of type @p F take the allocation-free path. */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(std::decay_t<F>) <= Capacity &&
        alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<std::decay_t<F>>;

    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&f) // NOLINT: implicit by design, like std::function
    {
        construct(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Drop the stored callable (if any). */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /**
     * Replace the stored callable, constructing the new one directly in
     * the buffer — no intermediate InlineFunction, no relocation (the
     * event queue's schedule fast path).
     */
    template <typename F>
    void
    emplace(F &&f)
    {
        reset();
        construct(std::forward<F>(f));
    }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        if (!ops_)
            panic("InlineFunction: calling an empty callable");
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        /** Move-construct into @p dst from @p src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *buf, Args &&...args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(buf)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) noexcept {
            Fn *from = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void *buf) noexcept {
            std::launder(reinterpret_cast<Fn *>(buf))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *buf, Args &&...args) -> R {
            return (**std::launder(reinterpret_cast<Fn **>(buf)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) noexcept {
            ::new (dst)
                Fn *(*std::launder(reinterpret_cast<Fn **>(src)));
        },
        [](void *buf) noexcept {
            delete *std::launder(reinterpret_cast<Fn **>(buf));
        },
    };

    template <typename F>
    void
    construct(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            // Heap fallback: the buffer holds only the owning pointer.
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace infless::sim

#endif // INFLESS_SIM_INLINE_FUNCTION_HH
