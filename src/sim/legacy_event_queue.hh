/**
 * @file
 * Pre-overhaul discrete-event queue, kept verbatim as a reference.
 *
 * This is the engine EventQueue replaced: type-erased std::function
 * callbacks (heap-allocating for captures beyond ~16 bytes), an
 * unordered_set for live-id tracking, and id-based tie-breaking. It is
 * retained for two jobs only:
 *
 *  - tests/sim/event_queue_equivalence_test.cc replays randomized
 *    schedule/cancel/runUntil interleavings against both queues and
 *    asserts identical execution orders, clocks and counts;
 *  - bench/sim_core.cc drains the same workload through both engines in
 *    one binary, so BENCH_sim.json's speedup is measured, not assumed.
 *
 * Production code must use sim::EventQueue; nothing under src/ may
 * include this header.
 */

#ifndef INFLESS_SIM_LEGACY_EVENT_QUEUE_HH
#define INFLESS_SIM_LEGACY_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/time.hh"

namespace infless::sim {

/**
 * The pre-change event queue (reference semantics for EventQueue).
 */
class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;
    using Callback = std::function<void()>;

    static constexpr EventId kNoEvent = 0;

    LegacyEventQueue() { heap_.reserve(kDefaultReserve); }

    void reserve(std::size_t n) { heap_.reserve(n); }

    EventId
    schedule(Tick when, Callback cb, int priority = 0)
    {
        EventId id = push(when, std::move(cb), priority, true);
        live_.insert(id);
        return id;
    }

    EventId
    scheduleFixed(Tick when, Callback cb, int priority = 0)
    {
        EventId id = push(when, std::move(cb), priority, false);
        ++fixedPending_;
        return id;
    }

    bool cancel(EventId id) { return live_.erase(id) > 0; }

    Tick now() const { return now_; }
    bool empty() const { return live_.empty() && fixedPending_ == 0; }
    std::size_t pending() const { return live_.size() + fixedPending_; }

    bool runNext() { return popAndRun(); }

    std::size_t
    runUntil(Tick until)
    {
        std::size_t count = 0;
        for (;;) {
            skipDead();
            if (heap_.empty() || heap_.front().when > until)
                break;
            if (!popAndRun())
                break;
            ++count;
        }
        if (until > now_)
            now_ = until;
        return count;
    }

    std::size_t
    runAll(std::size_t max_events = 500'000'000)
    {
        std::size_t count = 0;
        while (count < max_events && popAndRun())
            ++count;
        if (count >= max_events) {
            panic("event queue failed to drain after ", max_events,
                  " events");
        }
        return count;
    }

    std::uint64_t executed() const { return executed_; }

  private:
    static constexpr std::size_t kDefaultReserve = 1024;

    struct Entry
    {
        Tick when;
        int priority;
        EventId id;
        bool cancellable;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    EventId
    push(Tick when, Callback cb, int priority, bool cancellable)
    {
        if (when < now_) {
            panic("scheduling into the past: when=", when, " now=", now_);
        }
        EventId id = nextId_++;
        heap_.push_back(Entry{when, priority, id, cancellable,
                              std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        return id;
    }

    void
    skipDead()
    {
        while (!heap_.empty() && heap_.front().cancellable &&
               !live_.count(heap_.front().id)) {
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            heap_.pop_back();
        }
    }

    bool
    popAndRun()
    {
        skipDead();
        if (heap_.empty())
            return false;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Entry top = std::move(heap_.back());
        heap_.pop_back();
        if (top.cancellable)
            live_.erase(top.id);
        else
            --fixedPending_;
        now_ = top.when;
        ++executed_;
        top.cb();
        return true;
    }

    std::vector<Entry> heap_;
    std::unordered_set<EventId> live_;
    std::size_t fixedPending_ = 0;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace infless::sim

#endif // INFLESS_SIM_LEGACY_EVENT_QUEUE_HH
