/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * panic() flags an internal invariant violation (a bug in this library);
 * fatal() flags a user error (bad configuration or arguments). Both raise
 * exceptions rather than aborting so unit tests can assert on them.
 * warn() reports a recoverable anomaly on stderr and keeps going; tests
 * can intercept it through setWarnHandler().
 */

#ifndef INFLESS_SIM_LOGGING_HH
#define INFLESS_SIM_LOGGING_HH

#include <functional>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace infless::sim {

/** Raised by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Raised by fatal(): the caller supplied an unusable configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

} // namespace detail

/**
 * Report an internal invariant violation.
 *
 * @param parts Message fragments, streamed together.
 */
template <typename... Parts>
[[noreturn]] void
panic(const Parts &...parts)
{
    std::ostringstream os;
    os << "panic: ";
    detail::appendAll(os, parts...);
    throw PanicError(os.str());
}

/**
 * Report an unusable user-supplied configuration.
 *
 * @param parts Message fragments, streamed together.
 */
template <typename... Parts>
[[noreturn]] void
fatal(const Parts &...parts)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::appendAll(os, parts...);
    throw FatalError(os.str());
}

namespace detail {

/** Warning sink; defaults to stderr. Tests may swap it to capture. */
inline std::function<void(const std::string &)> &
warnHandler()
{
    static std::function<void(const std::string &)> handler =
        [](const std::string &msg) { std::cerr << msg << "\n"; };
    return handler;
}

} // namespace detail

/**
 * Install a custom warning sink (pass nullptr-like empty to restore the
 * stderr default). Returns the previous handler.
 */
inline std::function<void(const std::string &)>
setWarnHandler(std::function<void(const std::string &)> handler)
{
    auto previous = detail::warnHandler();
    detail::warnHandler() =
        handler ? std::move(handler)
                : [](const std::string &msg) { std::cerr << msg << "\n"; };
    return previous;
}

/**
 * Report a recoverable anomaly and continue.
 *
 * @param parts Message fragments, streamed together.
 */
template <typename... Parts>
void
warn(const Parts &...parts)
{
    std::ostringstream os;
    os << "warn: ";
    detail::appendAll(os, parts...);
    detail::warnHandler()(os.str());
}

/** Assert an invariant, panicking with a message when it does not hold. */
template <typename... Parts>
void
simAssert(bool condition, const Parts &...parts)
{
    if (!condition)
        panic(parts...);
}

} // namespace infless::sim

#endif // INFLESS_SIM_LOGGING_HH
