/**
 * @file
 * Error-reporting and leveled logging in the gem5 idiom.
 *
 * panic() flags an internal invariant violation (a bug in this library);
 * fatal() flags a user error (bad configuration or arguments). Both raise
 * exceptions rather than aborting so unit tests can assert on them.
 *
 * Everything non-throwing goes through the leveled logger: logError(),
 * logWarn() (alias warn()), logInfo() and logDebug() format a message and
 * hand it to the swappable sink when the level passes the threshold. The
 * threshold defaults to Warn and is read once from the INFLESS_LOG_LEVEL
 * environment variable ("error" | "warn" | "info" | "debug"); tests and
 * tools can override it at runtime with setLogLevel(). The sink defaults
 * to stderr; tests can intercept every level through setWarnHandler().
 */

#ifndef INFLESS_SIM_LOGGING_HH
#define INFLESS_SIM_LOGGING_HH

#include <cctype>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace infless::sim {

/** Raised by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Raised by fatal(): the caller supplied an unusable configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Logger severities, most severe first. */
enum class LogLevel : int
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

/** Message prefix of a level ("warn: " keeps the historical format). */
inline const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Error:
        return "error: ";
      case LogLevel::Warn:
        return "warn: ";
      case LogLevel::Info:
        return "info: ";
      case LogLevel::Debug:
        return "debug: ";
    }
    return "";
}

/** Parse an INFLESS_LOG_LEVEL value; unknown strings keep the default. */
inline LogLevel
parseLogLevel(const char *text, LogLevel fallback)
{
    if (!text)
        return fallback;
    std::string s(text);
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "error" || s == "0")
        return LogLevel::Error;
    if (s == "warn" || s == "warning" || s == "1")
        return LogLevel::Warn;
    if (s == "info" || s == "2")
        return LogLevel::Info;
    if (s == "debug" || s == "3")
        return LogLevel::Debug;
    return fallback;
}

/** Threshold: messages above it are suppressed. Seeded once from the
 *  environment; setLogLevel() overrides. */
inline LogLevel &
logThreshold()
{
    static LogLevel level = parseLogLevel(std::getenv("INFLESS_LOG_LEVEL"),
                                          LogLevel::Warn);
    return level;
}

/** Message sink for every passing level; defaults to stderr. Tests may
 *  swap it to capture. */
inline std::function<void(const std::string &)> &
warnHandler()
{
    static std::function<void(const std::string &)> handler =
        [](const std::string &msg) { std::cerr << msg << "\n"; };
    return handler;
}

} // namespace detail

/**
 * Report an internal invariant violation.
 *
 * @param parts Message fragments, streamed together.
 */
template <typename... Parts>
[[noreturn]] void
panic(const Parts &...parts)
{
    std::ostringstream os;
    os << "panic: ";
    detail::appendAll(os, parts...);
    throw PanicError(os.str());
}

/**
 * Report an unusable user-supplied configuration.
 *
 * @param parts Message fragments, streamed together.
 */
template <typename... Parts>
[[noreturn]] void
fatal(const Parts &...parts)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::appendAll(os, parts...);
    throw FatalError(os.str());
}

/** Current logging threshold. */
inline LogLevel
logLevel()
{
    return detail::logThreshold();
}

/** Override the logging threshold; returns the previous one. */
inline LogLevel
setLogLevel(LogLevel level)
{
    LogLevel previous = detail::logThreshold();
    detail::logThreshold() = level;
    return previous;
}

/**
 * Install a custom message sink (pass nullptr-like empty to restore the
 * stderr default). The sink receives every level that passes the
 * threshold, not only warnings. Returns the previous handler.
 */
inline std::function<void(const std::string &)>
setWarnHandler(std::function<void(const std::string &)> handler)
{
    auto previous = detail::warnHandler();
    detail::warnHandler() =
        handler ? std::move(handler)
                : [](const std::string &msg) { std::cerr << msg << "\n"; };
    return previous;
}

/**
 * Emit a message at @p level; filtered against the threshold, prefixed
 * ("warn: ", "info: ", ...) and handed to the sink.
 */
template <typename... Parts>
void
logMessage(LogLevel level, const Parts &...parts)
{
    if (level > detail::logThreshold())
        return;
    std::ostringstream os;
    os << detail::levelPrefix(level);
    detail::appendAll(os, parts...);
    detail::warnHandler()(os.str());
}

/** A non-recoverable-but-survivable condition (always of interest). */
template <typename... Parts>
void
logError(const Parts &...parts)
{
    logMessage(LogLevel::Error, parts...);
}

/** A recoverable anomaly. */
template <typename... Parts>
void
logWarn(const Parts &...parts)
{
    logMessage(LogLevel::Warn, parts...);
}

/** Operational progress (fault injections, lifecycle transitions). */
template <typename... Parts>
void
logInfo(const Parts &...parts)
{
    logMessage(LogLevel::Info, parts...);
}

/** High-volume diagnostics. */
template <typename... Parts>
void
logDebug(const Parts &...parts)
{
    logMessage(LogLevel::Debug, parts...);
}

/**
 * Report a recoverable anomaly and continue (historical name; identical
 * to logWarn()).
 */
template <typename... Parts>
void
warn(const Parts &...parts)
{
    logMessage(LogLevel::Warn, parts...);
}

/** Assert an invariant, panicking with a message when it does not hold. */
template <typename... Parts>
void
simAssert(bool condition, const Parts &...parts)
{
    if (!condition)
        panic(parts...);
}

} // namespace infless::sim

#endif // INFLESS_SIM_LOGGING_HH
