/**
 * @file
 * Deterministic random-number generation for simulations.
 *
 * Every stochastic component draws from an Rng seeded from the run
 * configuration, so a run is exactly reproducible from its seed. Substreams
 * derived with fork() stay independent of the order in which other
 * components draw.
 */

#ifndef INFLESS_SIM_RNG_HH
#define INFLESS_SIM_RNG_HH

#include <cstdint>
#include <random>

namespace infless::sim {

/** splitmix64 step; used both for seeding and for cheap hashing. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless mix of two words; handy for deterministic per-key jitter. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    return splitmix64(s);
}

/**
 * Seeded pseudo-random source with the distributions the simulator needs.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-seed; identical seeds reproduce identical streams. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t s = seed;
        engine_.seed(splitmix64(s));
    }

    /** Derive an independent substream keyed by @p key. */
    Rng
    fork(std::uint64_t key)
    {
        std::uint64_t base = engine_();
        return Rng(hashCombine(base, key));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Exponential variate with the given rate (events per unit time). */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(engine_);
    }

    /** Normal variate. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Poisson count with the given mean. */
    std::int64_t
    poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        return std::poisson_distribution<std::int64_t>(mean)(engine_);
    }

    /** Bernoulli trial. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Raw 64-bit draw. */
    std::uint64_t raw() { return engine_(); }

  private:
    std::mt19937_64 engine_;
};

} // namespace infless::sim

#endif // INFLESS_SIM_RNG_HH
