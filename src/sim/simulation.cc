#include "sim/simulation.hh"

// Simulation is header-only today; this translation unit anchors the
// library and keeps a stable home for future out-of-line definitions.

namespace infless::sim {

} // namespace infless::sim
