/**
 * @file
 * Simulation context: clock + event queue + seeded randomness.
 *
 * Components hold a reference to one Simulation and interact with simulated
 * time exclusively through it.
 */

#ifndef INFLESS_SIM_SIMULATION_HH
#define INFLESS_SIM_SIMULATION_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace infless::sim {

/**
 * The top-level simulation object.
 *
 * Owns the event queue and the root random stream. Provides relative-time
 * scheduling sugar and periodic events.
 */
class Simulation
{
  public:
    /**
     * @param seed Root random seed; the whole run is a deterministic
     *             function of it.
     */
    explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

    /** Current simulated time. */
    Tick now() const { return events_.now(); }

    /** The event queue (for advanced scheduling). */
    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }

    /** The root random stream. */
    Rng &rng() { return rng_; }

    /** Derive an independent random substream for a component. */
    Rng forkRng(std::uint64_t key) { return rng_.fork(key); }

    // The scheduling sugar forwards the callable straight through to the
    // queue's emplacing schedule — a lambda is constructed once, in its
    // storage slot, with no intermediate Callback.

    /** Schedule at an absolute tick. */
    template <typename F>
    EventId
    at(Tick when, F &&cb, int priority = 0)
    {
        return events_.schedule(when, std::forward<F>(cb), priority);
    }

    /** Schedule @p delay ticks from now. */
    template <typename F>
    EventId
    after(Tick delay, F &&cb, int priority = 0)
    {
        return events_.schedule(now() + delay, std::forward<F>(cb),
                                priority);
    }

    /**
     * Schedule at an absolute tick, never-cancelled fast path (the
     * returned id is not cancel()able — see EventQueue::scheduleFixed).
     */
    template <typename F>
    EventId
    atFixed(Tick when, F &&cb, int priority = 0)
    {
        return events_.scheduleFixed(when, std::forward<F>(cb), priority);
    }

    /** Schedule @p delay ticks from now, never-cancelled fast path. */
    template <typename F>
    EventId
    afterFixed(Tick delay, F &&cb, int priority = 0)
    {
        return events_.scheduleFixed(now() + delay, std::forward<F>(cb),
                                     priority);
    }

    /**
     * Schedule a periodic callback.
     *
     * The callback receives no arguments and re-arms itself until the
     * returned handle's stop() is invoked or the horizon passes.
     */
    class Periodic
    {
      public:
        /** Stop future firings. */
        void stop() { stopped_ = true; }
        bool stopped() const { return stopped_; }

      private:
        friend class Simulation;
        bool stopped_ = false;
        /** The user callback lives on the handle so each tick's scheduled
         *  closure stays small enough for the queue's inline buffer. */
        std::function<void()> cb_;
    };

    /**
     * Fire @p cb every @p period ticks, first at now()+period.
     *
     * @param horizon Stop (silently) once the clock passes this tick.
     * @return Shared handle whose stop() cancels the series.
     */
    std::shared_ptr<Periodic>
    every(Tick period, std::function<void()> cb, Tick horizon = kTickNever)
    {
        auto handle = std::make_shared<Periodic>();
        handle->cb_ = std::move(cb);
        scheduleTick(handle, period, horizon);
        return handle;
    }

    /** Run the simulation until the queue drains. */
    std::size_t run() { return events_.runAll(); }

    /** Run the simulation up to an absolute tick. */
    std::size_t runUntil(Tick until) { return events_.runUntil(until); }

  private:
    void
    scheduleTick(std::shared_ptr<Periodic> handle, Tick period,
                 Tick horizon)
    {
        Tick next = now() + period;
        if (next > horizon)
            return;
        // Periodic series stop through the handle, never via cancel().
        events_.scheduleFixed(next, [this, handle, period, horizon]() {
            if (handle->stopped())
                return;
            handle->cb_();
            if (!handle->stopped())
                scheduleTick(handle, period, horizon);
        });
    }

    EventQueue events_;
    Rng rng_;
};

} // namespace infless::sim

#endif // INFLESS_SIM_SIMULATION_HH
