/**
 * @file
 * Simulation context: clock + event queue + seeded randomness.
 *
 * Components hold a reference to one Simulation and interact with simulated
 * time exclusively through it.
 */

#ifndef INFLESS_SIM_SIMULATION_HH
#define INFLESS_SIM_SIMULATION_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace infless::sim {

/**
 * The top-level simulation object.
 *
 * Owns the event queue and the root random stream. Provides relative-time
 * scheduling sugar and periodic events.
 */
class Simulation
{
  public:
    /**
     * @param seed Root random seed; the whole run is a deterministic
     *             function of it.
     */
    explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

    /** Current simulated time. */
    Tick now() const { return events_.now(); }

    /** The event queue (for advanced scheduling). */
    EventQueue &events() { return events_; }

    /** The root random stream. */
    Rng &rng() { return rng_; }

    /** Derive an independent random substream for a component. */
    Rng forkRng(std::uint64_t key) { return rng_.fork(key); }

    /** Schedule at an absolute tick. */
    EventId
    at(Tick when, EventQueue::Callback cb, int priority = 0)
    {
        return events_.schedule(when, std::move(cb), priority);
    }

    /** Schedule @p delay ticks from now. */
    EventId
    after(Tick delay, EventQueue::Callback cb, int priority = 0)
    {
        return events_.schedule(now() + delay, std::move(cb), priority);
    }

    /**
     * Schedule at an absolute tick, never-cancelled fast path (the
     * returned id is not cancel()able — see EventQueue::scheduleFixed).
     */
    EventId
    atFixed(Tick when, EventQueue::Callback cb, int priority = 0)
    {
        return events_.scheduleFixed(when, std::move(cb), priority);
    }

    /** Schedule @p delay ticks from now, never-cancelled fast path. */
    EventId
    afterFixed(Tick delay, EventQueue::Callback cb, int priority = 0)
    {
        return events_.scheduleFixed(now() + delay, std::move(cb),
                                     priority);
    }

    /**
     * Schedule a periodic callback.
     *
     * The callback receives no arguments and re-arms itself until the
     * returned handle's stop() is invoked or the horizon passes.
     */
    class Periodic
    {
      public:
        /** Stop future firings. */
        void stop() { stopped_ = true; }
        bool stopped() const { return stopped_; }

      private:
        friend class Simulation;
        bool stopped_ = false;
    };

    /**
     * Fire @p cb every @p period ticks, first at now()+period.
     *
     * @param horizon Stop (silently) once the clock passes this tick.
     * @return Shared handle whose stop() cancels the series.
     */
    std::shared_ptr<Periodic>
    every(Tick period, std::function<void()> cb, Tick horizon = kTickNever)
    {
        auto handle = std::make_shared<Periodic>();
        scheduleTick(handle, period, std::move(cb), horizon);
        return handle;
    }

    /** Run the simulation until the queue drains. */
    std::size_t run() { return events_.runAll(); }

    /** Run the simulation up to an absolute tick. */
    std::size_t runUntil(Tick until) { return events_.runUntil(until); }

  private:
    void
    scheduleTick(std::shared_ptr<Periodic> handle, Tick period,
                 std::function<void()> cb, Tick horizon)
    {
        Tick next = now() + period;
        if (next > horizon)
            return;
        // Periodic series stop through the handle, never via cancel().
        events_.scheduleFixed(next, [this, handle, period, cb, horizon]() {
            if (handle->stopped())
                return;
            cb();
            if (!handle->stopped())
                scheduleTick(handle, period, cb, horizon);
        });
    }

    EventQueue events_;
    Rng rng_;
};

} // namespace infless::sim

#endif // INFLESS_SIM_SIMULATION_HH
