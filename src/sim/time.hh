/**
 * @file
 * Simulated-time primitives.
 *
 * All simulation time is expressed in integer microseconds ("ticks") to keep
 * event ordering exact and reproducible. Helpers convert to and from the
 * floating-point millisecond/second units used by the paper's equations.
 */

#ifndef INFLESS_SIM_TIME_HH
#define INFLESS_SIM_TIME_HH

#include <cstdint>

namespace infless::sim {

/** One tick is one microsecond of simulated time. */
using Tick = std::int64_t;

constexpr Tick kTicksPerUs = 1;
constexpr Tick kTicksPerMs = 1'000;
constexpr Tick kTicksPerSec = 1'000'000;
constexpr Tick kTicksPerMin = 60 * kTicksPerSec;
constexpr Tick kTicksPerHour = 60 * kTicksPerMin;
constexpr Tick kTicksPerDay = 24 * kTicksPerHour;

/** Largest representable time; used as "never". */
constexpr Tick kTickNever = INT64_MAX;

/** Convert a millisecond quantity to ticks (rounding to nearest). */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * kTicksPerMs + (ms >= 0 ? 0.5 : -0.5));
}

/** Convert a second quantity to ticks (rounding to nearest). */
constexpr Tick
secToTicks(double sec)
{
    return static_cast<Tick>(sec * kTicksPerSec + (sec >= 0 ? 0.5 : -0.5));
}

/** Convert ticks to milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / kTicksPerMs;
}

/** Convert ticks to seconds. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / kTicksPerSec;
}

} // namespace infless::sim

#endif // INFLESS_SIM_TIME_HH
