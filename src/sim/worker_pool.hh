/**
 * @file
 * Persistent thread pool for intra-run cell parallelism.
 *
 * The sharded platform advances its cells in lockstep windows: at every
 * window barrier the same fixed set of independent cell engines must each
 * run to the window end. ParallelSweep spawns a fresh pool per map() call,
 * which is fine for a handful of sweep points but too expensive for the
 * hundreds of barriers of one simulation run; WorkerPool keeps its
 * workers alive across parallelFor() calls and hands out indices through
 * one atomic counter.
 *
 * Determinism contract: parallelFor(n, body) invokes body(i) exactly once
 * for every i in [0, n) and returns only after all invocations finished.
 * Which thread runs which index is unspecified, so body(i) must touch
 * only state owned by index i (each cell owns its platform); under that
 * discipline results are byte-identical for every pool size, including
 * the serial pool.
 */

#ifndef INFLESS_SIM_WORKER_POOL_HH
#define INFLESS_SIM_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace infless::sim {

class WorkerPool
{
  public:
    /**
     * Pool size used when the constructor gets threads == 0: the
     * INFLESS_CELL_THREADS environment variable clamped to
     * hardware_concurrency (falling back to 1 when it parses to zero or
     * garbage), otherwise hardware_concurrency itself.
     */
    static std::size_t
    defaultThreads()
    {
        unsigned hw_raw = std::thread::hardware_concurrency();
        std::size_t hw = hw_raw == 0 ? 1 : hw_raw;
        if (const char *env = std::getenv("INFLESS_CELL_THREADS")) {
            char *end = nullptr;
            long n = std::strtol(env, &end, 10);
            if (end == env || *end != '\0' || n <= 0)
                return 1;
            return std::min(static_cast<std::size_t>(n), hw);
        }
        return hw;
    }

    /**
     * @param threads Total workers including the calling thread (the
     *        caller participates in every parallelFor); 0 picks
     *        defaultThreads(), 1 runs everything serially.
     */
    explicit WorkerPool(std::size_t threads = 0)
    {
        if (threads == 0)
            threads = defaultThreads();
        threads_ = threads;
        for (std::size_t t = 0; t + 1 < threads; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        workCv_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Configured worker count (including the calling thread). */
    std::size_t threads() const { return threads_; }

    /**
     * Run body(i) for every i in [0, n), possibly concurrently, and
     * return once all invocations completed. The first exception thrown
     * by any invocation is rethrown on the caller after the job drains.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
    {
        if (n == 0)
            return;
        if (workers_.empty() || n == 1) {
            for (std::size_t i = 0; i < n; ++i)
                body(i);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            body_ = &body;
            jobSize_ = n;
            next_.store(0, std::memory_order_relaxed);
            error_ = nullptr;
            busyWorkers_ = workers_.size();
            ++generation_;
        }
        workCv_.notify_all();
        runJob();
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [this] { return busyWorkers_ == 0; });
        body_ = nullptr;
        if (error_)
            std::rethrow_exception(error_);
    }

  private:
    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                workCv_.wait(lock, [this, seen] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
            }
            runJob();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--busyWorkers_ == 0)
                    doneCv_.notify_all();
            }
        }
    }

    /** Claim and run indices until the job is exhausted. */
    void
    runJob()
    {
        for (;;) {
            std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobSize_)
                return;
            try {
                (*body_)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
                // Poison the counter so outstanding workers stop claiming.
                next_.store(jobSize_, std::memory_order_relaxed);
            }
        }
    }

    std::size_t threads_ = 1;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::uint64_t generation_ = 0;
    std::size_t busyWorkers_ = 0;
    bool stop_ = false;
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t jobSize_ = 0;
    std::exception_ptr error_;
    std::atomic<std::size_t> next_{0};
};

} // namespace infless::sim

#endif // INFLESS_SIM_WORKER_POOL_HH
