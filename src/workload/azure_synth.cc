#include "workload/azure_synth.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace infless::workload {

namespace {

/** Diurnal long-term-periodicity base shape: daytime peak, night trough. */
double
diurnalFactor(double minutes_into_day, double amplitude)
{
    // Peak mid-afternoon (minute 870 ~= 14:30), trough before dawn.
    double phase = 2.0 * std::numbers::pi *
                   (minutes_into_day - 870.0) / (24.0 * 60.0);
    return 1.0 + amplitude * std::cos(phase);
}

RateSeries
synthPeriodic(const AzureSynthParams &p, sim::Rng &rng, double noise_sigma)
{
    RateSeries series;
    series.binWidth = p.binWidth;
    auto bins = static_cast<std::size_t>(
        p.days * 24.0 * 60.0 *
        (static_cast<double>(sim::kTicksPerMin) /
         static_cast<double>(p.binWidth)));
    series.rps.reserve(bins);
    double bin_minutes = sim::ticksToSec(p.binWidth) / 60.0;
    for (std::size_t bin = 0; bin < bins; ++bin) {
        double minute =
            static_cast<double>(bin) * bin_minutes;
        double minutes_into_day = std::fmod(minute, 24.0 * 60.0);
        double rate = p.meanRps *
                      diurnalFactor(minutes_into_day, p.diurnalAmplitude);
        rate *= std::exp(rng.normal(0.0, noise_sigma));
        series.rps.push_back(std::max(0.0, rate));
    }
    return series;
}

void
addBursts(RateSeries &series, const AzureSynthParams &p, sim::Rng &rng)
{
    double bin_minutes = sim::ticksToSec(series.binWidth) / 60.0;
    double total_minutes =
        static_cast<double>(series.rps.size()) * bin_minutes;
    double expected_bursts = p.burstsPerDay * total_minutes / (24.0 * 60.0);
    auto count = rng.poisson(expected_bursts);
    for (std::int64_t burst = 0; burst < count; ++burst) {
        auto start_bin = static_cast<std::size_t>(
            rng.uniform() * static_cast<double>(series.rps.size()));
        double duration_min =
            std::max(1.0, rng.exponential(1.0 / p.burstMinutes));
        auto dur_bins = static_cast<std::size_t>(
            std::max(1.0, duration_min / bin_minutes));
        // Bursts spike upward most of the time; occasionally the rate
        // collapses instead (the paper notes sudden decreases too).
        bool spike = rng.uniform() < 0.8;
        double magnitude =
            spike ? 1.0 + rng.exponential(1.0 / p.burstAmplitude)
                  : rng.uniform(0.0, 0.3);
        for (std::size_t i = 0;
             i < dur_bins && start_bin + i < series.rps.size(); ++i) {
            series.rps[start_bin + i] *= magnitude;
        }
    }
}

RateSeries
synthSporadic(const AzureSynthParams &p, sim::Rng &rng)
{
    RateSeries series;
    series.binWidth = p.binWidth;
    auto bins = static_cast<std::size_t>(
        p.days * 24.0 * 60.0 *
        (static_cast<double>(sim::kTicksPerMin) /
         static_cast<double>(p.binWidth)));
    series.rps.assign(bins, 0.0);
    double bin_minutes = sim::ticksToSec(series.binWidth) / 60.0;

    // Alternate off/on episodes; on-episodes carry the whole load, so the
    // on-rate is mean * (on+off)/on to preserve the time average.
    double duty = p.sporadicOnMinutes /
                  (p.sporadicOnMinutes + p.sporadicOffMinutes);
    double on_rate = p.meanRps / duty;
    double minute = rng.exponential(1.0 / p.sporadicOffMinutes);
    while (minute < static_cast<double>(bins) * bin_minutes) {
        double on_len =
            std::max(0.5, rng.exponential(1.0 / p.sporadicOnMinutes));
        double episode_rate =
            on_rate * std::exp(rng.normal(0.0, 0.4));
        auto first = static_cast<std::size_t>(minute / bin_minutes);
        auto last = static_cast<std::size_t>(
            (minute + on_len) / bin_minutes);
        for (std::size_t bin = first; bin <= last && bin < bins; ++bin)
            series.rps[bin] = episode_rate;
        minute += on_len + rng.exponential(1.0 / p.sporadicOffMinutes);
    }
    return series;
}

/** Rescale so the time-average rate equals the target exactly. */
void
normalizeMean(RateSeries &series, double target)
{
    double mean = series.meanRps();
    if (mean <= 0.0)
        return;
    double factor = target / mean;
    for (double &r : series.rps)
        r *= factor;
}

} // namespace

const char *
tracePatternName(TracePattern p)
{
    switch (p) {
      case TracePattern::Sporadic:
        return "sporadic";
      case TracePattern::Periodic:
        return "periodic";
      case TracePattern::Bursty:
        return "bursty";
    }
    return "?";
}

RateSeries
synthesizeTrace(const AzureSynthParams &params)
{
    sim::simAssert(params.meanRps >= 0.0, "meanRps must be >= 0");
    sim::simAssert(params.days > 0.0, "days must be > 0");
    sim::Rng rng(params.seed);

    RateSeries series;
    switch (params.pattern) {
      case TracePattern::Periodic:
        series = synthPeriodic(params, rng, 0.05);
        break;
      case TracePattern::Bursty:
        series = synthPeriodic(params, rng, 0.10);
        addBursts(series, params, rng);
        break;
      case TracePattern::Sporadic:
        series = synthSporadic(params, rng);
        break;
    }
    normalizeMean(series, params.meanRps);
    return series;
}

RateSeries
synthesizeTrace(TracePattern pattern, double mean_rps, double days,
                std::uint64_t seed)
{
    AzureSynthParams params;
    params.pattern = pattern;
    params.meanRps = mean_rps;
    params.days = days;
    params.seed = seed;
    return synthesizeTrace(params);
}

} // namespace infless::workload
