/**
 * @file
 * Azure-Functions-style trace synthesizer.
 *
 * The paper drives its dynamic experiments with the production trace of
 * Shahrad et al. (ATC'20), singling out three invocation patterns
 * (Fig. 10): *sporadic* (long idle gaps, rare activity), *periodic*
 * (diurnal long-term periodicity, LTP) and *bursty* (diurnal base plus
 * short-term bursts, STB). That trace is not redistributable, so this
 * synthesizer emits rate series with the same statistical structure under
 * controlled parameters.
 */

#ifndef INFLESS_WORKLOAD_AZURE_SYNTH_HH
#define INFLESS_WORKLOAD_AZURE_SYNTH_HH

#include <cstdint>
#include <string>

#include "workload/trace.hh"

namespace infless::workload {

/** The three production invocation patterns of Fig. 10. */
enum class TracePattern
{
    Sporadic,
    Periodic,
    Bursty
};

/** Human-readable pattern name. */
const char *tracePatternName(TracePattern p);

/** All three patterns, for sweep loops. */
inline constexpr TracePattern kAllPatterns[] = {
    TracePattern::Sporadic, TracePattern::Periodic, TracePattern::Bursty};

/** Synthesizer knobs. */
struct AzureSynthParams
{
    TracePattern pattern = TracePattern::Periodic;
    /** Target time-average RPS. */
    double meanRps = 10.0;
    /** Trace length in days (the paper's trace covers 7). */
    double days = 7.0;
    /** Rate bin width. */
    sim::Tick binWidth = sim::kTicksPerMin;
    /** Random seed. */
    std::uint64_t seed = 42;

    /** Diurnal swing of the periodic component, as a fraction of mean. */
    double diurnalAmplitude = 0.6;
    /** Mean bursts per day (bursty pattern). */
    double burstsPerDay = 10.0;
    /** Mean burst amplitude as a multiple of the base rate. */
    double burstAmplitude = 4.0;
    /** Mean burst duration in minutes. */
    double burstMinutes = 6.0;
    /** Mean idle gap between sporadic activity episodes, minutes. */
    double sporadicOffMinutes = 45.0;
    /** Mean length of a sporadic activity episode, minutes. */
    double sporadicOnMinutes = 6.0;
};

/**
 * Synthesize one trace.
 *
 * The output's time-average rate matches params.meanRps to within
 * stochastic noise, so different patterns compare at equal offered load.
 */
RateSeries synthesizeTrace(const AzureSynthParams &params);

/** Convenience: synthesize with defaults for a pattern. */
RateSeries synthesizeTrace(TracePattern pattern, double mean_rps,
                           double days, std::uint64_t seed);

} // namespace infless::workload

#endif // INFLESS_WORKLOAD_AZURE_SYNTH_HH
