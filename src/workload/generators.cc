#include "workload/generators.hh"

#include <cmath>
#include <vector>

#include "sim/logging.hh"

namespace infless::workload {

RateSeries
constantRate(double rps, sim::Tick duration, sim::Tick bin_width)
{
    sim::simAssert(rps >= 0.0, "rate must be non-negative");
    sim::simAssert(duration > 0 && bin_width > 0, "bad duration/bin");
    RateSeries series;
    series.binWidth = bin_width;
    auto bins = static_cast<std::size_t>(
        (duration + bin_width - 1) / bin_width);
    series.rps.assign(bins, rps);
    return series;
}

ArrivalTrace
poissonArrivals(double rps, sim::Tick duration, sim::Rng &rng)
{
    std::vector<sim::Tick> arrivals;
    if (rps > 0.0) {
        double t_sec = 0.0;
        double horizon_sec = sim::ticksToSec(duration);
        for (;;) {
            t_sec += rng.exponential(rps);
            if (t_sec >= horizon_sec)
                break;
            arrivals.push_back(sim::secToTicks(t_sec));
        }
    }
    return ArrivalTrace(std::move(arrivals));
}

ArrivalTrace
uniformArrivals(double rps, sim::Tick duration)
{
    std::vector<sim::Tick> arrivals;
    if (rps > 0.0) {
        auto gap = static_cast<sim::Tick>(
            std::llround(sim::kTicksPerSec / rps));
        gap = std::max<sim::Tick>(1, gap);
        for (sim::Tick t = gap; t < duration; t += gap)
            arrivals.push_back(t);
    }
    return ArrivalTrace(std::move(arrivals));
}

} // namespace infless::workload
