/**
 * @file
 * Basic workload generators: constant rates and Poisson arrivals.
 */

#ifndef INFLESS_WORKLOAD_GENERATORS_HH
#define INFLESS_WORKLOAD_GENERATORS_HH

#include "sim/rng.hh"
#include "sim/time.hh"
#include "workload/trace.hh"

namespace infless::workload {

/**
 * Constant-rate series of @p rps over @p duration.
 */
RateSeries constantRate(double rps, sim::Tick duration,
                        sim::Tick bin_width = sim::kTicksPerMin);

/**
 * Homogeneous Poisson arrivals at @p rps over @p duration.
 */
ArrivalTrace poissonArrivals(double rps, sim::Tick duration, sim::Rng &rng);

/**
 * Deterministic evenly spaced arrivals (useful in unit tests).
 */
ArrivalTrace uniformArrivals(double rps, sim::Tick duration);

} // namespace infless::workload

#endif // INFLESS_WORKLOAD_GENERATORS_HH
