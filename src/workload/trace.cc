#include "workload/trace.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace infless::workload {

double
RateSeries::rpsAt(sim::Tick t) const
{
    if (t < 0 || rps.empty())
        return 0.0;
    auto bin = static_cast<std::size_t>(t / binWidth);
    if (bin >= rps.size())
        return 0.0;
    return rps[bin];
}

double
RateSeries::meanRps() const
{
    if (rps.empty())
        return 0.0;
    double sum = 0.0;
    for (double r : rps)
        sum += r;
    return sum / static_cast<double>(rps.size());
}

double
RateSeries::peakRps() const
{
    double peak = 0.0;
    for (double r : rps)
        peak = std::max(peak, r);
    return peak;
}

RateSeries
RateSeries::scaled(double factor) const
{
    RateSeries out = *this;
    for (double &r : out.rps)
        r *= factor;
    return out;
}

RateSeries
RateSeries::truncated(sim::Tick duration) const
{
    RateSeries out;
    out.binWidth = binWidth;
    auto bins = static_cast<std::size_t>(
        (duration + binWidth - 1) / binWidth);
    bins = std::min(bins, rps.size());
    out.rps.assign(rps.begin(), rps.begin() + static_cast<long>(bins));
    return out;
}

ArrivalTrace::ArrivalTrace(std::vector<sim::Tick> arrivals)
    : arrivals_(std::move(arrivals))
{
    sim::simAssert(std::is_sorted(arrivals_.begin(), arrivals_.end()),
                   "arrival trace must be sorted");
}

ArrivalTrace
ArrivalTrace::fromRateSeries(const RateSeries &series, sim::Rng &rng)
{
    std::vector<sim::Tick> arrivals;
    double bin_seconds = sim::ticksToSec(series.binWidth);
    for (std::size_t bin = 0; bin < series.rps.size(); ++bin) {
        double mean = series.rps[bin] * bin_seconds;
        std::int64_t count = rng.poisson(mean);
        sim::Tick start =
            static_cast<sim::Tick>(bin) * series.binWidth;
        for (std::int64_t i = 0; i < count; ++i) {
            arrivals.push_back(
                start + static_cast<sim::Tick>(
                            rng.uniform() *
                            static_cast<double>(series.binWidth)));
        }
    }
    std::sort(arrivals.begin(), arrivals.end());
    return ArrivalTrace(std::move(arrivals));
}

std::vector<sim::Tick>
ArrivalTrace::idleGaps() const
{
    std::vector<sim::Tick> gaps;
    if (arrivals_.size() < 2)
        return gaps;
    gaps.reserve(arrivals_.size() - 1);
    for (std::size_t i = 1; i < arrivals_.size(); ++i)
        gaps.push_back(arrivals_[i] - arrivals_[i - 1]);
    return gaps;
}

} // namespace infless::workload
