/**
 * @file
 * Workload traces.
 *
 * Two representations: a RateSeries gives the average request rate per
 * time bin (the form the Azure Functions trace is published in), and an
 * ArrivalTrace gives individual request timestamps (the form the
 * simulator consumes). Materializing a RateSeries draws a
 * piecewise-constant-rate Poisson process.
 */

#ifndef INFLESS_WORKLOAD_TRACE_HH
#define INFLESS_WORKLOAD_TRACE_HH

#include <cstddef>
#include <vector>

#include "sim/rng.hh"
#include "sim/time.hh"

namespace infless::workload {

/**
 * Request rate (RPS) per fixed-width time bin.
 */
struct RateSeries
{
    sim::Tick binWidth = sim::kTicksPerMin;
    std::vector<double> rps;

    /** Total covered duration. */
    sim::Tick duration() const
    {
        return binWidth * static_cast<sim::Tick>(rps.size());
    }

    /** Rate at an absolute time (0 outside the series). */
    double rpsAt(sim::Tick t) const;

    /** Time-average rate. */
    double meanRps() const;

    /** Peak bin rate. */
    double peakRps() const;

    /** Multiply every bin by @p factor. */
    RateSeries scaled(double factor) const;

    /** Keep only bins within [0, duration). */
    RateSeries truncated(sim::Tick duration) const;
};

/**
 * Individual request arrival timestamps, sorted ascending.
 */
class ArrivalTrace
{
  public:
    ArrivalTrace() = default;
    explicit ArrivalTrace(std::vector<sim::Tick> arrivals);

    /**
     * Materialize a rate series as a Poisson arrival process.
     */
    static ArrivalTrace fromRateSeries(const RateSeries &series,
                                       sim::Rng &rng);

    const std::vector<sim::Tick> &arrivals() const { return arrivals_; }
    std::size_t size() const { return arrivals_.size(); }
    bool empty() const { return arrivals_.empty(); }

    /** Time of the last arrival (0 when empty). */
    sim::Tick duration() const
    {
        return arrivals_.empty() ? 0 : arrivals_.back();
    }

    /**
     * Idle gaps between consecutive arrivals — the input of the keep-alive
     * histogram policies.
     */
    std::vector<sim::Tick> idleGaps() const;

  private:
    std::vector<sim::Tick> arrivals_;
};

} // namespace infless::workload

#endif // INFLESS_WORKLOAD_TRACE_HH
