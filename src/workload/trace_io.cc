#include "workload/trace_io.hh"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace infless::workload {

namespace {

std::vector<std::string>
splitCsvRow(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream row(line);
    while (std::getline(row, cell, ','))
        cells.push_back(cell);
    return cells;
}

} // namespace

void
writeAzureCsv(std::ostream &os, const TraceSet &traces)
{
    std::size_t minutes = 0;
    for (const auto &[name, series] : traces) {
        sim::simAssert(series.binWidth == sim::kTicksPerMin,
                       "Azure CSV requires 1-minute bins (", name, ")");
        minutes = std::max(minutes, series.rps.size());
    }

    os << "function";
    for (std::size_t minute = 1; minute <= minutes; ++minute)
        os << ',' << minute;
    os << '\n';

    for (const auto &[name, series] : traces) {
        os << name;
        for (std::size_t minute = 0; minute < minutes; ++minute) {
            double rps =
                minute < series.rps.size() ? series.rps[minute] : 0.0;
            os << ',' << static_cast<long long>(std::llround(rps * 60.0));
        }
        os << '\n';
    }
}

void
writeAzureCsv(const std::string &path, const TraceSet &traces)
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open trace file for writing: ", path);
    writeAzureCsv(os, traces);
    if (!os)
        sim::fatal("error while writing trace file: ", path);
}

TraceSet
readAzureCsv(std::istream &is)
{
    TraceSet traces;
    std::string line;
    if (!std::getline(is, line))
        return traces; // empty input -> empty set
    std::size_t columns = splitCsvRow(line).size();
    if (columns < 2)
        sim::fatal("trace header needs a function column plus minutes");

    std::size_t row_number = 1;
    while (std::getline(is, line)) {
        ++row_number;
        if (line.empty())
            continue;
        auto cells = splitCsvRow(line);
        if (cells.size() != columns) {
            sim::fatal("ragged trace row ", row_number, ": expected ",
                       columns, " cells, got ", cells.size());
        }
        RateSeries series;
        series.binWidth = sim::kTicksPerMin;
        series.rps.reserve(cells.size() - 1);
        for (std::size_t i = 1; i < cells.size(); ++i) {
            try {
                std::size_t used = 0;
                double count = std::stod(cells[i], &used);
                if (used != cells[i].size() || count < 0.0)
                    throw std::invalid_argument(cells[i]);
                series.rps.push_back(count / 60.0);
            } catch (const std::exception &) {
                sim::fatal("bad invocation count '", cells[i], "' in row ",
                           row_number);
            }
        }
        traces[cells[0]] = std::move(series);
    }
    return traces;
}

TraceSet
readAzureCsv(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        sim::fatal("cannot open trace file: ", path);
    return readAzureCsv(is);
}

} // namespace infless::workload
