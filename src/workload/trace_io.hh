/**
 * @file
 * Trace file I/O.
 *
 * The Azure Functions dataset the paper uses ships as CSV files of
 * per-function, per-minute invocation counts. This module reads and
 * writes that format so real traces can drive the platform and synthetic
 * ones can be exported for inspection.
 *
 * Format: one header row, then one row per function:
 *
 *   function,1,2,3,...,N
 *   fn-name,count_minute_1,count_minute_2,...
 */

#ifndef INFLESS_WORKLOAD_TRACE_IO_HH
#define INFLESS_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <map>
#include <string>

#include "workload/trace.hh"

namespace infless::workload {

/** Named per-function rate series, as loaded from one trace file. */
using TraceSet = std::map<std::string, RateSeries>;

/**
 * Write a trace set as Azure-style per-minute invocation counts.
 *
 * Rates are converted to counts per minute (rounded); all series must
 * share the 1-minute bin width.
 */
void writeAzureCsv(std::ostream &os, const TraceSet &traces);

/** Convenience overload writing to a file; fatal on I/O failure. */
void writeAzureCsv(const std::string &path, const TraceSet &traces);

/**
 * Parse Azure-style per-minute invocation counts into rate series
 * (1-minute bins, counts/minute converted to RPS).
 *
 * Raises FatalError on malformed input (ragged rows, non-numeric
 * counts).
 */
TraceSet readAzureCsv(std::istream &is);

/** Convenience overload reading a file; fatal if it cannot be opened. */
TraceSet readAzureCsv(const std::string &path);

} // namespace infless::workload

#endif // INFLESS_WORKLOAD_TRACE_IO_HH
