/**
 * @file
 * Tests for the BATCH (OTP) baseline and BATCH+RS.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/batch_otp.hh"
#include "baselines/batch_rs.hh"
#include "workload/generators.hh"

namespace {

using infless::baselines::BatchOtp;
using infless::baselines::BatchOtpOptions;
using infless::baselines::BatchRs;
using infless::core::FunctionSpec;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::workload::uniformArrivals;

FunctionSpec
resnetSpec()
{
    return FunctionSpec{"resnet", "ResNet-50", msToTicks(200), 32};
}

TEST(BatchOtpTest, BatchesRequests)
{
    BatchOtp p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(80.0, kTicksPerMin));
    p.run(kTicksPerMin + 5 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 0);
    EXPECT_GT(m.meanBatchFill(), 1.5);
}

TEST(BatchOtpTest, UniformScalingUsesOneConfiguration)
{
    BatchOtp p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(150.0, kTicksPerMin));
    p.run(kTicksPerMin);
    auto usage = p.configUsage(fn);
    // Adaptive but uniform: all launches share a single (b, c, g).
    EXPECT_EQ(usage.size(), 1u);
    EXPECT_GT(usage[0].launches, 0);
}

TEST(BatchOtpTest, OtpDelayInflatesLatency)
{
    BatchOtpOptions slow;
    slow.otpDelay = 50 * infless::sim::kTicksPerMs;
    BatchOtpOptions fast;
    fast.otpDelay = 0;
    auto median_latency = [](BatchOtpOptions opts) {
        BatchOtp p(4, {}, opts);
        auto fn = p.deploy(resnetSpec());
        p.injectTrace(fn, uniformArrivals(60.0, 30 * kTicksPerSec));
        p.run(40 * kTicksPerSec);
        return p.totalMetrics().latency().percentile(50);
    };
    EXPECT_GT(median_latency(slow), median_latency(fast));
}

TEST(BatchOtpTest, ConfigComesFromMenu)
{
    BatchOtp p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(100.0, 30 * kTicksPerSec));
    p.run(40 * kTicksPerSec);
    BatchOtpOptions defaults;
    std::set<std::int64_t> menu_cpus, menu_gpus;
    for (const auto &res : defaults.configMenu) {
        menu_cpus.insert(res.cpuMillicores);
        menu_gpus.insert(res.gpuSmPercent);
    }
    for (const auto &u : p.configUsage(fn)) {
        EXPECT_TRUE(menu_cpus.count(u.config.resources.cpuMillicores));
        EXPECT_TRUE(menu_gpus.count(u.config.resources.gpuSmPercent));
        EXPECT_LE(u.config.batchSize, 8);
    }
}

TEST(BatchOtpTest, InflessOutperformsBatchOnThroughputPerResource)
{
    // The headline comparison, small scale: equal offered load, INFless
    // serves it with fewer weighted resource-seconds.
    auto tpr = [](auto &platform) {
        auto fn = platform.deploy(resnetSpec());
        platform.injectTrace(fn, uniformArrivals(120.0, kTicksPerMin));
        platform.run(kTicksPerMin + 5 * kTicksPerSec);
        return platform.totalMetrics().throughputPerResource(
            platform.endTime(), infless::cluster::kDefaultBeta);
    };
    BatchOtp batch(8);
    infless::core::Platform infl(8);
    EXPECT_GT(tpr(infl), tpr(batch));
}

TEST(BatchOtpTest, IngressDelayCountsAgainstTheSlo)
{
    // The OTP layer is unaware of its own added delay: a chunk of the
    // latency budget is consumed before the platform even sees the
    // request, so p99 sits closer to the SLO than INFless's.
    auto median_queue = [](infless::sim::Tick delay) {
        BatchOtpOptions opts;
        opts.otpDelay = delay;
        BatchOtp p(4, {}, opts);
        auto fn = p.deploy(resnetSpec());
        p.injectTrace(fn, uniformArrivals(80.0, kTicksPerMin));
        p.run(kTicksPerMin + 10 * kTicksPerSec);
        return p.totalMetrics().queueTime().percentile(50);
    };
    auto delayed = median_queue(30 * infless::sim::kTicksPerMs);
    auto immediate = median_queue(0);
    EXPECT_GE(delayed, immediate + 20 * infless::sim::kTicksPerMs);
}

TEST(BatchRsTest, NameAndPlacementDiffer)
{
    BatchRs p(2);
    EXPECT_EQ(p.name(), "BATCH+RS");
}

TEST(BatchRsTest, BestFitReducesFragmentsVsFirstFit)
{
    auto frag = [](auto &platform) {
        auto fn = platform.deploy(resnetSpec());
        platform.injectTrace(fn, uniformArrivals(150.0, kTicksPerMin));
        platform.run(kTicksPerMin);
        return platform.meanFragmentRatio();
    };
    BatchOtp batch(8);
    BatchRs batch_rs(8);
    EXPECT_LE(frag(batch_rs), frag(batch) + 0.02);
}

} // namespace
