/**
 * @file
 * Tests for the Lambda proportional CPU-memory model (Observations 1-3).
 */

#include <gtest/gtest.h>

#include "baselines/lambda_model.hh"
#include "models/model_zoo.hh"
#include "sim/time.hh"

namespace {

using infless::baselines::LambdaModel;
using infless::models::ModelZoo;
using infless::sim::kTickNever;
using infless::sim::msToTicks;

TEST(LambdaModelTest, CpuQuotaIsProportionalToMemory)
{
    EXPECT_EQ(LambdaModel::cpuQuotaMillicores(1769), 1000);
    EXPECT_NEAR(static_cast<double>(
                    LambdaModel::cpuQuotaMillicores(3008)),
                1700.0, 5.0);
    EXPECT_LT(LambdaModel::cpuQuotaMillicores(128), 100);
}

TEST(LambdaModelTest, ResourcesAreCpuOnly)
{
    auto res = LambdaModel::resourcesFor(1024);
    EXPECT_EQ(res.gpuSmPercent, 0);
    EXPECT_EQ(res.memoryMb, 1024);
}

TEST(LambdaModelTest, SsdConsumptionMatchesPaperExample)
{
    // §2.2: serving SSD actually consumes ~427 MB.
    const auto &ssd = ModelZoo::shared().get("SSD");
    EXPECT_NEAR(LambdaModel::actualConsumptionMb(ssd), 427.0, 5.0);
}

TEST(LambdaModelTest, SmallMemoryCannotLoadLargeModels)
{
    LambdaModel lambda;
    const auto &bert = ModelZoo::shared().get("Bert-v1");
    EXPECT_EQ(lambda.invokeTicks(bert, 512), kTickNever);
    EXPECT_NE(lambda.invokeTicks(bert, 3008), kTickNever);
}

TEST(LambdaModelTest, Observation1LargeModelsMiss200msEverywhere)
{
    LambdaModel lambda;
    for (const char *name : {"Bert-v1", "ResNet-50", "VGGNet"}) {
        const auto &info = ModelZoo::shared().get(name);
        EXPECT_EQ(lambda.minMemoryForSlo(info, msToTicks(200)), -1)
            << name;
    }
}

TEST(LambdaModelTest, SmallModelsMeet50msOnceLoaded)
{
    LambdaModel lambda;
    for (const char *name : {"MNIST", "TextCNN-69", "LSTM-2365"}) {
        const auto &info = ModelZoo::shared().get(name);
        auto mem = lambda.minMemoryForSlo(info, msToTicks(50));
        EXPECT_GT(mem, 0) << name;
    }
}

TEST(LambdaModelTest, Observation2BatchingMultipliesLatency)
{
    LambdaModel lambda;
    const auto &ssd = ModelZoo::shared().get("SSD");
    auto t1 = lambda.invokeTicks(ssd, 3008, 1);
    auto t4 = lambda.invokeTicks(ssd, 3008, 4);
    ASSERT_NE(t1, kTickNever);
    ASSERT_NE(t4, kTickNever);
    EXPECT_GT(t4, 3 * t1);
}

TEST(LambdaModelTest, Observation3OverProvisioningForSlo)
{
    LambdaModel lambda;
    const auto &mobilenet = ModelZoo::shared().get("MobileNet");
    double ratio = lambda.overProvisionRatio(mobilenet, msToTicks(200));
    // Meeting the SLO requires far more memory than consumed.
    EXPECT_GT(ratio, 0.0);
    EXPECT_LT(ratio, 1.0);
}

TEST(LambdaModelTest, MoreMemoryIsFaster)
{
    LambdaModel lambda;
    const auto &ssd = ModelZoo::shared().get("SSD");
    auto slow = lambda.invokeTicks(ssd, 1024);
    auto fast = lambda.invokeTicks(ssd, 3008);
    EXPECT_GT(slow, fast);
}

TEST(LambdaModelTest, MemoryGridIsSortedAscending)
{
    const auto &sizes = LambdaModel::memorySizesMb();
    for (std::size_t i = 1; i < sizes.size(); ++i)
        EXPECT_GT(sizes[i], sizes[i - 1]);
    EXPECT_EQ(sizes.front(), 128);
    EXPECT_EQ(sizes.back(), 3008);
}

} // namespace
