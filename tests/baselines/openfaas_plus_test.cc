/**
 * @file
 * Tests for the OpenFaaS+ baseline: one-to-one mapping, uniform fixed
 * configuration, fixed keep-alive.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/batch_otp.hh"
#include "baselines/openfaas_plus.hh"
#include "core/platform.hh"
#include "workload/generators.hh"

namespace {

using infless::baselines::OpenFaasPlus;
using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::workload::uniformArrivals;

FunctionSpec
resnetSpec()
{
    return FunctionSpec{"resnet", "ResNet-50", msToTicks(200), 32};
}

TEST(OpenFaasPlusTest, NeverBatches)
{
    OpenFaasPlus p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, kTicksPerMin));
    p.run(kTicksPerMin + 5 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 0);
    EXPECT_DOUBLE_EQ(m.meanBatchFill(), 1.0);
    EXPECT_EQ(m.batches(), m.completions());
}

TEST(OpenFaasPlusTest, UsesSingleUniformConfig)
{
    OpenFaasPlus p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, kTicksPerMin));
    p.run(kTicksPerMin);
    auto usage = p.configUsage(fn);
    ASSERT_EQ(usage.size(), 1u);
    EXPECT_EQ(usage[0].config.batchSize, 1);
    EXPECT_EQ(usage[0].config.resources.cpuMillicores, 2000);
    EXPECT_EQ(usage[0].config.resources.gpuSmPercent, 10);
}

TEST(OpenFaasPlusTest, OneToOneNeedsMoreConcurrentInstancesThanBatching)
{
    // Observation 4 / Fig. 3a: the one-to-one mapping needs far more
    // instances than a batching system for the same load.
    auto peak_live = [](auto &platform) {
        auto fn = platform.deploy(resnetSpec());
        platform.injectTrace(fn, uniformArrivals(80.0, kTicksPerMin));
        int peak = 0;
        for (int s = 10; s <= 60; s += 10) {
            platform.run(s * kTicksPerSec);
            peak = std::max(peak, platform.liveInstanceCount());
        }
        return peak;
    };
    OpenFaasPlus ofp(8);
    infless::baselines::BatchOtp batch(8);
    EXPECT_GT(peak_live(ofp), peak_live(batch));
}

TEST(OpenFaasPlusTest, HoldsInstancesForFixedKeepAlive)
{
    OpenFaasPlus p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(30.0, 30 * kTicksPerSec));
    p.run(30 * kTicksPerSec);
    int at_load_end = p.liveInstanceCount();
    EXPECT_GT(at_load_end, 0);
    // 100s later (well within the 300s keep-alive) nothing was reaped.
    p.run(130 * kTicksPerSec);
    EXPECT_EQ(p.liveInstanceCount(), at_load_end);
    // Past the keep-alive window everything is gone.
    p.run(30 * kTicksPerSec + 400 * kTicksPerSec);
    EXPECT_EQ(p.liveInstanceCount(), 0);
}

TEST(OpenFaasPlusTest, NameIsReported)
{
    OpenFaasPlus p(2);
    EXPECT_EQ(p.name(), "OpenFaaS+");
}

} // namespace
