/**
 * @file
 * ParallelSweep determinism and knee-search equivalence.
 *
 * The sweep runner's contract is that thread count never changes
 * results: outputs are stored by input index, and the knee search
 * replays the serial early-exit logic over the in-order goodputs. The
 * heavyweight pin — a real measureMaxRps sweep byte-identical at 1, 2,
 * and N threads — runs on a small cluster to stay test-sized.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.hh"
#include "common/parallel_sweep.hh"
#include "models/model_zoo.hh"

namespace {

using namespace infless;
using bench::kneeFromGoodputs;
using bench::ParallelSweep;
using bench::stressLoadLadder;

TEST(ParallelSweepTest, ResultsComeBackInInputOrder)
{
    std::vector<int> items;
    for (int i = 0; i < 200; ++i)
        items.push_back(i);
    auto doubled = ParallelSweep::map(
        items, [](int x) { return 2 * x; }, 8);
    ASSERT_EQ(doubled.size(), items.size());
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(doubled[static_cast<std::size_t>(i)], 2 * i);
}

TEST(ParallelSweepTest, ThreadCountDoesNotChangeResults)
{
    std::vector<std::uint64_t> items;
    for (std::uint64_t i = 0; i < 64; ++i)
        items.push_back(i);
    auto fn = [](std::uint64_t x) {
        // Deterministic but non-trivial per-item computation.
        std::uint64_t h = x + 0x9e3779b97f4a7c15ULL;
        for (int i = 0; i < 1000; ++i)
            h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        return h;
    };
    auto serial = ParallelSweep::map(items, fn, 1);
    auto two = ParallelSweep::map(items, fn, 2);
    auto many = ParallelSweep::map(items, fn, 0);
    EXPECT_EQ(serial, two);
    EXPECT_EQ(serial, many);
}

TEST(ParallelSweepTest, EmptyInputYieldsEmptyOutput)
{
    std::vector<int> none;
    auto out = ParallelSweep::map(none, [](int x) { return x; });
    EXPECT_TRUE(out.empty());
}

TEST(ParallelSweepTest, UsesMultipleWorkersWhenAsked)
{
    std::atomic<int> concurrent{0};
    std::atomic<int> peak{0};
    std::vector<int> items(32, 0);
    ParallelSweep::map(
        items,
        [&](int) {
            int now = ++concurrent;
            int seen = peak.load();
            while (now > seen && !peak.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            --concurrent;
            return 0;
        },
        4);
    EXPECT_GT(peak.load(), 1);
}

TEST(ParallelSweepTest, PropagatesTheFirstException)
{
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_THROW(ParallelSweep::map(
                     items,
                     [](int x) {
                         if (x == 5)
                             throw std::runtime_error("boom");
                         return x;
                     },
                     4),
                 std::runtime_error);
}

class SweepThreadsEnv : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const char *cur = std::getenv("INFLESS_SWEEP_THREADS");
        saved_ = cur ? cur : "";
        had_ = cur != nullptr;
    }
    void TearDown() override
    {
        if (had_)
            setenv("INFLESS_SWEEP_THREADS", saved_.c_str(), 1);
        else
            unsetenv("INFLESS_SWEEP_THREADS");
    }

    static std::size_t hardware()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }

  private:
    std::string saved_;
    bool had_ = false;
};

TEST_F(SweepThreadsEnv, DefaultThreadsClampsEnvToHardware)
{
    // A fleet-sized request cannot oversubscribe the local box.
    setenv("INFLESS_SWEEP_THREADS", "100000", 1);
    EXPECT_EQ(ParallelSweep::defaultThreads(), hardware());
    setenv("INFLESS_SWEEP_THREADS", "1", 1);
    EXPECT_EQ(ParallelSweep::defaultThreads(), 1u);
}

TEST_F(SweepThreadsEnv, DefaultThreadsFallsBackToOneOnGarbage)
{
    for (const char *bad : {"0", "-3", "abc", "8x", ""}) {
        setenv("INFLESS_SWEEP_THREADS", bad, 1);
        EXPECT_EQ(ParallelSweep::defaultThreads(), 1u)
            << "env value \"" << bad << "\"";
    }
}

TEST_F(SweepThreadsEnv, DefaultThreadsUsesHardwareWhenUnset)
{
    unsetenv("INFLESS_SWEEP_THREADS");
    EXPECT_EQ(ParallelSweep::defaultThreads(), hardware());
}

TEST(KneeFromGoodputsTest, ReplaysSerialEarlyExit)
{
    // Monotone rise then fall: the knee is the max.
    EXPECT_DOUBLE_EQ(kneeFromGoodputs({100, 200, 400, 300, 200, 900}),
                     400.0);
    // Two consecutive declines stop the search; a later recovery past
    // the stop point must not be seen (matches the serial break).
    EXPECT_DOUBLE_EQ(kneeFromGoodputs({100, 90, 80, 1000}), 100.0);
    // A single dip does not stop the search.
    EXPECT_DOUBLE_EQ(kneeFromGoodputs({100, 90, 200, 150, 120}), 200.0);
    // Still rising at the ladder's end.
    EXPECT_DOUBLE_EQ(kneeFromGoodputs({100, 200, 400}), 400.0);
    EXPECT_DOUBLE_EQ(kneeFromGoodputs({}), 0.0);
}

TEST(KneeFromGoodputsTest, LadderCoversTheConfiguredRange)
{
    auto ladder = stressLoadLadder(32'000.0);
    ASSERT_EQ(ladder.size(), 8u);
    EXPECT_DOUBLE_EQ(ladder.front(), 250.0);
    EXPECT_DOUBLE_EQ(ladder.back(), 32'000.0);
    EXPECT_TRUE(stressLoadLadder(200.0).empty());
}

TEST(ParallelSweepTest, MeasureMaxRpsByteIdenticalAcrossThreadCounts)
{
    // The real acceptance pin: a full knee sweep over fresh platforms
    // must produce bit-identical goodput regardless of worker count.
    // Small cluster + short duration keeps this test-sized while still
    // exercising platform construction inside worker threads.
    auto sweep = [](std::size_t threads) {
        auto ladder = stressLoadLadder(1'000.0);
        auto goodputs = ParallelSweep::map(
            ladder,
            [](double offered) {
                auto platform = bench::makeSystem(
                    bench::SystemKind::Infless, 2);
                return bench::measureMaxRps(
                    *platform, {"ResNet-50"}, 200 * sim::kTicksPerMs,
                    offered, 5 * sim::kTicksPerSec, 32);
            },
            threads);
        return goodputs;
    };
    auto serial = sweep(1);
    auto two = sweep(2);
    auto many = sweep(0);
    ASSERT_EQ(serial.size(), 3u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], two[i]) << "level " << i;
        EXPECT_EQ(serial[i], many[i]) << "level " << i;
    }
    EXPECT_EQ(kneeFromGoodputs(serial), kneeFromGoodputs(many));
}

} // namespace
