/**
 * @file
 * Tests for the server capacity index: class splitting/merging under
 * allocate/release and the firstFit/bestFit probes against linear scans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "cluster/capacity_index.hh"
#include "cluster/cluster.hh"
#include "sim/rng.hh"

namespace {

using infless::cluster::CapacityIndex;
using infless::cluster::Cluster;
using infless::cluster::kDefaultBeta;
using infless::cluster::kNoServer;
using infless::cluster::Resources;
using infless::cluster::ServerId;
using infless::sim::Rng;

/** Reference first-fit: linear scan in id order. */
ServerId
naiveFirstFit(const Cluster &c, const Resources &req)
{
    for (const auto &s : c.servers()) {
        if (s.canFit(req))
            return s.id();
    }
    return kNoServer;
}

/** Reference best-fit: smallest weighted availability, id order. */
ServerId
naiveBestFit(const Cluster &c, const Resources &req, double beta)
{
    ServerId target = kNoServer;
    double best_avail = std::numeric_limits<double>::max();
    for (const auto &s : c.servers()) {
        if (!s.canFit(req))
            continue;
        double avail = s.available().weighted(beta);
        if (avail < best_avail) {
            best_avail = avail;
            target = s.id();
        }
    }
    return target;
}

TEST(CapacityIndexTest, FreshHomogeneousClusterHasOneClass)
{
    Cluster c(2000);
    EXPECT_EQ(c.capacityIndex().classCount(), 1u);
    EXPECT_EQ(c.capacityIndex().serverCount(), 2000u);
    EXPECT_TRUE(c.capacityIndex().consistentWith(c.servers()));
}

TEST(CapacityIndexTest, AllocateSplitsClassReleaseMerges)
{
    Cluster c(8);
    Resources req{2000, 10, 1024};

    ASSERT_TRUE(c.allocate(3, req));
    EXPECT_EQ(c.capacityIndex().classCount(), 2u);
    EXPECT_TRUE(c.capacityIndex().consistentWith(c.servers()));

    // A second server with the same allocation joins the split class.
    ASSERT_TRUE(c.allocate(5, req));
    EXPECT_EQ(c.capacityIndex().classCount(), 2u);

    // A different allocation opens a third class.
    ASSERT_TRUE(c.allocate(6, Resources{500, 0, 512}));
    EXPECT_EQ(c.capacityIndex().classCount(), 3u);

    // Releases collapse everything back to one class.
    c.release(3, req);
    c.release(5, req);
    c.release(6, Resources{500, 0, 512});
    EXPECT_EQ(c.capacityIndex().classCount(), 1u);
    EXPECT_TRUE(c.capacityIndex().consistentWith(c.servers()));
}

TEST(CapacityIndexTest, HeterogeneousClusterClassesByCapacity)
{
    std::vector<Resources> caps = {Resources{16'000, 200, 131'072},
                                   Resources{16'000, 200, 131'072},
                                   Resources{32'000, 0, 262'144}};
    Cluster c(caps);
    EXPECT_EQ(c.capacityIndex().classCount(), 2u);
}

TEST(CapacityIndexTest, FirstFitMatchesLinearScan)
{
    Cluster c(12);
    Rng rng(99);
    // Random churn, checking the probe after every step.
    struct Alloc
    {
        ServerId server;
        Resources res;
    };
    std::vector<Alloc> live;
    for (int step = 0; step < 400; ++step) {
        Resources req{rng.uniformInt(0, 8) * 2000,
                      rng.uniformInt(0, 10) * 20,
                      rng.uniformInt(1, 48) * 1024};
        if (rng.uniform() < 0.6) {
            ServerId id = c.firstFit(req);
            ASSERT_EQ(id, naiveFirstFit(c, req)) << "step " << step;
            if (id != kNoServer && !req.isZero()) {
                ASSERT_TRUE(c.allocate(id, req));
                live.push_back({id, req});
            }
        } else if (!live.empty()) {
            std::size_t pick = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            c.release(live[pick].server, live[pick].res);
            live[pick] = live.back();
            live.pop_back();
        }
        ASSERT_TRUE(c.capacityIndex().consistentWith(c.servers()));
    }
}

TEST(CapacityIndexTest, BestFitMatchesLinearScan)
{
    Cluster c(12);
    Rng rng(7);
    std::vector<std::pair<ServerId, Resources>> live;
    for (int step = 0; step < 400; ++step) {
        Resources req{rng.uniformInt(0, 6) * 1000,
                      rng.uniformInt(0, 9) * 10,
                      rng.uniformInt(1, 32) * 1024};
        ServerId indexed = c.bestFit(req, kDefaultBeta);
        ASSERT_EQ(indexed, naiveBestFit(c, req, kDefaultBeta))
            << "step " << step;
        if (rng.uniform() < 0.6) {
            if (indexed != kNoServer && !req.isZero()) {
                ASSERT_TRUE(c.allocate(indexed, req));
                live.emplace_back(indexed, req);
            }
        } else if (!live.empty()) {
            std::size_t pick = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            c.release(live[pick].first, live[pick].second);
            live[pick] = live.back();
            live.pop_back();
        }
    }
}

TEST(CapacityIndexTest, StaysConsistentUnderServerChurn)
{
    // Down/up churn interleaved with allocations, releases and placement
    // probes: the index must track the live population exactly (a down
    // server leaves its class; recovery re-joins with its allocations
    // intact) and both probes must keep matching the linear scans.
    Cluster c(10);
    Rng rng(123);
    struct Alloc
    {
        ServerId server;
        Resources res;
    };
    std::vector<Alloc> live;
    std::vector<bool> down(c.size(), false);
    for (int step = 0; step < 600; ++step) {
        double move = rng.uniform();
        if (move < 0.20) {
            // Crash a random up server (its allocations stay booked).
            ServerId id = static_cast<ServerId>(
                rng.uniformInt(0, static_cast<std::int64_t>(c.size()) - 1));
            if (!down[static_cast<std::size_t>(id)]) {
                c.setServerDown(id);
                down[static_cast<std::size_t>(id)] = true;
            }
        } else if (move < 0.40) {
            // Recover a random down server.
            ServerId id = static_cast<ServerId>(
                rng.uniformInt(0, static_cast<std::int64_t>(c.size()) - 1));
            if (down[static_cast<std::size_t>(id)]) {
                c.setServerUp(id);
                down[static_cast<std::size_t>(id)] = false;
            }
        } else if (move < 0.75) {
            // Place through the index and cross-check both probes.
            Resources req{rng.uniformInt(0, 8) * 2000,
                          rng.uniformInt(0, 10) * 20,
                          rng.uniformInt(1, 48) * 1024};
            ServerId first = c.firstFit(req);
            ASSERT_EQ(first, naiveFirstFit(c, req)) << "step " << step;
            ASSERT_EQ(c.bestFit(req, kDefaultBeta),
                      naiveBestFit(c, req, kDefaultBeta))
                << "step " << step;
            if (first != kNoServer && !req.isZero()) {
                ASSERT_FALSE(down[static_cast<std::size_t>(first)]);
                ASSERT_TRUE(c.allocate(first, req));
                live.push_back({first, req});
            }
        } else if (!live.empty()) {
            // Release — legal even on a down server (crashed instances
            // hand their resources back before the machine recovers).
            std::size_t pick = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            c.release(live[pick].server, live[pick].res);
            live[pick] = live.back();
            live.pop_back();
        }
        ASSERT_TRUE(c.capacityIndex().consistentWith(c.servers()))
            << "step " << step;
        ASSERT_EQ(c.downServers(),
                  static_cast<std::size_t>(
                      std::count(down.begin(), down.end(), true)));
    }
    // Allocating on a down server must refuse outright.
    c.setServerDown(0);
    EXPECT_FALSE(c.allocate(0, Resources{1000, 0, 512}));
    c.setServerUp(0);
    EXPECT_TRUE(c.allocate(0, Resources{1000, 0, 512}));
}

TEST(CapacityIndexTest, BestFitPrefersLowestIdOnWeightedTie)
{
    // Two classes with different memory but identical weighted compute:
    // memory does not enter weighted(), so both tie and the lowest id
    // must win (matching a linear scan with strict improvement).
    Cluster c(4);
    ASSERT_TRUE(c.allocate(1, Resources{0, 0, 1024}));
    ASSERT_TRUE(c.allocate(2, Resources{0, 0, 2048}));
    EXPECT_EQ(c.capacityIndex().classCount(), 3u);
    ServerId id = c.bestFit(Resources{1000, 10, 512}, kDefaultBeta);
    EXPECT_EQ(id, 0); // all weighted-equal; linear scan returns server 0
}

TEST(CapacityIndexTest, RebuildMatchesIncrementalState)
{
    Cluster c(6);
    ASSERT_TRUE(c.allocate(0, Resources{1000, 10, 512}));
    ASSERT_TRUE(c.allocate(4, Resources{2000, 0, 4096}));

    CapacityIndex fresh;
    fresh.rebuild(c.servers());
    EXPECT_EQ(fresh.classCount(), c.capacityIndex().classCount());
    EXPECT_TRUE(fresh.consistentWith(c.servers()));

    // Both indexes answer probes identically.
    Resources probe{12'000, 150, 1024};
    EXPECT_EQ(fresh.firstFit(probe), c.capacityIndex().firstFit(probe));
    EXPECT_EQ(fresh.bestFit(probe, kDefaultBeta),
              c.capacityIndex().bestFit(probe, kDefaultBeta));
}

TEST(CapacityIndexTest, ForEachClassReportsMinIdAndCount)
{
    Cluster c(5);
    ASSERT_TRUE(c.allocate(2, Resources{1000, 0, 1024}));

    std::size_t classes = 0;
    std::size_t servers = 0;
    c.capacityIndex().forEachClass(
        kDefaultBeta, [&](const Resources &avail, double weighted,
                          ServerId min_id, std::size_t count) {
            EXPECT_EQ(weighted, avail.weighted(kDefaultBeta));
            if (count == 4)
                EXPECT_EQ(min_id, 0); // untouched servers: 0,1,3,4
            else
                EXPECT_EQ(min_id, 2);
            ++classes;
            servers += count;
        });
    EXPECT_EQ(classes, 2u);
    EXPECT_EQ(servers, 5u);
}

} // namespace
