/**
 * @file
 * Unit tests for the dynamic CellMembership map.
 */

#include "cluster/cell_partition.hh"

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace infless::cluster {
namespace {

using infless::sim::PanicError;

TEST(CellMembership, InitialLayoutMatchesContiguousPartition)
{
    CellMembership m(10, 3);
    auto slices = partitionServers(10, 3);
    ASSERT_EQ(m.cellCount(), slices.size());
    EXPECT_EQ(m.totalServers(), 10u);
    for (std::size_t c = 0; c < slices.size(); ++c) {
        EXPECT_EQ(m.size(c), slices[c].size());
        for (std::size_t g = slices[c].begin; g < slices[c].end; ++g) {
            auto gid = static_cast<ServerId>(g);
            EXPECT_EQ(m.cellOf(gid), c);
            EXPECT_EQ(m.localId(gid),
                      static_cast<ServerId>(g - slices[c].begin));
            EXPECT_EQ(m.globalId(c, m.localId(gid)), gid);
        }
    }
    EXPECT_TRUE(m.consistent());
}

TEST(CellMembership, ClampsLikePartitionServers)
{
    // 3 servers across 4 requested cells: one server per cell.
    CellMembership m(3, 4);
    EXPECT_EQ(m.cellCount(), 3u);
    for (std::size_t c = 0; c < 3; ++c)
        EXPECT_EQ(m.size(c), 1u);
    EXPECT_TRUE(m.consistent());
}

TEST(CellMembership, MigrateMovesAndTombstonesDonorSlot)
{
    // 10 servers / 3 cells: cell 0 = [0,4), cell 1 = [4,7), cell 2 = [7,10).
    CellMembership m(10, 3);
    // Receiver appends, so the new local id is cell 2's next slot (3).
    m.migrate(0, 2, 3);

    EXPECT_EQ(m.cellOf(0), 2u);
    EXPECT_EQ(m.localId(0), 3);
    EXPECT_EQ(m.globalId(2, 3), 0);
    // The donor's old slot is a tombstone, not reused.
    EXPECT_EQ(m.globalId(0, 0), kNoServer);
    EXPECT_EQ(m.size(0), 3u);
    EXPECT_EQ(m.size(2), 4u);
    // Member lists stay sorted by global id.
    EXPECT_EQ(m.members(2).front(), 0);
    EXPECT_EQ(m.members(0).front(), 1);
    EXPECT_TRUE(m.consistent());
}

TEST(CellMembership, MigrationChainStaysConsistent)
{
    CellMembership m(12, 4);
    // Bounce servers around, always appending at the receiver.
    std::vector<ServerId> next_local = {3, 3, 3, 3};
    auto move = [&](ServerId g, std::size_t to) {
        m.migrate(g, to, next_local[to]++);
        ASSERT_TRUE(m.consistent()) << "after moving " << g;
    };
    move(0, 1);
    move(0, 2); // moves on again from its new home
    move(5, 0);
    move(11, 0);
    move(7, 3);
    // Every server is still reachable through the O(1) maps.
    std::size_t total = 0;
    for (std::size_t c = 0; c < m.cellCount(); ++c) {
        for (ServerId g : m.members(c)) {
            EXPECT_EQ(m.cellOf(g), c);
            EXPECT_EQ(m.globalId(c, m.localId(g)), g);
            ++total;
        }
    }
    EXPECT_EQ(total, 12u);
    EXPECT_EQ(m.size(0), 4u); // lost 0, gained 5 and 11
    EXPECT_EQ(m.size(2), 3u); // gained 0, lost 7
}

TEST(CellMembership, MigrateRejectsBadMoves)
{
    CellMembership m(8, 2);
    // Moving to the cell that already owns the server is a logic error.
    EXPECT_THROW(m.migrate(0, 0, 4), PanicError);
    // The receiver's local id must append (next slot is 4, not 9).
    EXPECT_THROW(m.migrate(0, 1, 9), PanicError);
    // Unknown global ids and cells are rejected.
    EXPECT_THROW(m.migrate(8, 1, 4), PanicError);
    EXPECT_THROW(m.migrate(0, 2, 0), PanicError);
    EXPECT_THROW(m.cellOf(-1), PanicError);
    EXPECT_THROW(m.globalId(0, 4), PanicError);
    // Nothing above mutated state.
    EXPECT_TRUE(m.consistent());
}

} // namespace
} // namespace infless::cluster
