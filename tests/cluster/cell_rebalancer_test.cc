/**
 * @file
 * Unit tests for the straggler detector / migration planner.
 */

#include "cluster/cell_rebalancer.hh"

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace infless::cluster {
namespace {

using infless::sim::PanicError;

/** Three 4-server cells; cell 0 runs 10x hotter per server. */
std::vector<CellLoad>
skewedLoads()
{
    return {CellLoad{4'000, 0, 0, 0, 4}, CellLoad{400, 0, 0, 0, 4},
            CellLoad{400, 0, 0, 0, 4}};
}

std::vector<CellLoad>
balancedLoads()
{
    return std::vector<CellLoad>(3, CellLoad{500, 0, 0, 0, 4});
}

RebalanceConfig
enabledConfig()
{
    RebalanceConfig cfg;
    cfg.enabled = true;
    return cfg;
}

TEST(CellRebalancer, DisabledIsInert)
{
    CellRebalancer r{RebalanceConfig{}};
    for (int w = 0; w < 5; ++w)
        EXPECT_TRUE(r.plan(skewedLoads()).empty());
    EXPECT_FALSE(r.engaged());
    EXPECT_EQ(r.migrationsOrdered(), 0u);
    EXPECT_DOUBLE_EQ(r.lastImbalance(), 1.0);
}

TEST(CellRebalancer, RejectsInvertedHysteresisBand)
{
    RebalanceConfig cfg;
    cfg.imbalanceLow = 2.0;
    cfg.imbalanceHigh = 1.5;
    EXPECT_THROW(CellRebalancer{cfg}, PanicError);
    cfg.imbalanceLow = 0.5;
    cfg.imbalanceHigh = 0.9;
    EXPECT_THROW(CellRebalancer{cfg}, PanicError);
}

TEST(CellRebalancer, BalancedFleetNeverEngages)
{
    CellRebalancer r{enabledConfig()};
    for (int w = 0; w < 10; ++w)
        EXPECT_TRUE(r.plan(balancedLoads()).empty());
    EXPECT_FALSE(r.engaged());
    EXPECT_DOUBLE_EQ(r.lastImbalance(), 1.0);
}

TEST(CellRebalancer, EngagesOnlyAfterHotWindowsStreak)
{
    // Default hotWindows = 2: one hot window is noise.
    CellRebalancer r{enabledConfig()};
    EXPECT_TRUE(r.plan(skewedLoads()).empty());
    EXPECT_FALSE(r.engaged());
    auto orders = r.plan(skewedLoads());
    EXPECT_TRUE(r.engaged());
    ASSERT_FALSE(orders.empty());
    for (const auto &o : orders)
        EXPECT_EQ(o.to, 0u); // into the straggler
    EXPECT_GT(r.lastImbalance(), 1.5);
}

TEST(CellRebalancer, CoolWindowResetsTheStreak)
{
    CellRebalancer r{enabledConfig()};
    EXPECT_TRUE(r.plan(skewedLoads()).empty());
    EXPECT_TRUE(r.plan(balancedLoads()).empty()); // streak resets
    EXPECT_TRUE(r.plan(skewedLoads()).empty());   // streak = 1 again
    EXPECT_FALSE(r.engaged());
    EXPECT_FALSE(r.plan(skewedLoads()).empty());
}

TEST(CellRebalancer, DisengagesBelowLowWatermark)
{
    CellRebalancer r{enabledConfig()};
    r.plan(skewedLoads());
    r.plan(skewedLoads());
    ASSERT_TRUE(r.engaged());
    // Once the fleet evens out past the low watermark, migration stops
    // and the streak starts over.
    EXPECT_TRUE(r.plan(balancedLoads()).empty());
    EXPECT_FALSE(r.engaged());
    EXPECT_TRUE(r.plan(skewedLoads()).empty()); // needs a fresh streak
}

TEST(CellRebalancer, RespectsPerWindowBudgetAndDonorFloor)
{
    RebalanceConfig cfg = enabledConfig();
    cfg.maxMigrationsPerWindow = 4;
    cfg.minCellServers = 2;
    CellRebalancer r{cfg};
    r.plan(skewedLoads());
    auto orders = r.plan(skewedLoads());
    std::size_t moved = 0;
    for (const auto &o : orders) {
        // 4 servers - floor of 2 = at most 2 spare per donor.
        EXPECT_LE(o.count, 2u);
        EXPECT_NE(o.from, 0u);
        moved += o.count;
    }
    EXPECT_LE(moved, 4u);
    EXPECT_EQ(r.migrationsOrdered(), moved);
}

TEST(CellRebalancer, DonorsAtTheFloorAreSkipped)
{
    RebalanceConfig cfg = enabledConfig();
    cfg.minCellServers = 4; // every cold cell has exactly 4 servers
    CellRebalancer r{cfg};
    r.plan(skewedLoads());
    EXPECT_TRUE(r.plan(skewedLoads()).empty());
    // The detector still engages; there is just nothing to take.
    EXPECT_TRUE(r.engaged());
}

TEST(CellRebalancer, ColdestDonorsDrainFirst)
{
    RebalanceConfig cfg = enabledConfig();
    cfg.maxMigrationsPerWindow = 8;
    // Cell 2 is colder than cell 1, so it donates first.
    std::vector<CellLoad> loads = {CellLoad{4'000, 0, 0, 0, 4},
                                   CellLoad{800, 0, 0, 0, 4},
                                   CellLoad{400, 0, 0, 0, 4}};
    CellRebalancer r{cfg};
    r.plan(loads);
    auto orders = r.plan(loads);
    ASSERT_EQ(orders.size(), 2u);
    EXPECT_EQ(orders[0], (MigrationOrder{2, 0, 3}));
    EXPECT_EQ(orders[1], (MigrationOrder{1, 0, 3}));
}

TEST(CellRebalancer, EqualLoadTiesBreakToLowerCellIndex)
{
    RebalanceConfig cfg = enabledConfig();
    cfg.maxMigrationsPerWindow = 8;
    CellRebalancer r{cfg};
    r.plan(skewedLoads());
    auto orders = r.plan(skewedLoads());
    ASSERT_EQ(orders.size(), 2u);
    EXPECT_EQ(orders[0], (MigrationOrder{1, 0, 3}));
    EXPECT_EQ(orders[1], (MigrationOrder{2, 0, 3}));
}

TEST(CellRebalancer, QueueAndInFlightWeighIntoTheSignal)
{
    // Same events everywhere; only queue depth marks the straggler.
    std::vector<CellLoad> loads = {CellLoad{500, 1'000, 50, 0, 4},
                                   CellLoad{500, 0, 0, 0, 4},
                                   CellLoad{500, 0, 0, 0, 4}};
    CellRebalancer r{enabledConfig()};
    r.plan(loads);
    auto orders = r.plan(loads);
    ASSERT_FALSE(orders.empty());
    EXPECT_EQ(orders.front().to, 0u);
}

TEST(CellRebalancer, IdenticalInputSequenceYieldsIdenticalOrders)
{
    auto run = [] {
        CellRebalancer r{enabledConfig()};
        std::vector<std::vector<MigrationOrder>> all;
        for (int w = 0; w < 6; ++w)
            all.push_back(
                r.plan(w % 3 == 2 ? balancedLoads() : skewedLoads()));
        return all;
    };
    EXPECT_EQ(run(), run());
}

TEST(CellRebalancer, IgnoresEmptyAndDegenerateFleets)
{
    CellRebalancer r{enabledConfig()};
    EXPECT_TRUE(r.plan({}).empty());
    EXPECT_TRUE(r.plan({CellLoad{9'000, 0, 0, 0, 4}}).empty());
    // Only one populated cell: nothing to compare against.
    std::vector<CellLoad> one = {CellLoad{9'000, 0, 0, 0, 4},
                                 CellLoad{0, 0, 0, 0, 0}};
    EXPECT_TRUE(r.plan(one).empty());
    EXPECT_FALSE(r.engaged());
}

} // namespace
} // namespace infless::cluster
