#include "cluster/cell_partition.hh"
#include "cluster/cell_router.hh"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace infless::cluster {
namespace {

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

TEST(CellPartition, CoversEveryServerExactlyOnce)
{
    for (std::size_t servers : {1u, 7u, 100u, 10'000u}) {
        for (std::size_t cells = 1; cells <= std::min<std::size_t>(
                                        servers, 16);
             ++cells) {
            auto slices = partitionServers(servers, cells);
            ASSERT_EQ(slices.size(), cells);
            EXPECT_EQ(slices.front().begin, 0u);
            EXPECT_EQ(slices.back().end, servers);
            std::size_t total = 0;
            for (std::size_t c = 0; c < cells; ++c) {
                if (c > 0)
                    EXPECT_EQ(slices[c].begin, slices[c - 1].end);
                total += slices[c].size();
            }
            EXPECT_EQ(total, servers);
        }
    }
}

TEST(CellPartition, SlicesAreNearEqual)
{
    auto slices = partitionServers(10, 3);
    EXPECT_EQ(slices[0].size(), 4u);
    EXPECT_EQ(slices[1].size(), 3u);
    EXPECT_EQ(slices[2].size(), 3u);
}

TEST(CellPartition, SingleCellIsTheWholeFleet)
{
    auto slices = partitionServers(2'000, 1);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0], (CellSlice{0, 2'000}));
}

TEST(CellPartition, RejectsDegenerateShapes)
{
    EXPECT_THROW(partitionServers(10, 0), std::invalid_argument);
    EXPECT_THROW(partitionServers(0, 4), std::invalid_argument);
}

TEST(CellPartition, MoreCellsThanServersClampsToOnePerServer)
{
    auto slices = partitionServers(3, 4);
    ASSERT_EQ(slices.size(), 3u);
    for (std::size_t c = 0; c < slices.size(); ++c) {
        EXPECT_EQ(slices[c].begin, c);
        EXPECT_EQ(slices[c].size(), 1u);
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

std::vector<CellDigest>
uniformDigests(std::size_t cells, double avail)
{
    return std::vector<CellDigest>(cells, CellDigest{avail, 0, 0});
}

TEST(CellRouter, SingleCellAlwaysRoutesToZero)
{
    CellRouter router(1, 42);
    router.refresh(uniformDigests(1, 100.0));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(router.route(), 0u);
    EXPECT_EQ(router.routedSinceRefresh(0), 100);
}

TEST(CellRouter, DeterministicGivenSeed)
{
    auto draw = [] {
        CellRouter router(8, 1234);
        router.refresh(uniformDigests(8, 100.0));
        std::vector<std::size_t> picks;
        for (int i = 0; i < 200; ++i)
            picks.push_back(router.route());
        return picks;
    };
    EXPECT_EQ(draw(), draw());
}

TEST(CellRouter, AvoidsQueueLoadedCell)
{
    CellRouter router(2, 7);
    std::vector<CellDigest> digests = {CellDigest{100.0, 1'000, 0},
                                       CellDigest{100.0, 0, 0}};
    router.refresh(digests);
    // With two cells, p2c samples both cells often; the drowning cell 0
    // must lose every comparison until ~1000 requests went to cell 1.
    int to_loaded = 0;
    for (int i = 0; i < 500; ++i)
        if (router.route() == 0)
            ++to_loaded;
    EXPECT_LT(to_loaded, 50);
}

TEST(CellRouter, AvoidsDropPressuredCell)
{
    CellRouter router(2, 7);
    router.refresh({CellDigest{100.0, 0, 10'000}, CellDigest{100.0, 0, 0}});
    int to_pressured = 0;
    for (int i = 0; i < 500; ++i)
        if (router.route() == 0)
            ++to_pressured;
    EXPECT_LT(to_pressured, 50);
}

TEST(CellRouter, PrefersMoreAvailableCell)
{
    CellRouter router(2, 7);
    // Same queue, 10x the free capacity on cell 1: its score stays lower
    // until it has absorbed ~10x the requests.
    router.refresh({CellDigest{10.0, 50, 0}, CellDigest{100.0, 50, 0}});
    int to_small = 0;
    for (int i = 0; i < 200; ++i)
        if (router.route() == 0)
            ++to_small;
    EXPECT_LT(to_small, 100);
}

TEST(CellRouter, SelfCorrectsWithinEpoch)
{
    // All digests equal: the routed-since-refresh counter is the only
    // signal, so p2c must keep the spread balanced within the epoch.
    CellRouter router(4, 99);
    router.refresh(uniformDigests(4, 100.0));
    for (int i = 0; i < 4'000; ++i)
        router.route();
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_GT(router.routedSinceRefresh(c), 800);
        EXPECT_LT(router.routedSinceRefresh(c), 1'200);
    }
}

TEST(CellRouter, RefreshResetsEpochCounters)
{
    CellRouter router(2, 5);
    router.refresh(uniformDigests(2, 100.0));
    for (int i = 0; i < 10; ++i)
        router.route();
    router.refresh(uniformDigests(2, 100.0));
    EXPECT_EQ(router.routedSinceRefresh(0), 0);
    EXPECT_EQ(router.routedSinceRefresh(1), 0);
}

TEST(CellRouter, SaturatedCellsStillRoute)
{
    CellRouter router(2, 11);
    router.refresh({CellDigest{0.0, 100, 0}, CellDigest{0.0, 100, 0}});
    for (int i = 0; i < 10; ++i)
        EXPECT_LT(router.route(), 2u);
}

TEST(CellRouter, InvalidateDropsStaleView)
{
    CellRouter router(2, 5);
    // Cell 0 looks far better, so the epoch counter piles up there.
    router.refresh({CellDigest{100.0, 0, 0}, CellDigest{1.0, 1'000, 0}});
    for (int i = 0; i < 50; ++i)
        router.route();
    ASSERT_GT(router.routedSinceRefresh(0), 0);
    router.invalidate(0);
    EXPECT_EQ(router.routedSinceRefresh(0), 0);
    EXPECT_THROW(router.invalidate(2), std::invalid_argument);
}

TEST(CellRouter, RejectsMismatchedRefresh)
{
    CellRouter router(3, 1);
    EXPECT_THROW(router.refresh(uniformDigests(2, 1.0)),
                 std::invalid_argument);
    EXPECT_THROW(CellRouter(0, 1), std::invalid_argument);
}

} // namespace
} // namespace infless::cluster
