/**
 * @file
 * Unit tests for the Cluster fleet.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "sim/logging.hh"

namespace {

using infless::cluster::Cluster;
using infless::cluster::kNoServer;
using infless::cluster::Resources;
using infless::sim::FatalError;
using infless::sim::PanicError;

TEST(ClusterTest, BuildsHomogeneousFleet)
{
    Cluster c(8);
    EXPECT_EQ(c.size(), 8u);
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(c.server(static_cast<int>(i)).id(),
                  static_cast<int>(i));
    }
}

TEST(ClusterTest, EmptyClusterIsRejected)
{
    EXPECT_THROW(Cluster(0), PanicError);
}

TEST(ClusterTest, TotalsAggregateServers)
{
    Cluster c(4, Resources{1000, 10, 1024});
    EXPECT_EQ(c.totalCapacity(), (Resources{4000, 40, 4096}));
    ASSERT_TRUE(c.allocate(1, Resources{500, 5, 512}));
    EXPECT_EQ(c.totalAllocated(), (Resources{500, 5, 512}));
    EXPECT_EQ(c.totalAvailable(), (Resources{3500, 35, 3584}));
}

TEST(ClusterTest, FirstFitSkipsFullServers)
{
    Cluster c(3, Resources{1000, 0, 1024});
    ASSERT_TRUE(c.allocate(0, Resources{1000, 0, 0}));
    EXPECT_EQ(c.firstFit(Resources{1000, 0, 0}), 1);
    ASSERT_TRUE(c.allocate(1, Resources{1000, 0, 0}));
    ASSERT_TRUE(c.allocate(2, Resources{1000, 0, 0}));
    EXPECT_EQ(c.firstFit(Resources{1, 0, 0}), kNoServer);
}

TEST(ClusterTest, FragmentRatioIgnoresIdleServers)
{
    Cluster c(10, Resources{1000, 100, 1024});
    // One server half-loaded; nine idle servers do not dilute the ratio.
    ASSERT_TRUE(c.allocate(0, Resources{500, 50, 512}));
    EXPECT_NEAR(c.fragmentRatio(0.001), 0.5, 0.01);
    EXPECT_EQ(c.activeServers(), 1u);
}

TEST(ClusterTest, FragmentRatioZeroWhenNothingActive)
{
    Cluster c(5);
    EXPECT_DOUBLE_EQ(c.fragmentRatio(), 0.0);
}

TEST(ClusterTest, ReleaseRoundTrips)
{
    Cluster c(2, Resources{1000, 10, 1024});
    Resources req{700, 7, 700};
    ASSERT_TRUE(c.allocate(0, req));
    c.release(0, req);
    EXPECT_EQ(c.totalAllocated(), Resources{});
}

TEST(ClusterTest, BadServerIdPanics)
{
    Cluster c(2);
    EXPECT_THROW(c.server(2), PanicError);
    EXPECT_THROW(c.server(-1), PanicError);
}

// ---------------------------------------------------------------------------
// Membership (cell rebalancing)
// ---------------------------------------------------------------------------

TEST(ClusterMembership, AddServerAppendsAndFiles)
{
    Cluster c(2, Resources{1000, 10, 1024});
    int id = c.addServer(Resources{1000, 10, 1024});
    EXPECT_EQ(id, 2);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.liveServers(), 3u);
    EXPECT_EQ(c.totalCapacity(), (Resources{3000, 30, 3072}));
    // The adopted server is placeable immediately.
    ASSERT_TRUE(c.allocate(id, Resources{1000, 10, 1024}));
    EXPECT_TRUE(c.capacityIndex().consistentWith(c.servers()));
}

TEST(ClusterMembership, RemoveServerTombstones)
{
    Cluster c(3, Resources{1000, 10, 1024});
    Resources cap = c.removeServer(1);
    EXPECT_EQ(cap, (Resources{1000, 10, 1024}));
    EXPECT_TRUE(c.server(1).isRetired());
    // Ids stay valid; the tombstone holds no capacity and refuses work.
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.liveServers(), 2u);
    EXPECT_EQ(c.totalCapacity(), (Resources{2000, 20, 2048}));
    EXPECT_FALSE(c.server(1).canFit(Resources{1, 0, 0}));
    EXPECT_EQ(c.capacities()[1], Resources{});
    EXPECT_TRUE(c.capacityIndex().consistentWith(c.servers()));
    // Retirement is permanent.
    EXPECT_THROW(c.removeServer(1), PanicError);
}

TEST(ClusterMembership, RemoveServerRefusesBusyOrDown)
{
    Cluster c(3, Resources{1000, 10, 1024});
    ASSERT_TRUE(c.allocate(0, Resources{1, 0, 0}));
    EXPECT_THROW(c.removeServer(0), PanicError);
    c.setServerDown(1);
    EXPECT_THROW(c.removeServer(1), PanicError);
}

TEST(ClusterMembership, AdoptReleaseChurnKeepsIndexConsistent)
{
    // A donor/receiver hand-off loop interleaved with allocations and
    // crashes: the capacity index must stay an exact partition of the
    // up, non-retired servers throughout.
    Cluster donor(8, Resources{1000, 10, 1024});
    Cluster receiver(2, Resources{1000, 10, 1024});
    for (int round = 0; round < 4; ++round) {
        int victim = 2 * round;
        Resources cap = donor.removeServer(victim);
        int adopted = receiver.addServer(cap);
        ASSERT_TRUE(receiver.allocate(adopted, Resources{500, 5, 512}));
        ASSERT_TRUE(donor.allocate(victim + 1, Resources{100, 1, 128}));
        donor.setServerDown(victim + 1);
        donor.setServerUp(victim + 1);
        ASSERT_TRUE(
            donor.capacityIndex().consistentWith(donor.servers()))
            << "round " << round;
        ASSERT_TRUE(
            receiver.capacityIndex().consistentWith(receiver.servers()))
            << "round " << round;
    }
    EXPECT_EQ(donor.liveServers(), 4u);
    EXPECT_EQ(receiver.size(), 6u);
    // Capacity is conserved across the hand-offs.
    EXPECT_EQ(donor.totalCapacity() + receiver.totalCapacity(),
              (Resources{10'000, 100, 10'240}));
}

} // namespace
