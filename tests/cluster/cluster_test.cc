/**
 * @file
 * Unit tests for the Cluster fleet.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "sim/logging.hh"

namespace {

using infless::cluster::Cluster;
using infless::cluster::kNoServer;
using infless::cluster::Resources;
using infless::sim::FatalError;
using infless::sim::PanicError;

TEST(ClusterTest, BuildsHomogeneousFleet)
{
    Cluster c(8);
    EXPECT_EQ(c.size(), 8u);
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(c.server(static_cast<int>(i)).id(),
                  static_cast<int>(i));
    }
}

TEST(ClusterTest, EmptyClusterIsRejected)
{
    EXPECT_THROW(Cluster(0), PanicError);
}

TEST(ClusterTest, TotalsAggregateServers)
{
    Cluster c(4, Resources{1000, 10, 1024});
    EXPECT_EQ(c.totalCapacity(), (Resources{4000, 40, 4096}));
    ASSERT_TRUE(c.allocate(1, Resources{500, 5, 512}));
    EXPECT_EQ(c.totalAllocated(), (Resources{500, 5, 512}));
    EXPECT_EQ(c.totalAvailable(), (Resources{3500, 35, 3584}));
}

TEST(ClusterTest, FirstFitSkipsFullServers)
{
    Cluster c(3, Resources{1000, 0, 1024});
    ASSERT_TRUE(c.allocate(0, Resources{1000, 0, 0}));
    EXPECT_EQ(c.firstFit(Resources{1000, 0, 0}), 1);
    ASSERT_TRUE(c.allocate(1, Resources{1000, 0, 0}));
    ASSERT_TRUE(c.allocate(2, Resources{1000, 0, 0}));
    EXPECT_EQ(c.firstFit(Resources{1, 0, 0}), kNoServer);
}

TEST(ClusterTest, FragmentRatioIgnoresIdleServers)
{
    Cluster c(10, Resources{1000, 100, 1024});
    // One server half-loaded; nine idle servers do not dilute the ratio.
    ASSERT_TRUE(c.allocate(0, Resources{500, 50, 512}));
    EXPECT_NEAR(c.fragmentRatio(0.001), 0.5, 0.01);
    EXPECT_EQ(c.activeServers(), 1u);
}

TEST(ClusterTest, FragmentRatioZeroWhenNothingActive)
{
    Cluster c(5);
    EXPECT_DOUBLE_EQ(c.fragmentRatio(), 0.0);
}

TEST(ClusterTest, ReleaseRoundTrips)
{
    Cluster c(2, Resources{1000, 10, 1024});
    Resources req{700, 7, 700};
    ASSERT_TRUE(c.allocate(0, req));
    c.release(0, req);
    EXPECT_EQ(c.totalAllocated(), Resources{});
}

TEST(ClusterTest, BadServerIdPanics)
{
    Cluster c(2);
    EXPECT_THROW(c.server(2), PanicError);
    EXPECT_THROW(c.server(-1), PanicError);
}

} // namespace
