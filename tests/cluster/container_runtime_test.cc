/**
 * @file
 * Unit tests for the cold-start cost model.
 */

#include <gtest/gtest.h>

#include "cluster/container_runtime.hh"
#include "sim/time.hh"

namespace {

using infless::cluster::ColdStartParams;
using infless::cluster::ContainerRuntime;
using infless::sim::msToTicks;

TEST(ContainerRuntimeTest, ColdStartGrowsWithModelSize)
{
    ContainerRuntime rt;
    auto small = rt.coldStartTicks(10);
    auto large = rt.coldStartTicks(400);
    EXPECT_GT(large, small);
    // The marginal cost is the per-MB load time.
    EXPECT_EQ(large - small, 390 * rt.params().loadPerMb);
}

TEST(ContainerRuntimeTest, ColdStartIsSecondsScaleForBigModels)
{
    ContainerRuntime rt;
    // Bert-v1 at 391 MB should take multiple seconds, far above its
    // execution time (the paper's observation in 3.5).
    EXPECT_GT(rt.coldStartTicks(391), msToTicks(2000));
    EXPECT_LT(rt.coldStartTicks(391), msToTicks(10'000));
}

TEST(ContainerRuntimeTest, WarmStartIsNegligible)
{
    ContainerRuntime rt;
    EXPECT_LT(rt.warmStartTicks(), msToTicks(10));
    EXPECT_LT(rt.warmStartTicks() * 100, rt.coldStartTicks(1));
}

TEST(ContainerRuntimeTest, AcceleratedStartupIsMuchFaster)
{
    // SOCK/Catalyzer-style startup (3.5): an order of magnitude below
    // the stock path, leaving the model load as the main cost.
    ContainerRuntime stock;
    ContainerRuntime fast(infless::cluster::acceleratedColdStartParams());
    EXPECT_LT(fast.coldStartTicks(98) * 3, stock.coldStartTicks(98));
    EXPECT_LT(fast.coldStartTicks(98), msToTicks(500));
    // Still far from free for big models (the weights must load).
    EXPECT_GT(fast.coldStartTicks(391), msToTicks(1000));
}

TEST(ContainerRuntimeTest, CustomParamsHonored)
{
    ColdStartParams params;
    params.containerCreate = msToTicks(100);
    params.libraryInit = msToTicks(50);
    params.loadPerMb = msToTicks(2);
    ContainerRuntime rt(params);
    EXPECT_EQ(rt.coldStartTicks(10), msToTicks(100 + 50 + 20));
}

} // namespace
