/**
 * @file
 * Tests for heterogeneous clusters (mixed GPU and CPU-only machines) and
 * the scheduler's behaviour on them.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "cluster/cluster.hh"
#include "core/platform.hh"
#include "core/scheduler.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"
#include "workload/generators.hh"

namespace {

using infless::cluster::Cluster;
using infless::cluster::Resources;
using infless::core::GreedyScheduler;
using infless::core::Platform;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;

Cluster
mixedCluster()
{
    // Two GPU nodes and two CPU-only nodes.
    return Cluster(std::vector<Resources>{
        {16'000, 200, 128 * 1024},
        {16'000, 200, 128 * 1024},
        {32'000, 0, 256 * 1024},
        {32'000, 0, 256 * 1024},
    });
}

TEST(HeterogeneousClusterTest, CapacitiesPreservedPerServer)
{
    Cluster c = mixedCluster();
    EXPECT_EQ(c.size(), 4u);
    EXPECT_EQ(c.server(0).capacity().gpuSmPercent, 200);
    EXPECT_EQ(c.server(2).capacity().gpuSmPercent, 0);
    EXPECT_EQ(c.server(2).capacity().cpuMillicores, 32'000);
    auto caps = c.capacities();
    ASSERT_EQ(caps.size(), 4u);
    EXPECT_EQ(caps[3].cpuMillicores, 32'000);
}

TEST(HeterogeneousClusterTest, EmptyCapacityListRejected)
{
    EXPECT_THROW(Cluster(std::vector<Resources>{}),
                 infless::sim::PanicError);
}

TEST(HeterogeneousClusterTest, GpuConfigsLandOnGpuServers)
{
    infless::models::ExecModel exec;
    infless::profiler::OpProfileDb db(exec);
    infless::profiler::CopPredictor cop(db);
    GreedyScheduler sched(cop);
    Cluster cluster = mixedCluster();

    const auto &resnet =
        infless::models::ModelZoo::shared().get("ResNet-50");
    auto plans =
        sched.schedule(resnet, 500.0, msToTicks(200), 32, cluster);
    ASSERT_FALSE(plans.empty());
    for (const auto &plan : plans) {
        if (plan.config.resources.gpuSmPercent > 0)
            EXPECT_LT(plan.server, 2) << "GPU config on CPU-only server";
    }
}

TEST(HeterogeneousClusterTest, PlatformServesOnMixedFleet)
{
    Platform p(mixedCluster());
    infless::core::FunctionSpec spec{"resnet", "ResNet-50",
                                     msToTicks(200), 32};
    auto fn = p.deploy(spec);
    p.injectTrace(fn, infless::workload::uniformArrivals(
                          80.0, kTicksPerMin));
    p.run(kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_LT(m.sloViolationRate(), 0.15);
}

TEST(HeterogeneousClusterTest, CpuOnlyFleetStillServesFeasibleModels)
{
    // A cluster with no GPUs at all: ResNet-50 at 200 ms is only feasible
    // on beefy CPU slices, and MNIST everywhere.
    Cluster cpu_only(std::vector<Resources>{{32'000, 0, 256 * 1024},
                                            {32'000, 0, 256 * 1024}});
    Platform p(std::move(cpu_only));
    infless::core::FunctionSpec spec{"mnist", "MNIST", msToTicks(50), 32};
    auto fn = p.deploy(spec);
    p.injectTrace(fn, infless::workload::uniformArrivals(
                          50.0, kTicksPerMin));
    p.run(kTicksPerMin + 5 * kTicksPerSec);
    EXPECT_GT(p.totalMetrics().completions(), 2000);
    // Nothing was placed on a GPU, because there are none.
    EXPECT_EQ(p.cluster().totalAllocated().gpuSmPercent, 0);
}

} // namespace
