/**
 * @file
 * Unit tests for the Instance lifecycle state machine.
 */

#include <gtest/gtest.h>

#include "cluster/instance.hh"
#include "sim/logging.hh"

namespace {

using infless::cluster::Instance;
using infless::cluster::InstanceConfig;
using infless::cluster::InstanceState;
using infless::cluster::Resources;
using infless::sim::PanicError;

Instance
makeInstance(int batch = 4)
{
    return Instance(1, "fn", InstanceConfig{batch, Resources{2000, 10, 512}},
                    0, 100, true);
}

TEST(InstanceTest, StartsColdStarting)
{
    Instance i = makeInstance();
    EXPECT_EQ(i.state(), InstanceState::ColdStarting);
    EXPECT_TRUE(i.wasCold());
    EXPECT_EQ(i.createdAt(), 100);
}

TEST(InstanceTest, HappyPathLifecycle)
{
    Instance i = makeInstance();
    i.becomeWarm(200);
    EXPECT_EQ(i.state(), InstanceState::Idle);
    i.startBatch(300, 4);
    EXPECT_EQ(i.state(), InstanceState::Busy);
    i.finishBatch(350);
    EXPECT_EQ(i.state(), InstanceState::Idle);
    i.reap(400);
    EXPECT_EQ(i.state(), InstanceState::Reaped);
}

TEST(InstanceTest, AccountingTracksBatchesAndRequests)
{
    Instance i = makeInstance();
    i.becomeWarm(200);
    i.startBatch(300, 4);
    i.finishBatch(350);
    i.startBatch(360, 2);
    i.finishBatch(420);
    EXPECT_EQ(i.batchesExecuted(), 2);
    EXPECT_EQ(i.requestsServed(), 6);
    EXPECT_EQ(i.busyTicks(), 50 + 60);
}

TEST(InstanceTest, IdleTicksAccumulateAcrossPhases)
{
    Instance i = makeInstance();
    i.becomeWarm(200);
    i.startBatch(260, 1); // 60 idle
    i.finishBatch(300);
    EXPECT_EQ(i.idleTicks(340), 60 + 40); // plus running idle segment
    i.reap(350);
    EXPECT_EQ(i.idleTicks(1000), 60 + 50); // frozen after reap
}

TEST(InstanceTest, LifetimeEndsAtReap)
{
    Instance i = makeInstance();
    i.becomeWarm(150);
    EXPECT_EQ(i.lifetime(500), 400);
    i.reap(600);
    EXPECT_EQ(i.lifetime(9999), 500);
}

TEST(InstanceTest, BatchFillMustRespectConfig)
{
    Instance i = makeInstance(4);
    i.becomeWarm(200);
    EXPECT_THROW(i.startBatch(210, 0), PanicError);
    EXPECT_THROW(i.startBatch(210, 5), PanicError);
    EXPECT_NO_THROW(i.startBatch(210, 4));
}

TEST(InstanceTest, IllegalTransitionsPanic)
{
    Instance i = makeInstance();
    EXPECT_THROW(i.startBatch(110, 1), PanicError); // not warm yet
    i.becomeWarm(200);
    EXPECT_THROW(i.becomeWarm(210), PanicError); // double warm
    i.startBatch(220, 1);
    EXPECT_THROW(i.reap(230), PanicError); // reap while busy
    i.finishBatch(240);
    EXPECT_THROW(i.finishBatch(250), PanicError); // double finish
}

TEST(InstanceTest, ReapFromColdStartingAllowed)
{
    Instance i = makeInstance();
    EXPECT_NO_THROW(i.reap(150));
    EXPECT_EQ(i.state(), InstanceState::Reaped);
}

TEST(InstanceTest, ConfigStrFormats)
{
    InstanceConfig cfg{8, Resources{2000, 10, 512}};
    EXPECT_EQ(cfg.str(), "(b=8, cpu=2000mc, gpu=10%)");
}

TEST(InstanceTest, BatchSizeBelowOneRejected)
{
    EXPECT_THROW(
        Instance(1, "fn", InstanceConfig{0, Resources{1, 0, 0}}, 0, 0, true),
        PanicError);
}

} // namespace
