/**
 * @file
 * Unit tests for resource vectors.
 */

#include <gtest/gtest.h>

#include "cluster/resources.hh"
#include "sim/logging.hh"

namespace {

using infless::cluster::kDefaultBeta;
using infless::cluster::Resources;
using infless::sim::PanicError;

TEST(ResourcesTest, DefaultIsZeroAndValid)
{
    Resources r;
    EXPECT_TRUE(r.isZero());
    EXPECT_TRUE(r.isValid());
}

TEST(ResourcesTest, UnitConversions)
{
    Resources r{2500, 35, 1024};
    EXPECT_DOUBLE_EQ(r.cpuCores(), 2.5);
    EXPECT_DOUBLE_EQ(r.gpuDevices(), 0.35);
}

TEST(ResourcesTest, AdditionAndSubtraction)
{
    Resources a{1000, 10, 512};
    Resources b{500, 5, 256};
    Resources sum = a + b;
    EXPECT_EQ(sum, (Resources{1500, 15, 768}));
    EXPECT_EQ(sum - b, a);
}

TEST(ResourcesTest, SubtractionBelowZeroPanics)
{
    Resources a{100, 0, 0};
    Resources b{200, 0, 0};
    EXPECT_THROW(a -= b, PanicError);
}

TEST(ResourcesTest, FitsInIsComponentWise)
{
    Resources cap{2000, 20, 1024};
    EXPECT_TRUE((Resources{2000, 20, 1024}).fitsIn(cap));
    EXPECT_TRUE((Resources{1, 0, 0}).fitsIn(cap));
    EXPECT_FALSE((Resources{2001, 0, 0}).fitsIn(cap));
    EXPECT_FALSE((Resources{0, 21, 0}).fitsIn(cap));
    EXPECT_FALSE((Resources{0, 0, 1025}).fitsIn(cap));
}

TEST(ResourcesTest, WeightedCombinesCpuAndGpu)
{
    Resources r{2000, 50, 0};
    double beta = 0.01;
    EXPECT_DOUBLE_EQ(r.weighted(beta), 0.01 * 2.0 + 0.5);
}

TEST(ResourcesTest, DefaultBetaReflectsFlopsRatio)
{
    // One CPU core is worth far less than one GPU.
    EXPECT_GT(kDefaultBeta, 0.0);
    EXPECT_LT(kDefaultBeta, 0.01);
}

TEST(ResourcesTest, StrIsHumanReadable)
{
    Resources r{2000, 10, 4096};
    EXPECT_EQ(r.str(), "cpu=2000mc gpu=10% mem=4096MB");
}

} // namespace
