/**
 * @file
 * Unit tests for Server allocation accounting.
 */

#include <gtest/gtest.h>

#include "cluster/server.hh"
#include "sim/logging.hh"

namespace {

using infless::cluster::Resources;
using infless::cluster::Server;
using infless::cluster::testbedServerCapacity;
using infless::sim::PanicError;

TEST(ServerTest, DefaultMirrorsTestbedNode)
{
    Server s;
    EXPECT_EQ(s.capacity(), testbedServerCapacity());
    EXPECT_EQ(s.capacity().cpuMillicores, 16'000);
    EXPECT_EQ(s.capacity().gpuSmPercent, 200);
    EXPECT_EQ(s.available(), s.capacity());
    EXPECT_FALSE(s.isActive());
}

TEST(ServerTest, AllocateReducesAvailability)
{
    Server s(0, Resources{4000, 100, 8192});
    EXPECT_TRUE(s.allocate(Resources{1000, 20, 1024}));
    EXPECT_EQ(s.available(), (Resources{3000, 80, 7168}));
    EXPECT_EQ(s.allocated(), (Resources{1000, 20, 1024}));
    EXPECT_TRUE(s.isActive());
    EXPECT_EQ(s.allocationCount(), 1);
}

TEST(ServerTest, AllocateFailsWithoutRoomAndChangesNothing)
{
    Server s(0, Resources{1000, 10, 1024});
    EXPECT_FALSE(s.allocate(Resources{2000, 0, 0}));
    EXPECT_EQ(s.available(), s.capacity());
    EXPECT_EQ(s.allocationCount(), 0);
}

TEST(ServerTest, ReleaseRestoresAvailability)
{
    Server s(0, Resources{4000, 100, 8192});
    Resources req{1500, 30, 2048};
    ASSERT_TRUE(s.allocate(req));
    s.release(req);
    EXPECT_EQ(s.available(), s.capacity());
    EXPECT_FALSE(s.isActive());
}

TEST(ServerTest, OverReleasePanics)
{
    Server s(0, Resources{4000, 100, 8192});
    ASSERT_TRUE(s.allocate(Resources{1000, 0, 0}));
    EXPECT_THROW(s.release(Resources{2000, 0, 0}), PanicError);
}

TEST(ServerTest, ReleaseWithNoAllocationsPanics)
{
    Server s(0, Resources{4000, 100, 8192});
    EXPECT_THROW(s.release(Resources{0, 0, 0}), PanicError);
}

TEST(ServerTest, FragmentRatioTracksWeightedAvailability)
{
    Server s(0, Resources{1000, 100, 1024});
    double beta = 0.001;
    EXPECT_DOUBLE_EQ(s.fragmentRatio(beta), 1.0);
    // Allocate the whole GPU: weighted availability = beta*1 core.
    ASSERT_TRUE(s.allocate(Resources{0, 100, 0}));
    double expect = (beta * 1.0) / (beta * 1.0 + 1.0);
    EXPECT_NEAR(s.fragmentRatio(beta), expect, 1e-12);
    EXPECT_NEAR(s.occupancy(beta), 1.0 - expect, 1e-12);
}

TEST(ServerTest, ZeroSizedAllocationPanics)
{
    Server s;
    EXPECT_THROW(s.allocate(Resources{}), PanicError);
}

TEST(ServerTest, MultipleAllocationsAccumulate)
{
    Server s(0, Resources{4000, 40, 4096});
    ASSERT_TRUE(s.allocate(Resources{1000, 10, 512}));
    ASSERT_TRUE(s.allocate(Resources{1000, 10, 512}));
    ASSERT_TRUE(s.allocate(Resources{1000, 10, 512}));
    EXPECT_EQ(s.allocationCount(), 3);
    EXPECT_EQ(s.available(), (Resources{1000, 10, 2560}));
    // Fourth of the same size exceeds GPU.
    ASSERT_TRUE(s.allocate(Resources{1000, 10, 512}));
    EXPECT_FALSE(s.allocate(Resources{1, 1, 1}));
}

} // namespace
