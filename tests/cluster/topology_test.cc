/**
 * @file
 * Tests for the failure-domain topology: pure-function domain
 * assignment, wrap-around rack layout, and the cluster-side quarantine
 * and domain bookkeeping the health engine builds on.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/topology.hh"

namespace {

using infless::cluster::Cluster;
using infless::cluster::DomainId;
using infless::cluster::FailureDomain;
using infless::cluster::kNoDomain;
using infless::cluster::ServerId;
using infless::cluster::TopologyConfig;

TEST(TopologyTest, DisabledAssignsNothing)
{
    TopologyConfig off;
    EXPECT_FALSE(off.enabled());
    EXPECT_EQ(off.rackOf(0), kNoDomain);
    EXPECT_EQ(off.domainOf(5).zone, kNoDomain);
    EXPECT_FALSE(off.domainOf(5).assigned());
}

TEST(TopologyTest, ContiguousBlocksRoundRobinAcrossRacks)
{
    TopologyConfig topo;
    topo.zones = 3;
    topo.racksPerZone = 2;
    topo.rackSize = 4;
    ASSERT_EQ(topo.rackDomains(), 6u);

    // Servers 0-3 -> rack 0 (zone 0), 4-7 -> rack 1 (zone 0),
    // 8-11 -> rack 2 (zone 1), ... 20-23 -> rack 5 (zone 2).
    for (ServerId s = 0; s < 24; ++s) {
        FailureDomain d = topo.domainOf(s);
        EXPECT_EQ(d.rack, (s / 4) % 6) << "server " << s;
        EXPECT_EQ(d.zone, d.rack / 2) << "server " << s;
        EXPECT_TRUE(d.assigned());
    }
    // Block 6 wraps back onto rack 0: fleets larger than one pass over
    // the racks keep filling existing domains, never phantom new ones.
    EXPECT_EQ(topo.domainOf(24).rack, 0);
    EXPECT_EQ(topo.domainOf(24).zone, 0);
    EXPECT_EQ(topo.domainOf(47).rack, 5);
}

TEST(TopologyTest, AssignmentIsAPureFunctionOfGlobalId)
{
    TopologyConfig topo;
    topo.zones = 4;
    topo.rackSize = 2;
    // Same id, same domain, however often asked — this is what lets the
    // assignment survive cell migrations unchanged.
    for (ServerId s = 0; s < 32; ++s)
        EXPECT_EQ(topo.domainOf(s), topo.domainOf(s));
    EXPECT_EQ(topo.domainOf(-1).zone, kNoDomain);
}

TEST(TopologyClusterTest, DomainsStoredAndDefaultUnassigned)
{
    Cluster cluster(4);
    EXPECT_FALSE(cluster.serverDomain(0).assigned());

    TopologyConfig topo;
    topo.zones = 2;
    topo.rackSize = 2;
    for (std::size_t s = 0; s < cluster.size(); ++s)
        cluster.setServerDomain(static_cast<ServerId>(s),
                                topo.domainOf(static_cast<ServerId>(s)));
    EXPECT_EQ(cluster.serverDomain(0).zone, 0);
    EXPECT_EQ(cluster.serverDomain(2).zone, 1);
    EXPECT_EQ(cluster.serverDomain(3).rack, 1);
}

TEST(TopologyClusterTest, QuarantineRemovesFromPlacementOnly)
{
    Cluster cluster(3);
    ASSERT_EQ(cluster.quarantinedServers(), 0u);

    cluster.quarantineServer(1);
    EXPECT_TRUE(cluster.serverQuarantined(1));
    EXPECT_EQ(cluster.quarantinedServers(), 1u);
    // Quarantine is not downtime: the server stays up and live.
    EXPECT_FALSE(cluster.server(1).isDown());
    EXPECT_EQ(cluster.downServers(), 0u);
    EXPECT_EQ(cluster.liveServers(), 3u);
    // But placement refuses it: best-fit never lands on server 1.
    for (int i = 0; i < 8; ++i) {
        ServerId fit = cluster.bestFit(
            infless::cluster::Resources{1000, 10, 1024}, 0.5);
        EXPECT_NE(fit, 1);
    }

    cluster.liftQuarantine(1);
    EXPECT_FALSE(cluster.serverQuarantined(1));
    EXPECT_EQ(cluster.quarantinedServers(), 0u);
}

TEST(TopologyClusterTest, QuarantineAndCrashAreOrthogonal)
{
    Cluster cluster(2);
    cluster.quarantineServer(0);
    cluster.setServerDown(0);
    EXPECT_TRUE(cluster.serverQuarantined(0));
    EXPECT_TRUE(cluster.server(0).isDown());

    // Recovery does not clear quarantine: a flaky machine that crashed
    // while ejected comes back still ejected.
    cluster.setServerUp(0);
    EXPECT_TRUE(cluster.serverQuarantined(0));
    EXPECT_FALSE(cluster.server(0).isDown());
    ServerId fit =
        cluster.bestFit(infless::cluster::Resources{1000, 10, 1024}, 0.5);
    EXPECT_EQ(fit, 1);
}

} // namespace
