/**
 * @file
 * Tests for the policy-level cold-start evaluator, including the paper's
 * headline property: LSTH beats HHP on both cold-start rate and waste
 * under loads with long-term periodicity plus short-term bursts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coldstart/evaluator.hh"
#include "coldstart/fixed.hh"
#include "coldstart/hhp.hh"
#include "coldstart/lsth.hh"
#include "sim/rng.hh"
#include "workload/azure_synth.hh"
#include "workload/trace.hh"

namespace {

using infless::coldstart::evaluatePolicy;
using infless::coldstart::FixedKeepAlive;
using infless::coldstart::HybridHistogramPolicy;
using infless::coldstart::LsthParams;
using infless::coldstart::LsthPolicy;
using infless::coldstart::PolicyEvaluation;
using infless::sim::kTicksPerHour;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::Rng;
using infless::sim::Tick;
using infless::workload::ArrivalTrace;
using infless::workload::synthesizeTrace;
using infless::workload::TracePattern;

TEST(EvaluatorTest, EmptyTraceYieldsZeroes)
{
    FixedKeepAlive policy;
    PolicyEvaluation eval = evaluatePolicy(policy, ArrivalTrace());
    EXPECT_EQ(eval.invocations, 0);
    EXPECT_EQ(eval.coldStarts, 0);
    EXPECT_DOUBLE_EQ(eval.coldStartRate(), 0.0);
}

TEST(EvaluatorTest, FirstInvocationIsAlwaysCold)
{
    FixedKeepAlive policy;
    ArrivalTrace trace(std::vector<Tick>{100});
    PolicyEvaluation eval = evaluatePolicy(policy, trace);
    EXPECT_EQ(eval.coldStarts, 1);
    EXPECT_DOUBLE_EQ(eval.coldStartRate(), 1.0);
}

TEST(EvaluatorTest, FixedPolicyCoversShortGapsOnly)
{
    FixedKeepAlive policy(300 * kTicksPerSec);
    // Gaps: 100s (warm), 400s (cold), 200s (warm).
    ArrivalTrace trace(std::vector<Tick>{
        0, 100 * kTicksPerSec, 500 * kTicksPerSec, 700 * kTicksPerSec});
    PolicyEvaluation eval = evaluatePolicy(policy, trace);
    EXPECT_EQ(eval.coldStarts, 2); // the first + the 400s gap
}

TEST(EvaluatorTest, WasteAccountsIdleWarmTime)
{
    FixedKeepAlive policy(300 * kTicksPerSec);
    ArrivalTrace trace(std::vector<Tick>{0, 100 * kTicksPerSec});
    PolicyEvaluation eval = evaluatePolicy(policy, trace);
    // The image idled from t=0 until the arrival at t=100s.
    EXPECT_EQ(eval.wastedWarmTicks, 100 * kTicksPerSec);
}

TEST(EvaluatorTest, MissPastWindowWastesWholeWindow)
{
    FixedKeepAlive policy(300 * kTicksPerSec);
    ArrivalTrace trace(std::vector<Tick>{0, kTicksPerHour});
    PolicyEvaluation eval = evaluatePolicy(policy, trace);
    EXPECT_EQ(eval.coldStarts, 2);
    EXPECT_EQ(eval.wastedWarmTicks, 300 * kTicksPerSec);
}

TEST(EvaluatorTest, ArrivalBeforePrewarmIsColdButFree)
{
    // A policy with a large pre-warm window: a quick follow-up arrives
    // before the image reloads -> cold start, but no warm time wasted.
    infless::coldstart::HhpParams params;
    params.minSamples = 1;
    HybridHistogramPolicy policy(params);
    // Teach it a 30-minute gap, then arrive after 1 minute.
    ArrivalTrace trace(std::vector<Tick>{
        0, 30 * kTicksPerMin, 60 * kTicksPerMin, 61 * kTicksPerMin});
    PolicyEvaluation eval = evaluatePolicy(policy, trace);
    EXPECT_GE(eval.coldStarts, 2);
}

/**
 * Build a 3-day LTP+STB workload and compare the three policies, as
 * Fig. 16 does. The trace mixes a diurnal baseline with bursts.
 */
PolicyEvaluation
evalOn(infless::coldstart::KeepAlivePolicy &policy, TracePattern pattern,
       std::uint64_t seed)
{
    auto series = synthesizeTrace(pattern, 0.02, 3.0, seed);
    Rng rng(seed * 7 + 1);
    ArrivalTrace trace = ArrivalTrace::fromRateSeries(series, rng);
    return evaluatePolicy(policy, trace);
}

TEST(EvaluatorTest, LsthBeatsHhpOnColdStartsAcrossPatterns)
{
    // Fig. 16: LSTH's cold-start rate is ~20% below HHP's on average.
    double lsth_total = 0.0, hhp_total = 0.0;
    for (auto pattern : infless::workload::kAllPatterns) {
        for (std::uint64_t seed : {1u, 2u, 3u}) {
            LsthPolicy lsth;
            HybridHistogramPolicy hhp;
            lsth_total += evalOn(lsth, pattern, seed).coldStartRate();
            hhp_total += evalOn(hhp, pattern, seed).coldStartRate();
        }
    }
    EXPECT_LT(lsth_total, hhp_total);
}

TEST(EvaluatorTest, LsthCutsColdStartsWithoutAddingWaste)
{
    // The paper reports LSTH reducing both cold starts (-21.9%) and idle
    // waste (-24.3%) against HHP. On our synthetic traces the cold-start
    // reduction reproduces clearly; the waste difference is marginal, so
    // the waste assertion only requires no material regression (see
    // EXPERIMENTS.md).
    double lsth_cold = 0.0, hhp_cold = 0.0;
    double lsth_waste = 0.0, hhp_waste = 0.0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        LsthPolicy lsth;
        HybridHistogramPolicy hhp;
        auto el = evalOn(lsth, TracePattern::Bursty, seed);
        auto eh = evalOn(hhp, TracePattern::Bursty, seed);
        lsth_cold += el.coldStartRate();
        hhp_cold += eh.coldStartRate();
        lsth_waste += el.wasteRatio();
        hhp_waste += eh.wasteRatio();
    }
    EXPECT_LT(lsth_cold, hhp_cold);
    EXPECT_LT(lsth_waste, hhp_waste * 1.10);
}

TEST(EvaluatorTest, GammaSweepStaysReasonable)
{
    // All gamma settings must produce valid evaluations; the paper finds
    // gamma = 0.5 the best waste tradeoff.
    for (double gamma : {0.3, 0.5, 0.7}) {
        LsthParams params;
        params.gamma = gamma;
        LsthPolicy policy(params);
        auto eval = evalOn(policy, TracePattern::Periodic, 5);
        EXPECT_GT(eval.invocations, 100);
        EXPECT_GE(eval.coldStartRate(), 0.0);
        EXPECT_LE(eval.coldStartRate(), 1.0);
        EXPECT_GE(eval.wasteRatio(), 0.0);
    }
}

} // namespace
