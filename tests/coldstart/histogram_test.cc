/**
 * @file
 * Unit tests for the sliding-window idle-time histogram.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "coldstart/histogram.hh"

namespace {

using infless::coldstart::IdleTimeHistogram;
using infless::sim::kTicksPerHour;
using infless::sim::kTicksPerMin;
using infless::sim::Tick;

TEST(HistogramTest, EmptyHistogramReportsZero)
{
    IdleTimeHistogram h(kTicksPerHour);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0);
    EXPECT_DOUBLE_EQ(h.overflowFraction(), 0.0);
}

TEST(HistogramTest, RecordInvocationDerivesGaps)
{
    IdleTimeHistogram h(kTicksPerHour);
    h.recordInvocation(0);
    EXPECT_EQ(h.count(), 0u); // first invocation has no gap
    h.recordInvocation(5 * kTicksPerMin);
    EXPECT_EQ(h.count(), 1u);
    h.recordInvocation(7 * kTicksPerMin);
    EXPECT_EQ(h.count(), 2u);
}

TEST(HistogramTest, PercentilesUseBinUpperEdges)
{
    IdleTimeHistogram h(kTicksPerHour);
    // Gaps of 0.5, 1.5, 2.5 ... 9.5 minutes.
    for (int i = 0; i < 10; ++i) {
        h.addSample(i * kTicksPerMin + kTicksPerMin / 2,
                    static_cast<Tick>(i));
    }
    EXPECT_EQ(h.percentile(10), 1 * kTicksPerMin);
    EXPECT_EQ(h.percentile(50), 5 * kTicksPerMin);
    EXPECT_EQ(h.percentile(100), 10 * kTicksPerMin);
}

TEST(HistogramTest, PercentileMonotoneInP)
{
    IdleTimeHistogram h(kTicksPerHour);
    for (int i = 1; i <= 100; ++i)
        h.addSample(i * kTicksPerMin / 3, i);
    Tick prev = 0;
    for (double p : {5.0, 25.0, 50.0, 75.0, 95.0, 99.0}) {
        Tick v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(HistogramTest, WindowEvictsOldSamples)
{
    IdleTimeHistogram h(kTicksPerHour);
    h.addSample(kTicksPerMin, 0);
    h.addSample(2 * kTicksPerMin, 30 * kTicksPerMin);
    EXPECT_EQ(h.count(), 2u);
    // Observing at 70 min evicts the t=0 sample (outside 60-min window).
    h.evict(70 * kTicksPerMin);
    EXPECT_EQ(h.count(), 1u);
    // The remaining sample is the 2-minute gap (bin upper edge: 3 min).
    EXPECT_EQ(h.percentile(100), 3 * kTicksPerMin);
}

TEST(HistogramTest, OverflowSamplesLandInOverflowBin)
{
    IdleTimeHistogram h(24 * kTicksPerHour, kTicksPerMin,
                        4 * kTicksPerHour);
    h.addSample(10 * kTicksPerHour, 0); // beyond the 4h range
    h.addSample(kTicksPerMin, 1);
    EXPECT_NEAR(h.overflowFraction(), 0.5, 1e-12);
    // The overflow reports as the range cap.
    EXPECT_EQ(h.percentile(100), 4 * kTicksPerHour);
}

TEST(HistogramTest, NegativeGapClampsToZeroBin)
{
    IdleTimeHistogram h(kTicksPerHour);
    h.addSample(-5, 0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.percentile(100), kTicksPerMin); // first bin upper edge
}

TEST(HistogramTest, BadPercentilePanics)
{
    IdleTimeHistogram h(kTicksPerHour);
    EXPECT_THROW(h.percentile(-1), infless::sim::PanicError);
    EXPECT_THROW(h.percentile(101), infless::sim::PanicError);
}

TEST(HistogramTest, EvictionKeepsBinCountsConsistent)
{
    IdleTimeHistogram h(10 * kTicksPerMin);
    for (int i = 0; i < 50; ++i)
        h.addSample(kTicksPerMin, i * kTicksPerMin);
    // Window is 10 minutes: at observation time 49 min, only samples
    // observed in (39, 49] survive.
    EXPECT_LE(h.count(), 11u);
    // All surviving samples are 1-minute gaps (bin upper edge: 2 min).
    EXPECT_EQ(h.percentile(100), 2 * kTicksPerMin);
}

} // namespace
