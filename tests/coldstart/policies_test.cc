/**
 * @file
 * Unit tests for the keep-alive policies: fixed, HHP and LSTH.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "coldstart/fixed.hh"
#include "coldstart/hhp.hh"
#include "coldstart/lsth.hh"

namespace {

using infless::coldstart::FixedKeepAlive;
using infless::coldstart::HhpParams;
using infless::coldstart::HybridHistogramPolicy;
using infless::coldstart::KeepAliveDecision;
using infless::coldstart::LsthParams;
using infless::coldstart::LsthPolicy;
using infless::sim::kTicksPerHour;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

TEST(FixedKeepAliveTest, ConstantWindowsNoPrewarm)
{
    FixedKeepAlive policy(300 * kTicksPerSec);
    auto d = policy.decide(0);
    EXPECT_EQ(d.prewarmWindow, 0);
    EXPECT_EQ(d.keepAliveWindow, 300 * kTicksPerSec);
    // History-independent.
    policy.recordInvocation(kTicksPerHour);
    auto d2 = policy.decide(kTicksPerHour);
    EXPECT_EQ(d2.keepAliveWindow, d.keepAliveWindow);
}

TEST(FixedKeepAliveTest, DecisionCoversShortGapsOnly)
{
    FixedKeepAlive policy(300 * kTicksPerSec);
    auto d = policy.decide(0);
    EXPECT_TRUE(d.covers(100 * kTicksPerSec));
    EXPECT_FALSE(d.covers(301 * kTicksPerSec));
}

TEST(HhpTest, FallsBackConservativeWithoutHistory)
{
    HybridHistogramPolicy policy;
    auto d = policy.decide(0);
    EXPECT_EQ(d.prewarmWindow, 0);
    EXPECT_GE(d.keepAliveWindow, kTicksPerHour);
}

TEST(HhpTest, LearnsWindowsFromRegularGaps)
{
    HybridHistogramPolicy policy;
    // Invocations exactly every 10 minutes.
    for (int i = 0; i <= 20; ++i)
        policy.recordInvocation(static_cast<Tick>(i) * 10 * kTicksPerMin);
    auto d = policy.decide(20 * 10 * kTicksPerMin);
    // The 10-minute gap must be covered...
    EXPECT_TRUE(d.covers(10 * kTicksPerMin));
    // ...with a pre-warm window instead of keeping alive from t=0.
    EXPECT_GT(d.prewarmWindow, 5 * kTicksPerMin);
    // And the coverage ends soon after the expected gap.
    EXPECT_LT(d.warmEnd(), 20 * kTicksPerMin);
}

TEST(HhpTest, WindowsFromHeadTailAppliesMargins)
{
    auto d = HybridHistogramPolicy::windowsFrom(10 * kTicksPerMin,
                                                60 * kTicksPerMin, 0.15);
    // Floating-point rounding may land one tick either way.
    EXPECT_NEAR(static_cast<double>(d.prewarmWindow),
                10 * kTicksPerMin * 0.85, 2.0);
    EXPECT_NEAR(static_cast<double>(d.warmEnd()),
                60 * kTicksPerMin * 1.15, 2.0);
}

TEST(HhpTest, OverflowHeavyHistogramFallsBack)
{
    HhpParams params;
    params.range = 10 * kTicksPerMin; // tiny range so most gaps overflow
    params.minSamples = 5;
    HybridHistogramPolicy policy(params);
    for (int i = 0; i <= 20; ++i)
        policy.recordInvocation(static_cast<Tick>(i) * kTicksPerHour);
    auto d = policy.decide(20 * kTicksPerHour);
    // Unrepresentative -> conservative always-warm.
    EXPECT_EQ(d.prewarmWindow, 0);
    EXPECT_EQ(d.keepAliveWindow, params.fallbackKeepAlive);
}

TEST(LsthTest, GammaZeroFollowsShortHistogram)
{
    LsthParams params;
    params.gamma = 0.0;
    LsthPolicy lsth(params);
    HhpParams hp;
    hp.trackedDuration = params.shortDuration;
    HybridHistogramPolicy short_only(hp);
    // Feed both the same regular invocations within the short horizon.
    for (int i = 0; i <= 30; ++i) {
        Tick t = static_cast<Tick>(i) * kTicksPerMin;
        lsth.recordInvocation(t);
        short_only.recordInvocation(t);
    }
    auto a = lsth.decide(30 * kTicksPerMin);
    auto b = short_only.decide(30 * kTicksPerMin);
    EXPECT_EQ(a.prewarmWindow, b.prewarmWindow);
    EXPECT_EQ(a.keepAliveWindow, b.keepAliveWindow);
}

TEST(LsthTest, BlendsLongAndShortHorizons)
{
    // Regime change: long history of 30-minute gaps, then over an hour of
    // dense 1-minute gaps, so the short histogram sees only the dense
    // regime while the long histogram still remembers the sparse one.
    auto feed = [](LsthPolicy &policy) {
        Tick t = 0;
        for (int i = 0; i < 40; ++i) {
            t += 30 * kTicksPerMin;
            policy.recordInvocation(t);
        }
        for (int i = 0; i < 80; ++i) {
            t += kTicksPerMin;
            policy.recordInvocation(t);
        }
        return t;
    };
    auto with_gamma = [&](double gamma) {
        LsthParams params;
        params.gamma = gamma;
        params.minSamples = 5;
        LsthPolicy policy(params);
        Tick t = feed(policy);
        return policy.decide(t);
    };
    auto short_only = with_gamma(0.0);
    auto blended = with_gamma(0.5);
    auto long_only = with_gamma(1.0);
    // The two horizons genuinely disagree...
    EXPECT_LT(short_only.warmEnd(), long_only.warmEnd());
    // ...and the gamma blend sits between them.
    EXPECT_GE(blended.warmEnd(), short_only.warmEnd());
    EXPECT_LE(blended.warmEnd(), long_only.warmEnd());
    EXPECT_LT(blended.warmEnd(), long_only.warmEnd());
    EXPECT_GT(blended.warmEnd(), short_only.warmEnd());
}

TEST(LsthTest, FallsBackWhenBothHistogramsCold)
{
    LsthPolicy policy;
    auto d = policy.decide(0);
    EXPECT_EQ(d.prewarmWindow, 0);
    EXPECT_GE(d.keepAliveWindow, kTicksPerHour);
}

TEST(LsthTest, UsesLongOnlyWhenShortIsEmpty)
{
    LsthParams params;
    params.minSamples = 5;
    LsthPolicy policy(params);
    // All activity more than an hour ago.
    Tick t = 0;
    for (int i = 0; i < 20; ++i) {
        t += 10 * kTicksPerMin;
        policy.recordInvocation(t);
    }
    // Decide 2 hours later: short histogram evicted, long one alive.
    policy.shortHistogram();
    auto d = policy.decide(t + 2 * kTicksPerHour);
    EXPECT_TRUE(d.covers(10 * kTicksPerMin));
}

TEST(LsthTest, InvalidGammaRejected)
{
    LsthParams params;
    params.gamma = 1.5;
    EXPECT_THROW(LsthPolicy{params}, infless::sim::PanicError);
}

TEST(LsthTest, NameIncludesGamma)
{
    LsthParams params;
    params.gamma = 0.3;
    EXPECT_EQ(LsthPolicy(params).name(), "lsth(gamma=0.3)");
}

TEST(PolicyFactoryTest, FactoriesProduceFreshInstances)
{
    auto factory = LsthPolicy::factory();
    auto p1 = factory();
    auto p2 = factory();
    EXPECT_NE(p1.get(), p2.get());
    p1->recordInvocation(0);
    p1->recordInvocation(kTicksPerMin);
    // p2 must not share state with p1.
    auto fixed = FixedKeepAlive::factory(5 * kTicksPerSec)();
    EXPECT_EQ(fixed->decide(0).keepAliveWindow, 5 * kTicksPerSec);
}

} // namespace
