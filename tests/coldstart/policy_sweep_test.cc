/**
 * @file
 * Parameterized sweep: every keep-alive policy against every trace
 * pattern must produce sane windows and consistent evaluations.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "sim/logging.hh"

#include "coldstart/evaluator.hh"
#include "coldstart/fixed.hh"
#include "coldstart/hhp.hh"
#include "coldstart/lsth.hh"
#include "sim/rng.hh"
#include "workload/azure_synth.hh"

namespace {

using infless::coldstart::evaluatePolicy;
using infless::coldstart::KeepAlivePolicy;
using infless::sim::kTicksPerHour;
using infless::sim::Rng;
using infless::workload::ArrivalTrace;
using infless::workload::synthesizeTrace;
using infless::workload::TracePattern;

enum class PolicyKind
{
    Fixed,
    Hhp,
    Lsth03,
    Lsth05,
    Lsth07
};

std::unique_ptr<KeepAlivePolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Fixed:
        return std::make_unique<infless::coldstart::FixedKeepAlive>();
      case PolicyKind::Hhp:
        return std::make_unique<
            infless::coldstart::HybridHistogramPolicy>();
      case PolicyKind::Lsth03:
      case PolicyKind::Lsth05:
      case PolicyKind::Lsth07: {
          infless::coldstart::LsthParams params;
          params.gamma = kind == PolicyKind::Lsth03   ? 0.3
                         : kind == PolicyKind::Lsth05 ? 0.5
                                                      : 0.7;
          return std::make_unique<infless::coldstart::LsthPolicy>(params);
      }
    }
    return nullptr;
}

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Fixed:
        return "fixed";
      case PolicyKind::Hhp:
        return "hhp";
      case PolicyKind::Lsth03:
        return "lsth03";
      case PolicyKind::Lsth05:
        return "lsth05";
      case PolicyKind::Lsth07:
        return "lsth07";
    }
    return "?";
}

class PolicySweep
    : public ::testing::TestWithParam<std::tuple<PolicyKind, TracePattern>>
{
};

TEST_P(PolicySweep, DecisionsAreAlwaysSane)
{
    auto [kind, pattern] = GetParam();
    auto policy = makePolicy(kind);
    auto series = synthesizeTrace(pattern, 0.02, 1.0, 17);
    Rng rng(29);
    auto trace = ArrivalTrace::fromRateSeries(series, rng);
    for (auto t : trace.arrivals()) {
        auto decision = policy->decide(t);
        EXPECT_GE(decision.prewarmWindow, 0);
        EXPECT_GT(decision.keepAliveWindow, 0);
        EXPECT_LE(decision.warmEnd(), 24 * kTicksPerHour);
        policy->recordInvocation(t);
    }
}

TEST_P(PolicySweep, EvaluationIsInternallyConsistent)
{
    auto [kind, pattern] = GetParam();
    auto policy = makePolicy(kind);
    auto series = synthesizeTrace(pattern, 0.02, 2.0, 23);
    Rng rng(31);
    auto trace = ArrivalTrace::fromRateSeries(series, rng);
    auto eval = evaluatePolicy(*policy, trace);

    EXPECT_EQ(eval.invocations,
              static_cast<std::int64_t>(trace.size()));
    EXPECT_LE(eval.coldStarts, eval.invocations);
    if (eval.invocations > 0)
        EXPECT_GE(eval.coldStarts, 1); // the first is always cold
    EXPECT_GE(eval.wastedWarmTicks, 0);
    // Warm-idle time can exceed the trace only through post-miss
    // keep-alive windows; cap it generously.
    EXPECT_LE(eval.wastedWarmTicks, 3 * eval.traceTicks + kTicksPerHour);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PolicySweep,
    ::testing::Combine(::testing::Values(PolicyKind::Fixed,
                                         PolicyKind::Hhp,
                                         PolicyKind::Lsth03,
                                         PolicyKind::Lsth05,
                                         PolicyKind::Lsth07),
                       ::testing::Values(TracePattern::Sporadic,
                                         TracePattern::Periodic,
                                         TracePattern::Bursty)),
    [](const auto &info) {
        std::string name = policyName(std::get<0>(info.param));
        name += "_";
        name += infless::workload::tracePatternName(
            std::get<1>(info.param));
        return name;
    });

} // namespace
