/**
 * @file
 * Unit tests for scale-in drain planning.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "core/autoscaler.hh"

namespace {

using infless::core::chooseDrains;
using infless::core::InstanceRateInfo;

TEST(ChooseDrainsTest, NoDrainWhenLoadIsHealthy)
{
    std::vector<InstanceRateInfo> infos = {{80, 28}, {40, 10}};
    std::vector<double> costs = {1.0, 0.5};
    // Threshold = 0.8*38 + 0.2*120 = 54.4; measured above it.
    auto drains = chooseDrains(infos, costs, 100.0, 0.8);
    EXPECT_TRUE(drains.empty());
}

TEST(ChooseDrainsTest, DrainsLeastEfficientFirst)
{
    // Instance 1 delivers less RPS per unit cost.
    std::vector<InstanceRateInfo> infos = {{80, 28}, {40, 10}};
    std::vector<double> costs = {0.5, 0.5}; // eff: 160 vs 80
    auto drains = chooseDrains(infos, costs, 50.0, 0.8);
    ASSERT_FALSE(drains.empty());
    EXPECT_EQ(drains[0], 1u);
}

TEST(ChooseDrainsTest, NeverDropsCapacityBelowMeasuredRate)
{
    std::vector<InstanceRateInfo> infos = {{80, 28}, {40, 10}};
    std::vector<double> costs = {1.0, 1.0};
    auto drains = chooseDrains(infos, costs, 90.0, 0.8);
    // Removing either instance would leave less than 90 RPS of capacity.
    EXPECT_TRUE(drains.empty());
}

TEST(ChooseDrainsTest, ZeroLoadDrainsEverything)
{
    std::vector<InstanceRateInfo> infos = {{80, 28}, {40, 10}, {40, 10}};
    std::vector<double> costs = {1.0, 1.0, 1.0};
    auto drains = chooseDrains(infos, costs, 0.0, 0.8);
    EXPECT_EQ(drains.size(), 3u);
}

TEST(ChooseDrainsTest, StopsOnceBackInCaseTwo)
{
    // Three identical instances; load fits comfortably in two.
    std::vector<InstanceRateInfo> infos = {{40, 14}, {40, 14}, {40, 14}};
    std::vector<double> costs = {1.0, 1.0, 1.0};
    // Start: threshold = 0.8*42 + 0.2*120 = 57.6 > 50 -> scale in. After
    // one drain the threshold is 0.8*28 + 0.2*80 = 38.4 <= 50 -> stop.
    auto drains = chooseDrains(infos, costs, 50.0, 0.8);
    EXPECT_EQ(drains.size(), 1u);
}

TEST(ChooseDrainsTest, MismatchedAritiesPanic)
{
    std::vector<InstanceRateInfo> infos = {{40, 14}};
    std::vector<double> costs = {};
    EXPECT_THROW(chooseDrains(infos, costs, 0.0, 0.8),
                 infless::sim::PanicError);
}

TEST(ChooseDrainsTest, EmptyInstancesYieldNoDrains)
{
    EXPECT_TRUE(chooseDrains({}, {}, 5.0, 0.8).empty());
}

} // namespace
