/**
 * @file
 * Unit tests for the per-instance batch queue.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "core/batch_queue.hh"
#include "sim/time.hh"

namespace {

using infless::core::BatchQueue;
using infless::sim::kTickNever;
using infless::sim::msToTicks;

TEST(BatchQueueTest, StartsEmpty)
{
    BatchQueue q(4, msToTicks(100));
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.hasRoom());
    EXPECT_FALSE(q.hasFullBatch());
    EXPECT_EQ(q.headDeadline(), kTickNever);
    EXPECT_EQ(q.headArrival(), kTickNever);
}

TEST(BatchQueueTest, FillsToBatchSize)
{
    BatchQueue q(4, msToTicks(100));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.push(i, i * 10));
    EXPECT_TRUE(q.hasFullBatch());
    EXPECT_FALSE(q.hasRoom());
    // A fifth request is rejected: over-submission (Fig. 6a).
    EXPECT_FALSE(q.push(4, 40));
    EXPECT_EQ(q.size(), 4u);
}

TEST(BatchQueueTest, HeadDeadlineIsArrivalPlusMaxWait)
{
    BatchQueue q(4, msToTicks(100));
    q.push(0, msToTicks(5));
    q.push(1, msToTicks(50));
    EXPECT_EQ(q.headDeadline(), msToTicks(105));
    EXPECT_EQ(q.headArrival(), msToTicks(5));
}

TEST(BatchQueueTest, TakeBatchPopsInArrivalOrder)
{
    BatchQueue q(3, msToTicks(100));
    q.push(7, 0);
    q.push(8, 1);
    q.push(9, 2);
    auto batch = q.takeBatch();
    EXPECT_EQ(batch, (std::vector<infless::core::RequestIndex>{7, 8, 9}));
    EXPECT_TRUE(q.empty());
}

TEST(BatchQueueTest, TakeBatchOnPartialQueue)
{
    BatchQueue q(8, msToTicks(100));
    q.push(1, 0);
    q.push(2, 1);
    auto batch = q.takeBatch();
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_TRUE(q.empty());
}

TEST(BatchQueueTest, DeadlineAdvancesToNextHeadAfterTake)
{
    BatchQueue q(2, msToTicks(100));
    q.push(1, 0);
    q.push(2, msToTicks(30));
    q.takeBatch();
    EXPECT_EQ(q.headDeadline(), kTickNever);
    q.push(3, msToTicks(60));
    EXPECT_EQ(q.headDeadline(), msToTicks(160));
}

TEST(BatchQueueTest, DrainEmptiesEverything)
{
    BatchQueue q(4, msToTicks(100));
    q.push(1, 0);
    q.push(2, 0);
    q.push(3, 0);
    auto all = q.drain();
    EXPECT_EQ(all.size(), 3u);
    EXPECT_TRUE(q.empty());
}

TEST(BatchQueueTest, BatchSizeOneReleasesImmediately)
{
    BatchQueue q(1, msToTicks(100));
    EXPECT_TRUE(q.push(1, 0));
    EXPECT_TRUE(q.hasFullBatch());
    EXPECT_FALSE(q.hasRoom());
    EXPECT_FALSE(q.push(2, 1));
}

TEST(BatchQueueTest, ZeroMaxWaitMeansImmediateDeadline)
{
    BatchQueue q(4, 0);
    q.push(1, 500);
    EXPECT_EQ(q.headDeadline(), 500);
}

TEST(BatchQueueTest, InvalidConstructionPanics)
{
    EXPECT_THROW(BatchQueue(0, 100), infless::sim::PanicError);
    EXPECT_THROW(BatchQueue(4, -1), infless::sim::PanicError);
}

} // namespace
