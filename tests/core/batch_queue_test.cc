/**
 * @file
 * Unit tests for the per-instance batch queue.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "core/batch_queue.hh"
#include "sim/time.hh"

namespace {

using infless::core::BatchQueue;
using infless::sim::kTickNever;
using infless::sim::msToTicks;

TEST(BatchQueueTest, StartsEmpty)
{
    BatchQueue q(4, msToTicks(100));
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.hasRoom());
    EXPECT_FALSE(q.hasFullBatch());
    EXPECT_EQ(q.headDeadline(), kTickNever);
    EXPECT_EQ(q.headArrival(), kTickNever);
}

TEST(BatchQueueTest, FillsToBatchSize)
{
    BatchQueue q(4, msToTicks(100));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.push(i, i * 10));
    EXPECT_TRUE(q.hasFullBatch());
    EXPECT_FALSE(q.hasRoom());
    // A fifth request is rejected: over-submission (Fig. 6a).
    EXPECT_FALSE(q.push(4, 40));
    EXPECT_EQ(q.size(), 4u);
}

TEST(BatchQueueTest, HeadDeadlineIsArrivalPlusMaxWait)
{
    BatchQueue q(4, msToTicks(100));
    q.push(0, msToTicks(5));
    q.push(1, msToTicks(50));
    EXPECT_EQ(q.headDeadline(), msToTicks(105));
    EXPECT_EQ(q.headArrival(), msToTicks(5));
}

TEST(BatchQueueTest, TakeBatchPopsInArrivalOrder)
{
    BatchQueue q(3, msToTicks(100));
    q.push(7, 0);
    q.push(8, 1);
    q.push(9, 2);
    auto batch = q.takeBatch();
    EXPECT_EQ(batch, (std::vector<infless::core::RequestIndex>{7, 8, 9}));
    EXPECT_TRUE(q.empty());
}

TEST(BatchQueueTest, TakeBatchOnPartialQueue)
{
    BatchQueue q(8, msToTicks(100));
    q.push(1, 0);
    q.push(2, 1);
    auto batch = q.takeBatch();
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_TRUE(q.empty());
}

TEST(BatchQueueTest, DeadlineAdvancesToNextHeadAfterTake)
{
    BatchQueue q(2, msToTicks(100));
    q.push(1, 0);
    q.push(2, msToTicks(30));
    q.takeBatch();
    EXPECT_EQ(q.headDeadline(), kTickNever);
    q.push(3, msToTicks(60));
    EXPECT_EQ(q.headDeadline(), msToTicks(160));
}

TEST(BatchQueueTest, DrainEmptiesEverything)
{
    BatchQueue q(4, msToTicks(100));
    q.push(1, 0);
    q.push(2, 0);
    q.push(3, 0);
    auto all = q.drain();
    EXPECT_EQ(all.size(), 3u);
    EXPECT_TRUE(q.empty());
}

TEST(BatchQueueTest, BatchSizeOneReleasesImmediately)
{
    BatchQueue q(1, msToTicks(100));
    EXPECT_TRUE(q.push(1, 0));
    EXPECT_TRUE(q.hasFullBatch());
    EXPECT_FALSE(q.hasRoom());
    EXPECT_FALSE(q.push(2, 1));
}

TEST(BatchQueueTest, ZeroMaxWaitMeansImmediateDeadline)
{
    BatchQueue q(4, 0);
    q.push(1, 500);
    EXPECT_EQ(q.headDeadline(), 500);
}

TEST(BatchQueueTest, InvalidConstructionPanics)
{
    EXPECT_THROW(BatchQueue(0, 100), infless::sim::PanicError);
    EXPECT_THROW(BatchQueue(4, -1), infless::sim::PanicError);
}

TEST(BatchQueueTest, DepthCapOverridesLegacyBound)
{
    BatchQueue q(4, msToTicks(100), 6);
    EXPECT_EQ(q.depthCap(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(q.push(i, i));
    EXPECT_FALSE(q.hasRoom());
    EXPECT_FALSE(q.push(6, 6));
    // A full batch is still released from the deeper queue.
    EXPECT_EQ(q.takeBatch().size(), 4u);
    EXPECT_TRUE(q.hasRoom());
}

TEST(BatchQueueTest, ZeroDepthCapKeepsLegacyBound)
{
    BatchQueue q(4, msToTicks(100), 0);
    EXPECT_EQ(q.depthCap(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.push(i, i));
    EXPECT_FALSE(q.push(4, 4));
}

TEST(BatchQueueTest, EvictOldestPopsHeadInFifoOrder)
{
    BatchQueue q(4, msToTicks(100), 8);
    q.push(7, 0);
    q.push(8, 10);
    q.push(9, 20);
    EXPECT_EQ(q.evictOldest(), 7);
    EXPECT_EQ(q.headArrival(), 10);
    EXPECT_EQ(q.evictOldest(), 8);
    EXPECT_EQ(q.evictOldest(), 9);
    EXPECT_TRUE(q.empty());
}

TEST(BatchQueueTest, EvictOldestOnEmptyPanics)
{
    BatchQueue q(4, msToTicks(100));
    EXPECT_THROW(q.evictOldest(), infless::sim::PanicError);
}

TEST(BatchQueueTest, ZeroSlackHeadExpiresAtEnqueueTick)
{
    // SLO slack of exactly zero at enqueue: the head's deadline is its
    // own arrival tick, forcing immediate submission rather than a
    // negative or never deadline.
    BatchQueue q(4, 0, 8);
    q.push(1, msToTicks(5));
    EXPECT_EQ(q.headDeadline(), msToTicks(5));
    EXPECT_EQ(q.takeBatch().size(), 1u);
}

TEST(BatchQueueTest, EvictionAtDeadlineTickPromotesNextHead)
{
    // Eviction racing the head's timeout in the same tick: evicting the
    // expired head must leave the next request's (later) deadline, not
    // the stale one.
    BatchQueue q(4, msToTicks(100), 8);
    q.push(1, 0);
    q.push(2, msToTicks(60));
    ASSERT_EQ(q.headDeadline(), msToTicks(100));
    EXPECT_EQ(q.evictOldest(), 1);
    EXPECT_EQ(q.headDeadline(), msToTicks(160));
    EXPECT_EQ(q.headArrival(), msToTicks(60));
}

TEST(BatchQueueTest, SetMaxWaitReaimsCurrentHead)
{
    BatchQueue q(4, msToTicks(100));
    q.push(1, msToTicks(10));
    ASSERT_EQ(q.headDeadline(), msToTicks(110));
    q.setMaxWait(msToTicks(200));
    EXPECT_EQ(q.headDeadline(), msToTicks(210));
    q.setMaxWait(0);
    EXPECT_EQ(q.headDeadline(), msToTicks(10));
}

} // namespace
